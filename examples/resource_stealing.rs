//! Resource stealing under the microscope: a cache-insensitive Elastic(5%)
//! donor (`gobmk`) and a cache-hungry Opportunistic recipient (`bzip2`)
//! share the CMP. The example polls the stealing controller while the run
//! progresses and prints the donated ways and the duplicate-tag guard
//! state over time (Section 4 of the paper).
//!
//! ```text
//! cargo run --release --example resource_stealing
//! ```

use cmpqos::qos::{QosJob, QosScheduler, ResourceRequest, SchedulerConfig};
use cmpqos::system::SystemConfig;
use cmpqos::trace::spec;
use cmpqos::types::{Cycles, Instructions, JobId, Percent};

fn main() {
    const K: u64 = 8; // geometry scale: fast and way-for-way faithful
    let work = Instructions::new(2_000_000);
    let mut cfg = SchedulerConfig::default();
    cfg.stealing.interval = Instructions::new(work.get() / 50);
    let mut sched = QosScheduler::new(SystemConfig::paper_scaled(K), cfg);

    let donor = QosJob::elastic(
        JobId::new(0),
        ResourceRequest::paper_job(),
        Percent::new(5.0),
    )
    .work(work)
    .max_wall_clock(Cycles::new(80_000_000))
    .deadline(Cycles::new(240_000_000))
    .build();
    let recipient = QosJob::opportunistic(JobId::new(1), ResourceRequest::paper_job())
        .work(work)
        .max_wall_clock(Cycles::new(80_000_000))
        .build();

    let gobmk = spec::scaled("gobmk", K).expect("built-in");
    let bzip2 = spec::scaled("bzip2", K).expect("built-in");
    assert!(sched
        .submit(donor, Box::new(gobmk.instantiate(1, 1 << 40)))
        .is_accepted());
    assert!(sched
        .submit(recipient, Box::new(bzip2.instantiate(2, 2 << 40)))
        .is_accepted());

    println!("time(Mcyc)  donor ways  stolen  guard miss-increase  cancelled");
    println!("{}", "-".repeat(66));
    let step = Cycles::new(500_000);
    let mut t = Cycles::ZERO;
    while !sched.is_idle() && t < Cycles::new(200_000_000) {
        t += step;
        sched.run_until(t);
        if let Some(ctl) = sched.stealing_state(JobId::new(0)) {
            let guard = sched
                .node()
                .monitor(JobId::new(0))
                .map_or(0.0, |m| m.miss_increase());
            println!(
                "{:>9.1}  {:>10}  {:>6}  {:>18.4}  {}",
                t.as_f64() / 1e6,
                ctl.current_ways(),
                ctl.stolen(),
                guard,
                ctl.is_cancelled()
            );
        }
    }

    println!();
    for id in [0u32, 1] {
        let r = sched.report(JobId::new(id)).expect("submitted");
        println!(
            "job{id} ({}): finished at {:?}, IPC {:.3}, deadline met: {}",
            if id == 0 {
                "donor gobmk"
            } else {
                "recipient bzip2"
            },
            r.finished.map(|c| c.get()),
            r.perf.ipc(),
            r.met_deadline()
        );
        if let Some(s) = r.steal {
            println!(
                "      final: {} donated, cumulative miss increase {:.2}% (bound {})",
                s.stolen,
                s.miss_increase * 100.0,
                s.slack
            );
        }
    }
}
