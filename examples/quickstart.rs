//! Quickstart: submit three jobs with different QoS modes to a 4-core CMP
//! and watch the framework admit, schedule and report them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cmpqos::qos::{QosJob, QosScheduler, ResourceRequest, SchedulerConfig};
use cmpqos::system::SystemConfig;
use cmpqos::trace::spec;
use cmpqos::types::{Cycles, Instructions, JobId, Percent};

fn main() {
    // The paper's machine: 4 in-order cores, 32 KiB L1s, shared 2 MiB
    // 16-way L2 with QoS-aware per-set partitioning, 6.4 GB/s memory.
    let mut sched = QosScheduler::new(SystemConfig::paper(), SchedulerConfig::default());

    let work = Instructions::new(300_000);
    let tw = Cycles::new(3_000_000); // generous wall-clock request

    // A Strict job: resources and timeslot reserved, deadline guaranteed.
    // The request is 1 core + 7 of 16 L2 ways.
    let strict = QosJob::strict(JobId::new(0), ResourceRequest::paper_job())
        .work(work)
        .max_wall_clock(tw)
        .deadline(Cycles::new(6_000_000))
        .build();

    // An Elastic(5%) job: same guarantee, but tolerates a 5% slowdown so
    // the framework may steal its excess cache for others.
    let elastic = QosJob::elastic(
        JobId::new(1),
        ResourceRequest::paper_job(),
        Percent::new(5.0),
    )
    .work(work)
    .max_wall_clock(tw)
    .deadline(Cycles::new(8_000_000))
    .build();

    // An Opportunistic job: no reservation; runs on spare capacity.
    let opportunistic = QosJob::opportunistic(JobId::new(2), ResourceRequest::paper_job())
        .work(work)
        .max_wall_clock(tw)
        .build();

    for (job, bench) in [
        (strict, "hmmer"),
        (elastic, "gobmk"),
        (opportunistic, "bzip2"),
    ] {
        let profile = spec::benchmark(bench).expect("built-in benchmark");
        let source = Box::new(profile.instantiate(
            42 + job.id.index() as u64,
            u64::from(job.id.index() + 1) << 40,
        ));
        let decision = sched.submit(job, source);
        println!(
            "submit {bench:>6} as {:<14} -> {decision:?}",
            job.mode.to_string()
        );
    }

    sched.run_to_idle(Cycles::new(1_000_000_000));

    println!();
    for id in 0..3u32 {
        let r = sched.report(JobId::new(id)).expect("submitted");
        println!(
            "job{id}: started {:>10?} finished {:>10?} IPC {:.3} deadline met: {}",
            r.started.map(|c| c.get()),
            r.finished.map(|c| c.get()),
            r.perf.ipc(),
            r.met_deadline(),
        );
        if let Some(steal) = r.steal {
            println!(
                "      elastic donor: {} stolen, miss increase {:.2}%, cancelled: {}",
                steal.stolen,
                steal.miss_increase * 100.0,
                steal.cancelled
            );
        }
    }
}
