//! A miniature two-node server: submissions probe each node's scheduler in
//! turn (the Global Admission Controller pattern of Section 3.1), spilling
//! to the second CMP when the first cannot meet a deadline — with both
//! nodes fully simulated.
//!
//! ```text
//! cargo run --release --example multi_node
//! ```

use cmpqos::qos::{QosJob, QosScheduler, ResourceRequest, SchedulerConfig};
use cmpqos::system::SystemConfig;
use cmpqos::trace::spec;
use cmpqos::types::{Cycles, Instructions, JobId};

fn main() {
    const K: u64 = 8;
    let mut nodes: Vec<QosScheduler> = (0..2)
        .map(|_| QosScheduler::new(SystemConfig::paper_scaled(K), SchedulerConfig::default()))
        .collect();

    let work = Instructions::new(400_000);
    let tw = Cycles::new(8_000_000);
    let benches = ["gobmk", "hmmer", "bzip2", "gobmk", "hmmer", "bzip2"];

    println!("{:<6} {:<8} {:<22} placement", "job", "bench", "deadline");
    println!("{}", "-".repeat(56));
    for (i, bench) in benches.iter().enumerate() {
        // Tight deadlines force spill: each node fits two jobs at once.
        let job = QosJob::strict(JobId::new(i as u32), ResourceRequest::paper_job())
            .work(work)
            .max_wall_clock(tw)
            .deadline(Cycles::new(tw.get() * 3 / 2))
            .build();
        let profile = spec::scaled(bench, K).expect("built-in");
        let mut placed = None;
        for (n, node) in nodes.iter_mut().enumerate() {
            let source = Box::new(profile.instantiate(i as u64, (i as u64 + 1) << 40));
            if node.submit(job, source).is_accepted() {
                placed = Some(n);
                break;
            }
        }
        println!(
            "job{:<3} {:<8} td={:<18} {}",
            i,
            bench,
            job.deadline.unwrap().get(),
            match placed {
                Some(n) => format!("node{n}"),
                None => "REJECTED everywhere (renegotiate target)".into(),
            }
        );
    }

    let cap = Cycles::new(1_000_000_000);
    for node in &mut nodes {
        node.run_to_idle(cap);
    }

    println!();
    for (n, node) in nodes.iter().enumerate() {
        let done: Vec<String> = node
            .reports()
            .iter()
            .filter(|r| r.finished.is_some())
            .map(|r| {
                format!(
                    "job{} ({})",
                    r.job.id.index(),
                    if r.met_deadline() { "met" } else { "MISSED" }
                )
            })
            .collect();
        println!(
            "node{n}: completed {} | LAC: {} tests, {} accepted",
            done.join(", "),
            node.lac().admission_tests(),
            node.lac().accepted(),
        );
    }
}
