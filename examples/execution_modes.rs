//! The Figure 3 scenario as a runnable walkthrough: six jobs, each needing
//! ~40% of the shared cache and completing in `T` when fully resourced,
//! with deadlines of `1.5T` — first all Strict, then with manual mode
//! downgrades (Section 3.3–3.4 of the paper).
//!
//! ```text
//! cargo run --release --example execution_modes
//! ```

use cmpqos::experiments::fig3;

fn main() {
    let scenarios = fig3::run();
    fig3::print(&scenarios);

    println!("Timelines (one row per job; '#' = executing):\n");
    for s in &scenarios {
        println!("{}", s.label);
        let horizon = s.jobs.iter().map(|j| j.finish.get()).max().unwrap_or(1);
        for j in &s.jobs {
            let width = 60usize;
            let col = |c: u64| (c as usize * width) / horizon as usize;
            let mut line = vec![b' '; width + 1];
            for cell in line
                .iter_mut()
                .take(col(j.finish.get()).min(width) + 1)
                .skip(col(j.start.get()).min(width))
            {
                *cell = b'#';
            }
            println!(
                "  job{} {:<14} |{}|",
                j.number,
                j.mode.to_string(),
                String::from_utf8_lossy(&line)
            );
        }
        println!();
    }
}
