//! Server consolidation: gold/silver/bronze SLA tiers mapped to preset RUM
//! targets, placed across a two-node server by the Global Admission
//! Controller — the paper's motivating utility-computing scenario
//! (Section 1).
//!
//! ```text
//! cargo run --release --example consolidation
//! ```

use cmpqos::qos::gac::{GlobalAdmissionController, ProbePolicy};
use cmpqos::qos::target::Preset;
use cmpqos::qos::{ExecutionMode, LacConfig};
use cmpqos::types::{Cycles, JobId, Percent};

#[derive(Debug, Clone, Copy)]
enum Sla {
    /// Gold: large preset, Strict execution.
    Gold,
    /// Silver: medium preset, Elastic(10%) — guaranteed deadline, donates
    /// excess cache.
    Silver,
    /// Bronze: medium preset, Opportunistic — best effort on spare capacity.
    Bronze,
}

impl Sla {
    fn preset(self) -> Preset {
        match self {
            Sla::Gold => Preset::Large,
            Sla::Silver | Sla::Bronze => Preset::Medium,
        }
    }

    fn mode(self) -> ExecutionMode {
        match self {
            Sla::Gold => ExecutionMode::Strict,
            Sla::Silver => ExecutionMode::Elastic(Percent::new(10.0)),
            Sla::Bronze => ExecutionMode::Opportunistic,
        }
    }
}

fn main() {
    // A small server: two 4-core CMP nodes behind one GAC.
    let mut gac = GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::LeastLoaded);

    let tw = Cycles::new(1_000_000);
    let submissions = [
        ("web-frontend", Sla::Gold),
        ("db-primary", Sla::Gold),
        ("analytics", Sla::Silver),
        ("ml-batch", Sla::Silver),
        ("log-compactor", Sla::Bronze),
        ("backup", Sla::Bronze),
        ("db-replica", Sla::Gold),
        ("report-gen", Sla::Bronze),
    ];

    println!("{:<14} {:<7} {:<22} placement", "client", "SLA", "request");
    println!("{}", "-".repeat(64));
    for (i, (name, sla)) in submissions.iter().enumerate() {
        let request = sla.preset().request();
        let deadline = match sla.mode() {
            ExecutionMode::Opportunistic => None,
            _ => Some(Cycles::new(5_000_000)),
        };
        let (node, decision) = gac.submit(JobId::new(i as u32), sla.mode(), request, tw, deadline);
        let placement = match (node, decision.is_accepted()) {
            (Some(n), true) => format!("{n} @ start {:?}", decision.start().map(|c| c.get())),
            _ => format!("REJECTED ({decision:?})"),
        };
        println!("{name:<14} {sla:<7?} {request:<22} {placement}");
    }

    println!();
    for n in 0..gac.nodes() {
        let lac = gac.lac(cmpqos::types::NodeId::new(n as u32));
        println!(
            "node{n}: {} reservations live, {} accepted / {} tests",
            lac.reservations().len(),
            lac.accepted(),
            lac.admission_tests()
        );
    }
    println!(
        "\nRUM targets make the placement decisions trivial comparisons of\n\
         capacity vectors — the paper's argument for convertible QoS targets."
    );
}
