//! Property-based fault-tolerance tests: whatever fault schedule is
//! thrown at the admission layer — dead ways, dead cores, lost probes,
//! whole nodes dying, in any order, at any time — no admitted reservation
//! is ever silently lost. Every job ends in exactly one terminal state:
//! completed (possibly after migrating to a survivor) or revoked with a
//! reason.

use cmpqos::experiments::chaos::{self, ChaosParams};
use cmpqos::faults::FaultPlan;
use cmpqos::types::{CoreId, Cycles, NodeId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn no_reservation_is_silently_lost_under_any_fault_schedule(
        faults in proptest::collection::vec(
            (0u64..60_000, 0u32..3, 0u32..4, 0u16..16),
            0..12,
        ),
        seed in 0u64..50,
    ) {
        let mut p = ChaosParams::standard();
        p.horizon = Cycles::new(60_000);
        p.seed = seed;
        let mut plan = FaultPlan::new();
        for (at, node, kind, idx) in faults {
            let at = Cycles::new(at);
            let node = NodeId::new(node);
            plan = match kind {
                0 => plan.way_fault(at, node, idx),
                1 => plan.core_fault(at, node, CoreId::new(u32::from(idx) % 4)),
                2 => plan.probe_loss(at, node, u32::from(idx) % 5 + 1),
                // Unrestricted: the schedule may kill *every* node,
                // including node 0 — jobs must then surface as revoked.
                _ => plan.node_fault(at, node),
            };
        }
        let o = chaos::run(&p, plan.build());
        prop_assert!(
            o.stranded().is_empty(),
            "stranded reservations: {:?}",
            o.stranded()
        );
        for f in &o.fates {
            if f.admitted.is_some() {
                prop_assert!(
                    f.completed.is_some() ^ f.revoked,
                    "job {} must end completed XOR revoked: {f:?}",
                    f.id
                );
            } else {
                // Never-admitted jobs acquire no terminal fault state.
                prop_assert!(f.completed.is_none() && !f.revoked, "{f:?}");
            }
        }
        // The event stream accounts for the same story: one Completed or
        // ReservationRevoked record per admitted job.
        let tl = o.timeline();
        for f in &o.fates {
            if f.admitted.is_some() {
                let jt = tl.job(f.id).expect("admitted jobs appear in the log");
                prop_assert_eq!(jt.completed.is_some(), f.completed.is_some());
                prop_assert_eq!(jt.revoked.is_some(), f.revoked);
            }
        }
    }
}
