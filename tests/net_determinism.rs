//! Determinism and idempotency contract of the message-layer control
//! plane (`cmpqos-net` + the GAC↔LAC protocol on top of it).
//!
//! Two properties, each over a randomized fault mix:
//!
//! 1. **Same seed, same bytes.** Re-running a cluster with an identical
//!    seed reproduces the network's delivered and dropped frame logs
//!    byte-for-byte, along with every controller-side table — at *any*
//!    combination of latency, jitter, reorder, drop, and duplication.
//! 2. **Loss-free noise is invisible.** Duplication, jitter, and
//!    reordering alone (no drops) must leave the GAC's decisions and job
//!    fates identical to a perfectly clean link: requests carry their
//!    submission stamp, the per-node channel re-sequences frames, and
//!    duplicate handling is idempotent, so mere delay cannot change an
//!    admission verdict.

use cmpqos::net::LinkConfig;
use cmpqos::obs::NullRecorder;
use cmpqos::qos::{
    AdmissionRequest, Cluster, ExecutionMode, Lac, LacConfig, NetGacConfig, ProbePolicy,
    ResourceRequest,
};
use cmpqos::types::{Cycles, JobId, Percent};
use proptest::prelude::*;

const NODES: usize = 4;
const JOBS: u32 = 10;
const HORIZON: u64 = 100_000;

/// Runs the fixed 10-job workload over `link` and returns the drained
/// cluster.
fn run_cluster(seed: u64, link: LinkConfig) -> Cluster<Lac> {
    let mut cluster = Cluster::new(
        NODES,
        LacConfig::default(),
        seed,
        link,
        NetGacConfig::default(),
        ProbePolicy::FirstFit,
    );
    let mut rec = NullRecorder;
    let tw = Cycles::new(2_000);
    for i in 0..JOBS {
        let at = Cycles::new(u64::from(i) * 1_500);
        cluster.run_until(at, &mut rec);
        let mode = if i % 2 == 0 {
            ExecutionMode::Strict
        } else {
            ExecutionMode::Elastic(Percent::new(50.0))
        };
        let req = AdmissionRequest::builder(JobId::new(i), ResourceRequest::paper_job(), tw)
            .mode(mode)
            .deadline(at + tw + tw + tw)
            .build();
        cluster.gac_mut().submit(req, at, &mut rec);
    }
    cluster.run_until(Cycles::new(HORIZON), &mut rec);
    cluster
}

/// Every observable surface of a finished run, rendered to one string
/// for byte comparison.
fn fingerprint(cluster: &Cluster<Lac>) -> String {
    let gac = cluster.gac();
    format!(
        "delivered={:?}\ndropped={:?}\nnet={:?}\ndecisions={:?}\nplacements={:?}\n\
         completed={:?}\nrevoked={:?}\ngac={:?}",
        cluster.net().delivered_log(),
        cluster.net().dropped_log(),
        cluster.net().stats(),
        gac.decisions(),
        gac.placements(),
        gac.completed(),
        gac.revoked(),
        gac.stats(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: at any fault mix, a seed pins the whole run — frame
    /// logs, drop decisions, duplication, delivery order, and every
    /// admission table come out byte-identical on a second run.
    #[test]
    fn same_seed_reproduces_the_run_byte_for_byte(
        seed in 1u64..10_000,
        base in 1u64..20,
        jitter in 0u64..20,
        reorder in 0u64..20,
        drop_pct in 0u32..25,
        dup_pct in 0u32..25,
    ) {
        let link = LinkConfig::default()
            .base_latency(Cycles::new(base))
            .jitter(jitter)
            .reorder(reorder)
            .drop(f64::from(drop_pct) / 100.0)
            .duplicate(f64::from(dup_pct) / 100.0);
        let first = fingerprint(&run_cluster(seed, link));
        let second = fingerprint(&run_cluster(seed, link));
        prop_assert_eq!(first, second, "same seed, same fault mix, different run");
    }

    /// Property 2: duplicates and reordering without loss change nothing
    /// the controller can see — decisions, placements, and completions
    /// match a zero-latency-variance, noise-free link exactly.
    #[test]
    fn lossless_noise_never_changes_an_admission_outcome(
        seed in 1u64..10_000,
        base in 1u64..20,
        jitter in 0u64..20,
        reorder in 0u64..20,
        dup_pct in 0u32..35,
    ) {
        let clean = LinkConfig::default().base_latency(Cycles::new(base));
        let noisy = clean
            .jitter(jitter)
            .reorder(reorder)
            .duplicate(f64::from(dup_pct) / 100.0);
        let a = run_cluster(seed, clean);
        let b = run_cluster(seed, noisy);
        prop_assert_eq!(a.gac().decisions(), b.gac().decisions());
        prop_assert_eq!(a.gac().placements(), b.gac().placements());
        prop_assert_eq!(a.gac().completed(), b.gac().completed());
        prop_assert_eq!(a.gac().revoked(), b.gac().revoked());
    }
}
