//! Differential tests: the production admission stack against the
//! testkit's brute-force reference oracles.
//!
//! Scale the explorer with `CMPQOS_TESTKIT_CASES` (see `tests/README.md`);
//! any divergence prints a shrunken counterexample and a one-line repro
//! command (`cmpqos explore --kind ... --seed ... --scenarios 1`).

use cmpqos::qos::{
    AdmissionRequest, Decision, ExecutionMode, Lac, LacConfig, ResourceRequest, RevocationAction,
};
use cmpqos::testkit::oracle::{OracleLac, OracleRevocation};
use cmpqos::testkit::scenario::{self, ScenarioKind};
use cmpqos::testkit::shadow::{self, GuardHarness, GuardHarnessConfig};
use cmpqos::types::{Cycles, JobId, Percent, Ways};

/// Seeded random scenarios of every kind, diffed against the oracles.
/// `run_lac`/`run_intake` additionally re-check the full reservation table
/// and the no-overbooking invariant after every operation.
#[test]
fn explorer_finds_no_divergences_in_any_scenario_kind() {
    for (kind, default, base_seed) in [
        (ScenarioKind::Lac, 12, 0xA11),
        (ScenarioKind::Intake, 12, 0xB22),
        (ScenarioKind::Scheduler, 3, 0xC33),
        (ScenarioKind::Gac, 6, 0xD44),
        (ScenarioKind::Net, 6, 0xE55),
        (ScenarioKind::Traffic, 12, 0xF66),
    ] {
        let n = cmpqos::testkit::cases(default);
        let report = scenario::explore(base_seed, n, &[kind]);
        assert_eq!(report.scenarios_run, n, "{kind:?} stopped early");
        if let Some(d) = report.divergence {
            panic!("{kind:?} diverged:\n{}", d.render());
        }
    }
}

fn supply(cores: u32, ways: u16) -> ResourceRequest {
    ResourceRequest::new(cores, Ways::new(ways)).with_bandwidth(100)
}

/// Admits a fixed mixed-mode job set into both controllers.
fn admitted_pair() -> (Lac, OracleLac) {
    let config = LacConfig::default();
    let mut lac = Lac::new(config);
    let mut oracle = OracleLac::new(config.capacity);
    let jobs: &[(u32, ExecutionMode, u32, u16, u64)] = &[
        (0, ExecutionMode::Strict, 2, 8, 400),
        (1, ExecutionMode::Elastic(Percent::new(25.0)), 1, 6, 300),
        (2, ExecutionMode::Strict, 1, 4, 500),
        (3, ExecutionMode::Elastic(Percent::new(50.0)), 2, 10, 250),
        (4, ExecutionMode::Opportunistic, 1, 2, 200),
        (5, ExecutionMode::Elastic(Percent::new(100.0)), 1, 12, 350),
        (6, ExecutionMode::Strict, 3, 14, 450),
    ];
    for &(id, mode, cores, ways, tw) in jobs {
        let request = supply(cores, ways);
        let deadline = Cycles::new(10_000 + u64::from(id) * 500);
        let req = AdmissionRequest::builder(JobId::new(id), request, Cycles::new(tw))
            .mode(mode)
            .deadline(deadline)
            .build();
        let got = lac.admit(&req);
        let want = oracle.admit(
            JobId::new(id),
            mode,
            request,
            Cycles::new(tw),
            Some(deadline),
        );
        assert_eq!(got, want, "admit(job {id}) disagreed before any revocation");
    }
    (lac, oracle)
}

/// `Lac::revoke_capacity` + `readmit` pinned against the oracle under
/// every order of a shrink/regrow capacity sequence: identical
/// keep/downgrade/evict verdicts, identical FCFS re-placement decisions,
/// identical reservation tables, and a never-overbooked timeline.
#[test]
fn revocation_and_readmission_match_the_oracle_in_any_order() {
    let levels = [(3u32, 12u16), (2, 8), (1, 4)];
    let orders: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    for order in orders {
        let (mut lac, mut oracle) = admitted_pair();
        let mut now = Cycles::ZERO;
        for (step, &slot) in order.iter().enumerate() {
            let (cores, ways) = levels[slot];
            now += Cycles::new(50);
            let got = lac.revoke_capacity(supply(cores, ways), now);
            let want = oracle.revoke_capacity(supply(cores, ways), now);
            assert_eq!(
                got.len(),
                want.len(),
                "order {order:?} step {step}: revocation counts differ"
            );
            let mut evicted = Vec::new();
            for (g, (wid, w)) in got.iter().zip(&want) {
                assert_eq!(
                    g.id, *wid,
                    "order {order:?} step {step}: FCFS order differs"
                );
                assert_eq!(
                    OracleRevocation::of(&g.action),
                    *w,
                    "order {order:?} step {step}: job {:?} verdict differs",
                    g.id
                );
                if let RevocationAction::Evicted { reservation, .. } = g.action {
                    evicted.push(reservation);
                }
            }
            for r in &evicted {
                let got: Decision = lac.readmit(r);
                let want = oracle.readmit(r);
                assert_eq!(
                    got, want,
                    "order {order:?} step {step}: readmit({:?}) disagreed",
                    r.id
                );
            }
            oracle
                .table_matches(&lac)
                .unwrap_or_else(|e| panic!("order {order:?} step {step}: {e}"));
            assert_eq!(
                oracle.first_overbooked_instant(),
                None,
                "order {order:?} step {step}: timeline overbooked"
            );
        }
    }
}

/// The intentionally-broken guard (built at `X + 1` percentage points,
/// asserted at `X`) is caught by the fine-grained off-by-one probe, while
/// the honest guard passes both the probe and the full replay harness.
#[test]
fn off_by_one_guard_is_caught_and_honest_guard_is_clean() {
    assert!(
        shadow::off_by_one_probe(5.0, 0.0).is_empty(),
        "honest guard flagged by the off-by-one probe"
    );
    let violations = shadow::off_by_one_probe(5.0, 1.0);
    assert!(
        !violations.is_empty(),
        "X off-by-one guard escaped the probe"
    );

    let honest = GuardHarness::new(GuardHarnessConfig::default()).run();
    assert!(honest.violations.is_empty(), "{:?}", honest.violations);
    assert!(
        honest.cancelled,
        "honest guard never cancelled under pressure"
    );
}
