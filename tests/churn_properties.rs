//! Elastic-membership properties: lease-backed reservations under node
//! churn (joins, graceful drains, restarts, kills).
//!
//! Three properties:
//!
//! 1. **No job is ever lost to churn.** Under any seeded schedule of
//!    joins, drains, restarts, and hard kills over a lossy network, every
//!    admitted job ends completed XOR revoked (migration is the
//!    mechanism, never a terminal state), every submission gets a
//!    decision, and every join and drain resolves.
//! 2. **A lossless link never expires a lease.** Heartbeats renew every
//!    placement's lease; when no frame is ever dropped, no renewal can go
//!    missing long enough to cross TTL + grace — churn included.
//! 3. **Drain-then-rejoin is invisible on a quiet cluster.** Draining an
//!    empty node and admitting a same-shaped replacement leaves the
//!    admission behavior byte-identical to never having churned: the
//!    decision stream for any subsequent job mix matches exactly.

use cmpqos::experiments::chaos::{run_churn, ChurnParams};
use cmpqos::faults::{Fault, FaultPlan};
use cmpqos::net::LinkConfig;
use cmpqos::obs::{NullRecorder, RingBufferRecorder};
use cmpqos::qos::{
    AdmissionRequest, Cluster, ExecutionMode, GlobalAdmissionController, Lac, LacConfig,
    NetGacConfig, ProbePolicy, ResourceRequest,
};
use cmpqos::types::{Cycles, JobId, NodeId, Percent};
use proptest::prelude::*;

/// A lossless-link churn run: heartbeat-leased placements on a small
/// cluster with a seeded join/drain/restart schedule, no drops, no kills.
/// Returns the `LeaseExpired` and `LeaseRenewed` counts.
fn lossless_churn(
    seed: u64,
    nodes: usize,
    churn_events: usize,
    base: u64,
    jitter: u64,
    dup_pct: u32,
) -> (u64, u64) {
    const HORIZON: u64 = 60_000;
    let link = LinkConfig::default()
        .base_latency(Cycles::new(base))
        .jitter(jitter)
        .reorder(10)
        .duplicate(f64::from(dup_pct) / 100.0);
    let mut config = NetGacConfig {
        heartbeat_every: Cycles::new(1_000),
        lease_ttl: Cycles::new(5_000),
        ..NetGacConfig::default()
    };
    config.gac.dead_timeout = Cycles::new(5_000);
    let mut cluster = Cluster::new(
        nodes,
        LacConfig::default(),
        seed,
        link,
        config,
        ProbePolicy::LeastLoaded,
    );
    let mut rec = RingBufferRecorder::new(4096);
    let schedule =
        FaultPlan::seeded_churn(seed, nodes as u32, Cycles::new(HORIZON), churn_events).build();
    let tw = Cycles::new(10_000);
    let mut steps: Vec<(Cycles, u8, u32)> = (0..20u32)
        .map(|i| (Cycles::new(u64::from(i) * 1_500), 1, i))
        .collect();
    for (i, injection) in schedule.injections().iter().enumerate() {
        steps.push((injection.at, 0, i as u32));
    }
    steps.sort_by_key(|&(at, rank, idx)| (at, rank, idx));
    for (at, rank, idx) in steps {
        cluster.run_until(at, &mut rec);
        if rank == 0 {
            let injection = schedule.injections()[idx as usize];
            match injection.fault {
                Fault::NodeJoin { .. } => {
                    let _ = cluster.join_node(Lac::new(LacConfig::default()), at);
                }
                _ => cluster.apply(injection, &mut rec),
            }
        } else {
            let req = AdmissionRequest::builder(JobId::new(idx), ResourceRequest::paper_job(), tw)
                .mode(if idx % 2 == 0 {
                    ExecutionMode::Strict
                } else {
                    ExecutionMode::Elastic(Percent::new(50.0))
                })
                .deadline(at + tw + tw)
                .build();
            cluster.gac_mut().submit(req, at, &mut rec);
        }
    }
    for _ in 0..8 {
        if cluster.gac().idle() && cluster.gac().placements().is_empty() {
            break;
        }
        let until = cluster.now() + Cycles::new(HORIZON / 4);
        cluster.run_until(until, &mut rec);
    }
    let c = rec.counters();
    (c.leases_expired, c.leases_renewed)
}

/// The admission decision stream of a quiet in-process GAC after optional
/// drain-then-rejoin churn, rendered for byte comparison. Node ids are
/// deliberately excluded: the drained slot's capacity comes back under the
/// joined node's id, and that renaming is the only thing allowed to
/// differ.
fn decision_stream(churned: Option<NodeId>, jobs: u32, stagger: u64, tw: u64) -> String {
    let mut gac = GlobalAdmissionController::new(4, LacConfig::default(), ProbePolicy::FirstFit);
    let mut rec = NullRecorder;
    if let Some(node) = churned {
        // Quiet cluster: nothing placed yet, so the drain migrates
        // nothing and the join restores the original capacity.
        let _ = gac.drain_node(node, Cycles::new(5), &mut rec);
        let _ = gac.join_node(Cycles::new(10), &mut rec);
    }
    let mut out = String::new();
    for i in 0..jobs {
        let now = Cycles::new(100 + u64::from(i) * stagger);
        let _ = gac.advance(now);
        let (_, decision) = gac.submit(
            JobId::new(i),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(tw),
            Some(now + Cycles::new(tw * 2)),
        );
        out.push_str(&format!("{i}:{decision:?}\n"));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 1: any churn schedule — joins, drains, restarts, kills —
    /// over a lossy network loses no admitted job and resolves every
    /// membership transition.
    #[test]
    fn churn_never_loses_an_admitted_job(
        seed in 1u64..5_000,
        nodes in 8usize..20,
        churn_events in 0usize..12,
        kills in 0u32..3,
    ) {
        let mut p = ChurnParams::standard();
        p.nodes = nodes;
        p.jobs = 60;
        p.horizon = Cycles::new(480_000);
        p.seed = seed;
        p.churn_events = churn_events;
        p.kills = kills;
        let o = run_churn(&p);
        prop_assert!(o.undecided.is_empty(), "undecided: {:?}", o.undecided);
        prop_assert!(
            o.unaccounted.is_empty(),
            "admitted but neither completed XOR revoked: {:?}",
            o.unaccounted
        );
        prop_assert_eq!(o.joining, 0, "a join handshake never completed");
        prop_assert_eq!(o.draining, 0, "a drain never finished");
        prop_assert_eq!(o.pending_reconciles, 0);
        prop_assert_eq!(o.leases_expired, 0, "healthy churn must expire no leases");
        prop_assert!(o.final_nodes >= nodes, "membership is append-only");
    }

    /// Property 2: with no frame loss, heartbeat renewals always land
    /// inside TTL + grace — zero `LeaseExpired`, churn or not.
    #[test]
    fn a_lossless_link_never_expires_a_lease(
        seed in 1u64..10_000,
        nodes in 3usize..8,
        churn_events in 0usize..8,
        base in 1u64..20,
        jitter in 0u64..16,
        dup_pct in 0u32..30,
    ) {
        let (expired, renewed) = lossless_churn(seed, nodes, churn_events, base, jitter, dup_pct);
        prop_assert_eq!(expired, 0, "a lease expired on a lossless link");
        prop_assert!(renewed > 0, "heartbeats renewed nothing");
    }

    /// Property 3: draining an idle node and joining a replacement is
    /// invisible to every subsequent admission decision.
    #[test]
    fn quiet_drain_then_rejoin_changes_no_decision(
        node in 1u32..4,
        jobs in 1u32..24,
        stagger in 50u64..500,
        tw in 200u64..2_000,
    ) {
        let churned = decision_stream(Some(NodeId::new(node)), jobs, stagger, tw);
        let pristine = decision_stream(None, jobs, stagger, tw);
        prop_assert_eq!(churned, pristine, "drain-then-rejoin changed a decision");
    }
}

/// The decision-stream comparison above is only meaningful if the mix
/// actually produces both verdicts; pin that with a plain test.
#[test]
fn the_quiet_churn_decision_stream_exercises_both_verdicts() {
    let s = decision_stream(None, 23, 60, 1_900);
    assert!(s.contains("Accepted"), "stream has accepts:\n{s}");
    assert!(s.contains("Rejected"), "stream has rejects:\n{s}");
}
