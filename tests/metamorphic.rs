//! Metamorphic relations over whole admission/scheduling runs: transformed
//! inputs whose outputs must relate to the original in a known way, with
//! no oracle needed.
//!
//! Scale the seed counts with `CMPQOS_TESTKIT_CASES` (see
//! `tests/README.md`).

use cmpqos::testkit::{cases, metamorphic};

/// Inserting an Opportunistic admission anywhere in a Strict/Elastic
/// stream never flips any other decision and leaves the reservation table
/// untouched: Opportunistic jobs reserve nothing.
#[test]
fn opportunistic_insertion_never_flips_a_decision() {
    for seed in 0..cases(16) as u64 {
        metamorphic::opportunistic_insertion_is_invisible(0x0BB5 + seed)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Multiplying every duration, deadline, and clock advance by the same
/// factor preserves the accept/reject set, scales accepted start slots by
/// exactly that factor, and preserves rejection reasons.
#[test]
fn uniform_time_scaling_preserves_the_accept_set() {
    for seed in 0..cases(16) as u64 {
        metamorphic::uniform_scaling_preserves_decisions(0x5CA1E + seed)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// A full scheduler run with stealing enabled at `X = 0` produces a
/// byte-identical event stream and identical job reports to the same run
/// with stealing disabled: zero slack means the guard must never donate.
#[test]
fn stealing_at_zero_slack_is_byte_identical_to_disabled() {
    for seed in 0..cases(2) as u64 {
        metamorphic::zero_slack_stealing_matches_disabled(0x2E20 + seed)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// A full adaptive run whose every SLO is unbounded produces a
/// byte-identical event stream and identical job reports to the same run
/// under the never-intervening baseline controller: a PID with nothing
/// to correct must be invisible.
#[test]
fn adaptive_control_with_loose_slos_is_byte_identical_to_static() {
    for seed in 0..cases(2) as u64 {
        metamorphic::loose_slo_adaptive_matches_static(0xADA7 + seed)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
