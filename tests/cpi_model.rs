//! Validates that the simulator's measured CPI obeys Luo's additive model
//! (`CPI = CPI_L1∞ + h2·t2 + hm·tm`) — the analytical foundation of the
//! resource-stealing guard (Section 4.2 of the paper).

use cmpqos::cpu::CpiModel;
use cmpqos::types::{Instructions, Ways};
use cmpqos::workloads::calibrate::solo_run;

const K: u64 = 16;

#[test]
fn measured_cpi_matches_the_additive_model_uncontended() {
    // Solo runs have no bandwidth contention, so measured CPI should match
    // the closed-form prediction from the measured h2/hm to within a few
    // percent (queueing-free t_m = 300 + transfer slack).
    for bench in ["gobmk", "hmmer", "bzip2", "namd", "libquantum"] {
        let s = solo_run(bench, Ways::new(7), Instructions::new(300_000), K, 9);
        let profile = cmpqos::trace::spec::benchmark(bench).unwrap();
        let model = CpiModel::with_paper_latencies(profile.base_cpi());
        let (predicted, measured) = model.validate(&s.perf);
        let err = (predicted - measured).abs() / measured;
        assert!(
            err < 0.05,
            "{bench}: predicted {predicted:.3} vs measured {measured:.3} (err {err:.3})"
        );
    }
}

#[test]
fn miss_increase_implies_smaller_cpi_increase() {
    // The inequality justifying the stealing guard: shrinking bzip2's
    // allocation raises its miss rate by some fraction; its CPI must rise
    // by a *smaller* fraction.
    let full = solo_run("bzip2", Ways::new(7), Instructions::new(300_000), K, 9);
    let small = solo_run("bzip2", Ways::new(5), Instructions::new(300_000), K, 9);
    let miss_increase = small.perf.mpi() / full.perf.mpi() - 1.0;
    let cpi_increase = small.cpi() / full.cpi() - 1.0;
    assert!(miss_increase > 0.0, "5 ways must miss more than 7");
    assert!(
        cpi_increase < miss_increase,
        "CPI increase {cpi_increase:.3} must stay below miss increase {miss_increase:.3}"
    );
    // And in the paper's observed band: roughly one-third to one-half.
    let ratio = cpi_increase / miss_increase;
    assert!(
        ratio > 0.15 && ratio < 0.9,
        "CPI/miss increase ratio {ratio:.2}"
    );
}

#[test]
fn stall_cycle_breakdown_is_additive() {
    let s = solo_run("mcf", Ways::new(7), Instructions::new(100_000), K, 2);
    let p = s.perf;
    assert_eq!(
        p.base_cycles() + p.l2_stall_cycles() + p.mem_stall_cycles(),
        p.cycles(),
        "cycle components must sum exactly"
    );
    assert!(p.l2_accesses() >= p.l2_misses());
    assert!(p.l1_accesses() >= p.l2_accesses());
}
