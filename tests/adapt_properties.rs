//! Property tests for the `cmpqos-adapt` control law: the controller's
//! published clamps (level, integral, slack, interval, core speed) hold
//! for arbitrary gains and error streams, and same-seed trajectories are
//! byte-identical at any engine pool width.

use cmpqos::adapt::{pid_step, Pid, PidConfig, PidState, Policy};
use cmpqos::engine::Engine;
use cmpqos::qos::{EpochSample, EpochView, ExecutionMode, KnobUpdate, SloSpec};
use cmpqos::types::{CoreId, Cycles, Instructions, JobId, Percent};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

#[allow(clippy::too_many_arguments)]
fn config(
    kp: i64,
    ki: i64,
    kd: i64,
    bound: i64,
    deadband: i64,
    max_level: u32,
    scale: i64,
    throttle_step: u8,
    min_speed: u8,
) -> PidConfig {
    PidConfig {
        kp_milli: kp,
        ki_milli: ki,
        kd_milli: kd,
        integral_bound: bound,
        deadband_milli: deadband,
        max_level,
        output_scale: scale,
        throttle_step,
        min_speed_pct: min_speed,
        ..PidConfig::default()
    }
}

proptest! {
    /// However wild the gains and the error stream, every step's returned
    /// level stays in `0..=max_level` and the accumulated integral never
    /// escapes `[-integral_bound, integral_bound]`.
    #[test]
    fn level_and_integral_never_escape_their_clamps(
        kp in 0i64..10_000,
        ki in 0i64..2_000,
        kd in 0i64..2_000,
        bound in 1i64..1_000_000,
        deadband in 0i64..1_000,
        max_level in 1u32..10,
        scale in 1i64..1_000_000,
        errors in proptest::collection::vec(-1_000_000_000i64..1_000_000_000, 1..200),
    ) {
        let c = config(kp, ki, kd, bound, deadband, max_level, scale, 15, 40);
        let mut st = PidState::default();
        for &e in &errors {
            let level = pid_step(&c, &mut st, e);
            prop_assert!(level <= c.max_level, "level {level} > max {}", c.max_level);
            prop_assert_eq!(level, st.level);
            prop_assert!(
                st.integral.abs() <= c.integral_bound,
                "integral {} escaped bound {}",
                st.integral,
                c.integral_bound
            );
        }
    }

    /// The policy's knob outputs honour its published monotone mapping:
    /// slack never exceeds the donor's declared baseline, the interval
    /// stays in `[base, base x (max_level + 1)]`, and the floating-core
    /// speed stays in `[min_speed_pct, 100]`. Two controllers fed the same
    /// sample stream emit byte-identical update sequences.
    #[test]
    fn knob_outputs_stay_within_their_published_clamps(
        kp in 0i64..10_000,
        ki in 0i64..2_000,
        deadband in 0i64..1_000,
        max_level in 1u32..10,
        scale in 1i64..1_000_000,
        throttle_step in 0u8..50,
        min_speed in 1u8..100,
        base_interval in 1_000u64..100_000,
        slack_pct in 0u32..80,
        epochs in proptest::collection::vec((0u64..20_000, 500u64..20_000), 1..40),
    ) {
        let c = PidConfig {
            base_interval: Instructions::new(base_interval),
            ..config(kp, ki, 0, 10_000, deadband, max_level, scale, throttle_step, min_speed)
        };
        let mut pid = Pid::new(c);
        let mut twin = Pid::new(c);
        let baseline_milli = u64::from(slack_pct) * 1000;
        let floating = [CoreId::new(2), CoreId::new(3)];
        for (n, &(cpi_milli, target_milli)) in epochs.iter().enumerate() {
            let samples = [EpochSample {
                job: JobId::new(0),
                core: Some(CoreId::new(0)),
                mode: ExecutionMode::Elastic(Percent::new(f64::from(slack_pct))),
                slo: Some(SloSpec {
                    max_cpi_milli: target_milli,
                    max_mpki_milli: None,
                }),
                instructions: Instructions::new(1000),
                cycles: Cycles::new(cpi_milli), // 1000 instr: cycles = milli-CPI
                l2_misses: 0,
            }];
            let view = EpochView {
                now: Cycles::new((n as u64 + 1) * 10_000),
                samples: &samples,
                floating_cores: &floating,
            };
            let updates = pid.decide(&view);
            prop_assert_eq!(&updates, &twin.decide(&view), "same stream, same knobs");
            for u in &updates {
                match *u {
                    KnobUpdate::StealSlack { milli_pct, .. } => prop_assert!(
                        milli_pct <= baseline_milli,
                        "slack {milli_pct} exceeds declared {baseline_milli}"
                    ),
                    KnobUpdate::StealInterval { interval, .. } => prop_assert!(
                        (base_interval..=base_interval * u64::from(max_level + 1))
                            .contains(&interval.get()),
                        "interval {} outside [{base_interval}, {}]",
                        interval.get(),
                        base_interval * u64::from(max_level + 1)
                    ),
                    KnobUpdate::CoreSpeed { percent, .. } => prop_assert!(
                        (min_speed..=100).contains(&percent),
                        "speed {percent} outside [{min_speed}, 100]"
                    ),
                }
            }
        }
    }

    /// The control law is a pure integer function: running a batch of
    /// seed-derived trajectories through a 1-wide and a 4-wide engine
    /// pool produces byte-identical level sequences.
    #[test]
    fn trajectories_are_byte_identical_at_any_engine_width(seed in any::<u64>()) {
        let streams: Vec<(u64, PidConfig)> = (0..8u64)
            .map(|n| (seed.wrapping_add(n), PidConfig::default()))
            .collect();
        let trajectory = |_: usize, (s, c): (u64, PidConfig)| -> Vec<u32> {
            let mut rng = StdRng::seed_from_u64(s);
            let mut st = PidState::default();
            (0..256)
                .map(|_| pid_step(&c, &mut st, rng.gen_range(-5_000..5_000)))
                .collect()
        };
        let serial = Engine::new(1).run(streams.clone(), trajectory);
        let wide = Engine::new(4).run(streams, trajectory);
        prop_assert_eq!(serial, wide);
    }
}
