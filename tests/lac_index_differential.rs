//! Differential property test pinning the occupancy-indexed admission
//! path against the brute-force oracle: for *any* op stream — earliest and
//! latest-feasible admissions, batches, advances, releases, cancels,
//! capacity revocations with FCFS readmission — the indexed
//! [`JournaledLac`] must make byte-identical decisions to [`OracleLac`]
//! and end every op with an identical reservation table and a
//! never-overbooked timeline.

use cmpqos::obs::NullRecorder;
use cmpqos::qos::{
    AdmissionRequest, ExecutionMode, Lac, LacConfig, ResourceRequest, RevocationAction,
};
use cmpqos::recovery::JournaledLac;
use cmpqos::testkit::oracle::{OracleLac, OracleRevocation};
use cmpqos::types::{Cycles, JobId, Percent, Ways};
use proptest::prelude::*;

const COMPACT_EVERY: u64 = 8;

/// One fuzzed op: `(kind, a, b)` small integers decoded by [`step`] (the
/// vendored proptest has no `prop_map`, so the raw tuple is the value).
type FuzzOp = (u8, u64, u64);

fn mode_of(b: u64) -> ExecutionMode {
    match b % 4 {
        0 => ExecutionMode::Strict,
        1 => ExecutionMode::Elastic(Percent::new(25.0)),
        2 => ExecutionMode::Elastic(Percent::new(100.0)),
        _ => ExecutionMode::Opportunistic,
    }
}

fn request_of(a: u64, b: u64) -> ResourceRequest {
    ResourceRequest::new((a % 4) as u32, Ways::new((b % 10) as u16)).with_bandwidth((a % 51) as u16)
}

/// Applies one decoded op to both controllers and diffs everything
/// observable. Returns an error string on the first divergence.
fn step(
    i: usize,
    op: FuzzOp,
    now: &mut u64,
    lac: &mut JournaledLac,
    oracle: &mut OracleLac,
) -> Result<(), String> {
    let (kind, a, b) = op;
    let id = JobId::new(i as u32);
    match kind % 8 {
        0 | 1 => {
            let mut req = AdmissionRequest::builder(id, request_of(a, b), Cycles::new(1 + a % 400))
                .mode(mode_of(b));
            if b % 3 != 0 {
                req = req.deadline(Cycles::new(*now + a % 1_500));
            }
            let req = req.build();
            let got = lac.admit(&req);
            let want = oracle.admit_request(&req);
            if got != want {
                return Err(format!(
                    "op {i}: admit {req:?}: lac {got:?} vs oracle {want:?}"
                ));
            }
        }
        2 => {
            let req = AdmissionRequest::builder(id, request_of(a, b), Cycles::new(1 + a % 400))
                .deadline(Cycles::new(*now + b * 37))
                .latest_feasible()
                .build();
            let got = lac.admit(&req);
            let want = oracle.admit_request(&req);
            if got != want {
                return Err(format!(
                    "op {i}: latest-feasible admit {req:?}: lac {got:?} vs oracle {want:?}"
                ));
            }
        }
        3 => {
            // A small batch of earliest-placement requests in one call.
            let reqs: Vec<AdmissionRequest> = (0..1 + b % 4)
                .map(|k| {
                    AdmissionRequest::builder(
                        JobId::new((1_000 + 10 * i + k as usize) as u32),
                        request_of(a + k, b + k),
                        Cycles::new(1 + (a + 31 * k) % 400),
                    )
                    .mode(mode_of(b + k))
                    .deadline(Cycles::new(*now + 200 + (a + 97 * k) % 1_500))
                    .build()
                })
                .collect();
            let got = lac.admit_batch(&reqs, &mut NullRecorder);
            for (req, g) in reqs.iter().zip(got) {
                let want = oracle.admit_request(req);
                if g != want {
                    return Err(format!(
                        "op {i}: batched admit {req:?}: lac {g:?} vs oracle {want:?}"
                    ));
                }
            }
        }
        4 => {
            *now += a % 1_200;
            lac.advance(Cycles::new(*now));
            oracle.advance(Cycles::new(*now));
        }
        5 => {
            let victim = JobId::new((a % (i as u64 + 1)) as u32);
            lac.release(victim, Cycles::new(*now));
            oracle.release(victim, Cycles::new(*now));
        }
        6 => {
            let victim = JobId::new((a % (i as u64 + 1)) as u32);
            lac.cancel(victim);
            oracle.cancel(victim);
        }
        _ => {
            let supply = ResourceRequest::new(1 + (a % 4) as u32, Ways::new(4 + (b % 13) as u16))
                .with_bandwidth(100);
            let got = lac.revoke_capacity(supply, Cycles::new(*now));
            let want = oracle.revoke_capacity(supply, Cycles::new(*now));
            if got.len() != want.len() {
                return Err(format!(
                    "op {i}: revoke returned {} outcomes vs oracle {}",
                    got.len(),
                    want.len()
                ));
            }
            let mut evicted = Vec::new();
            for (g, (wid, w)) in got.iter().zip(&want) {
                if g.id != *wid || OracleRevocation::of(&g.action) != *w {
                    return Err(format!(
                        "op {i}: revoke verdict {:?}/{:?} vs oracle {wid:?}/{w:?}",
                        g.id, g.action
                    ));
                }
                if let RevocationAction::Evicted { reservation, .. } = g.action {
                    evicted.push(reservation);
                }
            }
            for r in &evicted {
                let got = lac.readmit(r);
                let want = oracle.readmit(r);
                if got != want {
                    return Err(format!(
                        "op {i}: readmit({:?}): lac {got:?} vs oracle {want:?}",
                        r.id
                    ));
                }
            }
        }
    }
    oracle
        .table_matches(lac.lac())
        .map_err(|e| format!("op {i}: {e}"))?;
    if let Some(t) = oracle.first_overbooked_instant() {
        return Err(format!("op {i}: timeline overbooked at {t}"));
    }
    Ok(())
}

fn op_strategy() -> impl Strategy<Value = Vec<FuzzOp>> {
    proptest::collection::vec((0u8..8, 0u64..10_000, 0u64..64), 1..50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The indexed hot path never disagrees with brute force, op by op.
    #[test]
    fn indexed_lac_is_decision_identical_to_the_oracle(ops in op_strategy()) {
        let config = LacConfig::default();
        let mut lac = JournaledLac::new(Lac::new(config), COMPACT_EVERY);
        let mut oracle = OracleLac::new(config.capacity);
        let mut now = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            if let Err(e) = step(i, op, &mut now, &mut lac, &mut oracle) {
                prop_assert!(false, "{}", e);
            }
        }
    }
}
