//! Cross-layer determinism contract of the `cmpqos-engine` worker pool:
//! a batch of seeded, self-contained simulation cells must produce
//! bit-identical results — and byte-identical merged event logs — at
//! every pool width. The properties randomize the cell set (benchmarks,
//! configurations, seeds) and the pool width, then compare the serial
//! (`jobs = 1`) run against the parallel one.

use cmpqos::engine::{CellFailure, Engine};
use cmpqos::types::{Instructions, Percent};
use cmpqos::workloads::runner::{run_batch, RunConfig};
use cmpqos::workloads::{Configuration, WorkloadSpec};
use proptest::prelude::*;
use std::path::PathBuf;

const BENCHES: [&str; 3] = ["gobmk", "hmmer", "bzip2"];

/// A randomized but fully-seeded cell set: cell `i` picks its benchmark
/// and configuration by index, its seed from the generated list.
fn cell_set(seeds: &[u64], events: Option<&PathBuf>) -> Vec<RunConfig> {
    let configs = Configuration::all();
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| RunConfig {
            workload: WorkloadSpec::single(BENCHES[i % BENCHES.len()], 4),
            configuration: configs[i % configs.len()],
            scale: 16,
            work: Instructions::new(30_000),
            seed,
            stealing_enabled: true,
            steal_interval: None,
            events: events.cloned(),
        })
        .collect()
}

fn tmp_jsonl(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cmpqos-par-det-{tag}-{}.jsonl", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every cell's full outcome — accepted jobs, per-job reports, LAC
    /// accounting, makespan — serializes to the same JSON whether the
    /// batch ran serially or on a multi-worker pool.
    #[test]
    fn parallel_batches_reproduce_serial_results_bit_for_bit(
        seeds in proptest::collection::vec(1u64..500, 1..5),
        jobs in 2usize..5,
    ) {
        let serial = run_batch(cell_set(&seeds, None), 1);
        let parallel = run_batch(cell_set(&seeds, None), jobs);
        prop_assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            let a = serde_json::to_string(a).expect("outcome serializes");
            let b = serde_json::to_string(b).expect("outcome serializes");
            prop_assert_eq!(a, b, "cell {} diverged at jobs={}", i, jobs);
        }
    }

    /// The merged event log — every cell recording into one JSONL file —
    /// is byte-identical at every pool width: shards are replayed in
    /// cell order after the pool drains.
    #[test]
    fn merged_event_timelines_are_byte_identical(
        seeds in proptest::collection::vec(1u64..500, 2..4),
        jobs in 2usize..5,
    ) {
        let serial_path = tmp_jsonl("serial");
        let parallel_path = tmp_jsonl("parallel");
        let _ = std::fs::remove_file(&serial_path);
        let _ = std::fs::remove_file(&parallel_path);

        let _ = run_batch(cell_set(&seeds, Some(&serial_path)), 1);
        let _ = run_batch(cell_set(&seeds, Some(&parallel_path)), jobs);

        let serial = std::fs::read_to_string(&serial_path).expect("serial log written");
        let parallel = std::fs::read_to_string(&parallel_path).expect("parallel log written");
        let _ = std::fs::remove_file(&serial_path);
        let _ = std::fs::remove_file(&parallel_path);

        prop_assert!(!serial.is_empty(), "event log must not be empty");
        let runs = cmpqos::obs::Timeline::per_run(&serial).expect("parseable JSONL");
        prop_assert_eq!(runs.len(), seeds.len(), "one timeline per cell");
        prop_assert_eq!(serial, parallel, "event logs diverged at jobs={}", jobs);
    }

    /// The raw pool agrees with serial iteration for arbitrary pure
    /// functions of the cell index, at any width, including widths much
    /// larger than the cell count.
    #[test]
    fn raw_engine_matches_serial_for_pure_cells(
        inputs in proptest::collection::vec(0u64..1_000_000, 0..40),
        jobs in 1usize..9,
    ) {
        let f = |i: usize, x: u64| x.wrapping_mul(6_364_136_223_846_793_005).rotate_left((i % 63) as u32);
        let serial: Vec<u64> = inputs.iter().enumerate().map(|(i, &x)| f(i, x)).collect();
        let pooled = Engine::new(jobs).run(inputs, f);
        prop_assert_eq!(serial, pooled);
    }
}

/// A panicking cell is reported as that cell's failure — with its index
/// and message — while every other cell still completes.
#[test]
fn a_poisoned_cell_fails_alone_without_tearing_down_the_batch() {
    let results = Engine::new(4).try_run((0..16u32).collect(), |_, x| {
        assert!(x != 11, "cell 11 is poisoned");
        x * 2
    });
    assert_eq!(results.len(), 16);
    for (i, r) in results.iter().enumerate() {
        if i == 11 {
            let err = r.as_ref().expect_err("cell 11 must fail");
            assert_eq!(err.index(), 11);
            assert!(
                matches!(err, CellFailure::Panicked { message, .. } if message.contains("poisoned")),
                "got: {err}"
            );
        } else {
            assert_eq!(*r.as_ref().expect("healthy cells complete"), i as u32 * 2);
        }
    }
}

/// The paper's Hybrid-2 slack parameter survives the batch path: the
/// engine does not perturb floating-point configuration state.
#[test]
fn hybrid2_slack_round_trips_through_the_batch() {
    let cells: Vec<RunConfig> = [2.0, 20.0]
        .into_iter()
        .map(|slack| RunConfig {
            workload: WorkloadSpec::single("gobmk", 3),
            configuration: Configuration::Hybrid2 {
                slack: Percent::new(slack),
            },
            scale: 16,
            work: Instructions::new(20_000),
            seed: 1,
            stealing_enabled: true,
            steal_interval: None,
            events: None,
        })
        .collect();
    let outcomes = run_batch(cells, 2);
    assert_eq!(
        outcomes[0].configuration,
        Configuration::Hybrid2 {
            slack: Percent::new(2.0)
        }
    );
    assert_eq!(
        outcomes[1].configuration,
        Configuration::Hybrid2 {
            slack: Percent::new(20.0)
        }
    );
}
