//! Properties of the traffic-scenario DSL (`cmpqos-scenario`):
//!
//! * the streaming [`PercentileReporter`] matches a sort-based exact
//!   oracle bit-for-bit, including ties, empty, and single-element
//!   multisets;
//! * the same seed produces byte-identical traffic reports (and
//!   rendered tables) at any engine `--jobs` width;
//! * metamorphic relation 5: scaling all stored times by an integer `k`
//!   preserves the accept set exactly and scales every latency
//!   percentile by exactly `k`;
//! * the canonical TOML emitter and parser are mutual fixed points over
//!   seeded specs.

use cmpqos::experiments::{traffic, ExperimentParams};
use cmpqos::scenario::{emit_toml, parse_toml, quantile_sorted, PercentileReporter, ScenarioSpec};
use cmpqos::testkit::metamorphic::traffic_time_scaling_preserves_decisions;
use proptest::prelude::*;

fn reporter_of(samples: &[u64]) -> PercentileReporter {
    let mut r = PercentileReporter::default();
    for &s in samples {
        r.record(s);
    }
    r
}

proptest! {
    /// The streaming counts-walk quantile equals the exact sort-based
    /// oracle for every multiset and every per-mille rank.
    #[test]
    fn percentile_reporter_matches_the_sort_oracle(
        samples in proptest::collection::vec(0u64..5_000, 1..400),
        q in 1u32..1001,
    ) {
        let r = reporter_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(r.quantile_permille(q), quantile_sorted(&sorted, q));
    }

    /// The four named percentiles agree with the oracle too (the summary
    /// is just four fixed ranks).
    #[test]
    fn latency_summary_matches_the_sort_oracle(
        samples in proptest::collection::vec(0u64..100_000, 1..300),
    ) {
        let r = reporter_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let s = r.summary();
        prop_assert_eq!(s.samples, samples.len() as u64);
        prop_assert_eq!(s.p50, quantile_sorted(&sorted, 500));
        prop_assert_eq!(s.p95, quantile_sorted(&sorted, 950));
        prop_assert_eq!(s.p99, quantile_sorted(&sorted, 990));
        prop_assert_eq!(s.p999, quantile_sorted(&sorted, 999));
    }

    /// Canonical-form round trip: `parse(emit(spec)) == spec`, and the
    /// emission is a fixed point (`emit(parse(emit(spec))) == emit(spec)`).
    #[test]
    fn toml_round_trip_is_exact_over_seeded_specs(seed in 0u64..500) {
        let spec = ScenarioSpec::seeded(seed);
        let text = emit_toml(&spec);
        let parsed = parse_toml(&text).expect("canonical emission parses");
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(emit_toml(&parsed), text);
    }
}

/// Ties, duplicates at the rank boundary, empty, and single-element
/// multisets — the places nearest-rank implementations drift.
#[test]
fn percentile_edge_cases_match_the_oracle_exactly() {
    let empty = PercentileReporter::default();
    assert_eq!(empty.quantile_permille(500), None);
    assert_eq!(quantile_sorted(&[], 500), None);
    assert!(empty.summary().p50.is_none());

    let single = reporter_of(&[7]);
    for q in [1, 500, 990, 999, 1000] {
        assert_eq!(single.quantile_permille(q), Some(7));
        assert_eq!(quantile_sorted(&[7], q), Some(7));
    }

    // All-ties: every rank lands on the same value.
    let ties = reporter_of(&[42; 97]);
    let sorted = [42u64; 97];
    for q in [1, 250, 500, 950, 990, 999, 1000] {
        assert_eq!(ties.quantile_permille(q), Some(42));
        assert_eq!(quantile_sorted(&sorted, q), Some(42));
    }

    // A tie block straddling the p95 rank boundary.
    let mut mixed: Vec<u64> = vec![1; 94];
    mixed.extend([5; 3]);
    mixed.extend([9; 3]);
    let r = reporter_of(&mixed);
    let mut sorted = mixed.clone();
    sorted.sort_unstable();
    for q in [940, 950, 960, 970, 980, 990, 1000] {
        assert_eq!(
            r.quantile_permille(q),
            quantile_sorted(&sorted, q),
            "q={q} over the tie block"
        );
    }
}

/// The same seed yields byte-identical traffic reports — and rendered
/// tables — whether the experiment grid runs serially or on a wide pool.
#[test]
fn same_seed_traffic_is_byte_identical_at_any_jobs_width() {
    let mut serial = ExperimentParams::quick();
    serial.jobs = 1;
    let mut wide = serial.clone();
    wide.jobs = 4;
    let a = traffic::run(&serial);
    let b = traffic::run(&wide);
    assert_eq!(a, b, "reports diverged across --jobs widths");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            traffic::render_report(x),
            traffic::render_report(y),
            "rendered tables diverged across --jobs widths"
        );
    }
}

/// Metamorphic relation 5 across seeds: time-scaling a materialized
/// timeline by k preserves every per-tier count and scales every
/// percentile exactly.
#[test]
fn time_scaling_preserves_the_accept_set_and_scales_percentiles() {
    for seed in 0..cmpqos::testkit::cases(16) as u64 {
        traffic_time_scaling_preserves_decisions(seed).unwrap();
    }
}
