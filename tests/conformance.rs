//! The executable conformance suite as a library: cheap `--only` subsets
//! at quick parameters, plus the broken-guard, stuck-knob, frozen-lease
//! and starve-tier injections that the suite must catch. The full
//! 17-check run at standard parameters is exercised by CI's
//! `conform-smoke` job (`cmpqos conform --seed 1`).

use cmpqos::experiments::ExperimentParams;
use cmpqos::testkit::conform::{self, Inject, CHECKS};

fn only(ids: &[&str]) -> Vec<String> {
    ids.iter().map(ToString::to_string).collect()
}

/// Scale-independent checks pass at quick parameters with nothing
/// injected.
#[test]
fn quick_subset_passes_clean() {
    let params = ExperimentParams::quick();
    let report = conform::run(&params, &only(&["fig3", "guard"]), Inject::None);
    assert!(report.passed(), "{}", report.render());
    assert!(report.render().contains("0 failed"));
}

/// The X off-by-one injection must fail the guard check — the acceptance
/// gate for the whole suite: a broken guard cannot conform.
#[test]
fn broken_guard_injection_fails_the_suite() {
    let params = ExperimentParams::quick();
    let report = conform::run(&params, &only(&["guard"]), Inject::BrokenGuard);
    assert!(
        !report.passed(),
        "broken guard conformed:\n{}",
        report.render()
    );
}

/// The stuck-knob injection must fail the `slo` check: a PID whose
/// actuators are frozen at the static operating point cannot claim the
/// closed-loop dominance shape.
#[test]
fn stuck_knob_injection_fails_the_slo_check() {
    let params = ExperimentParams::quick();
    let report = conform::run(&params, &only(&["slo"]), Inject::StuckKnob);
    assert!(
        !report.passed(),
        "stuck knobs conformed:\n{}",
        report.render()
    );
}

/// The frozen-lease injection must fail the `churn` check: placements
/// whose leases silently stop renewing cannot claim the zero-expiry
/// survival contract.
#[test]
fn frozen_lease_injection_fails_the_churn_check() {
    let params = ExperimentParams::quick();
    let report = conform::run(&params, &only(&["churn"]), Inject::FrozenLease);
    assert!(
        !report.passed(),
        "frozen leases conformed:\n{}",
        report.render()
    );
}

/// The starve-tier injection must fail the `traffic` check: a scheduler
/// that silently stops servicing the highest-priority queue cannot
/// claim the tiered-latency ordering.
#[test]
fn starve_tier_injection_fails_the_traffic_check() {
    let params = ExperimentParams::quick();
    let report = conform::run(&params, &only(&["traffic"]), Inject::StarveTier);
    assert!(
        !report.passed(),
        "starved premium tier conformed:\n{}",
        report.render()
    );
}

/// A typo'd `--only` id is a failed verdict, not a silent no-op: the
/// suite never reports success for checks it did not run.
#[test]
fn unknown_check_id_fails_rather_than_skips() {
    let params = ExperimentParams::quick();
    let report = conform::run(&params, &only(&["fig99"]), Inject::None);
    assert!(!report.passed());
}

/// The published check list stays in sync with the verdicts the full run
/// produces (one verdict per `EXPERIMENTS.md` row).
#[test]
fn check_list_is_complete_and_duplicate_free() {
    assert_eq!(CHECKS.len(), 17);
    let mut sorted: Vec<_> = CHECKS.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), CHECKS.len(), "duplicate check id");
}
