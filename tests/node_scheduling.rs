//! Integration tests of the OS-layer scheduling mechanisms: timesharing
//! fairness, context-switch effects, preemption and partition retargeting.

use cmpqos::system::{CmpNode, Placement, SystemConfig, TaskSpec};
use cmpqos::trace::spec;
use cmpqos::types::{CoreId, Cycles, Instructions, JobId, Ways};

const K: u64 = 16;

fn node() -> CmpNode {
    CmpNode::new(SystemConfig::paper_scaled(K))
}

fn task(id: u32, bench: &str, budget: u64, placement: Placement) -> TaskSpec {
    TaskSpec {
        id: JobId::new(id),
        source: Box::new(
            spec::scaled(bench, K)
                .unwrap()
                .instantiate(u64::from(id), (u64::from(id) + 1) << 40),
        ),
        budget: Instructions::new(budget),
        placement,
        reserved: matches!(placement, Placement::Pinned(_)),
    }
}

#[test]
fn round_robin_timesharing_is_roughly_fair() {
    let mut n = node();
    n.set_l2_targets(&[Ways::new(4); 4]).unwrap();
    // Four floating gobmk tasks on four cores: each should get its own
    // core (work conserving), so progress is near-identical.
    for i in 0..4 {
        n.spawn(task(i, "gobmk", 10_000_000, Placement::Floating))
            .unwrap();
    }
    n.run_until(Cycles::new(2_000_000));
    let progress: Vec<u64> = (0..4)
        .map(|i| n.perf(JobId::new(i)).unwrap().instructions().get())
        .collect();
    let max = *progress.iter().max().unwrap() as f64;
    let min = *progress.iter().min().unwrap() as f64;
    assert!(min > 0.0, "everyone ran: {progress:?}");
    assert!(min / max > 0.7, "fair split: {progress:?}");
}

#[test]
fn eight_floating_tasks_share_four_cores() {
    let mut n = node();
    n.set_l2_targets(&[Ways::new(4); 4]).unwrap();
    for i in 0..8 {
        n.spawn(task(i, "gobmk", 10_000_000, Placement::Floating))
            .unwrap();
    }
    n.run_until(Cycles::new(4_000_000));
    let progress: Vec<u64> = (0..8)
        .map(|i| n.perf(JobId::new(i)).unwrap().instructions().get())
        .collect();
    assert!(
        progress.iter().all(|&p| p > 0),
        "round robin reaches every task: {progress:?}"
    );
    let max = *progress.iter().max().unwrap() as f64;
    let min = *progress.iter().min().unwrap() as f64;
    assert!(min / max > 0.4, "no starvation: {progress:?}");
}

#[test]
fn context_switches_cost_time() {
    // One core, two floating tasks: their combined throughput is lower
    // than one task of double length (switch cost + L1 cold misses).
    let mut solo = CmpNode::new(SystemConfig {
        num_cores: 1,
        ..SystemConfig::paper_scaled(K)
    });
    solo.set_l2_targets(&[Ways::new(16)]).unwrap();
    solo.spawn(task(0, "gobmk", 400_000, Placement::Floating))
        .unwrap();
    let solo_end = solo.run_to_completion(Cycles::new(u64::MAX / 4));

    let mut shared = CmpNode::new(SystemConfig {
        num_cores: 1,
        timeslice: Cycles::new(20_000), // aggressive switching
        ..SystemConfig::paper_scaled(K)
    });
    shared.set_l2_targets(&[Ways::new(16)]).unwrap();
    shared
        .spawn(task(0, "gobmk", 200_000, Placement::Floating))
        .unwrap();
    shared
        .spawn(task(1, "gobmk", 200_000, Placement::Floating))
        .unwrap();
    let shared_end = shared.run_to_completion(Cycles::new(u64::MAX / 4));

    assert!(
        shared_end > solo_end,
        "same total work with switching must take longer: {shared_end} vs {solo_end}"
    );
}

#[test]
fn repartitioning_mid_run_changes_performance() {
    // Start bzip2 with 2 ways, then grant it 14: the post-grant interval
    // must run at a lower CPI.
    let mut n = node();
    n.set_l2_targets(&[Ways::new(2), Ways::ZERO, Ways::ZERO, Ways::ZERO])
        .unwrap();
    n.spawn(task(
        0,
        "bzip2",
        2_000_000,
        Placement::Pinned(CoreId::new(0)),
    ))
    .unwrap();
    n.run_until(Cycles::new(1_500_000));
    let before = *n.perf(JobId::new(0)).unwrap();
    n.set_l2_targets(&[Ways::new(14), Ways::ZERO, Ways::ZERO, Ways::ZERO])
        .unwrap();
    n.run_until(Cycles::new(6_000_000));
    let after = n.perf(JobId::new(0)).unwrap().delta_since(&before);
    let cpi_before = before.cpi();
    let cpi_after = after.cpi();
    assert!(
        cpi_after < cpi_before * 0.92,
        "more ways must speed bzip2 up: {cpi_before:.2} -> {cpi_after:.2}"
    );
}

#[test]
fn bus_utilization_rises_with_streaming_load() {
    let mut idle = node();
    idle.set_l2_targets(&[Ways::new(4); 4]).unwrap();
    idle.spawn(task(0, "namd", 100_000, Placement::Pinned(CoreId::new(0))))
        .unwrap();
    idle.run_until(Cycles::new(400_000));
    let low = idle.bus_utilization();

    let mut busy = node();
    busy.set_l2_targets(&[Ways::new(4); 4]).unwrap();
    for i in 0..4 {
        busy.spawn(task(
            i,
            "milc",
            1_000_000,
            Placement::Pinned(CoreId::new(i)),
        ))
        .unwrap();
    }
    busy.run_until(Cycles::new(400_000));
    let high = busy.bus_utilization();
    assert!(
        high > low,
        "four milc streams must load the bus more: {high} vs {low}"
    );
    assert!(high > 0.05, "streaming load is visible: {high}");
}

#[test]
fn equal_part_style_timesharing_misses_more_than_dedicated() {
    // Ten floating gobmk jobs vs two pinned ones: per-job wall-clock is
    // much higher when overcommitted, the EqualPart effect behind
    // Figure 6's candles.
    let mut over = CmpNode::new(SystemConfig {
        timeslice: Cycles::new(20_000),
        context_switch_cost: Cycles::new(500),
        ..SystemConfig::paper_scaled(K)
    });
    over.set_l2_targets(&[Ways::new(4); 4]).unwrap();
    for i in 0..10 {
        over.spawn(task(i, "gobmk", 100_000, Placement::Floating))
            .unwrap();
    }
    over.run_to_completion(Cycles::new(u64::MAX / 4));
    let over_wall: Vec<u64> = (0..10)
        .map(|i| {
            let c = over.completion(JobId::new(i)).unwrap();
            (c.finished_at - c.started_at).get()
        })
        .collect();

    let mut dedicated = node();
    dedicated
        .set_l2_targets(&[Ways::new(7), Ways::new(7), Ways::ZERO, Ways::ZERO])
        .unwrap();
    dedicated
        .spawn(task(0, "gobmk", 100_000, Placement::Pinned(CoreId::new(0))))
        .unwrap();
    dedicated.run_to_completion(Cycles::new(u64::MAX / 4));
    let ded = dedicated.completion(JobId::new(0)).unwrap();
    let ded_wall = (ded.finished_at - ded.started_at).get();

    let mean_over = over_wall.iter().sum::<u64>() / 10;
    assert!(
        mean_over > ded_wall * 2,
        "overcommit stretches wall-clock: {mean_over} vs {ded_wall}"
    );
}
