//! End-to-end integration tests spanning the whole stack: trace generation
//! → caches → node → QoS framework → workload runner.

use cmpqos::qos::{ExecutionMode, QosJob, QosScheduler, ResourceRequest, SchedulerConfig};
use cmpqos::system::SystemConfig;
use cmpqos::trace::spec;
use cmpqos::types::{Cycles, Instructions, JobId, Percent};
use cmpqos::workloads::metrics::{normalized_throughput, paper_hit_rate};
use cmpqos::workloads::runner::{run, RunConfig};
use cmpqos::workloads::{Configuration, WorkloadSpec};

const K: u64 = 16;

fn quick(workload: WorkloadSpec, configuration: Configuration) -> RunConfig {
    RunConfig {
        workload,
        configuration,
        scale: K,
        work: Instructions::new(80_000),
        seed: 3,
        stealing_enabled: true,
        steal_interval: None,
    }
}

#[test]
fn qos_framework_guarantees_deadlines_where_equal_partitioning_fails() {
    // The paper's core claim (Figure 5a): with admission control and RUM
    // targets, every accepted reserved job meets its deadline; without
    // them (EqualPart), jobs miss deadlines.
    let qos = run(&quick(WorkloadSpec::single("bzip2", 10), Configuration::AllStrict));
    assert_eq!(paper_hit_rate(&qos), 1.0, "QoS hit rate");

    let equal = run(&quick(WorkloadSpec::single("bzip2", 10), Configuration::EqualPart));
    assert!(
        paper_hit_rate(&equal) < 1.0,
        "EqualPart must miss deadlines, got {}",
        paper_hit_rate(&equal)
    );
}

#[test]
fn strict_qos_costs_throughput_and_modes_recover_it() {
    // Figure 5b's shape for one workload.
    let strict = run(&quick(WorkloadSpec::single("gobmk", 8), Configuration::AllStrict));
    let hybrid1 = run(&quick(WorkloadSpec::single("gobmk", 8), Configuration::Hybrid1));
    let equal = run(&quick(WorkloadSpec::single("gobmk", 8), Configuration::EqualPart));

    let h1_gain = normalized_throughput(&strict, &hybrid1);
    let eq_gain = normalized_throughput(&strict, &equal);
    assert!(eq_gain > 1.0, "EqualPart beats All-Strict: {eq_gain}");
    assert!(h1_gain > 1.0, "Hybrid-1 beats All-Strict: {h1_gain}");
}

#[test]
fn stealing_never_violates_the_elastic_bound_end_to_end() {
    // An Elastic(X) donor must end with a cumulative miss increase that
    // respects X (modulo one interval of slop before cancellation).
    for (bench, slack) in [("gobmk", 5.0), ("bzip2", 5.0), ("hmmer", 10.0)] {
        let mut cfg = SchedulerConfig::default();
        cfg.stealing.interval = Instructions::new(4_000);
        let mut sched = QosScheduler::new(SystemConfig::paper_scaled(K), cfg);
        let work = Instructions::new(150_000);
        let tw = Cycles::new(work.get() * 30);
        sched.submit(
            QosJob {
                id: JobId::new(0),
                mode: ExecutionMode::Elastic(Percent::new(slack)),
                request: ResourceRequest::paper_job(),
                work,
                max_wall_clock: tw,
                deadline: Some(tw * 2),
            },
            Box::new(spec::scaled(bench, K).unwrap().instantiate(5, 1 << 40)),
        );
        sched.submit(
            QosJob {
                id: JobId::new(1),
                mode: ExecutionMode::Opportunistic,
                request: ResourceRequest::paper_job(),
                work,
                max_wall_clock: tw,
                deadline: None,
            },
            Box::new(spec::scaled("mcf", K).unwrap().instantiate(6, 2 << 40)),
        );
        sched.run_to_idle(tw * 20);
        let r = sched.report(JobId::new(0)).unwrap();
        assert!(r.met_deadline(), "{bench}: deadline");
        let steal = r.steal.expect("elastic donor has a report");
        assert!(
            steal.miss_increase <= slack / 100.0 + 0.06,
            "{bench}: miss increase {} exceeds X={slack}%",
            steal.miss_increase
        );
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let a = run(&quick(WorkloadSpec::mix1(), Configuration::Hybrid1));
    let b = run(&quick(WorkloadSpec::mix1(), Configuration::Hybrid1));
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.submissions, b.submissions);
    for (x, y) in a.accepted.iter().zip(&b.accepted) {
        assert_eq!(x.report.finished, y.report.finished);
        assert_eq!(x.report.perf.instructions(), y.report.perf.instructions());
    }
}

#[test]
fn partition_targets_never_exceed_associativity_during_a_busy_run() {
    // Drive a chaotic mixed run and check the node's target vector at many
    // points in time.
    let mut sched = QosScheduler::new(SystemConfig::paper_scaled(K), SchedulerConfig::default());
    let work = Instructions::new(60_000);
    let tw = Cycles::new(work.get() * 30);
    let benches = ["gobmk", "bzip2", "hmmer", "mcf", "namd", "milc"];
    for (i, bench) in benches.iter().enumerate() {
        let mode = match i % 3 {
            0 => ExecutionMode::Strict,
            1 => ExecutionMode::Elastic(Percent::new(5.0)),
            _ => ExecutionMode::Opportunistic,
        };
        sched.submit(
            QosJob {
                id: JobId::new(i as u32),
                mode,
                request: ResourceRequest::paper_job(),
                work,
                max_wall_clock: tw,
                deadline: match mode {
                    ExecutionMode::Opportunistic => None,
                    _ => Some(tw * 4),
                },
            },
            Box::new(
                spec::scaled(bench, K)
                    .unwrap()
                    .instantiate(i as u64, (i as u64 + 1) << 40),
            ),
        );
    }
    let assoc = 16u16;
    let mut t = Cycles::ZERO;
    while !sched.is_idle() && t < tw * 40 {
        t += Cycles::new(100_000);
        sched.run_until(t);
        let total: u16 = sched.node().l2_targets().iter().map(|w| w.get()).sum();
        assert!(total <= assoc, "targets sum {total} at {t}");
    }
    assert!(sched.is_idle(), "all jobs completed");
}

#[test]
fn opportunistic_jobs_benefit_from_elastic_donors() {
    // Mix-1 logic at micro scale: bzip2 (opportunistic) should finish
    // faster when gobmk donors are Elastic rather than Strict.
    let run_pair = |donor_mode: ExecutionMode| {
        let mut cfg = SchedulerConfig::default();
        cfg.stealing.interval = Instructions::new(4_000);
        let mut sched = QosScheduler::new(SystemConfig::paper_scaled(K), cfg);
        let work = Instructions::new(200_000);
        let tw = Cycles::new(work.get() * 30);
        for i in 0..2u32 {
            sched.submit(
                QosJob {
                    id: JobId::new(i),
                    mode: donor_mode,
                    request: ResourceRequest::paper_job(),
                    work,
                    max_wall_clock: tw,
                    deadline: Some(tw * 3),
                },
                Box::new(
                    spec::scaled("gobmk", K)
                        .unwrap()
                        .instantiate(u64::from(i), (u64::from(i) + 1) << 40),
                ),
            );
        }
        sched.submit(
            QosJob {
                id: JobId::new(9),
                mode: ExecutionMode::Opportunistic,
                request: ResourceRequest::paper_job(),
                work,
                max_wall_clock: tw,
                deadline: None,
            },
            Box::new(spec::scaled("bzip2", K).unwrap().instantiate(9, 10 << 40)),
        );
        sched.run_to_idle(tw * 20);
        sched
            .report(JobId::new(9))
            .unwrap()
            .wall_clock()
            .expect("recipient finished")
    };
    let with_strict_donors = run_pair(ExecutionMode::Strict);
    let with_elastic_donors = run_pair(ExecutionMode::Elastic(Percent::new(20.0)));
    assert!(
        with_elastic_donors <= with_strict_donors,
        "elastic donors speed up the recipient: {with_elastic_donors} vs {with_strict_donors}"
    );
}

#[test]
fn rejected_jobs_leave_no_trace_in_the_node() {
    let mut sched = QosScheduler::new(SystemConfig::paper_scaled(K), SchedulerConfig::default());
    let work = Instructions::new(50_000);
    let tw = Cycles::new(work.get() * 30);
    // Fill both 7-way slots.
    for i in 0..2u32 {
        let d = sched.submit(
            QosJob {
                id: JobId::new(i),
                mode: ExecutionMode::Strict,
                request: ResourceRequest::paper_job(),
                work,
                max_wall_clock: tw,
                deadline: Some(tw * 10),
            },
            Box::new(spec::scaled("namd", K).unwrap().instantiate(u64::from(i), 1 << 40)),
        );
        assert!(d.is_accepted());
    }
    // Impossible deadline: rejected.
    let d = sched.submit(
        QosJob {
            id: JobId::new(7),
            mode: ExecutionMode::Strict,
            request: ResourceRequest::paper_job(),
            work,
            max_wall_clock: tw,
            deadline: Some(tw),
        },
        Box::new(spec::scaled("namd", K).unwrap().instantiate(7, 8 << 40)),
    );
    assert!(!d.is_accepted());
    sched.run_to_idle(tw * 20);
    let r = sched.report(JobId::new(7)).unwrap();
    assert!(r.started.is_none(), "rejected job never ran");
    assert_eq!(r.perf.instructions().get(), 0);
}
