//! End-to-end integration tests spanning the whole stack: trace generation
//! → caches → node → QoS framework → workload runner.

use cmpqos::obs::{Event, EventKind, Mode, Recorder, RingBufferRecorder};
use cmpqos::qos::{ExecutionMode, QosJob, QosScheduler, ResourceRequest, SchedulerConfig};
use cmpqos::system::SystemConfig;
use cmpqos::trace::spec;
use cmpqos::types::{Cycles, Instructions, JobId, Percent};
use cmpqos::workloads::metrics::{normalized_throughput, paper_hit_rate};
use cmpqos::workloads::runner::{run, RunConfig};
use cmpqos::workloads::{Configuration, WorkloadSpec};

const K: u64 = 16;

fn quick(workload: WorkloadSpec, configuration: Configuration) -> RunConfig {
    RunConfig {
        workload,
        configuration,
        scale: K,
        work: Instructions::new(80_000),
        seed: 3,
        stealing_enabled: true,
        steal_interval: None,
        events: None,
    }
}

#[test]
fn qos_framework_guarantees_deadlines_where_equal_partitioning_fails() {
    // The paper's core claim (Figure 5a): with admission control and RUM
    // targets, every accepted reserved job meets its deadline; without
    // them (EqualPart), jobs miss deadlines.
    let qos = run(&quick(
        WorkloadSpec::single("bzip2", 10),
        Configuration::AllStrict,
    ));
    assert_eq!(paper_hit_rate(&qos), 1.0, "QoS hit rate");

    let equal = run(&quick(
        WorkloadSpec::single("bzip2", 10),
        Configuration::EqualPart,
    ));
    assert!(
        paper_hit_rate(&equal) < 1.0,
        "EqualPart must miss deadlines, got {}",
        paper_hit_rate(&equal)
    );
}

#[test]
fn strict_qos_costs_throughput_and_modes_recover_it() {
    // Figure 5b's shape for one workload.
    let strict = run(&quick(
        WorkloadSpec::single("gobmk", 8),
        Configuration::AllStrict,
    ));
    let hybrid1 = run(&quick(
        WorkloadSpec::single("gobmk", 8),
        Configuration::Hybrid1,
    ));
    let equal = run(&quick(
        WorkloadSpec::single("gobmk", 8),
        Configuration::EqualPart,
    ));

    let h1_gain = normalized_throughput(&strict, &hybrid1);
    let eq_gain = normalized_throughput(&strict, &equal);
    assert!(eq_gain > 1.0, "EqualPart beats All-Strict: {eq_gain}");
    assert!(h1_gain > 1.0, "Hybrid-1 beats All-Strict: {h1_gain}");
}

#[test]
fn stealing_never_violates_the_elastic_bound_end_to_end() {
    // An Elastic(X) donor must end with a cumulative miss increase that
    // respects X (modulo one interval of slop before cancellation).
    for (bench, slack) in [("gobmk", 5.0), ("bzip2", 5.0), ("hmmer", 10.0)] {
        let mut cfg = SchedulerConfig::default();
        cfg.stealing.interval = Instructions::new(4_000);
        let mut sched = QosScheduler::new(SystemConfig::paper_scaled(K), cfg);
        let work = Instructions::new(150_000);
        let tw = Cycles::new(work.get() * 30);
        let donor = sched.submit(
            QosJob::elastic(
                JobId::new(0),
                ResourceRequest::paper_job(),
                Percent::new(slack),
            )
            .work(work)
            .max_wall_clock(tw)
            .deadline(tw * 2)
            .build(),
            Box::new(spec::scaled(bench, K).unwrap().instantiate(5, 1 << 40)),
        );
        assert!(donor.is_accepted(), "{bench}: donor admitted");
        let recipient = sched.submit(
            QosJob::opportunistic(JobId::new(1), ResourceRequest::paper_job())
                .work(work)
                .max_wall_clock(tw)
                .build(),
            Box::new(spec::scaled("mcf", K).unwrap().instantiate(6, 2 << 40)),
        );
        assert!(recipient.is_accepted(), "{bench}: recipient admitted");
        sched.run_to_idle(tw * 20);
        let r = sched.report(JobId::new(0)).unwrap();
        assert!(r.met_deadline(), "{bench}: deadline");
        let steal = r.steal.expect("elastic donor has a report");
        assert!(
            steal.miss_increase <= slack / 100.0 + 0.06,
            "{bench}: miss increase {} exceeds X={slack}%",
            steal.miss_increase
        );
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let a = run(&quick(WorkloadSpec::mix1(), Configuration::Hybrid1));
    let b = run(&quick(WorkloadSpec::mix1(), Configuration::Hybrid1));
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.submissions, b.submissions);
    for (x, y) in a.accepted.iter().zip(&b.accepted) {
        assert_eq!(x.report.finished, y.report.finished);
        assert_eq!(x.report.perf.instructions(), y.report.perf.instructions());
    }
}

#[test]
fn partition_targets_never_exceed_associativity_during_a_busy_run() {
    // Drive a chaotic mixed run and check the node's target vector at many
    // points in time.
    let mut sched = QosScheduler::new(SystemConfig::paper_scaled(K), SchedulerConfig::default());
    let work = Instructions::new(60_000);
    let tw = Cycles::new(work.get() * 30);
    let benches = ["gobmk", "bzip2", "hmmer", "mcf", "namd", "milc"];
    for (i, bench) in benches.iter().enumerate() {
        let mode = match i % 3 {
            0 => ExecutionMode::Strict,
            1 => ExecutionMode::Elastic(Percent::new(5.0)),
            _ => ExecutionMode::Opportunistic,
        };
        let builder = QosJob::with_mode(JobId::new(i as u32), mode, ResourceRequest::paper_job())
            .work(work)
            .max_wall_clock(tw);
        let job = match mode {
            ExecutionMode::Opportunistic => builder.build(),
            _ => builder.deadline(tw * 4).build(),
        };
        let d = sched.submit(
            job,
            Box::new(
                spec::scaled(bench, K)
                    .unwrap()
                    .instantiate(i as u64, (i as u64 + 1) << 40),
            ),
        );
        assert!(d.is_accepted(), "{bench} admitted");
    }
    let assoc = 16u16;
    let mut t = Cycles::ZERO;
    while !sched.is_idle() && t < tw * 40 {
        t += Cycles::new(100_000);
        sched.run_until(t);
        let total: u16 = sched.node().l2_targets().iter().map(|w| w.get()).sum();
        assert!(total <= assoc, "targets sum {total} at {t}");
    }
    assert!(sched.is_idle(), "all jobs completed");
}

#[test]
fn opportunistic_jobs_benefit_from_elastic_donors() {
    // Mix-1 logic at micro scale: bzip2 (opportunistic) should finish
    // faster when gobmk donors are Elastic rather than Strict.
    let run_pair = |donor_mode: ExecutionMode| {
        let mut cfg = SchedulerConfig::default();
        cfg.stealing.interval = Instructions::new(4_000);
        let mut sched = QosScheduler::new(SystemConfig::paper_scaled(K), cfg);
        let work = Instructions::new(200_000);
        let tw = Cycles::new(work.get() * 30);
        for i in 0..2u32 {
            let d = sched.submit(
                QosJob::with_mode(JobId::new(i), donor_mode, ResourceRequest::paper_job())
                    .work(work)
                    .max_wall_clock(tw)
                    .deadline(tw * 3)
                    .build(),
                Box::new(
                    spec::scaled("gobmk", K)
                        .unwrap()
                        .instantiate(u64::from(i), (u64::from(i) + 1) << 40),
                ),
            );
            assert!(d.is_accepted(), "donor {i} admitted");
        }
        let d = sched.submit(
            QosJob::opportunistic(JobId::new(9), ResourceRequest::paper_job())
                .work(work)
                .max_wall_clock(tw)
                .build(),
            Box::new(spec::scaled("bzip2", K).unwrap().instantiate(9, 10 << 40)),
        );
        assert!(d.is_accepted(), "recipient admitted");
        sched.run_to_idle(tw * 20);
        sched
            .report(JobId::new(9))
            .unwrap()
            .wall_clock()
            .expect("recipient finished")
    };
    let with_strict_donors = run_pair(ExecutionMode::Strict);
    let with_elastic_donors = run_pair(ExecutionMode::Elastic(Percent::new(20.0)));
    assert!(
        with_elastic_donors <= with_strict_donors,
        "elastic donors speed up the recipient: {with_elastic_donors} vs {with_strict_donors}"
    );
}

#[test]
fn rejected_jobs_leave_no_trace_in_the_node() {
    let mut sched = QosScheduler::new(SystemConfig::paper_scaled(K), SchedulerConfig::default());
    let work = Instructions::new(50_000);
    let tw = Cycles::new(work.get() * 30);
    // Fill both 7-way slots.
    for i in 0..2u32 {
        let d = sched.submit(
            QosJob::strict(JobId::new(i), ResourceRequest::paper_job())
                .work(work)
                .max_wall_clock(tw)
                .deadline(tw * 10)
                .build(),
            Box::new(
                spec::scaled("namd", K)
                    .unwrap()
                    .instantiate(u64::from(i), 1 << 40),
            ),
        );
        assert!(d.is_accepted());
    }
    // Impossible deadline: rejected.
    let d = sched.submit(
        QosJob::strict(JobId::new(7), ResourceRequest::paper_job())
            .work(work)
            .max_wall_clock(tw)
            .deadline(tw)
            .build(),
        Box::new(spec::scaled("namd", K).unwrap().instantiate(7, 8 << 40)),
    );
    assert!(!d.is_accepted());
    sched.run_to_idle(tw * 20);
    let r = sched.report(JobId::new(7)).unwrap();
    assert!(r.started.is_none(), "rejected job never ran");
    assert_eq!(r.perf.instructions().get(), 0);
}

#[test]
fn auto_downgraded_job_emits_the_full_event_sequence() {
    // One Strict job with deadline slack on an otherwise idle node: it is
    // auto-downgraded, starts opportunistically (floating), switches back
    // to its Strict reservation at td - tw, and completes in time. The
    // recorder must observe exactly that lifecycle, in order.
    let cfg = SchedulerConfig::builder()
        .auto_downgrade(true)
        .auto_downgrade_min_slack(0.05)
        .build();
    let mut sched = QosScheduler::with_recorder(
        SystemConfig::paper_scaled(K),
        cfg,
        Box::new(RingBufferRecorder::new(4096)),
    );

    // Work sized so it *cannot* finish during the short opportunistic
    // window before the fallback slot: ~800k instructions need well over
    // 1.6M cycles even with the whole L2, while the fallback reservation
    // sits only 400k cycles after submission (td - tw).
    let work = Instructions::new(800_000);
    let tw = Cycles::new(3_200_000);
    let td = tw + Cycles::new(400_000);
    let d = sched.submit(
        QosJob::strict(JobId::new(0), ResourceRequest::paper_job())
            .work(work)
            .max_wall_clock(tw)
            .deadline(td)
            .build(),
        Box::new(spec::scaled("gobmk", K).unwrap().instantiate(1, 1 << 40)),
    );
    assert!(d.is_accepted(), "decision: {d:?}");
    sched.run_to_idle(td * 4);

    let recorder = sched.take_recorder();
    let ring = recorder
        .as_any()
        .and_then(|a| a.downcast_ref::<RingBufferRecorder>())
        .expect("ring buffer recorder");
    assert_eq!(ring.dropped(), 0, "capacity held every record");

    // Partition retargets interleave with the lifecycle; everything else
    // must be exactly the downgraded-job band of Figure 7.
    let lifecycle: Vec<_> = ring
        .records()
        .filter(|r| r.event.kind() != EventKind::PartitionChanged)
        .collect();
    let kinds: Vec<EventKind> = lifecycle.iter().map(|r| r.event.kind()).collect();
    assert_eq!(
        kinds,
        vec![
            EventKind::Submitted,
            EventKind::Admitted,
            EventKind::Downgraded,
            EventKind::Started,
            EventKind::SwitchedBack,
            EventKind::Completed,
        ],
        "records: {lifecycle:?}"
    );
    assert!(
        lifecycle.windows(2).all(|w| w[0].at <= w[1].at),
        "timestamps are monotone"
    );
    match &lifecycle[3].event {
        Event::Started { core, mode, .. } => {
            assert_eq!(*core, None, "floating placement has no fixed core");
            assert_eq!(*mode, Mode::Opportunistic);
        }
        other => panic!("expected Started, got {other:?}"),
    }
    assert!(matches!(
        lifecycle[4].event,
        Event::SwitchedBack {
            to: Mode::Strict,
            ..
        }
    ));
    assert!(matches!(
        lifecycle[5].event,
        Event::Completed {
            met_deadline: true,
            ..
        }
    ));
    assert!(ring.counters().partition_changes > 0, "retargets recorded");

    // The timeline view reconstructs the same band boundaries.
    let tl = ring.timeline();
    let job = tl.job(JobId::new(0)).expect("job tracked in timeline");
    assert_eq!(job.submitted, Some((lifecycle[0].at, Mode::Strict)));
    assert_eq!(job.completed, Some((lifecycle[5].at, true)));
    // Figure-7 band structure: an Opportunistic band, then a Strict band.
    let band_modes: Vec<Mode> = job.bands.iter().map(|b| b.mode).collect();
    assert_eq!(band_modes, vec![Mode::Opportunistic, Mode::Strict]);
}
