//! Admission-control stress and edge-case integration tests.

use cmpqos::qos::gac::{GlobalAdmissionController, ProbePolicy};
use cmpqos::qos::{
    AdmissionRequest, Decision, ExecutionMode, Lac, LacConfig, RejectReason, ResourceRequest,
};
use cmpqos::types::{Cycles, JobId, NodeId, Percent, Ways};

fn lac() -> Lac {
    Lac::new(LacConfig::default())
}

fn req(
    id: u32,
    mode: ExecutionMode,
    request: ResourceRequest,
    tw: u64,
    deadline: Option<u64>,
) -> AdmissionRequest {
    let mut b = AdmissionRequest::builder(JobId::new(id), request, Cycles::new(tw)).mode(mode);
    if let Some(td) = deadline {
        b = b.deadline(Cycles::new(td));
    }
    b.build()
}

#[test]
fn thousand_job_fcfs_stream_is_consistent() {
    // A long stream of paper jobs with mixed deadlines; verify FCFS
    // monotonicity (accepted starts never decrease for same-shape jobs)
    // and bounded usage throughout.
    let mut l = lac();
    let mut last_start = Cycles::ZERO;
    let mut accepted = 0u32;
    for i in 0..1000u32 {
        let deadline = 100 * u64::from(i % 50) + 200;
        let d = l.admit(&req(
            i,
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            100,
            Some(deadline),
        ));
        if let Some(start) = d.start() {
            assert!(
                start >= last_start,
                "FCFS starts must not regress: {start} < {last_start}"
            );
            last_start = start;
            accepted += 1;
        }
    }
    assert!(accepted > 10, "stream accepts plenty: {accepted}");
    // No overbooking anywhere on the timeline.
    let cap = l.capacity();
    for r in l.reservations() {
        assert!(l.usage_at(r.start).fits_within(&cap));
    }
}

#[test]
fn release_never_extends_a_reservation() {
    let mut l = lac();
    assert!(l
        .admit(&req(
            0,
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            100,
            None,
        ))
        .is_accepted());
    let end_before = l.reservations()[0].end;
    // "Releasing" at a time after the end must not extend it.
    l.release(JobId::new(0), Cycles::new(500));
    assert_eq!(l.reservations()[0].end, end_before);
    // Releasing before the start removes it entirely.
    l.release(JobId::new(0), Cycles::ZERO);
    assert!(l.reservations().is_empty());
}

#[test]
fn elastic_and_strict_compete_fairly_for_capacity() {
    let mut l = lac();
    // Elastic(100%) reserves twice as long.
    let d1 = l.admit(&req(
        0,
        ExecutionMode::Elastic(Percent::new(100.0)),
        ResourceRequest::paper_job(),
        100,
        Some(1_000),
    ));
    assert_eq!(d1.start(), Some(Cycles::ZERO));
    assert_eq!(l.reservations()[0].end, Cycles::new(200));
    // Two more 7-way jobs: the second must queue behind reservation end.
    let d2 = l.admit(&req(
        1,
        ExecutionMode::Strict,
        ResourceRequest::paper_job(),
        100,
        None,
    ));
    assert_eq!(d2.start(), Some(Cycles::ZERO));
    let d3 = l.admit(&req(
        2,
        ExecutionMode::Strict,
        ResourceRequest::paper_job(),
        100,
        None,
    ));
    assert_eq!(
        d3.start(),
        Some(Cycles::new(100)),
        "waits for the strict job"
    );
}

#[test]
fn opportunistic_admission_considers_only_current_instant() {
    let mut l = lac();
    // Reserve all four cores *in the future*.
    for i in 0..4u32 {
        let d = l.admit(&req(
            i,
            ExecutionMode::Strict,
            ResourceRequest::new(1, Ways::new(4)),
            100,
            None,
        ));
        assert!(d.is_accepted());
    }
    // All cores reserved from t=0: opportunistic rejected.
    let d = l.admit(&req(
        10,
        ExecutionMode::Opportunistic,
        ResourceRequest::new(1, Ways::ZERO),
        10,
        None,
    ));
    assert_eq!(d, Decision::Rejected(RejectReason::NoSpareResources));
    // After the reservations expire, opportunistic is welcome again.
    l.advance(Cycles::new(150));
    let d = l.admit(&req(
        11,
        ExecutionMode::Opportunistic,
        ResourceRequest::new(1, Ways::ZERO),
        10,
        None,
    ));
    assert!(d.is_accepted());
}

#[test]
fn bandwidth_dimension_gates_admission() {
    let mut l = lac();
    // Three jobs each wanting 40% of the channel: only two fit at once.
    let request = ResourceRequest::new(1, Ways::new(2)).with_bandwidth(40);
    for i in 0..2u32 {
        let d = l.admit(&req(i, ExecutionMode::Strict, request, 100, Some(105)));
        assert!(d.is_accepted(), "job {i}");
    }
    let d = l.admit(&req(2, ExecutionMode::Strict, request, 100, Some(105)));
    assert!(
        !d.is_accepted(),
        "120% of bandwidth cannot be reserved: {d:?}"
    );
}

#[test]
fn batch_admission_matches_the_sequential_stream() {
    // The same 64-job mixed stream, one-at-a-time vs admit_batch: decisions
    // and final tables must be identical.
    let mut one = lac();
    let mut batch = lac();
    let reqs: Vec<AdmissionRequest> = (0..64u32)
        .map(|i| {
            let mode = match i % 3 {
                0 => ExecutionMode::Strict,
                1 => ExecutionMode::Elastic(Percent::new(50.0)),
                _ => ExecutionMode::Opportunistic,
            };
            req(
                i,
                mode,
                ResourceRequest::paper_job(),
                100,
                if i % 4 == 0 {
                    None
                } else {
                    Some(100 * u64::from(i % 7) + 150)
                },
            )
        })
        .collect();
    let sequential: Vec<Decision> = reqs.iter().map(|r| one.admit(r)).collect();
    let batched = batch.admit_batch(&reqs, &mut cmpqos::obs::NullRecorder);
    assert_eq!(sequential, batched);
    assert_eq!(one.reservations(), batch.reservations());
    assert_eq!(one.accepted(), batch.accepted());
    assert_eq!(one.rejected(), batch.rejected());
}

#[test]
fn gac_places_across_nodes_until_the_server_is_full() {
    let mut gac = GlobalAdmissionController::new(3, LacConfig::default(), ProbePolicy::FirstFit);
    let mut placements = Vec::new();
    for i in 0..7u32 {
        let (node, d) = gac.submit(
            JobId::new(i),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(100),
            Some(Cycles::new(104)), // tight: must start immediately
        );
        if d.is_accepted() {
            placements.push(node.unwrap());
        }
    }
    // Two per node at once: six fit, the seventh is rejected.
    assert_eq!(placements.len(), 6);
    for n in 0..3 {
        assert_eq!(
            placements.iter().filter(|&&p| p == NodeId::new(n)).count(),
            2,
            "placements: {placements:?}"
        );
    }
}
