//! Property-style invariants of the simulation engine itself: work
//! conservation, completion monotonicity and cycle accounting, under
//! randomized task mixes.

use cmpqos::system::{CmpNode, Placement, SystemConfig, TaskSpec};
use cmpqos::trace::spec;
use cmpqos::types::{CoreId, Cycles, Instructions, JobId, Ways};
use proptest::prelude::*;

const K: u64 = 16;

fn spawn(n: &mut CmpNode, id: u32, bench: &str, budget: u64, pinned: Option<u32>) {
    let placement = match pinned {
        Some(c) => Placement::Pinned(CoreId::new(c)),
        None => Placement::Floating,
    };
    n.spawn(TaskSpec {
        id: JobId::new(id),
        source: Box::new(
            spec::scaled(bench, K)
                .unwrap()
                .instantiate(u64::from(id) + 77, (u64::from(id) + 1) << 40),
        ),
        budget: Instructions::new(budget),
        placement,
        reserved: pinned.is_some(),
    })
    .expect("spawn succeeds");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every spawned task retires exactly its budget, no matter the mix of
    /// pinned and floating tasks.
    #[test]
    fn instruction_budgets_are_conserved(
        budgets in proptest::collection::vec(1_000u64..30_000, 1..7),
        pin_mask in any::<u8>(),
    ) {
        let mut n = CmpNode::new(SystemConfig {
            timeslice: Cycles::new(10_000),
            ..SystemConfig::paper_scaled(K)
        });
        n.set_l2_targets(&[Ways::new(4); 4]).unwrap();
        let benches = ["gobmk", "hmmer", "namd", "bzip2"];
        let mut next_pin = 0u32;
        for (i, &b) in budgets.iter().enumerate() {
            let pin = if pin_mask & (1 << (i % 8)) != 0 && next_pin < 4 {
                next_pin += 1;
                Some(next_pin - 1)
            } else {
                None
            };
            spawn(&mut n, i as u32, benches[i % benches.len()], b, pin);
        }
        n.run_to_completion(Cycles::new(u64::MAX / 4));
        for (i, &b) in budgets.iter().enumerate() {
            let perf = n.perf(JobId::new(i as u32)).expect("task ran");
            prop_assert_eq!(perf.instructions().get(), b, "task {}", i);
            prop_assert!(perf.cycles().get() >= b, "cpi >= 1");
        }
    }

    /// Completion records are consistent: started <= finished, and a
    /// task's charged cycles never exceed its start-to-finish window.
    #[test]
    fn completion_times_bound_charged_cycles(
        budgets in proptest::collection::vec(1_000u64..20_000, 1..5),
    ) {
        let mut n = CmpNode::new(SystemConfig::paper_scaled(K));
        n.set_l2_targets(&[Ways::new(4); 4]).unwrap();
        for (i, &b) in budgets.iter().enumerate() {
            spawn(&mut n, i as u32, "gobmk", b, None);
        }
        n.run_to_completion(Cycles::new(u64::MAX / 4));
        for i in 0..budgets.len() {
            let id = JobId::new(i as u32);
            let c = n.completion(id).expect("completed");
            prop_assert!(c.started_at <= c.finished_at);
            let perf = n.perf(id).expect("perf kept");
            prop_assert!(
                perf.cycles() <= c.finished_at - c.started_at,
                "occupancy within its window"
            );
        }
    }

    /// Simulation time never runs backwards across run_until calls, and
    /// completions always carry timestamps within the simulated range.
    #[test]
    fn time_is_monotone(steps in proptest::collection::vec(1_000u64..100_000, 1..20)) {
        let mut n = CmpNode::new(SystemConfig::paper_scaled(K));
        n.set_l2_targets(&[Ways::new(4); 4]).unwrap();
        spawn(&mut n, 0, "hmmer", 1_000_000, Some(0));
        let mut now = Cycles::ZERO;
        for s in steps {
            let target = now + Cycles::new(s);
            n.run_until(target);
            prop_assert!(n.now() >= now);
            prop_assert!(n.now() >= target);
            now = n.now();
        }
        for c in n.take_completions() {
            prop_assert!(c.finished_at <= n.now());
        }
    }
}
