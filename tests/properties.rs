//! Property-based tests (proptest) on the core data structures'
//! invariants: cache partitioning accounting, LAC non-overbooking, shadow
//! tags and statistics.

use cmpqos::cache::{CacheConfig, DuplicateTagMonitor, PartitionPolicy, SharedL2};
use cmpqos::qos::{AdmissionRequest, ExecutionMode, Lac, LacConfig, ResourceRequest};
use cmpqos::types::{ByteSize, CoreId, Cycles, JobId, Percent, RunningStats, Ways};
use proptest::prelude::*;

/// A tiny L2 for exhaustive-ish property runs: 8 sets x 4 ways.
fn tiny_l2(policy: PartitionPolicy) -> SharedL2 {
    SharedL2::new(
        CacheConfig::new(
            ByteSize::from_bytes(8 * 4 * 64),
            4,
            ByteSize::from_bytes(64),
            Cycles::new(10),
        )
        .expect("valid tiny config"),
        2,
        policy,
    )
}

proptest! {
    /// Whatever the access stream, the per-core global occupancy always
    /// equals the number of valid lines owned by that core, and the two
    /// cores' occupancies never exceed the cache capacity.
    #[test]
    fn l2_occupancy_accounting_is_exact(
        accesses in proptest::collection::vec((0u32..2, 0u64..64, any::<bool>()), 1..300),
        t0 in 0u16..3,
        t1 in 0u16..3,
    ) {
        let mut l2 = tiny_l2(PartitionPolicy::PerSet);
        l2.set_targets(&[Ways::new(t0), Ways::new(t1)]).expect("t0+t1 <= 4");
        for (core, block, write) in accesses {
            l2.access(CoreId::new(core), block * 64, write);
            let occ0 = l2.occupancy(CoreId::new(0));
            let occ1 = l2.occupancy(CoreId::new(1));
            prop_assert!(occ0 + occ1 <= 32, "{occ0}+{occ1} lines");
            // Per-set counts sum to the global count.
            for c in 0..2u32 {
                let sum: u64 = (0..8u32)
                    .map(|s| u64::from(l2.set_occupancy(CoreId::new(c), s)))
                    .sum();
                prop_assert_eq!(sum, l2.occupancy(CoreId::new(c)));
            }
        }
    }

    /// Under the per-set policy, a core at its target never grows a set
    /// beyond the target (converged sets stay converged).
    #[test]
    fn per_set_partition_respects_targets_after_convergence(
        blocks in proptest::collection::vec(0u64..128, 200..400),
    ) {
        let mut l2 = tiny_l2(PartitionPolicy::PerSet);
        l2.set_targets(&[Ways::new(3), Ways::new(1)]).unwrap();
        // Converge: both cores sweep every set enough times.
        for round in 0..6u64 {
            for s in 0..8u64 {
                for w in 0..4u64 {
                    l2.access(CoreId::new(0), (s + (w + round) * 8) * 64, false);
                }
                l2.access(CoreId::new(1), (s + (round % 2) * 8) * 64, false);
            }
        }
        // Now any further traffic must keep every set within targets.
        for b in blocks {
            let core = CoreId::new((b % 2) as u32);
            l2.access(core, b * 64, false);
            for s in 0..8u32 {
                prop_assert!(l2.set_occupancy(CoreId::new(0), s) <= 3);
                prop_assert!(l2.set_occupancy(CoreId::new(1), s) <= 3);
            }
        }
    }

    /// The LAC never overbooks: at every reservation boundary the summed
    /// usage fits the capacity, regardless of the submission stream.
    #[test]
    fn lac_never_overbooks(
        jobs in proptest::collection::vec(
            (1u32..3, 1u16..9, 10u64..500, 1u64..4, 0u8..3),
            1..60
        ),
    ) {
        let mut lac = Lac::new(LacConfig::default());
        for (i, (cores, ways, tw, dl_factor, mode_sel)) in jobs.into_iter().enumerate() {
            let mode = match mode_sel {
                0 => ExecutionMode::Strict,
                1 => ExecutionMode::Elastic(Percent::new(10.0)),
                _ => ExecutionMode::Opportunistic,
            };
            let _ = lac.admit(
                &AdmissionRequest::builder(
                    JobId::new(i as u32),
                    ResourceRequest::new(cores, Ways::new(ways)),
                    Cycles::new(tw),
                )
                .mode(mode)
                .deadline(Cycles::new(tw * dl_factor + 50))
                .build(),
            );
        }
        let capacity = lac.capacity();
        let points: Vec<Cycles> = lac
            .reservations()
            .iter()
            .flat_map(|r| [r.start, r.end.saturating_sub(Cycles::new(1))])
            .collect();
        for p in points {
            prop_assert!(
                lac.usage_at(p).fits_within(&capacity),
                "overbooked at {}: {}", p, lac.usage_at(p)
            );
        }
    }

    /// Accepted reserved jobs always have `start + duration <= deadline`.
    #[test]
    fn lac_reservations_respect_deadlines(
        jobs in proptest::collection::vec((10u64..200, 1u64..5), 1..40),
    ) {
        let mut lac = Lac::new(LacConfig::default());
        for (i, (tw, dl_factor)) in jobs.into_iter().enumerate() {
            let deadline = Cycles::new(tw * dl_factor + 7);
            let d = lac.admit(
                &AdmissionRequest::builder(
                    JobId::new(i as u32),
                    ResourceRequest::paper_job(),
                    Cycles::new(tw),
                )
                .deadline(deadline)
                .build(),
            );
            if let Some(start) = d.start() {
                prop_assert!(
                    start + Cycles::new(tw) <= deadline,
                    "start {start} + tw {tw} > deadline {deadline}"
                );
            }
        }
    }

    /// The shadow monitor's miss counts are monotone and the miss increase
    /// is never negative; with the full allocation mirrored, the guard
    /// never reports main tags doing *worse* than the shadow on the same
    /// stream.
    #[test]
    fn shadow_monitor_counts_are_consistent(
        stream in proptest::collection::vec((0u32..16, 0u64..64), 1..400),
        ways in 1u16..8,
    ) {
        let mut mon = DuplicateTagMonitor::new(Ways::new(ways), 16, 4);
        // Mirror: a private model of the same geometry decides main hits.
        let mut mirror = DuplicateTagMonitor::new(Ways::new(ways), 16, 4);
        let mut last_shadow = 0;
        for (set, block) in stream {
            // Use the mirror to predict whether this would hit at the
            // original allocation, then feed the real monitor that truth.
            let before = mirror.shadow_misses();
            mirror.observe(set, block, true);
            let hit = mirror.shadow_misses() == before;
            mon.observe(set, block, hit);
            prop_assert!(mon.shadow_misses() >= last_shadow);
            last_shadow = mon.shadow_misses();
        }
        prop_assert!(mon.miss_increase() >= 0.0);
        // Identical behaviour: never exceeds any positive slack.
        prop_assert!(!mon.exceeded(Percent::new(1.0)));
        prop_assert_eq!(mon.main_misses(), mon.shadow_misses());
    }

    /// RunningStats::merge is equivalent to sequential recording.
    #[test]
    fn running_stats_merge_equivalence(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..50),
        split in 0usize..50,
    ) {
        let split = split.min(xs.len());
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((a.variance() - whole.variance()).abs() / (whole.variance() + 1.0) < 1e-6);
        }
    }

    /// Unpartitioned LRU never evicts the most recently used block.
    #[test]
    fn lru_never_evicts_mru(
        blocks in proptest::collection::vec(0u64..32, 2..200),
    ) {
        let mut l2 = tiny_l2(PartitionPolicy::Unpartitioned);
        let mut last: Option<u64> = None;
        for b in blocks {
            let out = l2.access(CoreId::new(0), b * 64, false);
            if let (Some(prev), Some(ev)) = (last, out.eviction) {
                if prev != b {
                    prop_assert_ne!(ev.block_addr, prev * 64, "evicted the MRU block");
                }
            }
            last = Some(b);
        }
    }
}
