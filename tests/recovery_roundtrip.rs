//! Cross-layer crash-consistency contract of the `cmpqos-recovery`
//! write-ahead journal: for *any* operation sequence, recovering from the
//! serialized journal reconstructs the exact controller — the recovered
//! and original instances make identical subsequent admission decisions —
//! and a corrupted journal tail is truncated at the last valid checksum
//! instead of panicking or replaying garbage.

use cmpqos::qos::{AdmissionRequest, ExecutionMode, Lac, LacConfig, ProbePolicy, ResourceRequest};
use cmpqos::recovery::{JournaledGac, JournaledLac};
use cmpqos::types::{Cycles, JobId, Percent, Ways};
use proptest::prelude::*;

const COMPACT_EVERY: u64 = 8;

/// One fuzzed journal op: `(kind, a, b)` small integers decoded by the
/// apply functions (the vendored proptest has no `prop_map`, so the raw
/// tuple is the strategy's value type).
type FuzzOp = (u8, u64, u64);

fn mode_of(b: u64) -> ExecutionMode {
    match b % 3 {
        0 => ExecutionMode::Strict,
        1 => ExecutionMode::Elastic(Percent::new(5.0)),
        _ => ExecutionMode::Opportunistic,
    }
}

/// Drives a [`JournaledLac`] through the decoded op sequence; the clock
/// only moves forward so every op is legal at its replay position.
fn apply_lac(lac: &mut JournaledLac, ops: &[FuzzOp]) {
    let mut now = 0u64;
    for (i, &(kind, a, b)) in ops.iter().enumerate() {
        let id = JobId::new(i as u32);
        match kind % 6 {
            0 | 1 => {
                let mut req = AdmissionRequest::builder(
                    id,
                    ResourceRequest::paper_job(),
                    Cycles::new(500 + a % 2_000),
                )
                .mode(mode_of(b));
                if b % 2 == 0 {
                    req = req.deadline(Cycles::new(now + 5_000 + a));
                }
                let _ = lac.admit(&req.build());
            }
            2 => {
                now += a % 1_500;
                lac.advance(Cycles::new(now));
            }
            3 => lac.release(JobId::new((a % (i as u64 + 1)) as u32), Cycles::new(now)),
            4 => lac.cancel(JobId::new((a % (i as u64 + 1)) as u32)),
            _ => {
                let ways = 8 + (b % 9) as u16;
                let _ =
                    lac.revoke_capacity(ResourceRequest::new(4, Ways::new(ways)), Cycles::new(now));
            }
        }
    }
}

/// The post-recovery probe: both controllers decide an identical stream of
/// fresh admissions, so divergence in any internal table surfaces.
fn probe_decisions(lac: &mut JournaledLac, tag: u32) -> Vec<String> {
    (0..8u32)
        .map(|i| {
            let req = AdmissionRequest::builder(
                JobId::new(1_000 + tag * 100 + i),
                ResourceRequest::paper_job(),
                Cycles::new(700 + u64::from(i) * 131),
            )
            .mode(mode_of(u64::from(i)))
            .deadline(Cycles::new(50_000 + u64::from(i) * 997))
            .build();
            let d = lac.admit(&req);
            format!("{d:?}")
        })
        .collect()
}

fn op_strategy() -> impl Strategy<Value = Vec<FuzzOp>> {
    proptest::collection::vec((0u8..6, 0u64..10_000, 0u64..64), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any op sequence → serialize → recover: the recovered LAC holds the
    /// same reservation table and makes byte-identical subsequent
    /// decisions, with zero reported loss.
    #[test]
    fn recovery_reconstructs_the_exact_lac(ops in op_strategy()) {
        let mut live = JournaledLac::new(Lac::new(LacConfig::default()), COMPACT_EVERY);
        apply_lac(&mut live, &ops);
        let (mut recovered, report) = JournaledLac::recover(&live.to_jsonl(), COMPACT_EVERY);
        prop_assert!(report.is_lossless(), "intact journal lost records: {report:?}");
        prop_assert_eq!(recovered.lac(), live.lac());

        // The journaled pair keeps deciding identically after recovery.
        let mut original = live;
        prop_assert_eq!(
            probe_decisions(&mut recovered, 1),
            probe_decisions(&mut original, 1)
        );
    }

    /// Flipping any single byte of the journal never panics recovery: the
    /// corrupt record and everything after it are dropped, everything
    /// before it replays, and the loss is reported.
    #[test]
    fn corrupted_tails_truncate_cleanly_without_panicking(
        ops in op_strategy(),
        flip_pos in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let mut live = JournaledLac::new(Lac::new(LacConfig::default()), COMPACT_EVERY);
        apply_lac(&mut live, &ops);
        let jsonl = live.to_jsonl();
        let mut bytes = jsonl.clone().into_bytes();
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        let corrupt = String::from_utf8_lossy(&bytes).into_owned();

        let (recovered, report) = JournaledLac::recover(&corrupt, COMPACT_EVERY);
        let lines = jsonl.lines().count() as u64;
        prop_assert!(
            report.lost <= lines,
            "lost more than the whole journal: {report:?} vs {lines} lines"
        );
        // The recovered controller is still a working admission controller.
        let mut r = recovered;
        let _ = r.admit(
            &AdmissionRequest::builder(
                JobId::new(9_999),
                ResourceRequest::paper_job(),
                Cycles::new(1_000),
            )
            .mode(ExecutionMode::Strict)
            .build(),
        );
    }

    /// The same contract end-to-end for the global controller: crash after
    /// any op sequence, recover, and the whole multi-node server (health
    /// map, placements, FCFS tables) is byte-identical.
    #[test]
    fn recovery_reconstructs_the_exact_gac(
        ops in proptest::collection::vec((0u8..4, 0u64..8_000, 0u64..64), 1..40),
    ) {
        use cmpqos::qos::GlobalAdmissionController;
        let mut live = JournaledGac::new(
            GlobalAdmissionController::new(3, LacConfig::default(), ProbePolicy::LeastLoaded),
            COMPACT_EVERY,
        );
        let mut now = 0u64;
        for (i, &(kind, a, b)) in ops.iter().enumerate() {
            let id = JobId::new(i as u32);
            match kind {
                0 | 1 => {
                    let _ = live.submit(
                        id,
                        mode_of(b),
                        ResourceRequest::paper_job(),
                        Cycles::new(500 + a % 2_000),
                        Some(Cycles::new(now + 30_000)),
                    );
                }
                2 => {
                    now += a % 1_500;
                    let _ = live.advance(Cycles::new(now));
                }
                _ => live.complete(JobId::new((a % (i as u64 + 1)) as u32), Cycles::new(now)),
            }
        }
        let (recovered, report) = JournaledGac::recover(&live.to_jsonl(), COMPACT_EVERY);
        prop_assert!(report.is_lossless(), "intact journal lost records: {report:?}");
        prop_assert_eq!(recovered.gac(), live.gac());
        prop_assert_eq!(recovered.journal().next_seq(), live.journal().next_seq());
    }
}
