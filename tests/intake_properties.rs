//! Edge-case and property tests for [`AdmissionIntake`]: token-bucket
//! clamping and refill saturation, plus exact circuit-breaker trip and
//! restore boundaries.

use cmpqos::obs::NullRecorder;
use cmpqos::qos::{
    AdmissionIntake, AdmissionRequest, ExecutionMode, IntakeConfig, IntakeOutcome, Lac, LacConfig,
    RejectReason, ResourceRequest,
};
use cmpqos::types::{Cycles, JobId, NodeId, SourceId};
use proptest::prelude::*;

fn req(id: u32, source: u32, tw: u64, deadline: Option<u64>) -> AdmissionRequest {
    let mut b = AdmissionRequest::builder(
        JobId::new(id),
        ResourceRequest::paper_job(),
        Cycles::new(tw),
    )
    .source(SourceId::new(source))
    .mode(ExecutionMode::Strict);
    if let Some(td) = deadline {
        b = b.deadline(Cycles::new(td));
    }
    b.build()
}

fn intake(config: IntakeConfig) -> AdmissionIntake {
    AdmissionIntake::new(NodeId::new(0), config)
}

/// A zero-token bucket would shed everything forever; the intake clamps
/// the capacity to one token so each source still trickles through at the
/// refill rate.
#[test]
fn zero_capacity_bucket_clamps_to_one_token() {
    let config = IntakeConfig::builder()
        .bucket_capacity(0)
        .refill_interval(Cycles::new(100))
        .queue_capacity(16)
        .build();
    let mut i = intake(config);
    let now = Cycles::new(0);
    assert!(i
        .offer(req(0, 7, 50, None), now, &mut NullRecorder)
        .is_enqueued());
    assert_eq!(
        i.offer(req(1, 7, 50, None), now, &mut NullRecorder),
        IntakeOutcome::Shed(RejectReason::ShedOverload),
        "clamped bucket must hold exactly one token"
    );
    assert_eq!(i.stats().shed_rate_limited, 1);
    // One full interval later a single token is back — and only one.
    let later = Cycles::new(100);
    assert!(i
        .offer(req(2, 7, 50, None), later, &mut NullRecorder)
        .is_enqueued());
    assert_eq!(
        i.offer(req(3, 7, 50, None), later, &mut NullRecorder),
        IntakeOutcome::Shed(RejectReason::ShedOverload)
    );
}

/// However long a source stays quiet, refills saturate at the bucket
/// capacity: an idle epoch never banks a burst larger than `cap`.
#[test]
fn refill_saturates_at_bucket_capacity() {
    let config = IntakeConfig::builder()
        .bucket_capacity(3)
        .refill_interval(Cycles::new(10))
        .queue_capacity(64)
        .build();
    let mut i = intake(config);
    for id in 0..3 {
        assert!(i
            .offer(req(id, 1, 50, None), Cycles::new(0), &mut NullRecorder)
            .is_enqueued());
    }
    assert_eq!(
        i.offer(req(3, 1, 50, None), Cycles::new(0), &mut NullRecorder),
        IntakeOutcome::Shed(RejectReason::ShedOverload)
    );
    // ~100k elapsed intervals still refill to exactly 3 tokens.
    let later = Cycles::new(1_000_000);
    for id in 10..13 {
        assert!(i
            .offer(req(id, 1, 50, None), later, &mut NullRecorder)
            .is_enqueued());
    }
    assert_eq!(
        i.offer(req(13, 1, 50, None), later, &mut NullRecorder),
        IntakeOutcome::Shed(RejectReason::ShedOverload)
    );
}

proptest! {
    /// Token-bucket property: after draining the bucket dry, a quiet gap
    /// of `g` cycles buys back exactly `min(cap, g / interval)` tokens.
    #[test]
    fn quiet_gap_buys_back_exactly_the_refilled_tokens(
        cap in 1u32..6,
        interval in 1u64..50,
        gap in 0u64..10_000,
    ) {
        let config = IntakeConfig::builder()
            .bucket_capacity(cap)
            .refill_interval(Cycles::new(interval))
            .queue_capacity(4_096)
            .build();
        let mut i = intake(config);
        let mut id = 0u32;
        let mut offer = |i: &mut AdmissionIntake, now: u64| {
            id += 1;
            i.offer(req(id, 0, 50, None), Cycles::new(now), &mut NullRecorder)
                .is_enqueued()
        };
        // Drain the initially-full bucket.
        for _ in 0..cap {
            prop_assert!(offer(&mut i, 0));
        }
        prop_assert!(!offer(&mut i, 0));
        // After the gap, exactly min(cap, gap / interval) offers pass.
        let refilled = (gap / interval).min(u64::from(cap));
        let at = gap;
        for k in 0..refilled {
            prop_assert!(offer(&mut i, at), "token {k} of {refilled} missing");
        }
        prop_assert!(!offer(&mut i, at), "bucket over-refilled past {refilled}");
    }
}

/// Builds an intake whose breaker trips iff `rejects` of `window`
/// drained decisions are rejections, then feeds it `accepts` feasible and
/// `rejects` stale-deadline requests and drains once.
fn drive_breaker(window: usize, threshold_pct: u32, rejects: usize) -> (AdmissionIntake, Cycles) {
    let config = IntakeConfig::builder()
        .breaker_window(window)
        .breaker_threshold_pct(threshold_pct)
        .breaker_cooldown(Cycles::new(1_000))
        .queue_capacity(64)
        .bucket_capacity(u32::try_from(window).expect("small window"))
        .build();
    let mut i = intake(config);
    let mut lac = Lac::new(LacConfig::default());
    let accepts = window - rejects;
    // Feasible at offer time (deadline 10_000), still feasible at drain.
    for id in 0..accepts {
        let id = u32::try_from(id).expect("small window");
        assert!(i
            .offer(
                req(id, id, 100, Some(10_000)),
                Cycles::new(0),
                &mut NullRecorder
            )
            .is_enqueued());
    }
    // Feasible at offer time (now 0 + 100 <= 150), stale by drain time.
    for id in 0..rejects {
        let id = 100 + u32::try_from(id).expect("small window");
        assert!(i
            .offer(
                req(id, id, 100, Some(150)),
                Cycles::new(0),
                &mut NullRecorder
            )
            .is_enqueued());
    }
    let drain_at = Cycles::new(200);
    let drained = i.drain(&mut lac, drain_at, &mut NullRecorder);
    assert_eq!(drained.len(), window);
    (i, drain_at)
}

/// The breaker trips at *exactly* the threshold (`rejects * 100 >= pct *
/// window`), not one rejection later.
#[test]
fn breaker_trips_at_exactly_the_threshold() {
    // 2 rejects of 4 at 50%: 200 >= 200 — trips on the boundary.
    let (i, now) = drive_breaker(4, 50, 2);
    assert_eq!(i.stats().breaker_trips, 1);
    assert!(i.breaker_open(now));
    // Same mix at 51%: 200 < 204 — must NOT trip.
    let (i, now) = drive_breaker(4, 51, 2);
    assert_eq!(i.stats().breaker_trips, 0);
    assert!(!i.breaker_open(now));
    // 1 reject of 4 at 50%: 100 < 200 — below the boundary.
    let (i, now) = drive_breaker(4, 50, 1);
    assert_eq!(i.stats().breaker_trips, 0);
    assert!(!i.breaker_open(now));
}

/// An open breaker sheds up to the last cycle of its cooldown and
/// restores at *exactly* `trip + cooldown`: `now < until` is open,
/// `now == until` is closed.
#[test]
fn breaker_restores_at_exactly_cooldown_expiry() {
    let (mut i, tripped_at) = drive_breaker(4, 50, 2);
    assert!(i.breaker_open(tripped_at));
    let until = tripped_at + Cycles::new(1_000);
    let last_open = Cycles::new(until.get() - 1);
    assert!(i.breaker_open(last_open));
    assert_eq!(
        i.offer(req(900, 50, 100, None), last_open, &mut NullRecorder),
        IntakeOutcome::Shed(RejectReason::ShedOverload)
    );
    assert_eq!(i.stats().shed_breaker, 1);
    // At exactly `until` the breaker is closed and offers flow again.
    assert!(!i.breaker_open(until));
    assert!(i
        .offer(req(901, 51, 100, None), until, &mut NullRecorder)
        .is_enqueued());
    assert_eq!(i.stats().shed_breaker, 1, "no shed after restore");
}
