//! Unit newtypes: cycles, instructions, byte sizes, cache ways and percents.
//!
//! The simulator counts time in processor clock cycles ([`Cycles`]), work in
//! retired instructions ([`Instructions`]), cache capacity in bytes
//! ([`ByteSize`]) or associativity ways ([`Ways`]), and QoS slack in
//! [`Percent`] (the `X` of an `Elastic(X)` job).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

macro_rules! impl_count_newtype {
    ($name:ident, $unit:expr) => {
        impl $name {
            /// Creates a new value.
            #[must_use]
            pub const fn new(value: u64) -> Self {
                Self(value)
            }

            /// The zero value.
            pub const ZERO: Self = Self(0);

            /// Returns the raw count.
            #[must_use]
            pub const fn get(self) -> u64 {
                self.0
            }

            /// Returns the count as an `f64`, for ratio computations.
            #[must_use]
            pub fn as_f64(self) -> f64 {
                self.0 as f64
            }

            /// Saturating subtraction; clamps at zero instead of wrapping.
            #[must_use]
            pub const fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Returns the smaller of two values.
            #[must_use]
            pub fn min(self, rhs: Self) -> Self {
                Self(self.0.min(rhs.0))
            }

            /// Returns the larger of two values.
            #[must_use]
            pub fn max(self, rhs: Self) -> Self {
                Self(self.0.max(rhs.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<u64> for $name {
            type Output = Self;
            fn mul(self, rhs: u64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<u64> for $name {
            type Output = Self;
            fn div(self, rhs: u64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{} ", $unit), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(value: u64) -> Self {
                Self::new(value)
            }
        }

        impl From<$name> for u64 {
            fn from(value: $name) -> Self {
                value.get()
            }
        }
    };
}

/// A duration or point in time measured in processor clock cycles.
///
/// The evaluated CMP runs at 2 GHz, so 2,000,000 cycles correspond to one
/// millisecond of wall-clock time; helpers for that conversion live on the
/// system-configuration types, keeping this newtype frequency-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cycles(u64);
impl_count_newtype!(Cycles, "cycles");

/// A count of retired instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Instructions(u64);
impl_count_newtype!(Instructions, "instructions");

impl Cycles {
    /// The admission-control planning horizon: the latest start the LAC will
    /// ever consider when a request carries no deadline.
    ///
    /// Chosen as `u64::MAX / 2` so that `start + duration` cannot overflow
    /// `u64` for any candidate start at or below the horizon and any
    /// reservation duration below it — the sum of two values each at most
    /// `u64::MAX / 2` fits in a `u64` without a checked add on the hot path.
    pub const HORIZON: Self = Self(u64::MAX / 2);

    /// Scales the cycle count by a floating-point factor, rounding to the
    /// nearest cycle. Used for, e.g., extending an `Elastic(X)` reservation
    /// to `tw * (1 + X)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cmpqos_types::Cycles;
    /// assert_eq!(Cycles::new(100).scale(1.05), Cycles::new(105));
    /// ```
    #[must_use]
    pub fn scale(self, factor: f64) -> Self {
        Self((self.0 as f64 * factor).round() as u64)
    }
}

/// A storage capacity in bytes.
///
/// # Examples
///
/// ```
/// use cmpqos_types::ByteSize;
/// let l1 = ByteSize::from_kib(32);
/// assert_eq!(l1.bytes(), 32 * 1024);
/// assert_eq!(format!("{l1}"), "32.0 KiB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ByteSize(u64);

impl ByteSize {
    /// Creates a capacity from raw bytes.
    #[must_use]
    pub const fn from_bytes(bytes: u64) -> Self {
        Self(bytes)
    }

    /// Creates a capacity from binary kilobytes.
    #[must_use]
    pub const fn from_kib(kib: u64) -> Self {
        Self(kib * 1024)
    }

    /// Creates a capacity from binary megabytes.
    #[must_use]
    pub const fn from_mib(mib: u64) -> Self {
        Self(mib * 1024 * 1024)
    }

    /// Returns the capacity in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Returns the capacity in (possibly fractional) binary kilobytes.
    #[must_use]
    pub fn kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }
}

impl Add for ByteSize {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for ByteSize {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = Self;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = Self;
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1024 * 1024 && b.is_multiple_of(64 * 1024) {
            write!(f, "{:.1} MiB", b as f64 / (1024.0 * 1024.0))
        } else if b >= 1024 {
            write!(f, "{:.1} KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b} B")
        }
    }
}

/// A cache-capacity allocation expressed in associativity ways.
///
/// The paper's QoS targets request L2 capacity in ways of the shared 16-way
/// L2 (a 7-way request on a 2 MiB cache is 896 KiB).
///
/// # Examples
///
/// ```
/// use cmpqos_types::{ByteSize, Ways};
/// let request = Ways::new(7);
/// let way_size = ByteSize::from_kib(128);
/// assert_eq!(request.capacity(way_size), ByteSize::from_kib(896));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ways(u16);

impl Ways {
    /// The zero allocation.
    pub const ZERO: Self = Self(0);

    /// Creates an allocation of `n` ways.
    #[must_use]
    pub const fn new(n: u16) -> Self {
        Self(n)
    }

    /// Returns the number of ways.
    #[must_use]
    pub const fn get(self) -> u16 {
        self.0
    }

    /// Returns the number of ways as a `usize`.
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` when no ways are allocated.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Converts a way count into a byte capacity given the size of one way.
    #[must_use]
    pub fn capacity(self, way_size: ByteSize) -> ByteSize {
        way_size * u64::from(self.0)
    }

    /// Saturating subtraction; clamps at zero.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two allocations.
    #[must_use]
    pub fn min(self, rhs: Self) -> Self {
        Self(self.0.min(rhs.0))
    }

    /// Returns the larger of two allocations.
    #[must_use]
    pub fn max(self, rhs: Self) -> Self {
        Self(self.0.max(rhs.0))
    }
}

impl Add for Ways {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Ways {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Ways {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for Ways {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Sum for Ways {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|w| w.0).sum())
    }
}

impl fmt::Display for Ways {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ways", self.0)
    }
}

impl From<u16> for Ways {
    fn from(n: u16) -> Self {
        Self::new(n)
    }
}

/// A percentage, stored as a float fraction of 100.
///
/// Used for the `X` of an `Elastic(X)` job (the maximum tolerated slowdown)
/// and for miss-rate-increase bookkeeping in the resource-stealing guard.
///
/// # Examples
///
/// ```
/// use cmpqos_types::Percent;
/// let x = Percent::new(5.0);
/// assert_eq!(x.fraction(), 0.05);
/// assert_eq!(format!("{x}"), "5.0%");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Percent(f64);

impl Percent {
    /// Zero percent.
    pub const ZERO: Self = Self(0.0);

    /// Creates a percentage from a value in percent units (`5.0` = 5%).
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "percent must be finite and non-negative, got {value}"
        );
        Self(value)
    }

    /// Creates a percentage from a fraction (`0.05` = 5%).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite.
    #[must_use]
    pub fn from_fraction(fraction: f64) -> Self {
        Self::new(fraction * 100.0)
    }

    /// Returns the value in percent units.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the value as a fraction of 1.
    #[must_use]
    pub fn fraction(self) -> f64 {
        self.0 / 100.0
    }
}

impl fmt::Display for Percent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(300);
        let b = Cycles::new(20);
        assert_eq!((a + b).get(), 320);
        assert_eq!((a - b).get(), 280);
        assert_eq!((a * 2).get(), 600);
        assert_eq!((a / 3).get(), 100);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
    }

    #[test]
    fn cycles_scale_rounds() {
        assert_eq!(Cycles::new(100).scale(1.049), Cycles::new(105));
        assert_eq!(Cycles::new(3).scale(0.5), Cycles::new(2)); // 1.5 rounds to 2
    }

    #[test]
    fn cycles_sum() {
        let total: Cycles = [1u64, 2, 3].into_iter().map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(6));
    }

    #[test]
    fn bytesize_conversions_and_display() {
        assert_eq!(ByteSize::from_mib(2), ByteSize::from_kib(2048));
        assert_eq!(ByteSize::from_kib(1).bytes(), 1024);
        assert_eq!(ByteSize::from_mib(2).to_string(), "2.0 MiB");
        assert_eq!(ByteSize::from_kib(896).to_string(), "896.0 KiB");
        assert_eq!(ByteSize::from_bytes(64).to_string(), "64 B");
    }

    #[test]
    fn ways_capacity_matches_paper_request() {
        // 7 ways of a 2 MiB, 16-way L2: one way is 128 KiB -> 896 KiB.
        let way = ByteSize::from_mib(2) / 16;
        assert_eq!(Ways::new(7).capacity(way), ByteSize::from_kib(896));
    }

    #[test]
    fn ways_arithmetic_saturates() {
        let mut w = Ways::new(7);
        w -= Ways::new(1);
        assert_eq!(w, Ways::new(6));
        assert_eq!(Ways::new(1).saturating_sub(Ways::new(5)), Ways::ZERO);
        assert!(!Ways::new(1).is_zero());
        assert!(Ways::ZERO.is_zero());
    }

    #[test]
    fn percent_roundtrips() {
        let p = Percent::from_fraction(0.2);
        assert!((p.value() - 20.0).abs() < 1e-12);
        assert!((p.fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percent must be finite")]
    fn percent_rejects_negative() {
        let _ = Percent::new(-1.0);
    }

    #[test]
    fn instructions_display() {
        assert_eq!(Instructions::new(5).to_string(), "5 instructions");
    }
}
