//! Foundational types shared by every `cmpqos` crate.
//!
//! This crate defines the unit newtypes ([`Cycles`], [`Instructions`],
//! [`ByteSize`], [`Ways`], [`Percent`]), identifier newtypes ([`CoreId`],
//! [`JobId`], [`NodeId`], [`SourceId`]) and small statistics helpers
//! ([`stats::RunningStats`], [`stats::Histogram`]) used throughout the
//! simulator and the QoS framework.
//!
//! Everything here is deliberately dependency-free and forbids `unsafe`.
//!
//! # Examples
//!
//! ```
//! use cmpqos_types::{ByteSize, Cycles, Ways};
//!
//! let l2 = ByteSize::from_mib(2);
//! assert_eq!(l2.bytes(), 2 * 1024 * 1024);
//!
//! let slice = Ways::new(7);
//! let t = Cycles::new(300) + Cycles::new(20);
//! assert_eq!(t.get(), 320);
//! assert_eq!(format!("{slice}"), "7 ways");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod stats;
pub mod units;

pub use ids::{CoreId, JobId, NodeId, SourceId};
pub use stats::{Histogram, RunningStats};
pub use units::{ByteSize, Cycles, Instructions, Percent, Ways};
