//! Small statistics helpers used by simulator components and experiment
//! harnesses: running summary statistics and fixed-bucket histograms.

use std::fmt;

/// Online summary statistics (count, mean, min, max, variance) over a stream
/// of `f64` observations, using Welford's algorithm.
///
/// # Examples
///
/// ```
/// use cmpqos_types::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; `0.0` with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another accumulator into this one, as if all of its
    /// observations had been recorded here.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} min={:.3} max={:.3} sd={:.3}",
            self.count,
            self.mean,
            self.min.unwrap_or(f64::NAN),
            self.max.unwrap_or(f64::NAN),
            self.std_dev()
        )
    }
}

/// A histogram with uniformly sized buckets over `[low, high)` plus
/// underflow/overflow buckets.
///
/// # Examples
///
/// ```
/// use cmpqos_types::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(0.5);
/// h.record(3.0);
/// h.record(100.0);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `buckets` uniform buckets.
    ///
    /// # Panics
    ///
    /// Panics if `high <= low` or `buckets == 0`.
    #[must_use]
    pub fn new(low: f64, high: f64, buckets: usize) -> Self {
        assert!(high > low, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Self {
            low,
            high,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if value < self.low {
            self.underflow += 1;
        } else if value >= self.high {
            self.overflow += 1;
        } else {
            let width = (self.high - self.low) / self.buckets.len() as f64;
            let idx = ((value - self.low) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Count in bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of buckets (excluding under/overflow).
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations, including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let xs = [1.0, 5.0, 2.5, -3.0, 8.0, 0.0];
        let mut all = RunningStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..3] {
            a.record(x);
        }
        for &x in &xs[3..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn running_stats_merge_with_empty() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
        let empty = RunningStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-0.1);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(9), 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.buckets(), 10);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
