//! Identifier newtypes.
//!
//! Cores, jobs and CMP nodes are referred to by opaque integer identifiers.
//! Using distinct newtypes ensures, e.g., that a [`JobId`] can never be passed
//! where a [`CoreId`] is expected.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("use cmpqos_types::ids::", stringify!($name), ";")]
            #[doc = concat!("let id = ", stringify!($name), "::new(3);")]
            /// assert_eq!(id.index(), 3);
            /// ```
            #[must_use]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            #[must_use]
            pub const fn index(self) -> u32 {
                self.0
            }

            /// Returns the raw index as a `usize`, convenient for slice
            /// indexing.
            #[must_use]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self::new(index)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> Self {
                id.index()
            }
        }
    };
}

id_newtype!(
    /// Identifies a processor core within a CMP node.
    CoreId,
    "core"
);

id_newtype!(
    /// Identifies a job (the unit of aperiodic computation that carries its
    /// own QoS target; see Section 3.1 of the paper).
    JobId,
    "job"
);

id_newtype!(
    /// Identifies a CMP node within a server (the Global Admission Controller
    /// probes per-node Local Admission Controllers).
    NodeId,
    "node"
);

id_newtype!(
    /// Identifies an admission-request source (a tenant, client, or traffic
    /// class) for per-source rate limiting on the overloaded admission path.
    SourceId,
    "source"
);

impl CoreId {
    /// Iterates over the first `n` core identifiers.
    ///
    /// # Examples
    ///
    /// ```
    /// use cmpqos_types::CoreId;
    /// let cores: Vec<CoreId> = CoreId::first_n(2).collect();
    /// assert_eq!(cores, vec![CoreId::new(0), CoreId::new(1)]);
    /// ```
    pub fn first_n(n: u32) -> impl Iterator<Item = CoreId> {
        (0..n).map(CoreId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(CoreId::new(2).to_string(), "core2");
        assert_eq!(JobId::new(7).to_string(), "job7");
        assert_eq!(NodeId::new(0).to_string(), "node0");
    }

    #[test]
    fn ids_roundtrip_through_u32() {
        let id = JobId::from(9u32);
        assert_eq!(u32::from(id), 9);
        assert_eq!(id.as_usize(), 9);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert_eq!(CoreId::default(), CoreId::new(0));
    }

    #[test]
    fn first_n_yields_sequential_cores() {
        let v: Vec<_> = CoreId::first_n(4).map(CoreId::index).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }
}
