//! Workload construction and experiment drivers (Section 6 of the paper).
//!
//! This crate builds the paper's evaluation workloads and runs them:
//!
//! * [`calibrate`] — solo-run calibration: per-benchmark wall-clock time at
//!   the requested 7-way allocation (the source of each job's
//!   `max_wall_clock`), plus the solo sweeps behind Figure 1, Figure 4 and
//!   Table 1.
//! * [`arrivals`] — Poisson job arrivals at the paper's rate (a 128-CMP
//!   server's worth of submissions probing this node's LAC).
//! * [`deadlines`] — the 50% tight (`1.05·tw`) / 30% moderate (`2·tw`) /
//!   20% relaxed (`3·tw`) deadline assignment.
//! * [`configs`] — the five Table 2 configurations (`All-Strict`,
//!   `Hybrid-1`, `Hybrid-2`, `All-Strict+AutoDown`, `EqualPart`).
//! * [`composition`] — 10-job workloads: single-benchmark and the Table 3
//!   mixes (`Mix-1`, `Mix-2`).
//! * [`runner`] — end-to-end drivers producing [`runner::RunOutcome`]s:
//!   `run_qos` (admission-controlled configurations on a [`QosScheduler`])
//!   and `run_equal_part` (the non-QoS baseline: no admission control,
//!   Linux-style timesharing, equally partitioned L2).
//! * [`metrics`] — deadline hit rates, normalized throughput and per-mode
//!   wall-clock statistics (Figures 5, 6, 8 and 9).
//!
//! [`QosScheduler`]: cmpqos_core::QosScheduler

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod calibrate;
pub mod composition;
pub mod configs;
pub mod deadlines;
pub mod metrics;
pub mod runner;

pub use composition::{JobTemplate, WorkloadSpec};
pub use configs::Configuration;
pub use deadlines::DeadlineClass;
pub use runner::{RunConfig, RunOutcome};
