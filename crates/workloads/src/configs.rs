//! The five execution-mode configurations of Table 2.

use cmpqos_core::ExecutionMode;
use cmpqos_types::Percent;
use std::fmt;

/// The Elastic slack used by `Hybrid-2` in the paper.
pub const HYBRID2_SLACK: f64 = 5.0;

/// A Table 2 configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Configuration {
    /// 100% Strict.
    AllStrict,
    /// 70% Strict + 30% Opportunistic.
    Hybrid1,
    /// 40% Strict + 30% Elastic(X) + 30% Opportunistic. The paper uses
    /// X = 5%; Figure 8 sweeps it.
    Hybrid2 {
        /// The Elastic jobs' slack.
        slack: Percent,
    },
    /// 100% Strict with automatic mode downgrade for jobs with moderate or
    /// relaxed deadlines.
    AllStrictAutoDown,
    /// No admission control, default OS scheduling, equally partitioned L2
    /// (mimics Virtual Private Caches without admission control).
    EqualPart,
}

impl Configuration {
    /// The paper's five configurations with default parameters.
    #[must_use]
    pub fn all() -> Vec<Configuration> {
        vec![
            Configuration::AllStrict,
            Configuration::Hybrid1,
            Configuration::Hybrid2 {
                slack: Percent::new(HYBRID2_SLACK),
            },
            Configuration::AllStrictAutoDown,
            Configuration::EqualPart,
        ]
    }

    /// Whether this configuration uses the QoS framework (admission
    /// control + partitioning by request); `EqualPart` does not.
    #[must_use]
    pub fn uses_admission_control(&self) -> bool {
        !matches!(self, Configuration::EqualPart)
    }

    /// Whether automatic mode downgrade is enabled.
    #[must_use]
    pub fn auto_downgrade(&self) -> bool {
        matches!(self, Configuration::AllStrictAutoDown)
    }

    /// The execution mode of accepted-job slot `index` (0-based) under this
    /// configuration, for single-benchmark workloads.
    ///
    /// The 10-job split uses fixed interleaved patterns so results are
    /// deterministic: `Hybrid-1` makes slots {2, 5, 8} Opportunistic (30%);
    /// `Hybrid-2` additionally makes slots {1, 4, 7} Elastic (30%).
    #[must_use]
    pub fn mode_for_slot(&self, index: usize) -> ExecutionMode {
        match self {
            Configuration::AllStrict | Configuration::AllStrictAutoDown => ExecutionMode::Strict,
            Configuration::EqualPart => ExecutionMode::Strict, // unused: no admission
            Configuration::Hybrid1 => {
                if index % 10 % 3 == 2 && index % 10 < 9 {
                    ExecutionMode::Opportunistic
                } else {
                    ExecutionMode::Strict
                }
            }
            Configuration::Hybrid2 { slack } => match index % 10 {
                2 | 5 | 8 => ExecutionMode::Opportunistic,
                1 | 4 | 7 => ExecutionMode::Elastic(*slack),
                _ => ExecutionMode::Strict,
            },
        }
    }

    /// Applies the configuration to a mix job's *preferred* mode (its
    /// Table 3 role): `All-Strict`/`AutoDown` force Strict; `Hybrid-1`
    /// keeps Opportunistic roles but flattens Elastic to Strict;
    /// `Hybrid-2` keeps all roles (with its own slack).
    #[must_use]
    pub fn apply_to_role(&self, role: ExecutionMode) -> ExecutionMode {
        match self {
            Configuration::AllStrict
            | Configuration::AllStrictAutoDown
            | Configuration::EqualPart => ExecutionMode::Strict,
            Configuration::Hybrid1 => match role {
                ExecutionMode::Opportunistic => ExecutionMode::Opportunistic,
                _ => ExecutionMode::Strict,
            },
            Configuration::Hybrid2 { slack } => match role {
                ExecutionMode::Opportunistic => ExecutionMode::Opportunistic,
                ExecutionMode::Elastic(_) => ExecutionMode::Elastic(*slack),
                ExecutionMode::Strict => ExecutionMode::Strict,
            },
        }
    }

    /// Short label used in experiment output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Configuration::AllStrict => "All-Strict",
            Configuration::Hybrid1 => "Hybrid-1",
            Configuration::Hybrid2 { .. } => "Hybrid-2",
            Configuration::AllStrictAutoDown => "All-Strict+AutoDown",
            Configuration::EqualPart => "EqualPart",
        }
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Configuration::Hybrid2 { slack } => write!(f, "Hybrid-2 (Elastic({slack}))"),
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_modes(c: Configuration) -> (usize, usize, usize) {
        let mut strict = 0;
        let mut elastic = 0;
        let mut opp = 0;
        for i in 0..10 {
            match c.mode_for_slot(i) {
                ExecutionMode::Strict => strict += 1,
                ExecutionMode::Elastic(_) => elastic += 1,
                ExecutionMode::Opportunistic => opp += 1,
            }
        }
        (strict, elastic, opp)
    }

    #[test]
    fn table2_percentages() {
        assert_eq!(count_modes(Configuration::AllStrict), (10, 0, 0));
        assert_eq!(count_modes(Configuration::Hybrid1), (7, 0, 3));
        assert_eq!(
            count_modes(Configuration::Hybrid2 {
                slack: Percent::new(5.0)
            }),
            (4, 3, 3)
        );
        assert_eq!(count_modes(Configuration::AllStrictAutoDown), (10, 0, 0));
    }

    #[test]
    fn auto_downgrade_flag() {
        assert!(Configuration::AllStrictAutoDown.auto_downgrade());
        assert!(!Configuration::AllStrict.auto_downgrade());
    }

    #[test]
    fn equal_part_bypasses_admission() {
        assert!(!Configuration::EqualPart.uses_admission_control());
        assert!(Configuration::Hybrid1.uses_admission_control());
    }

    #[test]
    fn roles_flatten_per_configuration() {
        let elastic_role = ExecutionMode::Elastic(Percent::new(5.0));
        assert_eq!(
            Configuration::AllStrict.apply_to_role(elastic_role),
            ExecutionMode::Strict
        );
        assert_eq!(
            Configuration::Hybrid1.apply_to_role(elastic_role),
            ExecutionMode::Strict
        );
        assert_eq!(
            Configuration::Hybrid1.apply_to_role(ExecutionMode::Opportunistic),
            ExecutionMode::Opportunistic
        );
        let h2 = Configuration::Hybrid2 {
            slack: Percent::new(10.0),
        };
        assert_eq!(
            h2.apply_to_role(elastic_role),
            ExecutionMode::Elastic(Percent::new(10.0))
        );
    }

    #[test]
    fn labels_are_paper_names() {
        assert_eq!(Configuration::AllStrict.label(), "All-Strict");
        assert_eq!(
            Configuration::all().len(),
            5,
            "Table 2 has five configurations"
        );
    }
}
