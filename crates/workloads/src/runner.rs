//! End-to-end experiment drivers.
//!
//! [`run`] executes one (workload, configuration) cell of the paper's
//! evaluation: a Poisson submission stream feeds the node until ten jobs
//! are accepted, then the run completes and the first-ten-accepted
//! makespan, deadline outcomes and per-job reports are collected.
//!
//! [`run_batch`] executes many such cells on the `cmpqos-engine` worker
//! pool: every cell is seeded and self-contained, results come back in
//! cell order, and event streams are buffered per cell
//! ([`cmpqos_obs::ShardRecorder`]) and merged in cell order afterwards —
//! so a `--jobs N` sweep is bit-identical to the serial one.

use crate::arrivals::ArrivalStream;
use crate::calibrate::Calibrator;
use crate::composition::WorkloadSpec;
use crate::configs::Configuration;
use crate::deadlines::{assign_classes, DeadlineClass};
use cmpqos_core::{
    Decision, ExecutionMode, JobReport, QosJob, QosScheduler, ResourceRequest, SchedulerConfig,
    StealingConfig,
};
use cmpqos_engine::Engine;
use cmpqos_obs::{merge_shards, Event, JsonlRecorder, NullRecorder, Recorder, ShardRecorder};
use cmpqos_system::{CmpNode, Placement, SystemConfig, TaskSpec};
use cmpqos_trace::spec;
use cmpqos_types::{Cycles, Instructions, JobId, Ways};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Parameters of one experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The 10-job workload.
    pub workload: WorkloadSpec,
    /// The Table 2 configuration.
    pub configuration: Configuration,
    /// Geometry scale factor `k` (caches and working sets shrink by `k`;
    /// way-granular behaviour is invariant — see
    /// [`cmpqos_system::SystemConfig::paper_scaled`]).
    pub scale: u64,
    /// Instructions per job (the paper's 200M, scaled down).
    pub work: Instructions,
    /// Seed for arrivals, deadline classes and trace generation.
    pub seed: u64,
    /// Resource stealing on/off (Figure 8's baseline needs it off).
    pub stealing_enabled: bool,
    /// Stealing repartition interval in Elastic-job instructions. The
    /// paper's 2M instructions correspond to 1% of a 200M-instruction job;
    /// the default keeps that proportion (`work / 100`).
    pub steal_interval: Option<Instructions>,
    /// When set, every QoS event of the run is appended to this JSONL
    /// file (one [`cmpqos_obs::Record`] per line), starting with an
    /// [`Event::RunStarted`] marker carrying the cell label.
    pub events: Option<PathBuf>,
}

impl RunConfig {
    /// A sensible default cell: scale 8, 800k instructions/job.
    #[must_use]
    pub fn new(workload: WorkloadSpec, configuration: Configuration) -> Self {
        Self {
            workload,
            configuration,
            scale: 8,
            work: Instructions::new(800_000),
            seed: 1,
            stealing_enabled: true,
            steal_interval: None,
            events: None,
        }
    }

    fn effective_steal_interval(&self) -> Instructions {
        self.steal_interval
            .unwrap_or(Instructions::new((self.work.get() / 100).max(1_000)))
    }
}

/// One accepted job's outcome.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AcceptedJob {
    /// Acceptance-order slot (0..10).
    pub slot: usize,
    /// Benchmark name.
    pub bench: String,
    /// Deadline class assigned to the slot.
    pub class: DeadlineClass,
    /// The job's full report.
    pub report: JobReport,
}

/// Outcome of one experiment run.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunOutcome {
    /// Workload + configuration label.
    pub label: String,
    /// The configuration that ran.
    pub configuration: Configuration,
    /// The accepted jobs, in acceptance order.
    pub accepted: Vec<AcceptedJob>,
    /// Completion time of the last accepted job ("total wall-clock time to
    /// complete the first ten accepted jobs").
    pub makespan: Cycles,
    /// Total jobs offered to the node (accepted + rejected).
    pub submissions: u64,
    /// Modeled LAC compute cost (zero for EqualPart).
    pub lac_cost: Cycles,
    /// Admission tests performed.
    pub lac_tests: u64,
    /// Instructions per job this run used (for unscaling metrics).
    pub work: Instructions,
}

/// Runs one experiment cell.
///
/// # Panics
///
/// Panics if the workload references unknown benchmarks or the run exceeds
/// its internal hard cap (which indicates a livelocked configuration).
#[must_use]
pub fn run(cfg: &RunConfig) -> RunOutcome {
    run_recorded(cfg, open_recorder(cfg)).0
}

/// [`run`] with a caller-supplied event sink instead of the
/// [`RunConfig::events`] JSONL appender: the cell's full stream (starting
/// with its [`Event::RunStarted`] marker) goes to `recorder`, which is
/// handed back alongside the outcome. This is how [`run_batch`] captures
/// per-cell [`ShardRecorder`] shards for the deterministic merge.
///
/// # Panics
///
/// As [`run`].
#[must_use]
pub fn run_recorded(
    cfg: &RunConfig,
    mut recorder: Box<dyn Recorder>,
) -> (RunOutcome, Box<dyn Recorder>) {
    if recorder.enabled() {
        recorder.record(
            Cycles::ZERO,
            Event::RunStarted {
                label: format!("{} / {}", cfg.workload.name(), cfg.configuration),
            },
        );
    }
    match cfg.configuration {
        Configuration::EqualPart => run_equal_part(cfg, recorder),
        _ => run_qos(cfg, recorder),
    }
}

/// Runs many independent cells on a [`cmpqos_engine::Engine`] worker pool
/// (`jobs` workers; `1` = serial), returning outcomes **in cell order**.
///
/// Determinism guarantee: every cell is seeded and self-contained, so
/// `run_batch(cells, 1)` and `run_batch(cells, n)` produce identical
/// outcomes *and* identical event files. Cells with an
/// [`RunConfig::events`] path record into an in-memory
/// [`ShardRecorder`] instead of appending to the file mid-run; after the
/// pool drains, the shards are appended per file in cell order
/// ([`merge_shards`]), byte-identical to what serial appending produces.
///
/// # Panics
///
/// Panics after all cells complete if any cell panicked (the failure
/// summary names each failed cell).
#[must_use]
pub fn run_batch(cells: Vec<RunConfig>, jobs: usize) -> Vec<RunOutcome> {
    let results = Engine::new(jobs).run(cells, |_, mut cfg| {
        let events = cfg.events.take();
        if events.is_some() {
            let (outcome, recorder) = run_recorded(&cfg, Box::new(ShardRecorder::new()));
            let shard = recorder
                .as_any()
                .and_then(|any| any.downcast_ref::<ShardRecorder>())
                .cloned()
                .expect("run_recorded hands back the shard it was given");
            (outcome, events, Some(shard))
        } else {
            (run(&cfg), None, None)
        }
    });

    // Group shards per event file, preserving cell order within each, then
    // replay them through one appender per file.
    let mut shards_by_path: BTreeMap<PathBuf, Vec<ShardRecorder>> = BTreeMap::new();
    let mut outcomes = Vec::with_capacity(results.len());
    for (outcome, events, shard) in results {
        if let (Some(path), Some(shard)) = (events, shard) {
            shards_by_path.entry(path).or_default().push(shard);
        }
        outcomes.push(outcome);
    }
    for (path, shards) in shards_by_path {
        match JsonlRecorder::append(&path) {
            Ok(mut sink) => merge_shards(shards, &mut sink),
            Err(e) => eprintln!("cmpqos: cannot open event log {}: {e}", path.display()),
        }
    }
    outcomes
}

/// Scales the OS timeslice (and switch cost) with the per-job instruction
/// budget so scaled runs timeshare as the paper's full-length jobs do: the
/// paper's 200M-instruction jobs see a ~2M-cycle quantum, i.e. roughly 100
/// quanta per job. Keeping that ratio preserves the EqualPart stretching
/// and variance the configuration exists to show.
fn scale_timeslice(system: &mut SystemConfig, work: Instructions) {
    // ~2.5 CPI typical -> job length in cycles ~ 2.5 * work; 100 quanta.
    let quantum = (work.get() * 25 / 1_000).max(5_000);
    system.timeslice = Cycles::new(quantum);
    system.context_switch_cost = Cycles::new((quantum / 100).max(100));
}

/// The event sink for one serial cell: a JSONL appender opened on
/// `cfg.events` or the free [`NullRecorder`]. An unopenable path degrades
/// to no recording rather than failing the run. (The `RunStarted` marker
/// is written by [`run_recorded`].)
fn open_recorder(cfg: &RunConfig) -> Box<dyn Recorder> {
    let Some(path) = &cfg.events else {
        return Box::new(NullRecorder);
    };
    match JsonlRecorder::append(path) {
        Ok(r) => Box::new(r),
        Err(e) => {
            eprintln!("cmpqos: cannot open event log {}: {e}", path.display());
            Box::new(NullRecorder)
        }
    }
}

fn trace_for(cfg: &RunConfig, bench: &str, submission: u32) -> Box<dyn cmpqos_trace::TraceSource> {
    let profile =
        spec::scaled(bench, cfg.scale).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let seed = cfg
        .seed
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(u64::from(submission));
    Box::new(profile.instantiate(seed, u64::from(submission + 1) << 36))
}

fn run_qos(cfg: &RunConfig, recorder: Box<dyn Recorder>) -> (RunOutcome, Box<dyn Recorder>) {
    let n = cfg.workload.len();
    let mut cal = Calibrator::new(cfg.scale, cfg.work);
    let classes = assign_classes(n, cfg.seed);
    let mut system = SystemConfig::paper_scaled(cfg.scale);
    scale_timeslice(&mut system, cfg.work);
    let cores = system.num_cores as u64;

    let sched_cfg = SchedulerConfig::builder()
        .auto_downgrade(cfg.configuration.auto_downgrade())
        .stealing_enabled(cfg.stealing_enabled)
        .stealing(
            StealingConfig::builder()
                .interval(cfg.effective_steal_interval())
                .build(),
        )
        .build();
    let label = format!("{} / {}", cfg.workload.name(), cfg.configuration);
    let mut sched = QosScheduler::with_recorder(system, sched_cfg, recorder);

    // Arrival rate keyed to the first benchmark's wall-clock need.
    let tw0 = cal.tw(&cfg.workload.slots()[0].bench);
    let mut arrivals = ArrivalStream::paper_rate(tw0, cores, cfg.seed);

    let mut accepted: Vec<(usize, JobId, String, DeadlineClass)> = Vec::with_capacity(n);
    let mut submission: u32 = 0;
    let mut rejections_for_slot: u32 = 0;

    while accepted.len() < n {
        assert!(
            rejections_for_slot < 50_000,
            "admission livelock on slot {} after {} submissions              (mode/deadline combination can never be admitted?)",
            accepted.len(),
            submission
        );
        let slot = accepted.len();
        let template = &cfg.workload.slots()[slot];
        let mode = match template.role {
            Some(role) => cfg.configuration.apply_to_role(role),
            None => cfg.configuration.mode_for_slot(slot),
        };
        let ta = arrivals.next_arrival();
        sched.run_until(ta);
        let tw = cal.tw(&template.bench);
        let class = classes[slot];
        let deadline = match mode {
            ExecutionMode::Opportunistic => None,
            _ => {
                let mut td = class.deadline(ta, tw);
                if let ExecutionMode::Elastic(x) = mode {
                    // A user choosing Elastic(X) accepts an X% slowdown, so
                    // by definition their deadline leaves at least that much
                    // slack; a tight deadline class is widened to the
                    // reservation length (plus a margin) or the submission
                    // would be unsatisfiable at any load.
                    let min_td = ta + tw.scale((1.0 + x.fraction()) * 1.02);
                    td = td.max(min_td);
                }
                Some(td)
            }
        };
        let id = JobId::new(submission);
        let mut builder = QosJob::with_mode(id, mode, ResourceRequest::paper_job())
            .work(cfg.work)
            .max_wall_clock(tw);
        if let Some(td) = deadline {
            builder = builder.deadline(td);
        }
        let d = sched.submit(builder.build(), trace_for(cfg, &template.bench, submission));
        if d.is_accepted() {
            accepted.push((slot, id, template.bench.clone(), class));
            rejections_for_slot = 0;
        } else {
            rejections_for_slot += 1;
        }
        submission += 1;
    }

    let hard_cap = sched.now() + tw0 * 200;
    sched.run_to_idle(hard_cap);
    sched.recorder_mut().flush();

    let mut jobs = Vec::with_capacity(n);
    let mut makespan = Cycles::ZERO;
    for (slot, id, bench, class) in accepted {
        let report = sched.report(id).expect("accepted job has a report");
        assert!(
            report.finished.is_some(),
            "accepted job {id} did not finish by the hard cap"
        );
        makespan = makespan.max(report.finished.unwrap_or(Cycles::ZERO));
        jobs.push(AcceptedJob {
            slot,
            bench,
            class,
            report,
        });
    }

    let outcome = RunOutcome {
        label,
        configuration: cfg.configuration,
        accepted: jobs,
        makespan,
        submissions: u64::from(submission),
        lac_cost: sched.lac().modeled_cost(),
        lac_tests: sched.lac().admission_tests(),
        work: cfg.work,
    };
    (outcome, sched.take_recorder())
}

/// The non-QoS baseline: no admission control (the first ten arrivals are
/// taken), default-OS-style round-robin timesharing over all cores, and an
/// equally partitioned L2 (Table 2's `EqualPart`, mimicking Virtual Private
/// Caches without an admission controller).
fn run_equal_part(
    cfg: &RunConfig,
    mut recorder: Box<dyn Recorder>,
) -> (RunOutcome, Box<dyn Recorder>) {
    let n = cfg.workload.len();
    let mut cal = Calibrator::new(cfg.scale, cfg.work);
    let classes = assign_classes(n, cfg.seed);
    let mut system = SystemConfig::paper_scaled(cfg.scale);
    scale_timeslice(&mut system, cfg.work);
    let cores = system.num_cores;
    let assoc = system.l2.associativity();

    let mut node = CmpNode::new(system);
    let equal = Ways::new(assoc / cores as u16);
    node.set_l2_targets(&vec![equal; cores])
        .expect("equal split fits");

    let tw0 = cal.tw(&cfg.workload.slots()[0].bench);
    let mut arrivals = ArrivalStream::paper_rate(tw0, cores as u64, cfg.seed);

    struct Pending {
        slot: usize,
        id: JobId,
        bench: String,
        class: DeadlineClass,
        arrival: Cycles,
        deadline: Cycles,
        mode: ExecutionMode,
        work: Instructions,
        tw: Cycles,
    }
    let mut pending = Vec::with_capacity(n);

    for (slot, template) in cfg.workload.slots().iter().enumerate() {
        let ta = arrivals.next_arrival();
        node.run_until(ta);
        let tw = cal.tw(&template.bench);
        let class = classes[slot];
        let id = JobId::new(slot as u32);
        node.spawn(TaskSpec {
            id,
            source: trace_for(cfg, &template.bench, slot as u32),
            budget: cfg.work,
            placement: Placement::Floating,
            reserved: false,
        })
        .expect("fresh ids spawn cleanly");
        pending.push(Pending {
            slot,
            id,
            bench: template.bench.clone(),
            class,
            arrival: ta,
            deadline: class.deadline(ta, tw),
            mode: match template.role {
                Some(role) => cfg.configuration.apply_to_role(role),
                None => ExecutionMode::Strict,
            },
            work: cfg.work,
            tw,
        });
    }

    let hard_cap = node.now() + tw0 * 400;
    node.run_to_completion(hard_cap);

    let label = format!("{} / EqualPart", cfg.workload.name());
    let mut jobs = Vec::with_capacity(n);
    let mut makespan = Cycles::ZERO;
    for p in pending {
        let completion = node
            .completion(p.id)
            .expect("EqualPart job finished under the hard cap");
        makespan = makespan.max(completion.finished_at);
        // EqualPart has no admission or mode machinery; reconstruct the
        // minimal submit/start/complete lifecycle per job so event files
        // stay comparable across configurations.
        if recorder.enabled() {
            recorder.record(
                p.arrival,
                Event::Submitted {
                    job: p.id,
                    mode: p.mode.into(),
                },
            );
            recorder.record(
                completion.started_at,
                Event::Started {
                    job: p.id,
                    core: None,
                    mode: p.mode.into(),
                },
            );
            let met = completion.finished_at <= p.deadline;
            recorder.record(
                completion.finished_at,
                Event::Completed {
                    job: p.id,
                    met_deadline: met,
                },
            );
            if !met {
                recorder.record(
                    completion.finished_at,
                    Event::DeadlineMissed {
                        job: p.id,
                        deadline: p.deadline,
                        finished: completion.finished_at,
                    },
                );
            }
        }
        let report = JobReport {
            job: QosJob::with_mode(p.id, p.mode, ResourceRequest::paper_job())
                .work(p.work)
                .max_wall_clock(p.tw)
                .deadline(p.deadline)
                .build(),
            arrival: p.arrival,
            decision: Decision::Accepted { start: p.arrival },
            started: Some(completion.started_at),
            finished: Some(completion.finished_at),
            perf: node.perf(p.id).copied().unwrap_or_default(),
            events: Vec::new(),
            steal: None,
        };
        jobs.push(AcceptedJob {
            slot: p.slot,
            bench: p.bench,
            class: p.class,
            report,
        });
    }

    recorder.flush();
    let outcome = RunOutcome {
        label,
        configuration: cfg.configuration,
        accepted: jobs,
        makespan,
        submissions: n as u64,
        lac_cost: Cycles::ZERO,
        lac_tests: 0,
        work: cfg.work,
    };
    (outcome, recorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_types::Percent;

    fn quick(workload: WorkloadSpec, configuration: Configuration) -> RunConfig {
        RunConfig {
            workload,
            configuration,
            scale: 16,
            work: Instructions::new(60_000),
            seed: 7,
            stealing_enabled: true,
            steal_interval: None,
            events: None,
        }
    }

    #[test]
    fn batch_is_identical_to_serial_cell_by_cell() {
        let cells: Vec<RunConfig> = [
            Configuration::AllStrict,
            Configuration::Hybrid1,
            Configuration::EqualPart,
        ]
        .into_iter()
        .map(|c| {
            let mut cfg = quick(WorkloadSpec::single("gobmk", 4), c);
            cfg.work = Instructions::new(40_000);
            cfg
        })
        .collect();
        let serial: Vec<RunOutcome> = cells.iter().map(run).collect();
        let parallel = run_batch(cells, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.makespan, p.makespan);
            assert_eq!(s.submissions, p.submissions);
            assert_eq!(s.lac_cost, p.lac_cost);
            assert_eq!(s.accepted.len(), p.accepted.len());
            for (a, b) in s.accepted.iter().zip(&p.accepted) {
                assert_eq!(a.slot, b.slot);
                assert_eq!(a.report.started, b.report.started);
                assert_eq!(a.report.finished, b.report.finished);
            }
        }
    }

    #[test]
    fn batch_event_files_match_serial_byte_for_byte() {
        let dir = std::env::temp_dir();
        let serial_path = dir.join(format!("cmpqos-batch-serial-{}.jsonl", std::process::id()));
        let parallel_path = dir.join(format!("cmpqos-batch-par-{}.jsonl", std::process::id()));
        for p in [&serial_path, &parallel_path] {
            let _ = std::fs::remove_file(p);
        }
        let cells = |path: &std::path::Path| -> Vec<RunConfig> {
            [Configuration::AllStrict, Configuration::EqualPart]
                .into_iter()
                .map(|c| {
                    let mut cfg = quick(WorkloadSpec::single("gobmk", 3), c);
                    cfg.work = Instructions::new(30_000);
                    cfg.events = Some(path.to_path_buf());
                    cfg
                })
                .collect()
        };
        let _ = run_batch(cells(&serial_path), 1);
        let _ = run_batch(cells(&parallel_path), 4);
        let serial = std::fs::read_to_string(&serial_path).expect("serial events written");
        let parallel = std::fs::read_to_string(&parallel_path).expect("parallel events written");
        assert!(!serial.is_empty());
        assert_eq!(serial, parallel, "--jobs must not change the event file");
        let _ = std::fs::remove_file(&serial_path);
        let _ = std::fs::remove_file(&parallel_path);
    }

    #[test]
    fn all_strict_accepts_ten_and_meets_deadlines() {
        let out = run(&quick(
            WorkloadSpec::single("gobmk", 6),
            Configuration::AllStrict,
        ));
        assert_eq!(out.accepted.len(), 6);
        for j in &out.accepted {
            assert!(j.report.met_deadline(), "slot {}", j.slot);
        }
        assert!(out.submissions >= 6);
        assert!(out.lac_tests >= out.submissions);
        assert!(out.makespan > Cycles::ZERO);
    }

    #[test]
    fn equal_part_takes_first_arrivals() {
        let out = run(&quick(
            WorkloadSpec::single("gobmk", 6),
            Configuration::EqualPart,
        ));
        assert_eq!(out.accepted.len(), 6);
        assert_eq!(out.submissions, 6);
        assert_eq!(out.lac_cost, Cycles::ZERO);
    }

    #[test]
    fn hybrid1_runs_opportunistic_slots() {
        let out = run(&quick(
            WorkloadSpec::single("gobmk", 6),
            Configuration::Hybrid1,
        ));
        let opp = out
            .accepted
            .iter()
            .filter(|j| j.report.job.mode == ExecutionMode::Opportunistic)
            .count();
        assert!(opp >= 1, "some opportunistic slots ran");
        for j in &out.accepted {
            if j.report.job.mode != ExecutionMode::Opportunistic {
                assert!(j.report.met_deadline(), "slot {}", j.slot);
            }
        }
    }

    #[test]
    fn hybrid2_attaches_steal_reports() {
        let cfg = quick(
            WorkloadSpec::single("gobmk", 6),
            Configuration::Hybrid2 {
                slack: Percent::new(5.0),
            },
        );
        let out = run(&cfg);
        let elastic: Vec<_> = out
            .accepted
            .iter()
            .filter(|j| matches!(j.report.job.mode, ExecutionMode::Elastic(_)))
            .collect();
        assert!(!elastic.is_empty());
        for j in elastic {
            assert!(j.report.steal.is_some(), "slot {}", j.slot);
        }
    }

    #[test]
    fn autodown_improves_on_all_strict_makespan() {
        let strict = run(&quick(
            WorkloadSpec::single("gobmk", 6),
            Configuration::AllStrict,
        ));
        let auto = run(&quick(
            WorkloadSpec::single("gobmk", 6),
            Configuration::AllStrictAutoDown,
        ));
        for j in &auto.accepted {
            assert!(j.report.met_deadline(), "slot {}", j.slot);
        }
        assert!(
            auto.makespan <= strict.makespan,
            "AutoDown {} vs AllStrict {}",
            auto.makespan,
            strict.makespan
        );
    }
}
