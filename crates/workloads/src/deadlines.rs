//! Deadline assignment (Section 6 of the paper).
//!
//! Deadlines are pseudo-randomly assigned per accepted job slot: 50% tight
//! (`td − ta = 1.05·tw`), 30% moderate (`2·tw`), 20% relaxed (`3·tw`).

use cmpqos_types::Cycles;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A deadline tightness class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeadlineClass {
    /// `td − ta = 1.05 · tw`.
    Tight,
    /// `td − ta = 2 · tw`.
    Moderate,
    /// `td − ta = 3 · tw`.
    Relaxed,
}

impl DeadlineClass {
    /// The multiplier on `tw`.
    #[must_use]
    pub fn factor(self) -> f64 {
        match self {
            DeadlineClass::Tight => 1.05,
            DeadlineClass::Moderate => 2.0,
            DeadlineClass::Relaxed => 3.0,
        }
    }

    /// The absolute deadline for a job arriving at `ta` with wall-clock
    /// need `tw`.
    #[must_use]
    pub fn deadline(self, ta: Cycles, tw: Cycles) -> Cycles {
        ta + tw.scale(self.factor())
    }
}

/// Assigns deadline classes to `n` job slots with the paper's 50/30/20
/// split (rounded), shuffled deterministically by `seed`.
///
/// # Examples
///
/// ```
/// use cmpqos_workloads::deadlines::{assign_classes, DeadlineClass};
///
/// let classes = assign_classes(10, 1);
/// let tight = classes.iter().filter(|c| **c == DeadlineClass::Tight).count();
/// assert_eq!(tight, 5);
/// ```
#[must_use]
pub fn assign_classes(n: usize, seed: u64) -> Vec<DeadlineClass> {
    let tight = n / 2;
    let moderate = (n * 3) / 10;
    let relaxed = n - tight - moderate;
    let mut classes = Vec::with_capacity(n);
    classes.extend(std::iter::repeat_n(DeadlineClass::Tight, tight));
    classes.extend(std::iter::repeat_n(DeadlineClass::Moderate, moderate));
    classes.extend(std::iter::repeat_n(DeadlineClass::Relaxed, relaxed));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00DE_AD11);
    classes.shuffle(&mut rng);
    classes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_matches_paper_for_ten_jobs() {
        let c = assign_classes(10, 3);
        let count = |k: DeadlineClass| c.iter().filter(|&&x| x == k).count();
        assert_eq!(count(DeadlineClass::Tight), 5);
        assert_eq!(count(DeadlineClass::Moderate), 3);
        assert_eq!(count(DeadlineClass::Relaxed), 2);
    }

    #[test]
    fn deadline_math() {
        let tw = Cycles::new(1000);
        let ta = Cycles::new(500);
        assert_eq!(
            DeadlineClass::Tight.deadline(ta, tw),
            Cycles::new(500 + 1050)
        );
        assert_eq!(
            DeadlineClass::Moderate.deadline(ta, tw),
            Cycles::new(500 + 2000)
        );
        assert_eq!(
            DeadlineClass::Relaxed.deadline(ta, tw),
            Cycles::new(500 + 3000)
        );
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        assert_eq!(assign_classes(10, 9), assign_classes(10, 9));
        // Different seeds usually differ (10!/(5!3!2!) orderings).
        assert_ne!(assign_classes(10, 9), assign_classes(10, 10));
    }

    #[test]
    fn zero_jobs_is_fine() {
        assert!(assign_classes(0, 1).is_empty());
    }
}
