//! Solo-run calibration.
//!
//! A job's `max_wall_clock` (tw) is the time it needs with its requested
//! resources. Users of batch systems know this from experience; we obtain it
//! the same way — by running each benchmark alone with its requested 7-way
//! allocation once per (benchmark, scale, work) and caching the result. The
//! same machinery produces the solo sweeps behind Figure 1, Figure 4 and
//! Table 1.

use cmpqos_cpu::PerfCounters;
use cmpqos_system::{CmpNode, Placement, SystemConfig, TaskSpec};
use cmpqos_trace::spec;
use cmpqos_types::{CoreId, Cycles, Instructions, JobId, Ways};
use std::collections::HashMap;

/// Safety margin applied to the measured solo runtime when deriving tw:
/// users overstate their wall-clock needs slightly (and the paper's jobs
/// complete within their reservations).
pub const TW_MARGIN: f64 = 1.10;

/// Outcome of one solo run.
#[derive(Debug, Clone, Copy)]
pub struct SoloStats {
    /// Wall-clock cycles from start to completion.
    pub cycles: Cycles,
    /// Full performance counters.
    pub perf: PerfCounters,
}

impl SoloStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.perf.ipc()
    }

    /// Cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        self.perf.cpi()
    }
}

/// Runs `bench` alone on a paper node scaled by `k`, pinned to core 0 with
/// `ways` of L2, for `work` instructions.
///
/// # Panics
///
/// Panics if `bench` is not a built-in benchmark.
#[must_use]
pub fn solo_run(bench: &str, ways: Ways, work: Instructions, k: u64, seed: u64) -> SoloStats {
    let mut node = CmpNode::new(SystemConfig::paper_scaled(k));
    let cores = node.config().num_cores;
    let mut targets = vec![Ways::ZERO; cores];
    targets[0] = ways;
    node.set_l2_targets(&targets).expect("single target fits");
    let profile = spec::scaled(bench, k).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    node.spawn(TaskSpec {
        id: JobId::new(0),
        source: Box::new(profile.instantiate(seed, 0)),
        budget: work,
        placement: Placement::Pinned(CoreId::new(0)),
        reserved: true,
    })
    .expect("fresh node accepts the spawn");
    let finish = node.run_to_completion(Cycles::new(u64::MAX / 4));
    let perf = *node.perf(JobId::new(0)).expect("task ran");
    SoloStats {
        cycles: finish,
        perf,
    }
}

/// Memoizing calibrator for job wall-clock times.
///
/// # Examples
///
/// ```
/// use cmpqos_workloads::calibrate::Calibrator;
/// use cmpqos_types::Instructions;
///
/// let mut cal = Calibrator::new(16, Instructions::new(50_000));
/// let tw = cal.tw("gobmk");
/// assert!(tw.get() > 50_000); // CPI > 1
/// assert_eq!(cal.tw("gobmk"), tw); // cached
/// ```
#[derive(Debug)]
pub struct Calibrator {
    k: u64,
    work: Instructions,
    request_ways: Ways,
    cache: HashMap<String, SoloStats>,
}

impl Calibrator {
    /// Creates a calibrator for scale `k` and per-job `work`. Jobs request
    /// the paper's 7 ways.
    #[must_use]
    pub fn new(k: u64, work: Instructions) -> Self {
        Self {
            k,
            work,
            request_ways: Ways::new(7),
            cache: HashMap::new(),
        }
    }

    /// The scale factor.
    #[must_use]
    pub fn scale(&self) -> u64 {
        self.k
    }

    /// Per-job instruction count.
    #[must_use]
    pub fn work(&self) -> Instructions {
        self.work
    }

    /// Solo statistics at the requested allocation (memoized).
    pub fn solo(&mut self, bench: &str) -> SoloStats {
        if let Some(s) = self.cache.get(bench) {
            return *s;
        }
        let s = solo_run(bench, self.request_ways, self.work, self.k, 0xCA11);
        self.cache.insert(bench.to_string(), s);
        s
    }

    /// The job's maximum wall-clock time: measured solo runtime times
    /// [`TW_MARGIN`].
    pub fn tw(&mut self, bench: &str) -> Cycles {
        self.solo(bench).cycles.scale(TW_MARGIN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: u64 = 16;
    const WORK: u64 = 60_000;

    #[test]
    fn solo_run_reports_full_budget() {
        let s = solo_run("namd", Ways::new(7), Instructions::new(WORK), K, 1);
        assert_eq!(s.perf.instructions().get(), WORK);
        assert!(s.cycles > Cycles::new(WORK));
        assert!(s.ipc() > 0.0 && s.ipc() < 1.0);
    }

    #[test]
    fn table1_ordering_of_mpi() {
        // Table 1 @7 ways: bzip2 MPI (0.0055) > gobmk (0.004) > hmmer (0.001).
        let w = Instructions::new(400_000);
        let b = solo_run("bzip2", Ways::new(7), w, K, 2).perf.mpi();
        let g = solo_run("gobmk", Ways::new(7), w, K, 2).perf.mpi();
        let h = solo_run("hmmer", Ways::new(7), w, K, 2).perf.mpi();
        assert!(b > g, "bzip2 {b:.4} vs gobmk {g:.4}");
        assert!(g > h, "gobmk {g:.4} vs hmmer {h:.4}");
    }

    #[test]
    fn calibrator_memoizes() {
        let mut cal = Calibrator::new(K, Instructions::new(WORK));
        let a = cal.tw("gobmk");
        let b = cal.tw("gobmk");
        assert_eq!(a, b);
        assert!(a > cal.solo("gobmk").cycles);
    }

    #[test]
    fn tw_exceeds_solo_runtime_by_margin() {
        let mut cal = Calibrator::new(K, Instructions::new(WORK));
        let solo = cal.solo("povray").cycles;
        let tw = cal.tw("povray");
        assert_eq!(tw, solo.scale(TW_MARGIN));
    }
}
