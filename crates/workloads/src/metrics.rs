//! Metrics over run outcomes: the quantities the paper's figures report.

use crate::runner::RunOutcome;
use cmpqos_core::ExecutionMode;
use cmpqos_types::RunningStats;
use std::collections::BTreeMap;

/// Deadline hit rate: the fraction of jobs that met their deadlines.
///
/// For QoS configurations the paper computes this over Strict and
/// Elastic(X) jobs only (Opportunistic jobs have no rigid deadline); for
/// `EqualPart` it is over all jobs. Pass `reserved_only` accordingly, or
/// use [`paper_hit_rate`] to pick automatically.
#[must_use]
pub fn deadline_hit_rate(outcome: &RunOutcome, reserved_only: bool) -> f64 {
    let mut total = 0usize;
    let mut hit = 0usize;
    for j in &outcome.accepted {
        if reserved_only && !j.report.job.mode.reserves_resources() {
            continue;
        }
        total += 1;
        if j.report.met_deadline() {
            hit += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

/// The hit rate the paper reports for this configuration (Figures 5a, 9a).
#[must_use]
pub fn paper_hit_rate(outcome: &RunOutcome) -> f64 {
    deadline_hit_rate(outcome, outcome.configuration.uses_admission_control())
}

/// Job throughput of `other` normalized to `base` (Figures 5b, 9b):
/// `base.makespan / other.makespan`, so 1.25 means 25% higher throughput
/// than the base.
#[must_use]
pub fn normalized_throughput(base: &RunOutcome, other: &RunOutcome) -> f64 {
    if other.makespan.get() == 0 {
        0.0
    } else {
        base.makespan.as_f64() / other.makespan.as_f64()
    }
}

/// Wall-clock statistics (avg/min/max in cycles) per execution mode
/// (Figure 6's candles).
#[must_use]
pub fn wall_clock_by_mode(outcome: &RunOutcome) -> BTreeMap<&'static str, RunningStats> {
    let mut map: BTreeMap<&'static str, RunningStats> = BTreeMap::new();
    for j in &outcome.accepted {
        let Some(wc) = j.report.wall_clock() else {
            continue;
        };
        let key = mode_label(j.report.job.mode);
        map.entry(key).or_default().record(wc.as_f64());
    }
    map
}

/// A short stable label for a mode.
#[must_use]
pub fn mode_label(mode: ExecutionMode) -> &'static str {
    match mode {
        ExecutionMode::Strict => "Strict",
        ExecutionMode::Elastic(_) => "Elastic",
        ExecutionMode::Opportunistic => "Opportunistic",
    }
}

/// The paper's per-job sample length: 200M instructions.
pub const PAPER_WORK: u64 = 200_000_000;

/// LAC occupancy: modeled admission/scheduling cost as a fraction of the
/// workload's wall-clock time (Section 7.5; the paper reports < 1%).
///
/// The modeled cost of an admission test is an *absolute* software cost
/// (microseconds of user-level list scanning), while our runs shrink each
/// job from the paper's 200M instructions to `outcome.work`. The number of
/// admission tests is scale-invariant (arrival rate is tied to `tw`), so
/// the faithful occupancy divides by the paper-equivalent wall-clock:
/// `makespan · (200M / work)`.
#[must_use]
pub fn lac_occupancy(outcome: &RunOutcome) -> f64 {
    if outcome.makespan.get() == 0 {
        return 0.0;
    }
    let unscale = PAPER_WORK as f64 / outcome.work.as_f64().max(1.0);
    outcome.lac_cost.as_f64() / (outcome.makespan.as_f64() * unscale)
}

/// Mean wall-clock of jobs in one mode, if any completed.
#[must_use]
pub fn mean_wall_clock(outcome: &RunOutcome, mode_name: &str) -> Option<f64> {
    wall_clock_by_mode(outcome)
        .get(mode_name)
        .map(RunningStats::mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::WorkloadSpec;
    use crate::configs::Configuration;
    use crate::runner::{run, RunConfig};
    use cmpqos_types::Instructions;

    fn outcome(configuration: Configuration) -> RunOutcome {
        run(&RunConfig {
            workload: WorkloadSpec::single("gobmk", 6),
            configuration,
            scale: 16,
            work: Instructions::new(60_000),
            seed: 11,
            stealing_enabled: true,
            steal_interval: None,
            events: None,
        })
    }

    #[test]
    fn qos_configuration_hits_all_deadlines() {
        let o = outcome(Configuration::AllStrict);
        assert_eq!(paper_hit_rate(&o), 1.0);
        assert!(lac_occupancy(&o) < 0.05, "occupancy {}", lac_occupancy(&o));
    }

    #[test]
    fn normalized_throughput_is_relative() {
        let a = outcome(Configuration::AllStrict);
        assert!((normalized_throughput(&a, &a) - 1.0).abs() < 1e-12);
        let e = outcome(Configuration::EqualPart);
        // EqualPart completes the batch faster (no fragmentation).
        assert!(normalized_throughput(&a, &e) > 1.0);
    }

    #[test]
    fn wall_clock_stats_group_by_mode() {
        let o = outcome(Configuration::Hybrid1);
        let stats = wall_clock_by_mode(&o);
        assert!(stats.contains_key("Strict"));
        assert!(stats.contains_key("Opportunistic"));
        for s in stats.values() {
            assert!(s.count() > 0);
            assert!(s.mean() > 0.0);
        }
    }

    #[test]
    fn mode_labels() {
        assert_eq!(mode_label(ExecutionMode::Strict), "Strict");
        assert_eq!(
            mode_label(ExecutionMode::Elastic(cmpqos_types::Percent::new(5.0))),
            "Elastic"
        );
    }
}
