//! Poisson job arrivals.
//!
//! The paper assumes a fully utilized 128-CMP server: "on a 4-core CMP, in
//! one job's wall-clock time, there are on average 4 × 128 new jobs that
//! arrive and probe the CMP's Local Admission Controller". We model that as
//! a Poisson process whose mean inter-arrival time is `tw / (cores × 128)`.

use cmpqos_types::Cycles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's server size (number of CMP nodes feeding submissions).
pub const SERVER_CMPS: u64 = 128;

/// A deterministic Poisson arrival stream.
///
/// # Numeric audit
///
/// `now` accumulates `-mean · ln(u)` in f64. Per-seed determinism holds
/// within one build, and rounding cannot break monotonicity (each
/// increment is positive and `ceil` is monotone), but `f64::ln` routes
/// to the platform libm, which IEEE 754 does not pin to a bit-exact
/// result — so cross-toolchain byte-identity is *not* guaranteed here
/// the way it is for the integer engine. The golden-sequence test below
/// pins one seed's exact output to surface any such drift. New code
/// that needs portable bit-exact sampling should use the Q32 fixed-point
/// sampler in `cmpqos-scenario` instead of this stream.
///
/// # Examples
///
/// ```
/// use cmpqos_workloads::arrivals::ArrivalStream;
/// use cmpqos_types::Cycles;
///
/// let mut arr = ArrivalStream::paper_rate(Cycles::new(1_000_000), 4, 7);
/// let t0 = arr.next_arrival();
/// let t1 = arr.next_arrival();
/// assert!(t1 > t0);
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    mean_inter_arrival: f64,
    now: f64,
    rng: StdRng,
}

impl ArrivalStream {
    /// Creates a stream with the given mean inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    #[must_use]
    pub fn new(mean: Cycles, seed: u64) -> Self {
        assert!(mean > Cycles::ZERO, "mean inter-arrival must be positive");
        Self {
            mean_inter_arrival: mean.as_f64(),
            now: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The paper's rate: `cores × 128` arrivals per `tw`.
    #[must_use]
    pub fn paper_rate(tw: Cycles, cores: u64, seed: u64) -> Self {
        let mean = (tw.as_f64() / (cores * SERVER_CMPS) as f64).max(1.0);
        Self::new(Cycles::new(mean.ceil() as u64), seed)
    }

    /// Absolute time of the next arrival (exponential increments).
    pub fn next_arrival(&mut self) -> Cycles {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        self.now += -self.mean_inter_arrival * u.ln();
        Cycles::new(self.now.ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_monotonic() {
        let mut s = ArrivalStream::new(Cycles::new(100), 7);
        let mut last = Cycles::ZERO;
        for _ in 0..100 {
            let t = s.next_arrival();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn mean_matches_configuration() {
        let mut s = ArrivalStream::new(Cycles::new(1_000), 42);
        let n = 20_000;
        let mut last = Cycles::ZERO;
        for _ in 0..n {
            last = s.next_arrival();
        }
        let mean = last.as_f64() / f64::from(n);
        assert!((mean - 1000.0).abs() < 50.0, "empirical mean {mean}");
    }

    #[test]
    fn paper_rate_is_dense() {
        let tw = Cycles::new(512_000);
        let mut s = ArrivalStream::paper_rate(tw, 4, 1);
        // 512 arrivals expected per tw: the hundredth arrival lands well
        // within the first tw.
        let mut t = Cycles::ZERO;
        for _ in 0..100 {
            t = s.next_arrival();
        }
        assert!(t < tw, "arrival 100 at {t}");
    }

    /// Pins the exact arrival sequence for one seed. The stream sums
    /// `-mean · ln(u)` in f64, so its output depends on the platform's
    /// `ln` implementation: if a toolchain or libm change ever perturbs a
    /// single bit, the ceil'd cycle values shift and this test names the
    /// drift immediately instead of letting it masquerade as a logic
    /// regression elsewhere.
    #[test]
    fn golden_sequence_for_seed_7() {
        let mut s = ArrivalStream::new(Cycles::new(100), 7);
        let seq: Vec<u64> = (0..16).map(|_| s.next_arrival().get()).collect();
        assert_eq!(
            seq,
            [
                290, 466, 499, 584, 588, 664, 697, 807, 809, 1071, 1287, 1464, 1494, 1712, 1783,
                2016
            ]
        );
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = ArrivalStream::new(Cycles::new(100), 5);
        let mut b = ArrivalStream::new(Cycles::new(100), 5);
        for _ in 0..50 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }
}
