//! Workload composition: single-benchmark 10-job workloads and the Table 3
//! mixed-benchmark workloads.

use cmpqos_core::ExecutionMode;
use cmpqos_types::Percent;
use std::fmt;

/// One job slot in a workload: a benchmark plus its *role* (the execution
/// mode the mix assigns it; configurations may flatten it, see
/// [`crate::Configuration::apply_to_role`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JobTemplate {
    /// Benchmark name (must exist in [`cmpqos_trace::spec`]).
    pub bench: String,
    /// The slot's preferred mode (Table 3 role); `None` means the mode is
    /// decided purely by the configuration's slot pattern.
    pub role: Option<ExecutionMode>,
}

/// A 10-job workload specification.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    name: String,
    slots: Vec<JobTemplate>,
}

impl WorkloadSpec {
    /// A single-benchmark workload: `n` instances of `bench`, modes decided
    /// by the configuration's slot pattern.
    #[must_use]
    pub fn single(bench: &str, n: usize) -> Self {
        Self {
            name: format!("{bench} x{n}"),
            slots: (0..n)
                .map(|_| JobTemplate {
                    bench: bench.to_string(),
                    role: None,
                })
                .collect(),
        }
    }

    /// Table 3's Mix-1 — favorable to resource stealing: `hmmer` (Strict),
    /// `gobmk` (Elastic(5%), the cache-insensitive donor) and `bzip2`
    /// (Opportunistic, the cache-sensitive recipient). Ten jobs cycling
    /// through the three roles (4 hmmer / 3 gobmk / 3 bzip2).
    #[must_use]
    pub fn mix1() -> Self {
        Self::mix("Mix-1", "hmmer", "gobmk", "bzip2")
    }

    /// Table 3's Mix-2 — unfavorable: swaps the roles of `bzip2` (now the
    /// Elastic donor, though cache-sensitive) and `gobmk` (Opportunistic).
    #[must_use]
    pub fn mix2() -> Self {
        Self::mix("Mix-2", "hmmer", "bzip2", "gobmk")
    }

    fn mix(name: &str, strict: &str, elastic: &str, opportunistic: &str) -> Self {
        let roles = [
            (strict, ExecutionMode::Strict),
            (elastic, ExecutionMode::Elastic(Percent::new(5.0))),
            (opportunistic, ExecutionMode::Opportunistic),
        ];
        let mut slots = Vec::with_capacity(10);
        for i in 0..10 {
            let (bench, role) = &roles[i % 3];
            slots.push(JobTemplate {
                bench: (*bench).to_string(),
                role: Some(*role),
            });
        }
        Self {
            name: name.to_string(),
            slots,
        }
    }

    /// The workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The job slots, in acceptance order.
    #[must_use]
    pub fn slots(&self) -> &[JobTemplate] {
        &self.slots
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the workload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Distinct benchmark names used.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.slots.iter().map(|s| s.bench.as_str()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} jobs)", self.name, self.slots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_workload_repeats_bench() {
        let w = WorkloadSpec::single("bzip2", 10);
        assert_eq!(w.len(), 10);
        assert!(w
            .slots()
            .iter()
            .all(|s| s.bench == "bzip2" && s.role.is_none()));
        assert_eq!(w.benchmarks(), vec!["bzip2"]);
    }

    #[test]
    fn mix1_roles_match_table3() {
        let w = WorkloadSpec::mix1();
        assert_eq!(w.len(), 10);
        let strict = w
            .slots()
            .iter()
            .filter(|s| s.role == Some(ExecutionMode::Strict))
            .count();
        let elastic = w
            .slots()
            .iter()
            .filter(|s| matches!(s.role, Some(ExecutionMode::Elastic(_))))
            .count();
        let opp = w
            .slots()
            .iter()
            .filter(|s| s.role == Some(ExecutionMode::Opportunistic))
            .count();
        assert_eq!((strict, elastic, opp), (4, 3, 3));
        // Strict role is hmmer; elastic gobmk; opportunistic bzip2.
        for s in w.slots() {
            match s.role.unwrap() {
                ExecutionMode::Strict => assert_eq!(s.bench, "hmmer"),
                ExecutionMode::Elastic(_) => assert_eq!(s.bench, "gobmk"),
                ExecutionMode::Opportunistic => assert_eq!(s.bench, "bzip2"),
            }
        }
    }

    #[test]
    fn mix2_swaps_donor_and_recipient() {
        let w = WorkloadSpec::mix2();
        for s in w.slots() {
            match s.role.unwrap() {
                ExecutionMode::Strict => assert_eq!(s.bench, "hmmer"),
                ExecutionMode::Elastic(_) => assert_eq!(s.bench, "bzip2"),
                ExecutionMode::Opportunistic => assert_eq!(s.bench, "gobmk"),
            }
        }
        assert_eq!(w.benchmarks(), vec!["bzip2", "gobmk", "hmmer"]);
    }

    #[test]
    fn display_mentions_name_and_size() {
        assert_eq!(WorkloadSpec::mix1().to_string(), "Mix-1 (10 jobs)");
    }
}
