//! The deterministic integer PID policy.
//!
//! Everything is integer-denominated: errors in milli-CPI, gains in
//! milli-units, the output quantized to a small intervention *level*.
//! [`pid_step`] is a pure function of `(config, state, error)` — no
//! floats on the control path, no clocks, no randomness — which is what
//! lets the testkit brute-force the same law in `i128` and diff the two
//! implementations over millions of seed-derived error streams.

use crate::policy::Policy;
use cmpqos_core::{EpochView, ExecutionMode, KnobUpdate, StealingConfig};
use cmpqos_types::{Instructions, JobId};
use std::collections::BTreeMap;

/// Gains and clamps for the [`Pid`] policy. All integer milli-units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PidConfig {
    /// Proportional gain, milli-units (`1000` = 1.0).
    pub kp_milli: i64,
    /// Integral gain, milli-units.
    pub ki_milli: i64,
    /// Derivative gain, milli-units.
    pub kd_milli: i64,
    /// Anti-windup clamp: the accumulated error is held in
    /// `[-integral_bound, integral_bound]`.
    pub integral_bound: i64,
    /// Errors with `|e| <= deadband_milli` hold the current level
    /// (hysteresis): tiny oscillations around the target don't twitch
    /// the knobs.
    pub deadband_milli: i64,
    /// The strongest intervention level; levels are `0..=max_level`.
    pub max_level: u32,
    /// Raw controller output per level step (the output quantizer).
    pub output_scale: i64,
    /// Percent of core speed cut per global intervention level.
    pub throttle_step: u8,
    /// Floor for the floating-core speed, percent.
    pub min_speed_pct: u8,
    /// The donors' un-intervened repartitioning interval; must match the
    /// scheduler's [`StealingConfig`] for level 0 to be a no-op.
    pub base_interval: Instructions,
}

impl Default for PidConfig {
    fn default() -> Self {
        Self {
            kp_milli: 1000,
            ki_milli: 100,
            kd_milli: 0,
            integral_bound: 10_000,
            deadband_milli: 50,
            max_level: 4,
            output_scale: 200_000,
            throttle_step: 15,
            min_speed_pct: 40,
            base_interval: StealingConfig::default().interval,
        }
    }
}

/// One job's controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PidState {
    /// Accumulated (clamped) error.
    pub integral: i64,
    /// Previous step's error, for the derivative term.
    pub prev_error: i64,
    /// Current intervention level.
    pub level: u32,
}

/// One discrete PID step: updates `state` from the window's error (in
/// milli-CPI, positive = over target) and returns the new intervention
/// level in `0..=config.max_level`.
///
/// Inside the deadband nothing moves — level, integral and previous
/// error all hold, so a job sitting at its target produces a bit-stable
/// trajectory.
pub fn pid_step(config: &PidConfig, state: &mut PidState, error_milli: i64) -> u32 {
    if error_milli.abs() <= config.deadband_milli {
        return state.level;
    }
    state.integral = state
        .integral
        .saturating_add(error_milli)
        .clamp(-config.integral_bound, config.integral_bound);
    let derivative = error_milli.saturating_sub(state.prev_error);
    state.prev_error = error_milli;
    let u = config
        .kp_milli
        .saturating_mul(error_milli)
        .saturating_add(config.ki_milli.saturating_mul(state.integral))
        .saturating_add(config.kd_milli.saturating_mul(derivative));
    let scale = config.output_scale.max(1);
    state.level = u.div_euclid(scale).clamp(0, i64::from(config.max_level)) as u32;
    state.level
}

/// The per-job PID policy.
///
/// Each sampled job with an SLO gets its own [`PidState`]; its level maps
/// to knob positions monotonically:
///
/// * slack = `baseline × (max_level − level) / max_level` — level 0 is
///   the declared Elastic(X), `max_level` cuts donation to zero;
/// * interval = `base_interval × (level + 1)`;
/// * floating-core speed = `100 − max_job_level × throttle_step`,
///   floored at `min_speed_pct` (the *worst* violator sets the global
///   throttle).
///
/// Level 0 therefore reproduces the static operating point exactly: every
/// returned update equals the knob's current value and the scheduler
/// emits nothing — the metamorphic loose-SLO tests pin this.
#[derive(Debug, Clone)]
pub struct Pid {
    config: PidConfig,
    jobs: BTreeMap<JobId, PidState>,
}

impl Pid {
    /// A PID policy with the given gains.
    #[must_use]
    pub fn new(config: PidConfig) -> Self {
        Self {
            config,
            jobs: BTreeMap::new(),
        }
    }

    /// The configured gains.
    #[must_use]
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// The controller state for one job, if it has been sampled.
    #[must_use]
    pub fn state(&self, job: JobId) -> Option<&PidState> {
        self.jobs.get(&job)
    }
}

impl Policy for Pid {
    fn name(&self) -> &'static str {
        "pid"
    }

    fn decide(&mut self, view: &EpochView<'_>) -> Vec<KnobUpdate> {
        // Forget jobs that left the sample set (completed or revoked).
        self.jobs
            .retain(|&id, _| view.samples.iter().any(|s| s.job == id));
        let mut updates = Vec::new();
        let mut global_level: u32 = 0;
        for s in view.samples {
            let Some(slo) = s.slo else { continue };
            // An idle window says nothing; hold the current level.
            let level = match s.cpi_milli() {
                Some(cpi) => {
                    let target = i64::try_from(slo.max_cpi_milli).unwrap_or(i64::MAX);
                    let delivered = i64::try_from(cpi).unwrap_or(i64::MAX);
                    let st = self.jobs.entry(s.job).or_default();
                    pid_step(&self.config, st, delivered.saturating_sub(target))
                }
                None => self.jobs.get(&s.job).map_or(0, |st| st.level),
            };
            global_level = global_level.max(level);
            if let ExecutionMode::Elastic(x) = s.mode {
                let baseline = (x.value() * 1000.0).round().max(0.0) as u64;
                let max = self.config.max_level.max(1);
                let slack = baseline * u64::from(max - level.min(max)) / u64::from(max);
                updates.push(KnobUpdate::StealSlack {
                    job: s.job,
                    milli_pct: slack,
                });
                let interval = Instructions::new(
                    self.config
                        .base_interval
                        .get()
                        .saturating_mul(u64::from(level) + 1),
                );
                updates.push(KnobUpdate::StealInterval {
                    job: s.job,
                    interval,
                });
            }
        }
        let cut = global_level.saturating_mul(u32::from(self.config.throttle_step));
        let speed = 100u32
            .saturating_sub(cut)
            .max(u32::from(self.config.min_speed_pct)) as u8;
        for &core in view.floating_cores {
            updates.push(KnobUpdate::CoreSpeed {
                core,
                percent: speed,
            });
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_core::{EpochSample, SloSpec};
    use cmpqos_types::{CoreId, Cycles, Percent};

    fn cfg() -> PidConfig {
        PidConfig::default()
    }

    #[test]
    fn deadband_holds_everything() {
        let c = cfg();
        let mut st = PidState {
            integral: 123,
            prev_error: -7,
            level: 2,
        };
        let before = st;
        assert_eq!(pid_step(&c, &mut st, 50), 2);
        assert_eq!(pid_step(&c, &mut st, -50), 2);
        assert_eq!(st, before, "deadband must not mutate state");
    }

    #[test]
    fn sustained_error_escalates_and_recovery_releases() {
        let c = cfg();
        let mut st = PidState::default();
        let mut last = 0;
        for _ in 0..40 {
            last = pid_step(&c, &mut st, 600);
        }
        assert!(last >= 2, "sustained 0.6-CPI error must escalate: {last}");
        assert!(st.integral <= c.integral_bound);
        for _ in 0..60 {
            last = pid_step(&c, &mut st, -600);
        }
        assert_eq!(last, 0, "sustained headroom must fully release");
    }

    #[test]
    fn integral_stays_clamped_under_extreme_error() {
        let c = cfg();
        let mut st = PidState::default();
        for _ in 0..10 {
            pid_step(&c, &mut st, i64::MAX / 4);
        }
        assert_eq!(st.integral, c.integral_bound);
        for _ in 0..10 {
            pid_step(&c, &mut st, i64::MIN / 4);
        }
        assert_eq!(st.integral, -c.integral_bound);
    }

    fn sample(job: u32, mode: ExecutionMode, cpi_milli: u64, slo: Option<SloSpec>) -> EpochSample {
        EpochSample {
            job: JobId::new(job),
            core: Some(CoreId::new(job)),
            mode,
            slo,
            instructions: Instructions::new(1000),
            cycles: Cycles::new(cpi_milli), // 1000 instr → cycles = milli-CPI
            l2_misses: 0,
        }
    }

    #[test]
    fn loose_slo_reproduces_the_static_operating_point() {
        let mut pid = Pid::new(cfg());
        let samples = [sample(
            0,
            ExecutionMode::Elastic(Percent::new(20.0)),
            3500,
            Some(SloSpec::unbounded()),
        )];
        let floating = [CoreId::new(2), CoreId::new(3)];
        let view = EpochView {
            now: Cycles::new(100_000),
            samples: &samples,
            floating_cores: &floating,
        };
        let updates = pid.decide(&view);
        // Level stays 0: every knob is asked to hold its baseline value.
        assert!(updates.contains(&KnobUpdate::StealSlack {
            job: JobId::new(0),
            milli_pct: 20_000,
        }));
        assert!(updates.contains(&KnobUpdate::StealInterval {
            job: JobId::new(0),
            interval: StealingConfig::default().interval,
        }));
        for &core in &floating {
            assert!(updates.contains(&KnobUpdate::CoreSpeed { core, percent: 100 }));
        }
    }

    #[test]
    fn violating_elastic_donor_gets_slack_cut_and_floaters_throttled() {
        let mut pid = Pid::new(cfg());
        let samples = [sample(
            0,
            ExecutionMode::Elastic(Percent::new(20.0)),
            5000,
            Some(SloSpec::cpi(3.0)), // 2.0 CPI over target
        )];
        let floating = [CoreId::new(3)];
        let view = EpochView {
            now: Cycles::new(100_000),
            samples: &samples,
            floating_cores: &floating,
        };
        let mut slack = u64::MAX;
        let mut speed = u8::MAX;
        for _ in 0..20 {
            for u in pid.decide(&view) {
                match u {
                    KnobUpdate::StealSlack { milli_pct, .. } => slack = milli_pct,
                    KnobUpdate::CoreSpeed { percent, .. } => speed = percent,
                    KnobUpdate::StealInterval { .. } => {}
                }
            }
        }
        assert!(
            slack < 20_000,
            "slack must be cut from Elastic(20): {slack}"
        );
        assert!(speed < 100, "floating cores must be throttled: {speed}");
        assert!(speed >= cfg().min_speed_pct);
        let st = pid.state(JobId::new(0)).expect("state tracked");
        assert!(st.level > 0);
    }

    #[test]
    fn state_is_dropped_when_a_job_leaves_the_sample_set() {
        let mut pid = Pid::new(cfg());
        let samples = [sample(
            7,
            ExecutionMode::Strict,
            9000,
            Some(SloSpec::cpi(1.0)),
        )];
        let view = EpochView {
            now: Cycles::new(1),
            samples: &samples,
            floating_cores: &[],
        };
        pid.decide(&view);
        assert!(pid.state(JobId::new(7)).is_some());
        let empty = EpochView {
            now: Cycles::new(2),
            samples: &[],
            floating_cores: &[],
        };
        pid.decide(&empty);
        assert!(pid.state(JobId::new(7)).is_none());
    }
}
