//! # cmpqos-adapt — the closed-loop adaptive control plane
//!
//! The paper's framework (and `cmpqos-core`) is feed-forward: jobs declare
//! resource targets, admission reserves them, and nobody ever checks what
//! performance was actually *delivered*. This crate closes the loop. Each
//! control epoch the scheduler samples every live job's windowed CPI and
//! miss rate (`cmpqos_core::EpochSample`) and hands the batch to an
//! installed controller; the controller compares delivered performance
//! against each job's declared [`SloSpec`](cmpqos_core::SloSpec) and
//! retunes three actuators:
//!
//! * **Stealing slack** — an Elastic donor over its SLO gets its guard
//!   slack cut (less capacity donated to Opportunistic work), restored as
//!   the violation clears.
//! * **Stealing cadence** — the donor's repartitioning interval stretches
//!   under pressure, slowing the rate of further donation.
//! * **Core speed** — cores hosting floating (Opportunistic) work are
//!   DVFS-throttled, freeing shared bus bandwidth for reserved jobs.
//!
//! The decision logic lives behind the open [`Policy`] trait. Two
//! implementations ship:
//!
//! * [`Static`] — never intervenes; the baseline the experiments compare
//!   against (equivalent to the paper's fixed Elastic(X) operating point).
//! * [`Pid`] — a per-job discrete PID controller in pure integer
//!   arithmetic (milli-CPI error, clamped integral for anti-windup, a
//!   deadband for hysteresis). Determinism is load-bearing: a policy is a
//!   pure function of its own state plus the sampled window, so adaptive
//!   runs stay byte-identical across `--jobs` widths and the testkit can
//!   check [`pid_step`] against a brute-force oracle.
//!
//! [`AdaptiveController`] adapts any [`Policy`] to the scheduler's
//! [`EpochController`](cmpqos_core::EpochController) seam:
//!
//! ```
//! use cmpqos_adapt::{AdaptiveController, PidConfig};
//! use cmpqos_core::{QosScheduler, SchedulerConfig};
//! use cmpqos_system::SystemConfig;
//! use cmpqos_types::Cycles;
//!
//! let mut sched = QosScheduler::new(SystemConfig::paper(), SchedulerConfig::default());
//! sched.set_epoch_controller(
//!     Box::new(AdaptiveController::pid(PidConfig::default())),
//!     Cycles::new(100_000),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pid;
pub mod policy;

pub use pid::{pid_step, Pid, PidConfig, PidState};
pub use policy::{AdaptiveController, Policy, Static};
