//! The open [`Policy`] seam and the scheduler-facing adapter.

use crate::pid::{Pid, PidConfig};
use cmpqos_core::{EpochController, EpochView, KnobUpdate};

/// A closed-loop decision rule: sampled window in, knob movements out.
///
/// This is deliberately the same shape as
/// [`EpochController`](cmpqos_core::EpochController), but it lives on the
/// *adaptive* side of the seam: policies are pure decision functions that
/// can be unit-tested, brute-force-checked and composed without a
/// scheduler in sight, while [`AdaptiveController`] does the one-line
/// adaptation to the scheduler's hook. Third parties add policies here
/// (e.g. a bang-bang rule or a model-predictive controller) without
/// touching `cmpqos-core`.
pub trait Policy: Send {
    /// A short stable name, for labels and experiment output.
    fn name(&self) -> &'static str;

    /// Decides the knob movements for the epoch that just ended.
    ///
    /// Must be a deterministic pure function of `self` plus `view` — no
    /// clocks, no ambient randomness — so adaptive runs stay
    /// byte-identical across `--jobs` widths.
    fn decide(&mut self, view: &EpochView<'_>) -> Vec<KnobUpdate>;
}

/// The do-nothing policy: the static-X baseline the experiments compare
/// against. Never returns an update, so an adaptive run with [`Static`]
/// differs from an un-instrumented run only by the epoch wake-ups
/// themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct Static;

impl Policy for Static {
    fn name(&self) -> &'static str {
        "static"
    }

    fn decide(&mut self, _view: &EpochView<'_>) -> Vec<KnobUpdate> {
        Vec::new()
    }
}

/// Adapts any [`Policy`] to the scheduler's
/// [`EpochController`](cmpqos_core::EpochController) hook.
pub struct AdaptiveController {
    policy: Box<dyn Policy>,
}

impl std::fmt::Debug for AdaptiveController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveController")
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl AdaptiveController {
    /// Wraps an arbitrary policy.
    #[must_use]
    pub fn new(policy: Box<dyn Policy>) -> Self {
        Self { policy }
    }

    /// The PID policy with the given gains.
    #[must_use]
    pub fn pid(config: PidConfig) -> Self {
        Self::new(Box::new(Pid::new(config)))
    }

    /// The never-intervening baseline.
    #[must_use]
    pub fn baseline() -> Self {
        Self::new(Box::new(Static))
    }
}

impl EpochController for AdaptiveController {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn epoch(&mut self, view: &EpochView<'_>) -> Vec<KnobUpdate> {
        self.policy.decide(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_types::Cycles;

    #[test]
    fn static_policy_never_moves_a_knob() {
        let mut c = AdaptiveController::baseline();
        assert_eq!(c.name(), "static");
        let view = EpochView {
            now: Cycles::new(1),
            samples: &[],
            floating_cores: &[],
        };
        assert!(c.epoch(&view).is_empty());
    }

    #[test]
    fn pid_adapter_reports_its_policy_name() {
        let c = AdaptiveController::pid(PidConfig::default());
        assert_eq!(EpochController::name(&c), "pid");
    }
}
