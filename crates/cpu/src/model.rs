//! Luo's additive CPI model (the analytical basis for resource stealing).

use crate::perf::PerfCounters;
use cmpqos_types::Cycles;

/// The closed-form model `CPI = CPI_L1∞ + h2·t2 + hm·tm` (Section 4.2).
///
/// The paper's resource-stealing guard relies on this additivity: because
/// `hm·tm` is only one non-negative component of CPI, an `X%` increase in
/// `hm` (the L2 miss rate) produces *less than* an `X%` increase in CPI —
/// so bounding the L2 miss increase with duplicate tags safely bounds the
/// slowdown of an `Elastic(X)` job.
///
/// # Examples
///
/// ```
/// use cmpqos_cpu::CpiModel;
/// use cmpqos_types::Cycles;
///
/// let m = CpiModel::new(1.5, Cycles::new(10), Cycles::new(300));
/// let cpi = m.cpi(0.03, 0.0055);
/// assert!((cpi - (1.5 + 0.3 + 1.65)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiModel {
    base: f64,
    t2: Cycles,
    tm: Cycles,
}

impl CpiModel {
    /// Creates a model with base CPI and the L2-hit / L2-miss penalties.
    #[must_use]
    pub fn new(base: f64, t2: Cycles, tm: Cycles) -> Self {
        Self { base, t2, tm }
    }

    /// The paper's latencies: `t2 = 10`, `tm = 300` cycles.
    #[must_use]
    pub fn with_paper_latencies(base: f64) -> Self {
        Self::new(base, Cycles::new(10), Cycles::new(300))
    }

    /// `CPI_L1∞`.
    #[must_use]
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Predicted CPI for `h2` L2 accesses/instruction and `hm` L2
    /// misses/instruction.
    #[must_use]
    pub fn cpi(&self, h2: f64, hm: f64) -> f64 {
        self.base + h2 * self.t2.as_f64() + hm * self.tm.as_f64()
    }

    /// Relative CPI increase when the L2 miss rate rises by
    /// `miss_increase` (e.g. `0.05` for +5%) at operating point `(h2, hm)`.
    ///
    /// Always less than `miss_increase` itself when `base` or `h2·t2` are
    /// positive — the inequality that justifies using the L2 miss rate as a
    /// conservative stealing guard.
    #[must_use]
    pub fn cpi_increase_for_miss_increase(&self, h2: f64, hm: f64, miss_increase: f64) -> f64 {
        let before = self.cpi(h2, hm);
        let after = self.cpi(h2, hm * (1.0 + miss_increase));
        (after - before) / before
    }

    /// Evaluates the model against measured counters, returning
    /// `(predicted, measured)` CPIs. Used by validation tests: on an
    /// uncontended system the two agree closely.
    #[must_use]
    pub fn validate(&self, perf: &PerfCounters) -> (f64, f64) {
        (self.cpi(perf.h2(), perf.mpi()), perf.cpi())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point_bzip2() {
        // Table 1: bzip2 at 7 ways: miss rate 20%, MPI 0.0055.
        let m = CpiModel::with_paper_latencies(1.0);
        let h2 = 0.0055 / 0.20;
        let cpi = m.cpi(h2, 0.0055);
        assert!(cpi > 2.5 && cpi < 3.5, "bzip2-like CPI {cpi}");
    }

    #[test]
    fn miss_increase_bounds_cpi_increase() {
        let m = CpiModel::with_paper_latencies(1.5);
        // At bzip2's operating point, a 5% miss increase must give a CPI
        // increase strictly below 5% (the stealing-guard inequality), and in
        // the paper's observed range (roughly one-third to one-half).
        let inc = m.cpi_increase_for_miss_increase(0.03, 0.0055, 0.05);
        assert!(inc < 0.05);
        assert!(inc > 0.01, "increase {inc}");
    }

    #[test]
    fn zero_miss_increase_means_zero_cpi_increase() {
        let m = CpiModel::with_paper_latencies(1.0);
        assert_eq!(m.cpi_increase_for_miss_increase(0.1, 0.01, 0.0), 0.0);
    }

    #[test]
    fn validate_compares_prediction_and_measurement() {
        let m = CpiModel::with_paper_latencies(1.0);
        let mut p = PerfCounters::default();
        // One instruction: base 1 cycle + L2 miss of 300.
        p.charge_base(Cycles::new(1));
        p.record_l1_access();
        p.record_l2_miss(Cycles::new(300));
        p.retire(Cycles::new(301));
        let (pred, meas) = m.validate(&p);
        assert_eq!(meas, 301.0);
        // Model: 1 + 1*10 + 1*300 = 311 (h2 includes the missing access).
        assert_eq!(pred, 311.0);
    }
}
