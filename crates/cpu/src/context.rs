//! Per-job execution contexts.

use crate::perf::PerfCounters;
use cmpqos_trace::{Access, TraceSource};
use cmpqos_types::Cycles;

/// Memory-hierarchy outcome of one access, reported back to the context by
/// the system model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOutcome {
    /// Hit in the private L1: cost already covered by `CPI_L1∞`.
    L1Hit,
    /// L1 miss, L2 hit: the core stalls for the L2 access penalty.
    L2Hit {
        /// Stall cycles (`t2`).
        stall: Cycles,
    },
    /// L2 miss: the core stalls until memory returns the block.
    L2Miss {
        /// Stall cycles (`t_m`, including queueing).
        stall: Cycles,
    },
}

impl MemOutcome {
    /// The stall this outcome imposes on an in-order core.
    #[must_use]
    pub fn stall(&self) -> Cycles {
        match self {
            MemOutcome::L1Hit => Cycles::ZERO,
            MemOutcome::L2Hit { stall } | MemOutcome::L2Miss { stall } => *stall,
        }
    }
}

/// The execution state of one job: its instruction stream plus performance
/// accounting. Jobs carry their context across cores when migrated or
/// timeshared.
///
/// Driving protocol (used by the system engine):
///
/// 1. [`ExecutionContext::issue`] — consume the next instruction's base
///    cost; returns `(base_cycles, Option<Access>)`.
/// 2. If an access was returned, present it to the memory hierarchy, then
///    call [`ExecutionContext::complete`] with the [`MemOutcome`].
///    If not, call [`ExecutionContext::complete_compute`].
///
/// # Examples
///
/// ```
/// use cmpqos_cpu::{ExecutionContext, MemOutcome};
/// use cmpqos_trace::spec;
///
/// let profile = spec::benchmark("gobmk").unwrap();
/// let mut ctx = ExecutionContext::new(Box::new(profile.instantiate(7, 0)));
/// let (base, access) = ctx.issue();
/// match access {
///     Some(_) => ctx.complete(base, MemOutcome::L1Hit),
///     None => ctx.complete_compute(base),
/// }
/// assert_eq!(ctx.perf().instructions().get(), 1);
/// ```
pub struct ExecutionContext {
    source: Box<dyn TraceSource>,
    perf: PerfCounters,
    /// Fractional base-CPI accumulator (base CPIs like 1.5 are paid as an
    /// extra cycle every other instruction).
    frac: f64,
}

impl std::fmt::Debug for ExecutionContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionContext")
            .field("source", &self.source.name())
            .field("perf", &self.perf)
            .field("frac", &self.frac)
            .finish()
    }
}

impl ExecutionContext {
    /// Creates a context over `source`.
    #[must_use]
    pub fn new(source: Box<dyn TraceSource>) -> Self {
        Self {
            source,
            perf: PerfCounters::default(),
            frac: 0.0,
        }
    }

    /// The job's benchmark name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.source.name()
    }

    /// Performance counters.
    #[must_use]
    pub fn perf(&self) -> &PerfCounters {
        &self.perf
    }

    /// Issues the next instruction: accumulates its base cost and returns
    /// `(base_cycles, access)`.
    pub fn issue(&mut self) -> (Cycles, Option<Access>) {
        let event = self.source.next_instruction();
        self.frac += self.source.base_cpi();
        let whole = self.frac.floor();
        self.frac -= whole;
        (Cycles::new(whole as u64), event.access)
    }

    /// Completes a memory instruction issued with `base` cycles.
    pub fn complete(&mut self, base: Cycles, outcome: MemOutcome) {
        self.perf.charge_base(base);
        self.perf.record_l1_access();
        match outcome {
            MemOutcome::L1Hit => {}
            MemOutcome::L2Hit { stall } => self.perf.record_l2_hit(stall),
            MemOutcome::L2Miss { stall } => self.perf.record_l2_miss(stall),
        }
        self.perf.retire(base + outcome.stall());
    }

    /// Completes a compute-only instruction issued with `base` cycles.
    pub fn complete_compute(&mut self, base: Cycles) {
        self.perf.charge_base(base);
        self.perf.retire(base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_trace::{InstrEvent, TraceSource};

    /// A source with base CPI 1.5 and no memory accesses.
    struct Compute;

    impl TraceSource for Compute {
        fn next_instruction(&mut self) -> InstrEvent {
            InstrEvent::compute()
        }
        fn base_cpi(&self) -> f64 {
            1.5
        }
        fn name(&self) -> &str {
            "compute"
        }
    }

    #[test]
    fn fractional_base_cpi_averages_out() {
        let mut ctx = ExecutionContext::new(Box::new(Compute));
        let mut total = Cycles::ZERO;
        for _ in 0..1000 {
            let (base, access) = ctx.issue();
            assert!(access.is_none());
            ctx.complete_compute(base);
            total += base;
        }
        assert_eq!(total, Cycles::new(1500));
        assert!((ctx.perf().cpi() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn memory_outcomes_accumulate_in_perf() {
        let mut ctx = ExecutionContext::new(Box::new(Compute));
        let (base, _) = ctx.issue();
        ctx.complete(
            base,
            MemOutcome::L2Miss {
                stall: Cycles::new(300),
            },
        );
        let (base, _) = ctx.issue();
        ctx.complete(
            base,
            MemOutcome::L2Hit {
                stall: Cycles::new(10),
            },
        );
        let (base, _) = ctx.issue();
        ctx.complete(base, MemOutcome::L1Hit);
        let p = ctx.perf();
        assert_eq!(p.instructions().get(), 3);
        assert_eq!(p.l1_accesses(), 3);
        assert_eq!(p.l2_accesses(), 2);
        assert_eq!(p.l2_misses(), 1);
        assert_eq!(p.mem_stall_cycles(), Cycles::new(300));
        assert_eq!(p.l2_stall_cycles(), Cycles::new(10));
    }

    #[test]
    fn outcome_stall_accessor() {
        assert_eq!(MemOutcome::L1Hit.stall(), Cycles::ZERO);
        assert_eq!(
            MemOutcome::L2Hit {
                stall: Cycles::new(10)
            }
            .stall(),
            Cycles::new(10)
        );
    }

    #[test]
    fn name_comes_from_source() {
        let ctx = ExecutionContext::new(Box::new(Compute));
        assert_eq!(ctx.name(), "compute");
    }
}
