//! In-order core execution model and CPI accounting.
//!
//! The evaluated CMP uses simple in-order 2 GHz cores, so per-instruction
//! timing decomposes additively, exactly as in Luo's model used by the paper
//! (Section 4.2):
//!
//! ```text
//! CPI = CPI_L1∞ + h2 · t2 + hm · tm
//! ```
//!
//! * [`ExecutionContext`] — the per-*job* execution state: its trace source,
//!   fractional base-CPI accumulator and performance counters. Jobs carry
//!   their contexts across cores (Opportunistic jobs may migrate / be
//!   timeshared), so the counters live here rather than on a core.
//! * [`PerfCounters`] — retired instructions, cycles, per-level access/miss
//!   counts and the additive stall breakdown.
//! * [`CpiModel`] — the closed-form model itself, used by analysis code and
//!   to validate the simulator's additivity.
//! * [`Throttle`] — a DVFS-style per-core frequency scaler (the adaptive
//!   control plane's third actuator), exact integer arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod model;
pub mod perf;
pub mod throttle;

pub use context::{ExecutionContext, MemOutcome};
pub use model::CpiModel;
pub use perf::PerfCounters;
pub use throttle::Throttle;
