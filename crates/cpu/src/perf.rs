//! Per-job performance counters.

use cmpqos_types::{Cycles, Instructions};
use std::fmt;

/// Retired-instruction, cycle and memory-hierarchy counters for one job.
///
/// # Examples
///
/// ```
/// use cmpqos_cpu::PerfCounters;
/// use cmpqos_types::Cycles;
///
/// let mut p = PerfCounters::default();
/// p.retire(Cycles::new(1));
/// p.retire(Cycles::new(3));
/// assert_eq!(p.instructions().get(), 2);
/// assert_eq!(p.cpi(), 2.0);
/// assert_eq!(p.ipc(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PerfCounters {
    instructions: Instructions,
    cycles: Cycles,
    base_cycles: Cycles,
    l2_stall_cycles: Cycles,
    mem_stall_cycles: Cycles,
    l1_accesses: u64,
    l2_accesses: u64,
    l2_misses: u64,
}

impl PerfCounters {
    /// Records one retired instruction costing `cycles` in total.
    pub fn retire(&mut self, cycles: Cycles) {
        self.instructions += Instructions::new(1);
        self.cycles += cycles;
    }

    /// Attributes `cycles` to the base (compute, `CPI_L1∞`) component.
    pub fn charge_base(&mut self, cycles: Cycles) {
        self.base_cycles += cycles;
    }

    /// Records an L1 data access.
    pub fn record_l1_access(&mut self) {
        self.l1_accesses += 1;
    }

    /// Records an L2 access (i.e. an L1 miss) and the stall it caused when
    /// it hit in the L2.
    pub fn record_l2_hit(&mut self, stall: Cycles) {
        self.l2_accesses += 1;
        self.l2_stall_cycles += stall;
    }

    /// Records an L2 miss and its memory stall.
    pub fn record_l2_miss(&mut self, stall: Cycles) {
        self.l2_accesses += 1;
        self.l2_misses += 1;
        self.mem_stall_cycles += stall;
    }

    /// Retired instructions.
    #[must_use]
    pub fn instructions(&self) -> Instructions {
        self.instructions
    }

    /// Total cycles charged to this job (its occupancy of a core).
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.cycles
    }

    /// Cycles attributed to the base component.
    #[must_use]
    pub fn base_cycles(&self) -> Cycles {
        self.base_cycles
    }

    /// Cycles stalled on L2 hits.
    #[must_use]
    pub fn l2_stall_cycles(&self) -> Cycles {
        self.l2_stall_cycles
    }

    /// Cycles stalled on memory (L2 misses).
    #[must_use]
    pub fn mem_stall_cycles(&self) -> Cycles {
        self.mem_stall_cycles
    }

    /// L1 data accesses.
    #[must_use]
    pub fn l1_accesses(&self) -> u64 {
        self.l1_accesses
    }

    /// L2 accesses (L1 misses).
    #[must_use]
    pub fn l2_accesses(&self) -> u64 {
        self.l2_accesses
    }

    /// L2 misses.
    #[must_use]
    pub fn l2_misses(&self) -> u64 {
        self.l2_misses
    }

    /// Cycles per instruction; `0.0` before any instruction retires.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions.get() == 0 {
            0.0
        } else {
            self.cycles.as_f64() / self.instructions.as_f64()
        }
    }

    /// Instructions per cycle; `0.0` before any cycle is charged.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles.get() == 0 {
            0.0
        } else {
            self.instructions.as_f64() / self.cycles.as_f64()
        }
    }

    /// L2 accesses per instruction (the model's `h2`).
    #[must_use]
    pub fn h2(&self) -> f64 {
        if self.instructions.get() == 0 {
            0.0
        } else {
            self.l2_accesses as f64 / self.instructions.as_f64()
        }
    }

    /// L2 misses per instruction (the model's `hm`; Table 1's "L2 misses
    /// per instruction").
    #[must_use]
    pub fn mpi(&self) -> f64 {
        if self.instructions.get() == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.instructions.as_f64()
        }
    }

    /// L2 miss ratio (misses / accesses; Table 1's "L2 miss rate").
    #[must_use]
    pub fn l2_miss_ratio(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l2_accesses as f64
        }
    }

    /// Difference since an earlier snapshot.
    #[must_use]
    pub fn delta_since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            instructions: self.instructions - earlier.instructions,
            cycles: self.cycles - earlier.cycles,
            base_cycles: self.base_cycles - earlier.base_cycles,
            l2_stall_cycles: self.l2_stall_cycles - earlier.l2_stall_cycles,
            mem_stall_cycles: self.mem_stall_cycles - earlier.mem_stall_cycles,
            l1_accesses: self.l1_accesses - earlier.l1_accesses,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            l2_misses: self.l2_misses - earlier.l2_misses,
        }
    }
}

impl fmt::Display for PerfCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instr, {} cycles, IPC {:.3}, h2 {:.4}, MPI {:.4}",
            self.instructions.get(),
            self.cycles.get(),
            self.ipc(),
            self.h2(),
            self.mpi()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_counters() {
        let p = PerfCounters::default();
        assert_eq!(p.cpi(), 0.0);
        assert_eq!(p.ipc(), 0.0);
        assert_eq!(p.h2(), 0.0);
        assert_eq!(p.mpi(), 0.0);
        assert_eq!(p.l2_miss_ratio(), 0.0);
    }

    #[test]
    fn stall_breakdown_is_additive() {
        let mut p = PerfCounters::default();
        p.charge_base(Cycles::new(2));
        p.record_l1_access();
        p.record_l2_hit(Cycles::new(10));
        p.retire(Cycles::new(12));
        p.charge_base(Cycles::new(1));
        p.record_l1_access();
        p.record_l2_miss(Cycles::new(300));
        p.retire(Cycles::new(301));
        assert_eq!(p.cycles(), Cycles::new(313));
        assert_eq!(
            p.base_cycles() + p.l2_stall_cycles() + p.mem_stall_cycles(),
            Cycles::new(313)
        );
        assert_eq!(p.l2_accesses(), 2);
        assert_eq!(p.l2_misses(), 1);
        assert_eq!(p.l2_miss_ratio(), 0.5);
        assert_eq!(p.h2(), 1.0);
        assert_eq!(p.mpi(), 0.5);
    }

    #[test]
    fn delta_since_isolates_an_interval() {
        let mut p = PerfCounters::default();
        p.retire(Cycles::new(5));
        let snap = p;
        p.record_l1_access();
        p.record_l2_miss(Cycles::new(300));
        p.retire(Cycles::new(305));
        let d = p.delta_since(&snap);
        assert_eq!(d.instructions().get(), 1);
        assert_eq!(d.l2_misses(), 1);
        assert_eq!(d.cycles(), Cycles::new(305));
    }

    #[test]
    fn display_contains_ipc() {
        let mut p = PerfCounters::default();
        p.retire(Cycles::new(2));
        assert!(p.to_string().contains("IPC 0.500"));
    }
}
