//! DVFS-style per-core frequency throttle.
//!
//! The adaptive control plane (`cmpqos-adapt`) needs a third actuator
//! besides cache ways and stealing slack: slowing a core down so the jobs
//! it hosts generate less pressure on the shared L2 and memory channel.
//! [`Throttle`] models that as a *speed percentage* applied to the cycles a
//! core spends in its own clock domain — base (compute) cycles and L2-hit
//! stalls. Off-chip memory stalls are not scaled: DRAM does not slow down
//! when a core does.
//!
//! Scaling is exact integer arithmetic with a remainder accumulator, so a
//! long run at speed `p` costs exactly `ceil_accumulated(cycles * 100 / p)`
//! — no drift, no floating point, bit-identical across `--jobs` widths. At
//! speed 100 the scale is a strict no-op (the accumulator is untouched),
//! which is what makes an adaptive run with all knobs at baseline
//! byte-identical to a non-adaptive run.

use cmpqos_types::Cycles;

/// Lowest speed a core may be throttled to, in percent.
pub const MIN_SPEED_PCT: u8 = 25;

/// Full speed: the identity scale.
pub const FULL_SPEED_PCT: u8 = 100;

/// A per-core frequency scaler: stretches core-domain cycles by
/// `100 / speed_pct` using exact integer arithmetic.
///
/// # Examples
///
/// ```
/// use cmpqos_cpu::Throttle;
/// use cmpqos_types::Cycles;
///
/// let mut t = Throttle::full();
/// assert_eq!(t.scale(Cycles::new(7)), Cycles::new(7)); // 100% is a no-op
///
/// t.set_speed(50);
/// // 3 cycles at half speed: 6 cycles, remainder-exact.
/// assert_eq!(t.scale(Cycles::new(3)), Cycles::new(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Throttle {
    speed_pct: u8,
    /// Sub-cycle remainder carried between scalings (hundredths of a
    /// cycle), so repeated small costs accumulate exactly.
    carry: u64,
}

impl Default for Throttle {
    fn default() -> Self {
        Self::full()
    }
}

impl Throttle {
    /// A throttle at full speed (identity).
    #[must_use]
    pub fn full() -> Self {
        Self {
            speed_pct: FULL_SPEED_PCT,
            carry: 0,
        }
    }

    /// Current speed in percent (always in `[MIN_SPEED_PCT, 100]`).
    #[must_use]
    pub fn speed(&self) -> u8 {
        self.speed_pct
    }

    /// Sets the speed, clamped to `[MIN_SPEED_PCT, 100]`. Returns the
    /// previous speed. Changing speed resets the sub-cycle remainder (a
    /// real DVFS transition re-synchronises the clock domain).
    pub fn set_speed(&mut self, percent: u8) -> u8 {
        let old = self.speed_pct;
        let new = percent.clamp(MIN_SPEED_PCT, FULL_SPEED_PCT);
        if new != old {
            self.speed_pct = new;
            self.carry = 0;
        }
        old
    }

    /// Stretches `cycles` of core-domain time by the current speed.
    ///
    /// At speed 100 this returns `cycles` unchanged and does not touch the
    /// remainder accumulator.
    pub fn scale(&mut self, cycles: Cycles) -> Cycles {
        if self.speed_pct == FULL_SPEED_PCT {
            return cycles;
        }
        let speed = u64::from(self.speed_pct);
        let numer = cycles.get() * 100 + self.carry;
        self.carry = numer % speed;
        Cycles::new(numer / speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_speed_is_identity_and_keeps_no_state() {
        let mut t = Throttle::full();
        for n in [0u64, 1, 3, 1000] {
            assert_eq!(t.scale(Cycles::new(n)), Cycles::new(n));
        }
        assert_eq!(t, Throttle::full());
    }

    #[test]
    fn half_speed_doubles_exactly() {
        let mut t = Throttle::full();
        t.set_speed(50);
        let total: u64 = (0..100).map(|_| t.scale(Cycles::new(3)).get()).sum();
        assert_eq!(total, 600);
    }

    #[test]
    fn remainder_accumulates_without_drift() {
        // 1 cycle at 75%: 100/75 = 1 + 25/75 → pattern 1,1,2,1,1,2,...
        let mut t = Throttle::full();
        t.set_speed(75);
        let total: u64 = (0..75).map(|_| t.scale(Cycles::new(1)).get()).sum();
        assert_eq!(total, 100); // 75 cycles * 100/75 exactly
    }

    #[test]
    fn set_speed_clamps_and_reports_old() {
        let mut t = Throttle::full();
        assert_eq!(t.set_speed(10), 100);
        assert_eq!(t.speed(), MIN_SPEED_PCT);
        assert_eq!(t.set_speed(200), MIN_SPEED_PCT);
        assert_eq!(t.speed(), 100);
    }

    #[test]
    fn changing_speed_resets_the_carry() {
        let mut t = Throttle::full();
        t.set_speed(75);
        let _ = t.scale(Cycles::new(1)); // carry = 25
        t.set_speed(50);
        assert_eq!(t.scale(Cycles::new(1)), Cycles::new(2)); // no stale carry
    }
}
