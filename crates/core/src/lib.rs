//! # The CMP QoS framework (the paper's contribution)
//!
//! Implements the complete framework of *"A Framework for Providing Quality
//! of Service in Chip Multi-Processors"* (Guo, Solihin, Zhao, Iyer — MICRO
//! 2007) on top of the `cmpqos-system` CMP simulator:
//!
//! * **QoS target specification** ([`target`]) — targets are *Resource Usage
//!   Metrics* (cores + L2 ways + optional timeslot), which are *convertible*
//!   into computation capacity (Definition 1) and therefore admission-
//!   testable; IPC/miss-rate targets (OPM/RPM) are represented as
//!   deliberately non-convertible types.
//! * **Execution modes** ([`modes`]) — `Strict`, `Elastic(X)`,
//!   `Opportunistic`, plus the manual and automatic mode-downgrade rules of
//!   Sections 3.3–3.4.
//! * **Admission control** ([`lac`], [`gac`]) — the per-node FCFS Local
//!   Admission Controller with timeslot/resource reservation, and the
//!   Global Admission Controller that probes nodes.
//! * **Resource stealing** ([`stealing`]) — the duplicate-tag-guarded
//!   controller that removes one way per interval from an `Elastic(X)` job
//!   and donates it to Opportunistic jobs, cancelling when the cumulative
//!   L2 miss increase reaches `X%` (Section 4).
//! * **The epoch hook** ([`epoch`]) — per-job SLO declarations
//!   ([`SloSpec`]) and the controller seam ([`EpochController`]) that lets
//!   the `cmpqos-adapt` crate retune stealing slack, steal cadence and
//!   per-core DVFS speed from delivered CPI/miss-rate samples.
//! * **The orchestrator** ([`scheduler`]) — glues the above to a
//!   [`cmpqos_system::CmpNode`]: spawns accepted jobs at their reserved
//!   start times, maintains partition targets, drives stealing and
//!   automatic downgrade switch-backs, and produces per-job QoS reports.
//!
//! # Quick start
//!
//! ```
//! use cmpqos_core::{QosJob, QosScheduler, ResourceRequest, SchedulerConfig};
//! use cmpqos_system::SystemConfig;
//! use cmpqos_trace::spec;
//! use cmpqos_types::{Cycles, Instructions, JobId, Ways};
//!
//! let mut sched = QosScheduler::new(SystemConfig::paper(), SchedulerConfig::default());
//! let profile = spec::benchmark("gobmk").unwrap();
//! let job = QosJob::strict(JobId::new(0), ResourceRequest::new(1, Ways::new(7)))
//!     .work(Instructions::new(100_000))
//!     .max_wall_clock(Cycles::new(10_000_000))
//!     .deadline(Cycles::new(20_000_000))
//!     .build();
//! let decision = sched.submit(job, Box::new(profile.instantiate(1, 0)));
//! assert!(decision.is_accepted());
//! sched.run_until(Cycles::new(20_000_000));
//! let report = sched.report(JobId::new(0)).unwrap();
//! assert!(report.met_deadline());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod gac;
pub mod intake;
pub mod lac;
pub mod modes;
mod occupancy;
pub mod protocol;
pub mod request;
pub mod scheduler;
pub mod stealing;
pub mod target;

pub use epoch::{EpochController, EpochSample, EpochView, KnobUpdate, SloSpec};
pub use gac::{
    FaultReport, GacConfig, GacConfigBuilder, GacError, GacState, GlobalAdmissionController,
    MemberState, NodeHealth, NodeSnapshot, ProbeOutcome, ProbePolicy,
};
pub use intake::{
    AdmissionIntake, DrainedDecision, IntakeConfig, IntakeConfigBuilder, IntakeOutcome, IntakeStats,
};
pub use lac::{
    Decision, Lac, LacConfig, LacConfigBuilder, LacState, RejectReason, Reservation, Revocation,
    RevocationAction,
};
pub use modes::ExecutionMode;
pub use protocol::{
    Cluster, LacBackend, LacEndpoint, NetGac, NetGacConfig, NetGacStats, NetReply, NetRequest,
    ReplyBody, RequestBody, Wire,
};
pub use request::{AdmissionRequest, AdmissionRequestBuilder, Feasibility, Placement};
pub use scheduler::{
    JobEvent, JobReport, QosJob, QosJobBuilder, QosScheduler, SchedulerConfig,
    SchedulerConfigBuilder, StealReport, WayFaultOutcome,
};
pub use stealing::{StealingAction, StealingConfig, StealingConfigBuilder, StealingController};
pub use target::{Convertible, QosTarget, ResourceRequest, Timeslot};
