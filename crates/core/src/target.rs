//! QoS target specification (Section 3.2 of the paper).
//!
//! A CMP can only *fully provide* QoS when two conditions hold: the target
//! is **convertible** into units of computation capacity (Definition 1), and
//! jobs are accepted only when the target can be satisfied. Resource Usage
//! Metrics (RUM — core count, cache ways, optional timeslot) are trivially
//! convertible: demand can be compared against unallocated supply. Overall
//! Performance Metrics (IPC) and Resource Performance Metrics (miss rate)
//! are not — the system cannot tell how much IPC it can offer, nor whether a
//! requested miss rate is even achievable. This module encodes that
//! distinction in the type system: only [`ResourceRequest`]-based targets
//! implement [`Convertible`], so the admission controller cannot even be
//! *asked* to admit an [`IpcTarget`].

use cmpqos_types::{Cycles, Ways};
use std::fmt;

/// A RUM resource-request vector: the computation capacity a job demands.
///
/// The paper's evaluation requests one core plus seven of the sixteen L2
/// ways per job; [`ResourceRequest::paper_job`] builds exactly that.
///
/// # Examples
///
/// ```
/// use cmpqos_core::ResourceRequest;
/// use cmpqos_types::Ways;
///
/// let r = ResourceRequest::new(1, Ways::new(7));
/// assert_eq!(r.cores(), 1);
/// assert_eq!(r.cache_ways(), Ways::new(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ResourceRequest {
    cores: u32,
    cache_ways: Ways,
    /// Off-chip bandwidth share in percent of peak (0 = best-effort).
    /// Stored wide so summed *usage* vectors cannot overflow.
    bandwidth_pct: u16,
}

impl ResourceRequest {
    /// Creates a request for `cores` processor cores and `cache_ways` of
    /// the shared L2 (best-effort bandwidth).
    #[must_use]
    pub const fn new(cores: u32, cache_ways: Ways) -> Self {
        Self {
            cores,
            cache_ways,
            bandwidth_pct: 0,
        }
    }

    /// Adds an off-chip bandwidth share (percent of peak) to the request —
    /// the RUM extension the paper leaves as future work (Section 3.2).
    ///
    /// # Examples
    ///
    /// ```
    /// use cmpqos_core::ResourceRequest;
    /// use cmpqos_types::Ways;
    ///
    /// let r = ResourceRequest::new(1, Ways::new(7)).with_bandwidth(25);
    /// assert_eq!(r.bandwidth_pct(), 25);
    /// ```
    #[must_use]
    pub const fn with_bandwidth(mut self, percent: u16) -> Self {
        self.bandwidth_pct = percent;
        self
    }

    /// The requested bandwidth share in percent of peak (0 = best-effort).
    #[must_use]
    pub const fn bandwidth_pct(&self) -> u16 {
        self.bandwidth_pct
    }

    /// The request used throughout the paper's evaluation: 1 core + 7 ways
    /// (896 KiB of the 2 MiB L2).
    #[must_use]
    pub const fn paper_job() -> Self {
        Self::new(1, Ways::new(7))
    }

    /// Requested core count.
    #[must_use]
    pub const fn cores(&self) -> u32 {
        self.cores
    }

    /// Requested L2 allocation.
    #[must_use]
    pub const fn cache_ways(&self) -> Ways {
        self.cache_ways
    }

    /// Whether this request fits within `supply` (component-wise).
    #[must_use]
    pub fn fits_within(&self, supply: &ResourceRequest) -> bool {
        self.cores <= supply.cores
            && self.cache_ways <= supply.cache_ways
            && self.bandwidth_pct <= supply.bandwidth_pct
    }

    /// Component-wise sum (total demand of several jobs).
    #[must_use]
    pub fn plus(&self, other: &ResourceRequest) -> ResourceRequest {
        ResourceRequest {
            cores: self.cores + other.cores,
            cache_ways: self.cache_ways + other.cache_ways,
            bandwidth_pct: self.bandwidth_pct + other.bandwidth_pct,
        }
    }

    /// Component-wise saturating remainder (`supply - demand`).
    #[must_use]
    pub fn minus(&self, other: &ResourceRequest) -> ResourceRequest {
        ResourceRequest {
            cores: self.cores.saturating_sub(other.cores),
            cache_ways: self.cache_ways.saturating_sub(other.cache_ways),
            bandwidth_pct: self.bandwidth_pct.saturating_sub(other.bandwidth_pct),
        }
    }
}

impl fmt::Display for ResourceRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} core(s) + {}", self.cores, self.cache_ways)?;
        if self.bandwidth_pct > 0 {
            write!(f, " + {}% bw", self.bandwidth_pct)?;
        }
        Ok(())
    }
}

/// An optional timeslot resource: how long the requested resources are
/// needed (`max_wall_clock`, the batch-system `tw`) and by when the slot
/// must complete (`deadline`, absolute).
///
/// `max_wall_clock` is *not* a safe WCET bound: the user accepts that a job
/// running longer may be terminated (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timeslot {
    /// Maximum wall-clock time the job needs with its full request (tw).
    pub max_wall_clock: Cycles,
    /// Absolute completion deadline (td).
    pub deadline: Cycles,
}

impl Timeslot {
    /// Slack beyond the wall-clock need, given the submission time `ta`:
    /// `(td − ta) − tw`. `None` when the deadline is already infeasible.
    #[must_use]
    pub fn slack(&self, arrival: Cycles) -> Option<Cycles> {
        let window = self.deadline.saturating_sub(arrival);
        if window < self.max_wall_clock {
            None
        } else {
            Some(window - self.max_wall_clock)
        }
    }
}

/// A complete QoS target: a RUM request plus an optional timeslot.
///
/// Jobs without a timeslot (daemons, long-running services) hold their
/// resources for their entire lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosTarget {
    /// The resource demand.
    pub request: ResourceRequest,
    /// The optional timeslot.
    pub timeslot: Option<Timeslot>,
}

/// Preset RUM targets (Section 3.2): systems may offer small/medium/large
/// configurations so users need not craft requests by hand — at the price
/// of *overspecification*, the fragmentation source the execution modes and
/// resource stealing then recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// 1 core + 3 ways.
    Small,
    /// 1 core + 7 ways (the paper's per-job request).
    Medium,
    /// 2 cores + 10 ways.
    Large,
}

impl Preset {
    /// The preset's resource request.
    #[must_use]
    pub const fn request(self) -> ResourceRequest {
        match self {
            Preset::Small => ResourceRequest::new(1, Ways::new(3)),
            Preset::Medium => ResourceRequest::new(1, Ways::new(7)),
            Preset::Large => ResourceRequest::new(2, Ways::new(10)),
        }
    }
}

/// Marker for QoS targets that can be converted into units of computation
/// capacity (Definition 1) and therefore admission-tested.
///
/// Only RUM targets implement this. The trait is *sealed*: OPM/RPM target
/// types below intentionally cannot be made convertible downstream, which
/// is the paper's Section 3.2 argument expressed as an API.
pub trait Convertible: sealed::Sealed {
    /// The capacity this target demands.
    fn demanded_capacity(&self) -> ResourceRequest;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::QosTarget {}
    impl Sealed for super::ResourceRequest {}
}

impl Convertible for ResourceRequest {
    fn demanded_capacity(&self) -> ResourceRequest {
        *self
    }
}

impl Convertible for QosTarget {
    fn demanded_capacity(&self) -> ResourceRequest {
        self.request
    }
}

/// An Overall Performance Metric target (IPC). **Not convertible**: the
/// system cannot compare it against available capacity, so it cannot back
/// an admission decision — keep it for monitoring/SLA reporting only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpcTarget(pub f64);

/// A Resource Performance Metric target (cache miss rate). **Not
/// convertible** — may even be ill-defined (unsatisfiable at any
/// allocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissRateTarget(pub f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_arithmetic() {
        let a = ResourceRequest::new(1, Ways::new(7));
        let b = ResourceRequest::new(2, Ways::new(4));
        assert_eq!(a.plus(&b), ResourceRequest::new(3, Ways::new(11)));
        let supply = ResourceRequest::new(4, Ways::new(16));
        assert!(a.plus(&b).fits_within(&supply));
        assert!(!a.plus(&b).plus(&b).plus(&b).fits_within(&supply));
        assert_eq!(supply.minus(&a), ResourceRequest::new(3, Ways::new(9)));
        // Saturating under-subtraction.
        assert_eq!(a.minus(&supply), ResourceRequest::new(0, Ways::ZERO));
    }

    #[test]
    fn paper_job_is_one_core_seven_ways() {
        let r = ResourceRequest::paper_job();
        assert_eq!(r.cores(), 1);
        assert_eq!(r.cache_ways(), Ways::new(7));
        assert_eq!(r.to_string(), "1 core(s) + 7 ways");
    }

    #[test]
    fn two_paper_jobs_fit_but_three_do_not() {
        // The All-Strict fragmentation of Figure 7: 2 x 7 = 14 <= 16 but
        // 3 x 7 = 21 > 16.
        let supply = ResourceRequest::new(4, Ways::new(16));
        let one = ResourceRequest::paper_job();
        assert!(one.plus(&one).fits_within(&supply));
        assert!(!one.plus(&one).plus(&one).fits_within(&supply));
    }

    #[test]
    fn timeslot_slack() {
        let ts = Timeslot {
            max_wall_clock: Cycles::new(100),
            deadline: Cycles::new(250),
        };
        assert_eq!(ts.slack(Cycles::new(0)), Some(Cycles::new(150)));
        assert_eq!(ts.slack(Cycles::new(150)), Some(Cycles::ZERO));
        assert_eq!(ts.slack(Cycles::new(200)), None);
    }

    #[test]
    fn convertible_targets_expose_demand() {
        let t = QosTarget {
            request: Preset::Medium.request(),
            timeslot: None,
        };
        assert_eq!(t.demanded_capacity(), ResourceRequest::paper_job());
        assert_eq!(Preset::Large.request().demanded_capacity().cores(), 2);
    }

    #[test]
    fn bandwidth_extends_the_vector() {
        let supply = ResourceRequest::new(4, Ways::new(16)).with_bandwidth(100);
        let a = ResourceRequest::paper_job().with_bandwidth(40);
        let b = ResourceRequest::paper_job().with_bandwidth(40);
        assert!(a.plus(&b).fits_within(&supply));
        let c = ResourceRequest::paper_job().with_bandwidth(30);
        assert!(!a.plus(&b).plus(&c).fits_within(&supply), "110% > 100%");
        assert_eq!(supply.minus(&a).bandwidth_pct(), 60);
        assert_eq!(a.to_string(), "1 core(s) + 7 ways + 40% bw");
    }

    #[test]
    fn presets_are_ordered_by_capacity() {
        assert!(Preset::Small
            .request()
            .fits_within(&Preset::Medium.request()));
        assert!(Preset::Medium
            .request()
            .fits_within(&Preset::Large.request()));
    }
}
