//! The Local Admission Controller (Section 5 of the paper).
//!
//! The LAC implements First-Come-First-Served admission over a list of
//! resource/timeslot reservations. A Strict or Elastic(X) job is accepted
//! iff its resource-request vector fits into the earliest timeslot that
//! completes before its deadline; an Opportunistic job is accepted iff
//! spare resources exist that are not taken by Strict/Elastic reservations.
//!
//! The LAC is the component that *requires* convertible (RUM) targets: its
//! admission test is literally `demand + usage ≤ capacity` over a time
//! window — impossible to phrase for an IPC target.
//!
//! Reservations are held in an occupancy-indexed table
//! (`crate::occupancy`): feasibility checks and earliest-feasible-start
//! queries run in O(log n + k) over the k reservation change points in the
//! probed window instead of re-scanning the whole table, while every
//! decision stays bit-identical to the brute-force scan (the testkit's
//! `OracleLac` is the referee). Requests arrive as typed
//! [`AdmissionRequest`] values; the old positional `admit_*` wrappers
//! served their one deprecation release and are gone.

use crate::modes::ExecutionMode;
use crate::occupancy::ReservationTable;
use crate::request::{AdmissionRequest, Feasibility, Placement};
use crate::target::ResourceRequest;
use cmpqos_types::{Cycles, JobId, Ways};
use std::fmt;

/// Why a job was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RejectReason {
    /// No timeslot fits the request before the job's deadline.
    NoCapacityBeforeDeadline,
    /// (Opportunistic) all cores are taken by reserved jobs right now.
    NoSpareResources,
    /// The request exceeds the node's total capacity outright.
    ExceedsNodeCapacity,
    /// The reservation was revoked because the node lost capacity (a faulty
    /// way or core) and the shrunken supply no longer covers it.
    CapacityRevoked,
    /// Every node is dead: the global controller had no one left to probe.
    NoHealthyNodes,
    /// The overload-protection layer shed the request before it reached the
    /// FCFS admission test (intake queue full, per-source rate limit
    /// exceeded, or circuit breaker open).
    ShedOverload,
    /// The request's deadline slack can no longer fit any feasible timeslot
    /// (`td − now < duration`), so it was shed in O(1) without scanning the
    /// reservation table.
    ShedInfeasible,
}

impl From<RejectReason> for cmpqos_obs::RejectCause {
    fn from(reason: RejectReason) -> Self {
        match reason {
            RejectReason::NoCapacityBeforeDeadline => {
                cmpqos_obs::RejectCause::NoCapacityBeforeDeadline
            }
            RejectReason::NoSpareResources => cmpqos_obs::RejectCause::NoSpareResources,
            RejectReason::ExceedsNodeCapacity => cmpqos_obs::RejectCause::ExceedsNodeCapacity,
            RejectReason::CapacityRevoked => cmpqos_obs::RejectCause::CapacityRevoked,
            RejectReason::NoHealthyNodes => cmpqos_obs::RejectCause::NoHealthyNodes,
            RejectReason::ShedOverload => cmpqos_obs::RejectCause::ShedOverload,
            RejectReason::ShedInfeasible => cmpqos_obs::RejectCause::ShedInfeasible,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::NoCapacityBeforeDeadline => {
                f.write_str("no feasible timeslot before the deadline")
            }
            RejectReason::NoSpareResources => {
                f.write_str("no spare resources for an opportunistic job")
            }
            RejectReason::ExceedsNodeCapacity => f.write_str("request exceeds total node capacity"),
            RejectReason::CapacityRevoked => {
                f.write_str("reservation revoked after the node lost capacity")
            }
            RejectReason::NoHealthyNodes => f.write_str("no healthy node left to probe"),
            RejectReason::ShedOverload => {
                f.write_str("shed by overload protection before admission")
            }
            RejectReason::ShedInfeasible => {
                f.write_str("shed: deadline slack fits no feasible timeslot")
            }
        }
    }
}

/// The LAC's answer to a submission.
///
/// Marked `#[must_use]`: dropping an admission decision silently loses a
/// job (an accepted reservation nobody starts, or a rejection nobody
/// reports), so ignoring one is a compile-time warning — and a CI failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[must_use = "an admission decision carries the job's fate; dropping it loses the job"]
pub enum Decision {
    /// Accepted; resources are reserved from `start` (Opportunistic jobs:
    /// `start` is the submission time, nothing is reserved).
    Accepted {
        /// When the job may begin executing with its reserved resources.
        start: Cycles,
    },
    /// Rejected; the GAC may probe another node or renegotiate the target.
    Rejected(RejectReason),
}

impl Decision {
    /// Whether the job was accepted.
    #[must_use]
    pub fn is_accepted(&self) -> bool {
        matches!(self, Decision::Accepted { .. })
    }

    /// The reserved start time, if accepted.
    #[must_use]
    pub fn start(&self) -> Option<Cycles> {
        match self {
            Decision::Accepted { start } => Some(*start),
            Decision::Rejected(_) => None,
        }
    }
}

/// One reservation in the LAC's timeline (active over `[start, end)`).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Reservation {
    /// The holding job.
    pub id: JobId,
    /// Reservation start.
    pub start: Cycles,
    /// Reservation end (exclusive).
    pub end: Cycles,
    /// Reserved resources.
    pub request: ResourceRequest,
    /// The mode the job was admitted under. Carried so capacity revocation
    /// knows how much slack an Elastic(X) job can absorb, and so a migrated
    /// reservation keeps its semantics on the new node.
    pub mode: ExecutionMode,
    /// The admission deadline, when one was given. Migrations re-admit
    /// against this original deadline, never a relaxed one.
    pub deadline: Option<Cycles>,
}

/// What [`Lac::revoke_capacity`] did to one reservation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RevocationAction {
    /// The reservation still fits the shrunken capacity, unchanged.
    Kept,
    /// An Elastic job gave up `ways_cut` ways; its slack absorbs the
    /// slowdown, so the (already extended) reservation window still holds.
    Downgraded {
        /// Ways removed from the reservation.
        ways_cut: Ways,
    },
    /// The reservation no longer fits and was evicted. The full reservation
    /// is carried so the caller (the GAC) can re-place it on another node —
    /// an evicted reservation is never silently lost.
    Evicted {
        /// The evicted reservation, as it was before the fault.
        reservation: Reservation,
        /// Why it was evicted (always [`RejectReason::CapacityRevoked`]).
        reason: RejectReason,
    },
}

/// The fate of one reservation after a capacity revocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Revocation {
    /// The affected job.
    pub id: JobId,
    /// What happened to its reservation.
    pub action: RevocationAction,
}

/// LAC configuration.
///
/// Construct with [`LacConfig::default`] or the [`LacConfig::builder`];
/// the struct is `#[non_exhaustive]`, so fields may be added without
/// breaking downstream crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub struct LacConfig {
    /// Total node capacity (paper: 4 cores + 16 L2 ways).
    pub capacity: ResourceRequest,
}

impl Default for LacConfig {
    fn default() -> Self {
        Self {
            capacity: ResourceRequest::new(4, cmpqos_types::Ways::new(16)).with_bandwidth(100),
        }
    }
}

impl LacConfig {
    /// A fluent builder starting from the paper defaults.
    #[must_use]
    pub fn builder() -> LacConfigBuilder {
        LacConfigBuilder {
            config: LacConfig::default(),
        }
    }
}

/// Fluent builder for [`LacConfig`].
#[derive(Debug, Clone)]
pub struct LacConfigBuilder {
    config: LacConfig,
}

impl LacConfigBuilder {
    /// Sets the total node capacity.
    #[must_use]
    pub fn capacity(mut self, capacity: ResourceRequest) -> Self {
        self.config.capacity = capacity;
        self
    }

    /// Finishes the configuration.
    #[must_use]
    pub fn build(self) -> LacConfig {
        self.config
    }
}

/// Modeled cost of one admission test: a base plus a per-scanned-reservation
/// term. The paper implements the LAC as a user-level program and reports
/// its occupancy at under 1% of wall-clock time (Section 7.5); these
/// constants model that software cost without perturbing the simulation.
/// The formula is unchanged by the occupancy index — it models the paper's
/// software LAC, not our implementation.
const ADMIT_BASE_COST: u64 = 2_000;
const ADMIT_PER_RESERVATION_COST: u64 = 200;

/// The per-node admission controller.
///
/// # Examples
///
/// ```
/// use cmpqos_core::{AdmissionRequest, Lac, LacConfig, ResourceRequest};
/// use cmpqos_types::{Cycles, JobId};
///
/// let mut lac = Lac::new(LacConfig::default());
/// let req = AdmissionRequest::builder(
///     JobId::new(0),
///     ResourceRequest::paper_job(),
///     Cycles::new(1_000),
/// )
/// .deadline(Cycles::new(2_000))
/// .build();
/// assert!(lac.admit(&req).is_accepted());
/// ```
#[derive(Debug, Clone)]
pub struct Lac {
    config: LacConfig,
    now: Cycles,
    table: ReservationTable,
    admission_tests: u64,
    accepted: u64,
    rejected: u64,
    modeled_cost: Cycles,
}

/// Two LACs are equal when every observable matches: configuration, clock,
/// counters, and the FCFS reservation list. The occupancy index's internal
/// layout (slot numbering, free-list order) is deliberately excluded — a
/// recovered controller rebuilds a compact arena yet must compare equal to
/// the fragmented original it journals for.
impl PartialEq for Lac {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.now == other.now
            && self.admission_tests == other.admission_tests
            && self.accepted == other.accepted
            && self.rejected == other.rejected
            && self.modeled_cost == other.modeled_cost
            && self.table.iter_fcfs().eq(other.table.iter_fcfs())
    }
}

/// A complete, serializable snapshot of a [`Lac`]'s state.
///
/// Produced by [`Lac::snapshot`] and consumed by [`Lac::restore`];
/// `cmpqos-recovery` embeds one in each journal compaction record so a
/// crashed controller can be rebuilt as snapshot + op replay. The field
/// set is exhaustive: restoring a snapshot yields a controller whose
/// every subsequent decision matches the original's — the occupancy index
/// is rebuilt deterministically from the FCFS reservation list.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LacState {
    /// The configuration (including post-fault shrunken capacity).
    pub config: LacConfig,
    /// The controller's clock.
    pub now: Cycles,
    /// Live reservations, in FCFS order.
    pub reservations: Vec<Reservation>,
    /// Admission tests performed.
    pub admission_tests: u64,
    /// Jobs accepted.
    pub accepted: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Modeled CPU cost so far.
    pub modeled_cost: Cycles,
}

impl Lac {
    /// Creates an empty controller.
    #[must_use]
    pub fn new(config: LacConfig) -> Self {
        Self {
            config,
            now: Cycles::ZERO,
            table: ReservationTable::default(),
            admission_tests: 0,
            accepted: 0,
            rejected: 0,
            modeled_cost: Cycles::ZERO,
        }
    }

    /// Total node capacity.
    #[must_use]
    pub fn capacity(&self) -> ResourceRequest {
        self.config.capacity
    }

    /// Captures the controller's complete state for journaling.
    #[must_use]
    pub fn snapshot(&self) -> LacState {
        LacState {
            config: self.config,
            now: self.now,
            reservations: self.table.to_vec(),
            admission_tests: self.admission_tests,
            accepted: self.accepted,
            rejected: self.rejected,
            modeled_cost: self.modeled_cost,
        }
    }

    /// Rebuilds a controller from a [`Lac::snapshot`]. The result is
    /// indistinguishable from the controller the snapshot was taken of:
    /// the occupancy index is rebuilt by re-inserting the FCFS list, which
    /// is deterministic.
    #[must_use]
    pub fn restore(state: LacState) -> Self {
        let mut table = ReservationTable::default();
        for r in state.reservations {
            table.insert(r);
        }
        Self {
            config: state.config,
            now: state.now,
            table,
            admission_tests: state.admission_tests,
            accepted: state.accepted,
            rejected: state.rejected,
            modeled_cost: state.modeled_cost,
        }
    }

    /// Advances the controller's clock and purges expired reservations.
    pub fn advance(&mut self, now: Cycles) {
        self.now = self.now.max(now);
        self.table.purge_through(self.now);
    }

    /// Current time.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Live (non-expired) reservations, materialized in FCFS order.
    #[must_use]
    pub fn reservations(&self) -> Vec<Reservation> {
        self.table.to_vec()
    }

    /// Number of live reservations (O(1); prefer over
    /// `reservations().len()`, which materializes the list).
    #[must_use]
    pub fn reservation_count(&self) -> usize {
        self.table.len()
    }

    /// Reserved usage at instant `t`.
    #[must_use]
    pub fn usage_at(&self, t: Cycles) -> ResourceRequest {
        self.table.usage_at(t)
    }

    /// FCFS admission test (Section 5) over a typed [`AdmissionRequest`].
    ///
    /// * `Strict` — reserve `[s, s+tw)` at the earliest feasible `s ≥ now`
    ///   with `s+tw ≤ deadline` (when given).
    /// * `Elastic(X)` — like Strict with duration `tw·(1+X)`.
    /// * `Opportunistic` — no reservation; accepted iff a core is
    ///   unreserved right now.
    ///
    /// A request built with
    /// [`latest_feasible`](crate::AdmissionRequestBuilder::latest_feasible)
    /// and a deadline instead reserves the **latest** slot
    /// `[td − tw, td)` (Section 3.4 places an automatically downgraded
    /// job's fallback reservation as far away as possible), falling back
    /// to the earliest feasible slot when the latest is taken.
    pub fn admit(&mut self, req: &AdmissionRequest) -> Decision {
        match (req.placement, req.deadline) {
            (Placement::LatestFeasible, Some(td)) => {
                self.admit_latest_at(req.id, req.request, req.tw, td)
            }
            _ => self.admit_earliest(req.id, req.mode, req.request, req.tw, req.deadline),
        }
    }

    /// [`Lac::admit`], additionally emitting `Admitted`/`Rejected` to
    /// `recorder` with the controller's current cycle.
    pub fn admit_with(
        &mut self,
        req: &AdmissionRequest,
        recorder: &mut dyn cmpqos_obs::Recorder,
    ) -> Decision {
        let decision = self.admit(req);
        self.emit_decision(req.id, decision, recorder);
        decision
    }

    /// Admits a FCFS run of requests in order, returning one decision per
    /// request. Decisions are bit-identical to calling [`Lac::admit_with`]
    /// once per request; the batch amortizes the recorder-enabled check
    /// and the output allocation over the run.
    #[must_use = "each decision carries a job's fate; dropping them loses the batch"]
    pub fn admit_batch(
        &mut self,
        reqs: &[AdmissionRequest],
        recorder: &mut dyn cmpqos_obs::Recorder,
    ) -> Vec<Decision> {
        let enabled = recorder.enabled();
        let mut out = Vec::with_capacity(reqs.len());
        for req in reqs {
            let decision = self.admit(req);
            if enabled {
                self.emit_decision(req.id, decision, recorder);
            }
            out.push(decision);
        }
        out
    }

    /// Earliest-feasible FCFS admission (the old positional `admit`).
    fn admit_earliest(
        &mut self,
        id: JobId,
        mode: ExecutionMode,
        request: ResourceRequest,
        tw: Cycles,
        deadline: Option<Cycles>,
    ) -> Decision {
        self.charge_test();
        if !request.fits_within(&self.config.capacity) {
            self.rejected += 1;
            return Decision::Rejected(RejectReason::ExceedsNodeCapacity);
        }
        match mode.reservation_duration(tw) {
            None => {
                // Opportunistic: spare core right now?
                let used = self.usage_at(self.now);
                if used.cores() < self.config.capacity.cores() {
                    self.accepted += 1;
                    Decision::Accepted { start: self.now }
                } else {
                    self.rejected += 1;
                    Decision::Rejected(RejectReason::NoSpareResources)
                }
            }
            Some(duration) => {
                let latest_start = match deadline {
                    Some(td) => {
                        let Some(ls) = td.get().checked_sub(duration.get()) else {
                            self.rejected += 1;
                            return Decision::Rejected(RejectReason::NoCapacityBeforeDeadline);
                        };
                        Cycles::new(ls)
                    }
                    None => Cycles::HORIZON,
                };
                match self.earliest_start(&request, duration, self.now, latest_start) {
                    Some(start) => {
                        self.table.insert(Reservation {
                            id,
                            start,
                            end: start + duration,
                            request,
                            mode,
                            deadline,
                        });
                        self.accepted += 1;
                        Decision::Accepted { start }
                    }
                    None => {
                        self.rejected += 1;
                        Decision::Rejected(RejectReason::NoCapacityBeforeDeadline)
                    }
                }
            }
        }
    }

    /// Latest-slot admission ([`Placement::LatestFeasible`]): reserve
    /// `[td − tw, td)`, falling back to the earliest feasible slot when
    /// the latest is taken. Always admits as `Strict`.
    fn admit_latest_at(
        &mut self,
        id: JobId,
        request: ResourceRequest,
        tw: Cycles,
        deadline: Cycles,
    ) -> Decision {
        self.charge_test();
        if !request.fits_within(&self.config.capacity) {
            self.rejected += 1;
            return Decision::Rejected(RejectReason::ExceedsNodeCapacity);
        }
        // Any tw-long slot ending by `deadline` needs `deadline >= now + tw`
        // (this also keeps `deadline - tw` below from underflowing).
        if deadline < self.now + tw {
            self.rejected += 1;
            return Decision::Rejected(RejectReason::NoCapacityBeforeDeadline);
        }
        let latest = deadline - tw;
        let start = if self.fits_during(&request, latest, deadline) {
            Some(latest)
        } else {
            self.earliest_start(&request, tw, self.now, latest)
        };
        match start {
            Some(start) => {
                self.table.insert(Reservation {
                    id,
                    start,
                    end: start + tw,
                    request,
                    mode: ExecutionMode::Strict,
                    deadline: Some(deadline),
                });
                self.accepted += 1;
                Decision::Accepted { start }
            }
            None => {
                self.rejected += 1;
                Decision::Rejected(RejectReason::NoCapacityBeforeDeadline)
            }
        }
    }

    fn emit_decision(
        &self,
        id: JobId,
        decision: Decision,
        recorder: &mut dyn cmpqos_obs::Recorder,
    ) {
        if !recorder.enabled() {
            return;
        }
        let event = match decision {
            Decision::Accepted { start } => cmpqos_obs::Event::Admitted { job: id, start },
            Decision::Rejected(reason) => cmpqos_obs::Event::Rejected {
                job: id,
                cause: reason.into(),
            },
        };
        recorder.record(self.now, event);
    }

    /// Releases a job's reservation from `at` onward (early completion:
    /// "when automatically downgraded jobs complete, the LAC reclaims their
    /// resources, allowing other jobs to be accepted earlier").
    pub fn release(&mut self, id: JobId, at: Cycles) {
        for slot in self.table.slots_of(id) {
            let r = self.table.reservation(slot);
            if r.end > at {
                self.table.update_end(slot, r.end.min(at.max(r.start)));
            }
        }
        self.table.purge_zero_len();
    }

    /// Cancels a job's reservation entirely.
    pub fn cancel(&mut self, id: JobId) {
        self.table.remove_job(id);
    }

    /// Shrinks the node's capacity to `new_capacity` (a way or core died)
    /// and re-validates every live reservation against the reduced supply.
    ///
    /// Reservations are re-examined in FCFS (admission) order:
    ///
    /// 1. **Keep** — the reservation still fits over its remaining window.
    /// 2. **Downgrade** — an Elastic(X) reservation that no longer fits
    ///    gives up ways, at most `floor(ways · X)` (its slack absorbs the
    ///    proportional slowdown, per the Section 3.3 linear model), smallest
    ///    cut first.
    /// 3. **Evict** — everything else is dropped with
    ///    [`RejectReason::CapacityRevoked`].
    ///
    /// Returns one [`Revocation`] per live reservation, in FCFS order, so
    /// callers can emit events and re-place evicted jobs: no reservation is
    /// ever silently lost.
    pub fn revoke_capacity(
        &mut self,
        new_capacity: ResourceRequest,
        now: Cycles,
    ) -> Vec<Revocation> {
        self.advance(now);
        self.config.capacity = new_capacity;
        let old = self.table.to_vec();
        self.table.clear();
        let mut outcome = Vec::with_capacity(old.len());
        for mut r in old {
            let original = r;
            let window_start = r.start.max(self.now);
            let fits_unchanged = r.request.fits_within(&new_capacity)
                && self.fits_during(&r.request, window_start, r.end);
            let action = if fits_unchanged {
                RevocationAction::Kept
            } else {
                self.try_fault_downgrade(&mut r, window_start).map_or(
                    RevocationAction::Evicted {
                        reservation: original,
                        reason: RejectReason::CapacityRevoked,
                    },
                    |cut| RevocationAction::Downgraded { ways_cut: cut },
                )
            };
            if !matches!(action, RevocationAction::Evicted { .. }) {
                self.table.insert(r);
            }
            outcome.push(Revocation { id: r.id, action });
        }
        outcome
    }

    /// Smallest way cut (≥ 1, bounded by the mode's absorbable slack) that
    /// makes `r` fit over `[window_start, r.end)`. Applies the cut to `r`
    /// and returns it, or `None` when no allowed cut fits.
    fn try_fault_downgrade(&self, r: &mut Reservation, window_start: Cycles) -> Option<Ways> {
        let absorbable = r.mode.fault_absorbable_ways(r.request.cache_ways());
        for cut in 1..=absorbable.get() {
            let ways_cut = Ways::new(cut);
            let reduced = r.request.minus(&ResourceRequest::new(0, ways_cut));
            if reduced.fits_within(&self.config.capacity)
                && self.fits_during(&reduced, window_start, r.end)
            {
                r.request = reduced;
                return Some(ways_cut);
            }
        }
        None
    }

    /// Re-admits a reservation migrated off a failed node, preserving its
    /// duration, mode, and **original** deadline. The start is re-derived
    /// on this node's timeline (FCFS, like [`Lac::admit`]); the request is
    /// never silently shrunk.
    pub fn readmit(&mut self, r: &Reservation) -> Decision {
        self.charge_test();
        if !r.request.fits_within(&self.config.capacity) {
            self.rejected += 1;
            return Decision::Rejected(RejectReason::ExceedsNodeCapacity);
        }
        let duration = r.end.saturating_sub(r.start);
        let latest_start = match r.deadline {
            Some(td) => {
                let Some(ls) = td.get().checked_sub(duration.get()) else {
                    self.rejected += 1;
                    return Decision::Rejected(RejectReason::NoCapacityBeforeDeadline);
                };
                Cycles::new(ls)
            }
            None => Cycles::HORIZON,
        };
        match self.earliest_start(&r.request, duration, self.now, latest_start) {
            Some(start) => {
                self.table.insert(Reservation {
                    id: r.id,
                    start,
                    end: start + duration,
                    request: r.request,
                    mode: r.mode,
                    deadline: r.deadline,
                });
                self.accepted += 1;
                Decision::Accepted { start }
            }
            None => {
                self.rejected += 1;
                Decision::Rejected(RejectReason::NoCapacityBeforeDeadline)
            }
        }
    }

    /// Number of admission tests performed.
    #[must_use]
    pub fn admission_tests(&self) -> u64 {
        self.admission_tests
    }

    /// Jobs accepted.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Jobs rejected.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Modeled CPU cost of all admission/scheduling work so far (for the
    /// Section 7.5 occupancy characterization).
    #[must_use]
    pub fn modeled_cost(&self) -> Cycles {
        self.modeled_cost
    }

    fn charge_test(&mut self) {
        self.admission_tests += 1;
        self.modeled_cost +=
            Cycles::new(ADMIT_BASE_COST + ADMIT_PER_RESERVATION_COST * self.table.len() as u64);
    }

    /// Whether `request` fits on top of existing reservations at every
    /// instant of `[start, end)`.
    fn fits_during(&self, request: &ResourceRequest, start: Cycles, end: Cycles) -> bool {
        self.table
            .fits_over(request, start, end, &self.config.capacity)
    }

    /// Earliest `s ∈ [not_before, latest_start]` such that `request` fits
    /// over `[s, s+duration)`. Candidates are `not_before` and reservation
    /// end points (capacity only frees when something ends).
    fn earliest_start(
        &self,
        request: &ResourceRequest,
        duration: Cycles,
        not_before: Cycles,
        latest_start: Cycles,
    ) -> Option<Cycles> {
        self.table.earliest_start(
            request,
            duration,
            not_before,
            latest_start,
            &self.config.capacity,
        )
    }
}

impl Feasibility for Lac {
    fn capacity(&self) -> ResourceRequest {
        self.config.capacity
    }

    fn now(&self) -> Cycles {
        self.now
    }

    fn usage_at(&self, t: Cycles) -> ResourceRequest {
        self.table.usage_at(t)
    }

    fn fits_over(&self, request: &ResourceRequest, start: Cycles, end: Cycles) -> bool {
        self.fits_during(request, start, end)
    }

    fn earliest_feasible(
        &self,
        request: &ResourceRequest,
        duration: Cycles,
        not_before: Cycles,
        latest_start: Cycles,
    ) -> Option<Cycles> {
        self.earliest_start(request, duration, not_before, latest_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_types::Ways;

    fn lac() -> Lac {
        Lac::new(LacConfig::default())
    }

    fn paper_req(id: u32, tw: u64, td: u64) -> AdmissionRequest {
        AdmissionRequest::builder(
            JobId::new(id),
            ResourceRequest::paper_job(),
            Cycles::new(tw),
        )
        .deadline(Cycles::new(td))
        .build()
    }

    fn strict(l: &mut Lac, id: u32, tw: u64, td: u64) -> Decision {
        l.admit(&paper_req(id, tw, td))
    }

    #[test]
    fn two_paper_jobs_run_concurrently_third_queues() {
        let mut l = lac();
        assert_eq!(
            strict(&mut l, 0, 100, 1000),
            Decision::Accepted {
                start: Cycles::new(0)
            }
        );
        assert_eq!(
            strict(&mut l, 1, 100, 1000),
            Decision::Accepted {
                start: Cycles::new(0)
            }
        );
        // 3 x 7 = 21 ways > 16: the third job waits for a reservation to end.
        assert_eq!(
            strict(&mut l, 2, 100, 1000),
            Decision::Accepted {
                start: Cycles::new(100)
            }
        );
    }

    #[test]
    fn tight_deadline_job_rejected_when_it_cannot_start_in_time() {
        let mut l = lac();
        let _ = strict(&mut l, 0, 100, 1000);
        let _ = strict(&mut l, 1, 100, 1000);
        // Needs to start by t=5 to make its deadline, but capacity frees at 100.
        assert_eq!(
            strict(&mut l, 2, 100, 105),
            Decision::Rejected(RejectReason::NoCapacityBeforeDeadline)
        );
    }

    #[test]
    fn elastic_reserves_longer() {
        let mut l = lac();
        let d = l.admit(
            &AdmissionRequest::builder(
                JobId::new(0),
                ResourceRequest::paper_job(),
                Cycles::new(1000),
            )
            .mode(ExecutionMode::Elastic(cmpqos_types::Percent::new(5.0)))
            .deadline(Cycles::new(10_000))
            .build(),
        );
        assert!(d.is_accepted());
        assert_eq!(l.reservations()[0].end, Cycles::new(1050));
    }

    #[test]
    fn elastic_deadline_accounts_for_extension() {
        let mut l = lac();
        // tw(1+X) = 1050 > deadline 1040: rejected even though tw fits.
        let d = l.admit(
            &AdmissionRequest::builder(
                JobId::new(0),
                ResourceRequest::paper_job(),
                Cycles::new(1000),
            )
            .mode(ExecutionMode::Elastic(cmpqos_types::Percent::new(5.0)))
            .deadline(Cycles::new(1040))
            .build(),
        );
        assert_eq!(
            d,
            Decision::Rejected(RejectReason::NoCapacityBeforeDeadline)
        );
    }

    #[test]
    fn opportunistic_accepted_while_cores_spare() {
        let mut l = lac();
        let _ = strict(&mut l, 0, 100, 1000);
        let _ = strict(&mut l, 1, 100, 1000);
        let d = l.admit(
            &AdmissionRequest::builder(
                JobId::new(2),
                ResourceRequest::paper_job(),
                Cycles::new(100),
            )
            .mode(ExecutionMode::Opportunistic)
            .build(),
        );
        assert_eq!(
            d,
            Decision::Accepted {
                start: Cycles::ZERO
            }
        );
        // No reservation was added for it.
        assert_eq!(l.reservations().len(), 2);
        assert_eq!(l.reservation_count(), 2);
    }

    #[test]
    fn opportunistic_rejected_when_all_cores_reserved() {
        let mut l = Lac::new(
            LacConfig::builder()
                .capacity(ResourceRequest::new(2, Ways::new(16)))
                .build(),
        );
        let _ = strict(&mut l, 0, 100, 1000);
        let _ = strict(&mut l, 1, 100, 1000);
        let d = l.admit(
            &AdmissionRequest::builder(
                JobId::new(2),
                ResourceRequest::new(1, Ways::ZERO),
                Cycles::new(100),
            )
            .mode(ExecutionMode::Opportunistic)
            .build(),
        );
        assert_eq!(d, Decision::Rejected(RejectReason::NoSpareResources));
    }

    #[test]
    fn oversized_request_rejected_outright() {
        let mut l = lac();
        let d = l.admit(
            &AdmissionRequest::builder(
                JobId::new(0),
                ResourceRequest::new(5, Ways::new(4)),
                Cycles::new(10),
            )
            .build(),
        );
        assert_eq!(d, Decision::Rejected(RejectReason::ExceedsNodeCapacity));
    }

    #[test]
    fn admit_latest_places_reservation_at_deadline() {
        let mut l = lac();
        let d = l.admit(
            &AdmissionRequest::builder(
                JobId::new(0),
                ResourceRequest::paper_job(),
                Cycles::new(100),
            )
            .deadline(Cycles::new(500))
            .latest_feasible()
            .build(),
        );
        assert_eq!(
            d,
            Decision::Accepted {
                start: Cycles::new(400)
            }
        );
        let r = l.reservations()[0];
        assert_eq!((r.start, r.end), (Cycles::new(400), Cycles::new(500)));
    }

    #[test]
    fn admit_latest_falls_back_to_earliest_when_late_slot_taken() {
        // Seed the table with a reservation occupying [400, 500) directly
        // through a snapshot restore.
        let mut l = Lac::restore(LacState {
            config: LacConfig::builder()
                .capacity(ResourceRequest::new(1, Ways::new(16)))
                .build(),
            now: Cycles::ZERO,
            reservations: vec![Reservation {
                id: JobId::new(0),
                start: Cycles::new(400),
                end: Cycles::new(500),
                request: ResourceRequest::new(1, Ways::new(7)),
                mode: ExecutionMode::Strict,
                deadline: Some(Cycles::new(500)),
            }],
            admission_tests: 0,
            accepted: 0,
            rejected: 0,
            modeled_cost: Cycles::ZERO,
        });
        let d = l.admit(
            &AdmissionRequest::builder(
                JobId::new(1),
                ResourceRequest::new(1, Ways::new(7)),
                Cycles::new(100),
            )
            .deadline(Cycles::new(500))
            .latest_feasible()
            .build(),
        );
        // Latest slot [400,500) conflicts; earliest feasible is [0,100).
        assert_eq!(
            d,
            Decision::Accepted {
                start: Cycles::ZERO
            }
        );
    }

    #[test]
    fn release_frees_capacity_early() {
        let mut l = lac();
        let _ = strict(&mut l, 0, 100, 1000);
        let _ = strict(&mut l, 1, 100, 1000);
        // Job 0 completes at t=40: release lets a new job start at 40.
        l.release(JobId::new(0), Cycles::new(40));
        assert_eq!(
            strict(&mut l, 2, 100, 1000),
            Decision::Accepted {
                start: Cycles::new(40)
            }
        );
    }

    #[test]
    fn advance_purges_expired_reservations() {
        let mut l = lac();
        let _ = strict(&mut l, 0, 100, 1000);
        l.advance(Cycles::new(150));
        assert!(l.reservations().is_empty());
        assert_eq!(l.now(), Cycles::new(150));
    }

    #[test]
    fn admission_never_overbooks() {
        // Property-style check: admit a stream of mixed jobs, then verify
        // usage never exceeds capacity at any reservation boundary.
        let mut l = lac();
        for i in 0..40u32 {
            let tw = 50 + u64::from(i % 7) * 13;
            let td = 200 + u64::from(i) * 29;
            let _ = strict(&mut l, i, tw, td);
        }
        let mut points: Vec<Cycles> = l
            .reservations()
            .iter()
            .flat_map(|r| [r.start, r.end - Cycles::new(1)])
            .collect();
        points.sort_unstable();
        for p in points {
            let u = l.usage_at(p);
            assert!(u.fits_within(&l.capacity()), "overbooked at {p}: {u}");
        }
    }

    #[test]
    fn cost_model_grows_with_reservation_count() {
        let mut l = lac();
        let _ = strict(&mut l, 0, 100, 10_000);
        let c1 = l.modeled_cost();
        let _ = strict(&mut l, 1, 100, 10_000);
        let c2 = l.modeled_cost();
        assert!(c2 - c1 > c1, "second test scans one reservation");
        assert_eq!(l.admission_tests(), 2);
        assert_eq!(l.accepted(), 2);
    }

    #[test]
    fn builder_overrides_capacity() {
        let cfg = LacConfig::builder()
            .capacity(ResourceRequest::new(2, Ways::new(8)))
            .build();
        assert_eq!(cfg.capacity, ResourceRequest::new(2, Ways::new(8)));
        assert_eq!(LacConfig::builder().build(), LacConfig::default());
    }

    #[test]
    fn admit_batch_matches_one_at_a_time() {
        let reqs: Vec<AdmissionRequest> = (0..20u32)
            .map(|i| {
                let mut b = AdmissionRequest::builder(
                    JobId::new(i),
                    ResourceRequest::paper_job(),
                    Cycles::new(60 + u64::from(i % 5) * 17),
                )
                .deadline(Cycles::new(400 + u64::from(i) * 37));
                if i % 4 == 3 {
                    b = b.latest_feasible();
                }
                if i % 5 == 2 {
                    b = b.mode(ExecutionMode::Opportunistic);
                }
                b.build()
            })
            .collect();
        let mut batched = lac();
        let batch_decisions = batched.admit_batch(&reqs, &mut cmpqos_obs::NullRecorder);
        let mut sequential = lac();
        let seq_decisions: Vec<Decision> = reqs
            .iter()
            .map(|r| sequential.admit_with(r, &mut cmpqos_obs::NullRecorder))
            .collect();
        assert_eq!(batch_decisions, seq_decisions);
        assert_eq!(batched, sequential);
    }

    #[test]
    fn snapshot_restore_round_trips_through_the_index() {
        let mut l = lac();
        for i in 0..10u32 {
            let _ = strict(&mut l, i, 80 + u64::from(i) * 11, 5_000);
        }
        l.release(JobId::new(2), Cycles::new(30));
        l.cancel(JobId::new(5));
        let restored = Lac::restore(l.snapshot());
        assert_eq!(restored, l);
        assert_eq!(restored.reservations(), l.reservations());
        // Restored controllers keep deciding identically.
        let mut a = l.clone();
        let mut b = restored;
        assert_eq!(
            a.admit(&paper_req(90, 100, 2_000)),
            b.admit(&paper_req(90, 100, 2_000))
        );
        assert_eq!(a, b);
    }

    // --- every RejectReason path, with the recorded variants ------------

    fn last_cause(rec: &cmpqos_obs::RingBufferRecorder) -> Option<cmpqos_obs::RejectCause> {
        match rec.to_vec().last().map(|r| r.event.clone()) {
            Some(cmpqos_obs::Event::Rejected { cause, .. }) => Some(cause),
            _ => None,
        }
    }

    #[test]
    fn admit_rejects_oversized_request_and_records_it() {
        let mut l = lac();
        let mut rec = cmpqos_obs::RingBufferRecorder::new(8);
        let d = l.admit_with(
            &AdmissionRequest::builder(
                JobId::new(0),
                ResourceRequest::new(5, Ways::new(4)),
                Cycles::new(10),
            )
            .build(),
            &mut rec,
        );
        assert_eq!(d, Decision::Rejected(RejectReason::ExceedsNodeCapacity));
        assert_eq!(
            last_cause(&rec),
            Some(cmpqos_obs::RejectCause::ExceedsNodeCapacity)
        );
    }

    #[test]
    fn admit_rejects_opportunistic_without_spare_cores_and_records_it() {
        let mut l = Lac::new(
            LacConfig::builder()
                .capacity(ResourceRequest::new(1, Ways::new(16)))
                .build(),
        );
        let _ = strict(&mut l, 0, 100, 1000);
        let mut rec = cmpqos_obs::RingBufferRecorder::new(8);
        let d = l.admit_with(
            &AdmissionRequest::builder(
                JobId::new(1),
                ResourceRequest::new(1, Ways::ZERO),
                Cycles::new(10),
            )
            .mode(ExecutionMode::Opportunistic)
            .build(),
            &mut rec,
        );
        assert_eq!(d, Decision::Rejected(RejectReason::NoSpareResources));
        assert_eq!(
            last_cause(&rec),
            Some(cmpqos_obs::RejectCause::NoSpareResources)
        );
    }

    #[test]
    fn admit_rejects_deadline_shorter_than_reservation() {
        // duration > deadline: the latest-start subtraction underflows.
        let mut l = lac();
        let mut rec = cmpqos_obs::RingBufferRecorder::new(8);
        let d = l.admit_with(&paper_req(0, 200, 100), &mut rec);
        assert_eq!(
            d,
            Decision::Rejected(RejectReason::NoCapacityBeforeDeadline)
        );
        assert_eq!(
            last_cause(&rec),
            Some(cmpqos_obs::RejectCause::NoCapacityBeforeDeadline)
        );
    }

    #[test]
    fn admit_rejects_when_no_slot_frees_before_deadline() {
        let mut l = lac();
        let _ = strict(&mut l, 0, 100, 1000);
        let _ = strict(&mut l, 1, 100, 1000);
        let mut rec = cmpqos_obs::RingBufferRecorder::new(8);
        let d = l.admit_with(&paper_req(2, 100, 105), &mut rec);
        assert_eq!(
            d,
            Decision::Rejected(RejectReason::NoCapacityBeforeDeadline)
        );
        assert_eq!(
            last_cause(&rec),
            Some(cmpqos_obs::RejectCause::NoCapacityBeforeDeadline)
        );
    }

    #[test]
    fn admit_latest_rejects_oversized_request() {
        let mut l = lac();
        let mut rec = cmpqos_obs::RingBufferRecorder::new(8);
        let d = l.admit_with(
            &AdmissionRequest::builder(
                JobId::new(0),
                ResourceRequest::new(5, Ways::new(4)),
                Cycles::new(10),
            )
            .deadline(Cycles::new(100))
            .latest_feasible()
            .build(),
            &mut rec,
        );
        assert_eq!(d, Decision::Rejected(RejectReason::ExceedsNodeCapacity));
        assert_eq!(
            last_cause(&rec),
            Some(cmpqos_obs::RejectCause::ExceedsNodeCapacity)
        );
    }

    #[test]
    fn admit_latest_rejects_infeasible_deadline() {
        let mut l = lac();
        l.advance(Cycles::new(500));
        // Latest slot starts in the past and the earliest finish misses td.
        let d = l.admit(
            &AdmissionRequest::builder(
                JobId::new(0),
                ResourceRequest::paper_job(),
                Cycles::new(100),
            )
            .deadline(Cycles::new(550))
            .latest_feasible()
            .build(),
        );
        assert_eq!(
            d,
            Decision::Rejected(RejectReason::NoCapacityBeforeDeadline)
        );
    }

    #[test]
    fn admit_latest_rejects_when_every_slot_is_taken() {
        let mut l = Lac::new(
            LacConfig::builder()
                .capacity(ResourceRequest::new(1, Ways::new(16)))
                .build(),
        );
        // One job owns the whole window [0, 500).
        let _ = l.admit(
            &AdmissionRequest::builder(
                JobId::new(0),
                ResourceRequest::new(1, Ways::new(7)),
                Cycles::new(500),
            )
            .deadline(Cycles::new(500))
            .build(),
        );
        let d = l.admit(
            &AdmissionRequest::builder(
                JobId::new(1),
                ResourceRequest::new(1, Ways::new(7)),
                Cycles::new(100),
            )
            .deadline(Cycles::new(500))
            .latest_feasible()
            .build(),
        );
        assert_eq!(
            d,
            Decision::Rejected(RejectReason::NoCapacityBeforeDeadline)
        );
    }

    #[test]
    fn accepted_decision_is_recorded_as_admitted() {
        let mut l = lac();
        let mut rec = cmpqos_obs::RingBufferRecorder::new(8);
        let d = l.admit_with(&paper_req(0, 100, 1_000), &mut rec);
        assert!(d.is_accepted());
        assert_eq!(
            rec.to_vec().last().map(|r| r.event.clone()),
            Some(cmpqos_obs::Event::Admitted {
                job: JobId::new(0),
                start: Cycles::ZERO,
            })
        );
    }

    #[test]
    fn revoke_capacity_keeps_downgrades_and_evicts_in_fcfs_order() {
        let mut l = lac();
        // Job 0: Strict, 8 ways. Job 1: Elastic(50%), 8 ways.
        let _ = l.admit(
            &AdmissionRequest::builder(
                JobId::new(0),
                ResourceRequest::new(1, Ways::new(8)),
                Cycles::new(100),
            )
            .build(),
        );
        let _ = l.admit(
            &AdmissionRequest::builder(
                JobId::new(1),
                ResourceRequest::new(1, Ways::new(8)),
                Cycles::new(100),
            )
            .mode(ExecutionMode::Elastic(cmpqos_types::Percent::new(50.0)))
            .build(),
        );
        // Lose 8 ways: capacity 16 -> 8.
        let revs = l.revoke_capacity(
            ResourceRequest::new(4, Ways::new(8)).with_bandwidth(100),
            Cycles::ZERO,
        );
        assert_eq!(revs.len(), 2);
        // FCFS: job 0 (Strict, 8 ways) still fits exactly and is kept.
        assert_eq!(revs[0].id, JobId::new(0));
        assert_eq!(revs[0].action, RevocationAction::Kept);
        // Job 1 can absorb at most floor(8 * 0.5) = 4 ways, but it would
        // need to drop to 0 concurrent ways: evicted with a reason.
        assert_eq!(revs[1].id, JobId::new(1));
        assert!(matches!(
            revs[1].action,
            RevocationAction::Evicted {
                reason: RejectReason::CapacityRevoked,
                ..
            }
        ));
        assert_eq!(l.reservations().len(), 1);
    }

    #[test]
    fn revoke_capacity_downgrades_elastic_within_slack() {
        let mut l = lac();
        let _ = l.admit(
            &AdmissionRequest::builder(
                JobId::new(0),
                ResourceRequest::new(1, Ways::new(8)),
                Cycles::new(100),
            )
            .build(),
        );
        let _ = l.admit(
            &AdmissionRequest::builder(
                JobId::new(1),
                ResourceRequest::new(1, Ways::new(8)),
                Cycles::new(100),
            )
            .mode(ExecutionMode::Elastic(cmpqos_types::Percent::new(50.0)))
            .build(),
        );
        // Lose 2 ways: the Elastic job gives up exactly 2 (within its
        // 4-way slack), the Strict job is untouched.
        let revs = l.revoke_capacity(
            ResourceRequest::new(4, Ways::new(14)).with_bandwidth(100),
            Cycles::ZERO,
        );
        assert_eq!(revs[0].action, RevocationAction::Kept);
        assert_eq!(
            revs[1].action,
            RevocationAction::Downgraded {
                ways_cut: Ways::new(2)
            }
        );
        assert_eq!(l.reservations()[1].request.cache_ways(), Ways::new(6));
    }

    #[test]
    fn readmit_preserves_duration_mode_and_deadline() {
        let mut src = lac();
        let _ = src.admit(&paper_req(0, 100, 1_000));
        let r = src.reservations()[0];
        let mut dst = lac();
        dst.advance(Cycles::new(50));
        let d = dst.readmit(&r);
        assert_eq!(
            d,
            Decision::Accepted {
                start: Cycles::new(50)
            }
        );
        let moved = dst.reservations()[0];
        assert_eq!(moved.end - moved.start, Cycles::new(100));
        assert_eq!(moved.deadline, Some(Cycles::new(1_000)));
        assert_eq!(moved.mode, ExecutionMode::Strict);
    }

    #[test]
    fn readmit_rejects_when_the_original_deadline_cannot_be_met() {
        let mut src = lac();
        let _ = src.admit(&paper_req(0, 100, 150));
        let r = src.reservations()[0];
        let mut dst = lac();
        // The destination node's clock is already past the latest start.
        dst.advance(Cycles::new(100));
        assert_eq!(
            dst.readmit(&r),
            Decision::Rejected(RejectReason::NoCapacityBeforeDeadline)
        );
    }

    #[test]
    fn fcfs_no_deadline_job_queues_indefinitely() {
        let mut l = lac();
        let _ = strict(&mut l, 0, 100, 1000);
        let _ = strict(&mut l, 1, 100, 1000);
        let d = l.admit(
            &AdmissionRequest::builder(
                JobId::new(2),
                ResourceRequest::paper_job(),
                Cycles::new(100),
            )
            .build(),
        );
        assert_eq!(
            d,
            Decision::Accepted {
                start: Cycles::new(100)
            }
        );
    }
}
