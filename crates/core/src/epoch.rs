//! The epoch hook: the seam between the admission plane (this crate) and
//! the adaptive control plane (`cmpqos-adapt`).
//!
//! The paper's framework *admits* jobs against declared resource targets
//! but never looks back at what performance was actually delivered. The
//! adaptive layer closes that loop: each control epoch the scheduler
//! samples every live job's delivered CPI and miss rate ([`EpochSample`]),
//! hands the batch to an installed [`EpochController`], and applies the
//! knob movements it returns ([`KnobUpdate`]). This module defines only
//! the vocabulary of that exchange — the controllers themselves live in
//! `cmpqos-adapt`, which depends on this crate (never the other way
//! around), keeping the dependency layering acyclic.
//!
//! Everything here is integer-denominated (milli-CPI, milli-percent) so a
//! controller can be a pure integer function of its sampled window:
//! deterministic, oracle-checkable, and bit-identical across `--jobs`
//! widths.

use crate::modes::ExecutionMode;
use cmpqos_types::{CoreId, Cycles, Instructions, JobId};

/// A per-job service-level objective, declared at submission.
///
/// Targets are integer milli-units: `max_cpi_milli = 2600` means "delivered
/// CPI must stay at or below 2.600". A job without an [`SloSpec`] is never
/// sampled as violating and never triggers intervention on its own behalf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SloSpec {
    /// Delivered-CPI ceiling, in milli-CPI (1000 × CPI).
    pub max_cpi_milli: u64,
    /// Optional L2 misses-per-kilo-instruction ceiling, in milli-MPKI
    /// (1000 × MPKI). `None` disables the miss-rate term.
    pub max_mpki_milli: Option<u64>,
}

impl SloSpec {
    /// An SLO bounding delivered CPI only.
    ///
    /// # Examples
    ///
    /// ```
    /// use cmpqos_core::SloSpec;
    /// let slo = SloSpec::cpi(2.6);
    /// assert_eq!(slo.max_cpi_milli, 2600);
    /// ```
    #[must_use]
    pub fn cpi(max_cpi: f64) -> Self {
        Self {
            max_cpi_milli: (max_cpi * 1000.0).round().max(0.0) as u64,
            max_mpki_milli: None,
        }
    }

    /// Adds an L2 MPKI ceiling to the objective.
    #[must_use]
    pub fn with_max_mpki(mut self, max_mpki: f64) -> Self {
        self.max_mpki_milli = Some((max_mpki * 1000.0).round().max(0.0) as u64);
        self
    }

    /// An SLO no run can violate, for baselines and metamorphic tests.
    #[must_use]
    pub fn unbounded() -> Self {
        Self {
            max_cpi_milli: u64::MAX,
            max_mpki_milli: None,
        }
    }
}

/// One job's delivered performance over the epoch that just ended.
///
/// All counters are *deltas* for the window, not lifetime totals, so a
/// controller sees the current operating point rather than a long-run
/// average that dilutes recent interference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSample {
    /// The sampled job.
    pub job: JobId,
    /// The core it is pinned to (`None` for floating/opportunistic jobs).
    pub core: Option<CoreId>,
    /// Its execution mode.
    pub mode: ExecutionMode,
    /// Its declared SLO, if any.
    pub slo: Option<SloSpec>,
    /// Instructions retired this epoch.
    pub instructions: Instructions,
    /// Cycles charged this epoch.
    pub cycles: Cycles,
    /// L2 misses this epoch.
    pub l2_misses: u64,
}

impl EpochSample {
    /// Delivered CPI over the window, in milli-CPI; `None` before any
    /// instruction retires (an idle window says nothing about the SLO).
    #[must_use]
    pub fn cpi_milli(&self) -> Option<u64> {
        self.cycles
            .get()
            .saturating_mul(1000)
            .checked_div(self.instructions.get())
    }

    /// Delivered L2 MPKI over the window, in milli-MPKI; `None` on an idle
    /// window.
    #[must_use]
    pub fn mpki_milli(&self) -> Option<u64> {
        self.l2_misses
            .saturating_mul(1_000_000)
            .checked_div(self.instructions.get())
    }

    /// Whether this window violates the job's SLO (false without an SLO or
    /// on an idle window).
    #[must_use]
    pub fn violates_slo(&self) -> bool {
        let Some(slo) = self.slo else { return false };
        let cpi_over = self.cpi_milli().is_some_and(|c| c > slo.max_cpi_milli);
        let mpki_over = slo
            .max_mpki_milli
            .is_some_and(|t| self.mpki_milli().is_some_and(|m| m > t));
        cpi_over || mpki_over
    }
}

/// Everything a controller may look at for one epoch decision.
#[derive(Debug, Clone, Copy)]
pub struct EpochView<'a> {
    /// The epoch boundary's simulation time.
    pub now: Cycles,
    /// One sample per live job, in job-id order (deterministic).
    pub samples: &'a [EpochSample],
    /// Cores with no pinned occupant (hosting floating work), in core
    /// order — the targets of the DVFS throttle actuator.
    pub floating_cores: &'a [CoreId],
}

/// One actuator movement requested by a controller.
///
/// The scheduler applies updates in the order returned, clamps nothing
/// (clamping is the controller's contract — see `cmpqos-adapt`'s property
/// tests), and emits a `KnobChanged` event only when the applied value
/// actually differs from the current one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobUpdate {
    /// Retune an Elastic donor's guard slack, in milli-percent.
    StealSlack {
        /// The donor job.
        job: JobId,
        /// New slack threshold, milli-percent (`20_000` = Elastic(20)).
        milli_pct: u64,
    },
    /// Retune an Elastic donor's repartitioning interval.
    StealInterval {
        /// The donor job.
        job: JobId,
        /// New interval, in retired instructions.
        interval: Instructions,
    },
    /// Set a core's DVFS-style speed.
    CoreSpeed {
        /// The core to throttle.
        core: CoreId,
        /// New speed, percent of full frequency.
        percent: u8,
    },
}

/// A closed-loop controller installed on the scheduler via
/// `QosScheduler::set_epoch_controller`.
///
/// Called once per control epoch with the window's samples; returns the
/// knob movements to apply. Implementations must be deterministic pure
/// functions of their own state plus the sampled window — no clocks, no
/// ambient randomness — so adaptive runs stay byte-identical across
/// `--jobs` widths.
pub trait EpochController: Send {
    /// A short stable name, for labels and debug output.
    fn name(&self) -> &'static str;

    /// Decides the knob movements for the epoch that just ended.
    fn epoch(&mut self, view: &EpochView<'_>) -> Vec<KnobUpdate>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(instr: u64, cycles: u64, misses: u64, slo: Option<SloSpec>) -> EpochSample {
        EpochSample {
            job: JobId::new(1),
            core: Some(CoreId::new(0)),
            mode: ExecutionMode::Strict,
            slo,
            instructions: Instructions::new(instr),
            cycles: Cycles::new(cycles),
            l2_misses: misses,
        }
    }

    #[test]
    fn milli_ratios_are_exact_integer_arithmetic() {
        let s = sample(4000, 10_400, 12, None);
        assert_eq!(s.cpi_milli(), Some(2600));
        assert_eq!(s.mpki_milli(), Some(3000)); // 12/4000 instr = 3 MPKI
        let idle = sample(0, 0, 0, None);
        assert_eq!(idle.cpi_milli(), None);
        assert_eq!(idle.mpki_milli(), None);
    }

    #[test]
    fn violation_requires_an_slo_and_a_busy_window() {
        let slo = SloSpec::cpi(2.5);
        assert!(sample(1000, 2600, 0, Some(slo)).violates_slo());
        assert!(!sample(1000, 2400, 0, Some(slo)).violates_slo());
        assert!(!sample(1000, 9999, 0, None).violates_slo());
        assert!(!sample(0, 0, 0, Some(slo)).violates_slo());
        assert!(!sample(1000, 9999, 99, Some(SloSpec::unbounded())).violates_slo());
    }

    #[test]
    fn mpki_term_is_independent_of_the_cpi_term() {
        let slo = SloSpec::cpi(10.0).with_max_mpki(2.0);
        assert_eq!(slo.max_mpki_milli, Some(2000));
        // CPI fine, MPKI over: 3 MPKI > 2 MPKI.
        assert!(sample(4000, 8000, 12, Some(slo)).violates_slo());
        // Both fine.
        assert!(!sample(4000, 8000, 4, Some(slo)).violates_slo());
    }
}
