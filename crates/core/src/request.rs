//! The typed admission-request API.
//!
//! [`AdmissionRequest`] replaces the old five-positional-argument
//! `admit(id, mode, request, tw, deadline)` family: one struct carries the
//! whole ask, a fluent builder keeps call sites readable, and
//! [`Placement`] makes the earliest-vs-latest slot policy (the old
//! `admit` / `admit_latest` split) an explicit field instead of a second
//! method name. `Lac::admit(&AdmissionRequest)` is the single entry point;
//! `Lac::admit_batch` amortizes bookkeeping over a FCFS run of requests.
//!
//! [`Feasibility`] is the shared read-only query surface of the production
//! `Lac` and the testkit's brute-force `OracleLac`: both answer the same
//! capacity/usage/fit questions, which is exactly what makes them
//! differentially testable.

use crate::epoch::SloSpec;
use crate::modes::ExecutionMode;
use crate::target::ResourceRequest;
use cmpqos_types::{Cycles, JobId, SourceId};

/// Where in the timeline the LAC should place the reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// The earliest feasible slot at or after `now` (Section 5 FCFS).
    #[default]
    Earliest,
    /// The latest slot `[td − duration, td)` that still meets the
    /// deadline, falling back to the earliest feasible slot when the
    /// latest is taken (Section 3.4 places an automatically downgraded
    /// job's fallback reservation as far away as possible). Requests
    /// without a deadline fall back to [`Placement::Earliest`]; the job
    /// is admitted as `Strict` (the downgrade-fallback semantics).
    LatestFeasible,
}

/// One admission request: everything the LAC needs to run the Section 5
/// FCFS test, as a value.
///
/// Construct with [`AdmissionRequest::builder`]; the struct is
/// `#[non_exhaustive]`, so fields may be added without breaking
/// downstream crates.
///
/// # Examples
///
/// ```
/// use cmpqos_core::{AdmissionRequest, ExecutionMode, Lac, LacConfig, ResourceRequest};
/// use cmpqos_types::{Cycles, JobId};
///
/// let mut lac = Lac::new(LacConfig::default());
/// let req = AdmissionRequest::builder(
///     JobId::new(0),
///     ResourceRequest::paper_job(),
///     Cycles::new(1_000),
/// )
/// .deadline(Cycles::new(2_000))
/// .build();
/// assert!(lac.admit(&req).is_accepted());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct AdmissionRequest {
    /// The job asking for admission.
    pub id: JobId,
    /// Who is asking (the intake's rate-limited principal).
    pub source: SourceId,
    /// The requested execution mode.
    pub mode: ExecutionMode,
    /// The requested resources.
    pub request: ResourceRequest,
    /// Maximum wall-clock time with the full request (tw).
    pub tw: Cycles,
    /// Absolute completion deadline (td), when given.
    pub deadline: Option<Cycles>,
    /// Earliest-feasible (default) or latest-feasible slot placement.
    pub placement: Placement,
    /// Delivered-performance objective, sampled by the adaptive control
    /// plane each epoch. Admission itself never tests it (RUM targets
    /// stay the only admission currency); it is carried so schedulers can
    /// hand it to an installed `EpochController`.
    pub slo: Option<SloSpec>,
}

impl AdmissionRequest {
    /// A fluent builder over the three mandatory fields. Defaults:
    /// [`ExecutionMode::Strict`], source 0, no deadline,
    /// [`Placement::Earliest`].
    #[must_use]
    pub fn builder(id: JobId, request: ResourceRequest, tw: Cycles) -> AdmissionRequestBuilder {
        AdmissionRequestBuilder {
            req: AdmissionRequest {
                id,
                source: SourceId::new(0),
                mode: ExecutionMode::Strict,
                request,
                tw,
                deadline: None,
                placement: Placement::Earliest,
                slo: None,
            },
        }
    }
}

/// Fluent builder for [`AdmissionRequest`].
#[derive(Debug, Clone)]
pub struct AdmissionRequestBuilder {
    req: AdmissionRequest,
}

impl AdmissionRequestBuilder {
    /// Sets the requesting source (the rate-limited principal).
    #[must_use]
    pub fn source(mut self, source: SourceId) -> Self {
        self.req.source = source;
        self
    }

    /// Sets the execution mode.
    #[must_use]
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.req.mode = mode;
        self
    }

    /// Sets the absolute completion deadline.
    #[must_use]
    pub fn deadline(mut self, td: Cycles) -> Self {
        self.req.deadline = Some(td);
        self
    }

    /// Clears the deadline (the job queues indefinitely if needed).
    #[must_use]
    pub fn no_deadline(mut self) -> Self {
        self.req.deadline = None;
        self
    }

    /// Sets the slot placement policy.
    #[must_use]
    pub fn placement(mut self, placement: Placement) -> Self {
        self.req.placement = placement;
        self
    }

    /// Shorthand for [`Placement::LatestFeasible`] (the old
    /// `admit_latest` behavior).
    #[must_use]
    pub fn latest_feasible(mut self) -> Self {
        self.req.placement = Placement::LatestFeasible;
        self
    }

    /// Declares a delivered-performance objective for the adaptive
    /// control plane to hold.
    #[must_use]
    pub fn slo(mut self, slo: SloSpec) -> Self {
        self.req.slo = Some(slo);
        self
    }

    /// Finishes the request.
    #[must_use]
    pub fn build(self) -> AdmissionRequest {
        self.req
    }
}

/// Read-only feasibility queries shared by the production `Lac` (answered
/// from the occupancy index) and the testkit's `OracleLac` (answered by
/// brute force). Differential tests pin the two implementations against
/// each other.
pub trait Feasibility {
    /// Total node capacity.
    fn capacity(&self) -> ResourceRequest;

    /// The controller's clock.
    fn now(&self) -> Cycles;

    /// Reserved usage at instant `t`.
    fn usage_at(&self, t: Cycles) -> ResourceRequest;

    /// Whether `request` fits on top of existing reservations at every
    /// instant of `[start, end)`.
    fn fits_over(&self, request: &ResourceRequest, start: Cycles, end: Cycles) -> bool;

    /// Earliest `s ∈ [not_before, latest_start]` such that `request` fits
    /// over `[s, s+duration)`.
    fn earliest_feasible(
        &self,
        request: &ResourceRequest,
        duration: Cycles,
        not_before: Cycles,
        latest_start: Cycles,
    ) -> Option<Cycles>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_strict_earliest_no_deadline() {
        let req = AdmissionRequest::builder(
            JobId::new(3),
            ResourceRequest::paper_job(),
            Cycles::new(100),
        )
        .build();
        assert_eq!(req.id, JobId::new(3));
        assert_eq!(req.source, SourceId::new(0));
        assert_eq!(req.mode, ExecutionMode::Strict);
        assert_eq!(req.deadline, None);
        assert_eq!(req.placement, Placement::Earliest);
    }

    #[test]
    fn builder_sets_every_field() {
        let req =
            AdmissionRequest::builder(JobId::new(1), ResourceRequest::paper_job(), Cycles::new(50))
                .source(SourceId::new(9))
                .mode(ExecutionMode::Opportunistic)
                .deadline(Cycles::new(500))
                .latest_feasible()
                .build();
        assert_eq!(req.source, SourceId::new(9));
        assert_eq!(req.mode, ExecutionMode::Opportunistic);
        assert_eq!(req.deadline, Some(Cycles::new(500)));
        assert_eq!(req.placement, Placement::LatestFeasible);
        let req = AdmissionRequestBuilder { req }.no_deadline().build();
        assert_eq!(req.deadline, None);
    }
}
