//! The QoS orchestrator: LAC + execution modes + stealing, driving a
//! [`CmpNode`].
//!
//! [`QosScheduler`] is the deployable face of the framework. Submissions go
//! through the Local Admission Controller; accepted Strict/Elastic jobs are
//! pinned to cores at their reserved start times with their requested L2
//! ways; Opportunistic jobs float over unreserved cores and share the
//! unallocated (plus stolen) cache ways; Elastic jobs donate capacity
//! through the duplicate-tag-guarded stealing controller; and (when
//! enabled) Strict jobs with deadline slack are automatically downgraded to
//! run opportunistically against a late fallback reservation (Section 3.4).

use crate::epoch::{EpochController, EpochSample, EpochView, KnobUpdate, SloSpec};
use crate::lac::{Decision, Lac, LacConfig, Revocation, RevocationAction};
use crate::modes::{auto_downgrade_plan, ExecutionMode};
use crate::request::AdmissionRequest;
use crate::stealing::{StealingAction, StealingConfig, StealingController};
use crate::target::ResourceRequest;
use cmpqos_cache::WayMaskError;
use cmpqos_cpu::PerfCounters;
use cmpqos_obs::{Event, FaultKind, Knob, NullRecorder, Recorder};
use cmpqos_system::{CmpNode, Placement, SystemConfig, TaskSpec};
use cmpqos_trace::TraceSource;
use cmpqos_types::{CoreId, Cycles, Instructions, JobId, NodeId, Percent, Ways};
use std::collections::BTreeMap;
use std::fmt;

/// A job submission: QoS target plus workload size.
///
/// Construct with the mode builders — [`QosJob::strict`],
/// [`QosJob::elastic`], [`QosJob::opportunistic`] — e.g.
/// `QosJob::strict(id, request).work(n).deadline(td).build()`. The struct
/// is `#[non_exhaustive]`, so fields may be added without breaking
/// downstream crates; all fields stay public for reading.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub struct QosJob {
    /// Unique job id.
    pub id: JobId,
    /// Requested execution mode.
    pub mode: ExecutionMode,
    /// RUM resource request.
    pub request: ResourceRequest,
    /// Instructions the job must retire.
    pub work: Instructions,
    /// Maximum wall-clock time (`tw`) with the full request.
    pub max_wall_clock: Cycles,
    /// Absolute deadline (`td`), if any.
    pub deadline: Option<Cycles>,
    /// Delivered-performance objective for the adaptive control plane,
    /// if any. Admission never tests it.
    pub slo: Option<SloSpec>,
}

impl QosJob {
    /// A builder for a Strict job.
    #[must_use]
    pub fn strict(id: JobId, request: ResourceRequest) -> QosJobBuilder {
        Self::with_mode(id, ExecutionMode::Strict, request)
    }

    /// A builder for an Elastic(`slack`) job.
    #[must_use]
    pub fn elastic(id: JobId, request: ResourceRequest, slack: Percent) -> QosJobBuilder {
        Self::with_mode(id, ExecutionMode::Elastic(slack), request)
    }

    /// A builder for an Opportunistic job.
    #[must_use]
    pub fn opportunistic(id: JobId, request: ResourceRequest) -> QosJobBuilder {
        Self::with_mode(id, ExecutionMode::Opportunistic, request)
    }

    /// A builder for an arbitrary mode (useful when the mode is data).
    #[must_use]
    pub fn with_mode(id: JobId, mode: ExecutionMode, request: ResourceRequest) -> QosJobBuilder {
        QosJobBuilder {
            job: QosJob {
                id,
                mode,
                request,
                work: Instructions::new(0),
                max_wall_clock: Cycles::ZERO,
                deadline: None,
                slo: None,
            },
        }
    }
}

/// Fluent builder for [`QosJob`]; see the mode constructors on `QosJob`.
#[derive(Debug, Clone, Copy)]
pub struct QosJobBuilder {
    job: QosJob,
}

impl QosJobBuilder {
    /// Sets the instructions the job must retire.
    #[must_use]
    pub fn work(mut self, work: Instructions) -> Self {
        self.job.work = work;
        self
    }

    /// Sets the maximum wall-clock time `tw` with the full request.
    #[must_use]
    pub fn max_wall_clock(mut self, tw: Cycles) -> Self {
        self.job.max_wall_clock = tw;
        self
    }

    /// Sets the absolute deadline `td`.
    #[must_use]
    pub fn deadline(mut self, td: Cycles) -> Self {
        self.job.deadline = Some(td);
        self
    }

    /// Clears the deadline (the default).
    #[must_use]
    pub fn no_deadline(mut self) -> Self {
        self.job.deadline = None;
        self
    }

    /// Declares a delivered-performance objective for the adaptive
    /// control plane to hold.
    #[must_use]
    pub fn slo(mut self, slo: SloSpec) -> Self {
        self.job.slo = Some(slo);
        self
    }

    /// Replaces the resource request.
    #[must_use]
    pub fn request(mut self, request: ResourceRequest) -> Self {
        self.job.request = request;
        self
    }

    /// Finishes the job description.
    #[must_use]
    pub fn build(self) -> QosJob {
        self.job
    }
}

/// Orchestrator configuration.
///
/// Construct with [`SchedulerConfig::default`] or the
/// [`SchedulerConfig::builder`]; the struct is `#[non_exhaustive]`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SchedulerConfig {
    /// LAC capacity configuration.
    pub lac: LacConfig,
    /// Resource-stealing parameters.
    pub stealing: StealingConfig,
    /// Event-polling granularity (stealing checks, starts, switch-backs).
    pub slice: Cycles,
    /// Enable automatic mode downgrade for Strict jobs with slack
    /// (the `All-Strict+AutoDown` configuration).
    pub auto_downgrade: bool,
    /// Master switch for resource stealing (disable to measure the
    /// no-stealing baseline of Figure 8).
    pub stealing_enabled: bool,
    /// Minimum slack (as a fraction of `tw`) for automatic downgrade to
    /// apply. The paper downgrades only jobs with moderate (`2·tw`) or
    /// relaxed (`3·tw`) deadlines, not tight (`1.05·tw`) ones; the default
    /// of 0.5 reproduces that split.
    pub auto_downgrade_min_slack: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            lac: LacConfig::default(),
            stealing: StealingConfig::default(),
            slice: Cycles::new(50_000),
            auto_downgrade: false,
            stealing_enabled: true,
            auto_downgrade_min_slack: 0.5,
        }
    }
}

impl SchedulerConfig {
    /// A fluent builder starting from the defaults.
    #[must_use]
    pub fn builder() -> SchedulerConfigBuilder {
        SchedulerConfigBuilder {
            config: SchedulerConfig::default(),
        }
    }
}

/// Fluent builder for [`SchedulerConfig`].
#[derive(Debug, Clone)]
pub struct SchedulerConfigBuilder {
    config: SchedulerConfig,
}

impl SchedulerConfigBuilder {
    /// Sets the LAC capacity configuration.
    #[must_use]
    pub fn lac(mut self, lac: LacConfig) -> Self {
        self.config.lac = lac;
        self
    }

    /// Sets the resource-stealing parameters.
    #[must_use]
    pub fn stealing(mut self, stealing: StealingConfig) -> Self {
        self.config.stealing = stealing;
        self
    }

    /// Sets the event-polling granularity.
    #[must_use]
    pub fn slice(mut self, slice: Cycles) -> Self {
        self.config.slice = slice;
        self
    }

    /// Enables/disables automatic mode downgrade.
    #[must_use]
    pub fn auto_downgrade(mut self, enabled: bool) -> Self {
        self.config.auto_downgrade = enabled;
        self
    }

    /// Enables/disables resource stealing.
    #[must_use]
    pub fn stealing_enabled(mut self, enabled: bool) -> Self {
        self.config.stealing_enabled = enabled;
        self
    }

    /// Sets the minimum slack fraction for automatic downgrade.
    #[must_use]
    pub fn auto_downgrade_min_slack(mut self, fraction: f64) -> Self {
        self.config.auto_downgrade_min_slack = fraction;
        self
    }

    /// Finishes the configuration.
    #[must_use]
    pub fn build(self) -> SchedulerConfig {
        self.config
    }
}

/// Notable moments in a job's life, for reports and trace visualization
/// (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum JobEvent {
    /// Admitted with a reservation starting at the given time.
    Accepted(Cycles),
    /// Began executing.
    Started,
    /// Began running opportunistically under automatic downgrade.
    AutoDowngraded,
    /// Reverted to Strict execution at its fallback reservation.
    SwitchedBack,
    /// Resource stealing removed one way.
    WayStolen,
    /// The stealing guard tripped; stolen ways returned.
    StealingCancelled,
    /// A way fault shrank this job's reservation by the given ways.
    FaultDowngraded(Ways),
    /// A way fault revoked this job's reservation outright.
    ReservationRevoked,
    /// Finished all work.
    Completed,
}

/// Resource-stealing summary for an Elastic(X) job (Figure 8's metrics).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StealReport {
    /// The job's slack `X`.
    pub slack: cmpqos_types::Percent,
    /// Ways stolen at completion (zero if the guard cancelled).
    pub stolen: Ways,
    /// Peak ways stolen at any point (what the job actually donated).
    pub max_stolen: Ways,
    /// Whether the guard cancelled stealing.
    pub cancelled: bool,
    /// Final cumulative L2 miss increase versus the duplicate tags.
    pub miss_increase: f64,
    /// Repartitioning intervals processed.
    pub intervals: u64,
}

/// Final (or in-flight) report for one job.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JobReport {
    /// The submission.
    pub job: QosJob,
    /// Submission time.
    pub arrival: Cycles,
    /// The admission decision.
    pub decision: Decision,
    /// First execution instant (None if never started).
    pub started: Option<Cycles>,
    /// Completion instant (None if still running).
    pub finished: Option<Cycles>,
    /// Performance counters (snapshot at completion or query time).
    pub perf: PerfCounters,
    /// Event log with timestamps.
    pub events: Vec<(Cycles, JobEvent)>,
    /// Stealing summary (Elastic jobs that ran with stealing enabled).
    pub steal: Option<StealReport>,
}

impl JobReport {
    /// Whether the job completed by its deadline. Jobs without a deadline
    /// count as meeting it; unaccepted or unfinished jobs do not.
    #[must_use]
    pub fn met_deadline(&self) -> bool {
        match (self.finished, self.job.deadline) {
            (Some(f), Some(td)) => f <= td,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Execution wall-clock time (start to finish), if completed.
    #[must_use]
    pub fn wall_clock(&self) -> Option<Cycles> {
        match (self.started, self.finished) {
            (Some(s), Some(f)) => Some(f - s),
            _ => None,
        }
    }
}

/// What injecting a faulty L2 way did to the node and its reservations.
#[derive(Debug)]
#[non_exhaustive]
pub struct WayFaultOutcome {
    /// The way that was masked out of the shared L2.
    pub way: u16,
    /// Dirty lines the mask flushed out of the dead way column.
    pub dirty_writebacks: usize,
    /// What happened to each live reservation, in FCFS order.
    pub revocations: Vec<Revocation>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    /// Reserved; waiting for its start time (Strict/Elastic).
    WaitingStart(Cycles),
    /// Running pinned with reserved resources.
    RunningReserved,
    /// Running (or queued) as floating/opportunistic work.
    RunningOpportunistic,
    /// Done.
    Completed(Cycles),
    /// Rejected by admission control.
    Rejected,
}

struct Managed {
    job: QosJob,
    arrival: Cycles,
    decision: Decision,
    state: JobState,
    source: Option<Box<dyn TraceSource>>,
    stealing: Option<StealingController>,
    /// Automatic-downgrade fallback: revert to Strict at this time.
    switch_back_at: Option<Cycles>,
    started: Option<Cycles>,
    finished: Option<Cycles>,
    events: Vec<(Cycles, JobEvent)>,
    steal_summary: Option<StealReport>,
}

impl fmt::Debug for Managed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Managed")
            .field("job", &self.job)
            .field("state", &self.state)
            .finish()
    }
}

/// The framework orchestrator. See the [crate docs](crate) for a quick
/// start.
///
/// Every observable moment — admission decisions, starts, downgrades,
/// stealing intervals, guard trips, partition retargets, completions — is
/// emitted to the attached [`Recorder`] ([`NullRecorder`] by default,
/// which costs nothing on the hot path).
pub struct QosScheduler {
    node: CmpNode,
    lac: Lac,
    config: SchedulerConfig,
    jobs: BTreeMap<JobId, Managed>,
    recorder: Box<dyn Recorder>,
    epoch: Option<EpochHook>,
}

/// The installed closed-loop controller plus its sampling bookkeeping.
struct EpochHook {
    controller: Box<dyn EpochController>,
    epoch_len: Cycles,
    next_epoch: Cycles,
    /// Lifetime counters at the previous boundary, for window deltas.
    last_perf: BTreeMap<JobId, PerfCounters>,
}

impl fmt::Debug for QosScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QosScheduler")
            .field("node", &self.node)
            .field("lac", &self.lac)
            .field("config", &self.config)
            .field("jobs", &self.jobs)
            .field("recording", &self.recorder.enabled())
            .field(
                "controller",
                &self.epoch.as_ref().map(|h| h.controller.name()),
            )
            .finish()
    }
}

impl QosScheduler {
    /// Creates a scheduler over a fresh node, with events discarded
    /// (a [`NullRecorder`]).
    ///
    /// The LAC capacity is aligned to the node: its core count and L2
    /// associativity override whatever `config.lac` said.
    #[must_use]
    pub fn new(system: SystemConfig, config: SchedulerConfig) -> Self {
        Self::with_recorder(system, config, Box::new(NullRecorder))
    }

    /// [`QosScheduler::new`] with an event sink attached.
    #[must_use]
    pub fn with_recorder(
        system: SystemConfig,
        mut config: SchedulerConfig,
        recorder: Box<dyn Recorder>,
    ) -> Self {
        config.lac.capacity = ResourceRequest::new(
            system.num_cores as u32,
            Ways::new(system.l2.associativity()),
        )
        .with_bandwidth(100);
        Self {
            node: CmpNode::new(system),
            lac: Lac::new(config.lac),
            config,
            jobs: BTreeMap::new(),
            recorder,
            epoch: None,
        }
    }

    /// Installs a closed-loop [`EpochController`], sampled every
    /// `epoch_len` cycles starting one epoch from now. Returns the
    /// previously installed controller, if any.
    ///
    /// Each boundary the scheduler samples every live job's windowed
    /// delivered performance, emits `SloViolated` for jobs over their
    /// [`SloSpec`], hands the batch to the controller, and applies the
    /// knob movements it returns — emitting `KnobChanged` only when an
    /// applied value actually differs.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn set_epoch_controller(
        &mut self,
        controller: Box<dyn EpochController>,
        epoch_len: Cycles,
    ) -> Option<Box<dyn EpochController>> {
        assert!(epoch_len > Cycles::ZERO, "epoch length must be positive");
        let hook = EpochHook {
            controller,
            epoch_len,
            next_epoch: self.node.now() + epoch_len,
            last_perf: BTreeMap::new(),
        };
        self.epoch.replace(hook).map(|h| h.controller)
    }

    /// Replaces the event sink, returning the previous one.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) -> Box<dyn Recorder> {
        std::mem::replace(&mut self.recorder, recorder)
    }

    /// Detaches the event sink (a [`NullRecorder`] takes its place), e.g.
    /// to inspect a `RingBufferRecorder`'s contents after a run.
    pub fn take_recorder(&mut self) -> Box<dyn Recorder> {
        self.set_recorder(Box::new(NullRecorder))
    }

    /// Mutable access to the attached sink (e.g. to flush it).
    pub fn recorder_mut(&mut self) -> &mut dyn Recorder {
        self.recorder.as_mut()
    }

    /// The underlying node (read access for stats and introspection).
    #[must_use]
    pub fn node(&self) -> &CmpNode {
        &self.node
    }

    /// The admission controller.
    #[must_use]
    pub fn lac(&self) -> &Lac {
        &self.lac
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.node.now()
    }

    /// Whether any job is still waiting or running.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.jobs
            .values()
            .all(|m| matches!(m.state, JobState::Completed(_) | JobState::Rejected))
    }

    /// Submits a job at the current simulation time with its workload
    /// `source`. Returns the admission decision.
    pub fn submit(&mut self, job: QosJob, source: Box<dyn TraceSource>) -> Decision {
        let now = self.node.now();
        self.lac.advance(now);
        let id = job.id;
        self.recorder.record(
            now,
            Event::Submitted {
                job: id,
                mode: job.mode.into(),
            },
        );

        // Automatic mode downgrade (Section 3.4): a Strict job with slack
        // reserves the *latest* slot and runs opportunistically until then.
        let min_slack = job
            .max_wall_clock
            .scale(self.config.auto_downgrade_min_slack);
        let auto = self.config.auto_downgrade
            && job.mode == ExecutionMode::Strict
            && job.deadline.is_some_and(|td| {
                auto_downgrade_plan(now, td, job.max_wall_clock).is_some()
                    && td.saturating_sub(now).saturating_sub(job.max_wall_clock) >= min_slack
            });

        let decision = if auto {
            let td = job.deadline.expect("auto requires a deadline");
            let mut b = AdmissionRequest::builder(id, job.request, job.max_wall_clock)
                .deadline(td)
                .latest_feasible();
            if let Some(slo) = job.slo {
                b = b.slo(slo);
            }
            self.lac.admit_with(&b.build(), self.recorder.as_mut())
        } else {
            let mut b =
                AdmissionRequest::builder(id, job.request, job.max_wall_clock).mode(job.mode);
            if let Some(td) = job.deadline {
                b = b.deadline(td);
            }
            if let Some(slo) = job.slo {
                b = b.slo(slo);
            }
            self.lac.admit_with(&b.build(), self.recorder.as_mut())
        };

        let mut managed = Managed {
            job,
            arrival: now,
            decision,
            state: JobState::Rejected,
            source: Some(source),
            stealing: None,
            switch_back_at: None,
            started: None,
            finished: None,
            events: Vec::new(),
            steal_summary: None,
        };

        if let Decision::Accepted { start } = decision {
            managed.events.push((now, JobEvent::Accepted(start)));
            match job.mode {
                ExecutionMode::Opportunistic => {
                    managed.state = JobState::RunningOpportunistic;
                }
                _ if auto && start > now => {
                    // Run opportunistically until the fallback slot.
                    managed.state = JobState::RunningOpportunistic;
                    managed.switch_back_at = Some(start);
                    managed.events.push((now, JobEvent::AutoDowngraded));
                    self.recorder.record(
                        now,
                        Event::Downgraded {
                            job: id,
                            from: job.mode.into(),
                            to: cmpqos_obs::Mode::Opportunistic,
                        },
                    );
                }
                _ => {
                    managed.state = JobState::WaitingStart(start);
                }
            }
        }

        let state = managed.state;
        self.jobs.insert(id, managed);
        match state {
            JobState::RunningOpportunistic => self.spawn_floating(id),
            JobState::WaitingStart(start) if start <= now => self.try_start_reserved(),
            _ => {}
        }
        decision
    }

    /// Runs the framework until simulation time `t`.
    pub fn run_until(&mut self, t: Cycles) {
        while self.node.now() < t {
            let next = self
                .next_event_after(self.node.now())
                .map_or(t, |e| e.min(t))
                .min(self.node.now() + self.config.slice)
                .max(self.node.now() + Cycles::new(1));
            self.node.run_until(next);
            self.pump();
        }
    }

    /// Runs until every accepted job has completed (or `hard_cap`).
    /// Returns the completion time of the last job.
    pub fn run_to_idle(&mut self, hard_cap: Cycles) -> Cycles {
        while !self.is_idle() && self.node.now() < hard_cap {
            let next = (self.node.now() + self.config.slice).min(hard_cap);
            self.run_until(next);
        }
        self.jobs
            .values()
            .filter_map(|m| m.finished)
            .max()
            .unwrap_or_else(|| self.node.now())
    }

    /// The report for one submitted job.
    #[must_use]
    pub fn report(&self, id: JobId) -> Option<JobReport> {
        let m = self.jobs.get(&id)?;
        Some(JobReport {
            job: m.job,
            arrival: m.arrival,
            decision: m.decision,
            started: m.started,
            finished: m.finished,
            perf: self.node.perf(id).copied().unwrap_or_default(),
            events: m.events.clone(),
            steal: m.steal_summary,
        })
    }

    /// Reports for every submitted job, in id order.
    #[must_use]
    pub fn reports(&self) -> Vec<JobReport> {
        self.jobs.keys().filter_map(|&id| self.report(id)).collect()
    }

    /// The stealing controller state for an Elastic job, if it has one.
    #[must_use]
    pub fn stealing_state(&self, id: JobId) -> Option<&StealingController> {
        self.jobs.get(&id)?.stealing.as_ref()
    }

    // ----- event pump -----------------------------------------------------

    fn next_event_after(&self, now: Cycles) -> Option<Cycles> {
        let mut next: Option<Cycles> = None;
        let mut consider = |t: Cycles| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for m in self.jobs.values() {
            if let JobState::WaitingStart(start) = m.state {
                consider(start);
            }
            if let Some(sb) = m.switch_back_at {
                consider(sb);
            }
        }
        if let Some(hook) = &self.epoch {
            consider(hook.next_epoch);
        }
        next
    }

    fn pump(&mut self) {
        let now = self.node.now();
        self.lac.advance(now);
        self.process_completions();
        self.process_switch_backs();
        self.try_start_reserved();
        self.drive_stealing();
        self.drive_epoch();
    }

    fn process_completions(&mut self) {
        let completions = self.node.take_completions();
        if completions.is_empty() {
            return;
        }
        for c in completions {
            if let Some(m) = self.jobs.get_mut(&c.id) {
                m.state = JobState::Completed(c.finished_at);
                m.started = Some(c.started_at);
                m.finished = Some(c.finished_at);
                m.events.push((c.finished_at, JobEvent::Completed));
                let met_deadline = m.job.deadline.is_none_or(|td| c.finished_at <= td);
                self.recorder.record(
                    c.finished_at,
                    Event::Completed {
                        job: c.id,
                        met_deadline,
                    },
                );
                if let Some(td) = m.job.deadline {
                    if c.finished_at > td {
                        self.recorder.record(
                            c.finished_at,
                            Event::DeadlineMissed {
                                job: c.id,
                                deadline: td,
                                finished: c.finished_at,
                            },
                        );
                    }
                }
                // Reclaim any remaining reservation (early completion).
                self.lac.release(c.id, c.finished_at);
                let monitor = self.node.detach_monitor(c.id);
                if let (Some(ctl), Some(mon)) = (m.stealing.take(), monitor) {
                    m.steal_summary = Some(StealReport {
                        slack: ctl.slack(),
                        stolen: ctl.stolen(),
                        max_stolen: ctl.max_stolen(),
                        cancelled: ctl.is_cancelled(),
                        miss_increase: mon.miss_increase(),
                        intervals: ctl.intervals_seen(),
                    });
                }
            }
        }
        self.recompute_partition();
        // Freed cores may unblock waiting reserved jobs.
        self.try_start_reserved();
    }

    fn process_switch_backs(&mut self) {
        let now = self.node.now();
        let due: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, m)| {
                m.state == JobState::RunningOpportunistic
                    && m.switch_back_at.is_some_and(|t| t <= now)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let Some(core) = self.free_core() else {
                continue; // retry next pump; the reservation guarantees one soon
            };
            if self.node.is_live(id) && self.node.repin(id, core).is_ok() {
                self.node.set_reserved(id, true);
                let m = self.jobs.get_mut(&id).expect("job tracked");
                m.switch_back_at = None;
                m.state = JobState::RunningReserved;
                m.events.push((now, JobEvent::SwitchedBack));
                let to = m.job.mode.into();
                self.recorder
                    .record(now, Event::SwitchedBack { job: id, to });
                self.recompute_partition();
            } else if let Some(m) = self.jobs.get_mut(&id) {
                // Completed in the same slice; nothing to revert.
                m.switch_back_at = None;
            }
        }
    }

    fn try_start_reserved(&mut self) {
        let now = self.node.now();
        loop {
            let due: Option<JobId> = self
                .jobs
                .iter()
                .filter(|(_, m)| matches!(m.state, JobState::WaitingStart(s) if s <= now))
                .min_by_key(|(_, m)| match m.state {
                    JobState::WaitingStart(s) => s,
                    _ => Cycles::ZERO,
                })
                .map(|(&id, _)| id);
            let Some(id) = due else { return };
            let Some(core) = self.free_core() else {
                return; // no free core yet (a predecessor overran); retry later
            };
            // A predecessor overrunning its reservation may still hold its
            // ways; starting now would overcommit the partition. Delay.
            let total = self.node.l2_usable_ways().get();
            let in_use: u16 = (0..self.node.config().num_cores as u32)
                .filter_map(|i| self.node.pinned_on(CoreId::new(i)))
                .filter_map(|jid| self.jobs.get(&jid))
                .map(|j| j.job.request.cache_ways().get())
                .sum();
            let want = self
                .jobs
                .get(&id)
                .expect("job tracked")
                .job
                .request
                .cache_ways()
                .get();
            if in_use + want > total {
                return;
            }
            let m = self.jobs.get_mut(&id).expect("job tracked");
            let source = m.source.take().expect("unstarted job retains its source");
            let spec = TaskSpec {
                id,
                source,
                budget: m.job.work,
                placement: Placement::Pinned(core),
                reserved: true,
            };
            m.state = JobState::RunningReserved;
            m.events.push((now, JobEvent::Started));
            self.recorder.record(
                now,
                Event::Started {
                    job: id,
                    core: Some(core),
                    mode: m.job.mode.into(),
                },
            );
            if let ExecutionMode::Elastic(x) = m.job.mode {
                if self.config.stealing_enabled {
                    m.stealing = Some(StealingController::new(
                        x,
                        m.job.request.cache_ways(),
                        self.config.stealing,
                    ));
                }
            }
            let is_elastic =
                matches!(m.job.mode, ExecutionMode::Elastic(_)) && self.config.stealing_enabled;
            let ways = m.job.request.cache_ways();
            self.node.spawn(spec).expect("validated spawn");
            if is_elastic {
                self.node.attach_monitor(id, ways);
            }
            self.recompute_partition();
        }
    }

    fn spawn_floating(&mut self, id: JobId) {
        let m = self.jobs.get_mut(&id).expect("job tracked");
        let source = m.source.take().expect("unstarted job retains its source");
        let spec = TaskSpec {
            id,
            source,
            budget: m.job.work,
            placement: Placement::Floating,
            reserved: false,
        };
        let now = self.node.now();
        m.events.push((now, JobEvent::Started));
        self.recorder.record(
            now,
            Event::Started {
                job: id,
                core: None,
                mode: cmpqos_obs::Mode::Opportunistic,
            },
        );
        self.node.spawn(spec).expect("validated spawn");
        self.recompute_partition();
    }

    fn drive_stealing(&mut self) {
        if !self.config.stealing_enabled {
            return;
        }
        let ids: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, m)| m.stealing.is_some() && m.state == JobState::RunningReserved)
            .map(|(&id, _)| id)
            .collect();
        if ids.is_empty() {
            return;
        }
        let bus = self.node.bus_utilization();
        let mut changed = false;
        for id in ids {
            let Some(perf) = self.node.perf(id).copied() else {
                continue;
            };
            let m = self.jobs.get_mut(&id).expect("job tracked");
            let ctl = m.stealing.as_mut().expect("filtered on stealing");
            if !ctl.interval_due(perf.instructions()) {
                continue;
            }
            let Some(monitor) = self.node.monitor(id) else {
                continue;
            };
            let now = self.node.now();
            let action = ctl.decide_recorded(monitor, bus, id, now, self.recorder.as_mut());
            match action {
                StealingAction::StealOne => {
                    m.events.push((now, JobEvent::WayStolen));
                    changed = true;
                }
                StealingAction::Cancel { .. } => {
                    m.events.push((now, JobEvent::StealingCancelled));
                    changed = true;
                }
                StealingAction::Hold => {}
            }
        }
        if changed {
            self.recompute_partition();
        }
    }

    /// Samples the epoch window and lets the installed controller retune
    /// the actuators. No-op without a controller or before the boundary.
    fn drive_epoch(&mut self) {
        let now = self.node.now();
        let Some(hook) = self.epoch.as_mut() else {
            return;
        };
        if now < hook.next_epoch {
            return;
        }
        // Advance the boundary first (catching up if a long slice crossed
        // several), so a controller panic can't wedge the cadence.
        while hook.next_epoch <= now {
            hook.next_epoch += hook.epoch_len;
        }
        let cores = self.node.config().num_cores as u32;
        let mut pinned: BTreeMap<JobId, CoreId> = BTreeMap::new();
        let mut floating_cores: Vec<CoreId> = Vec::new();
        for i in 0..cores {
            let core = CoreId::new(i);
            match self.node.pinned_on(core) {
                Some(id) => {
                    pinned.insert(id, core);
                }
                None => floating_cores.push(core),
            }
        }
        // One window delta per live job, in job-id order (deterministic).
        let mut samples = Vec::new();
        for (&id, m) in &self.jobs {
            if !matches!(
                m.state,
                JobState::RunningReserved | JobState::RunningOpportunistic
            ) {
                continue;
            }
            let Some(perf) = self.node.perf(id).copied() else {
                continue;
            };
            let prev = hook.last_perf.insert(id, perf).unwrap_or_default();
            let delta = perf.delta_since(&prev);
            samples.push(EpochSample {
                job: id,
                core: pinned.get(&id).copied(),
                mode: m.job.mode,
                slo: m.job.slo,
                instructions: delta.instructions(),
                cycles: delta.cycles(),
                l2_misses: delta.l2_misses(),
            });
        }
        for s in &samples {
            if s.violates_slo() {
                self.recorder.record(
                    now,
                    Event::SloViolated {
                        job: s.job,
                        cpi_milli: s.cpi_milli().unwrap_or(0),
                        target_milli: s.slo.map_or(u64::MAX, |t| t.max_cpi_milli),
                    },
                );
            }
        }
        let view = EpochView {
            now,
            samples: &samples,
            floating_cores: &floating_cores,
        };
        let updates = hook.controller.epoch(&view);
        for u in updates {
            match u {
                KnobUpdate::StealSlack { job, milli_pct } => {
                    let Some(m) = self.jobs.get_mut(&job) else {
                        continue;
                    };
                    let Some(ctl) = m.stealing.as_mut() else {
                        continue;
                    };
                    let old = ctl.set_slack(Percent::new(milli_pct as f64 / 1000.0));
                    let old_milli = (old.value() * 1000.0).round() as i64;
                    let new_milli = i64::try_from(milli_pct).unwrap_or(i64::MAX);
                    if old_milli != new_milli {
                        self.recorder.record(
                            now,
                            Event::KnobChanged {
                                knob: Knob::StealSlack { job },
                                old: old_milli,
                                new: new_milli,
                            },
                        );
                    }
                }
                KnobUpdate::StealInterval { job, interval } => {
                    let Some(m) = self.jobs.get_mut(&job) else {
                        continue;
                    };
                    let Some(ctl) = m.stealing.as_mut() else {
                        continue;
                    };
                    let old = ctl.set_interval(interval);
                    if old != interval {
                        self.recorder.record(
                            now,
                            Event::KnobChanged {
                                knob: Knob::StealInterval { job },
                                old: i64::try_from(old.get()).unwrap_or(i64::MAX),
                                new: i64::try_from(interval.get()).unwrap_or(i64::MAX),
                            },
                        );
                    }
                }
                KnobUpdate::CoreSpeed { core, percent } => {
                    if core.as_usize() >= cores as usize {
                        continue;
                    }
                    let old = self.node.set_core_speed(core, percent);
                    let new = self.node.core_speed(core);
                    if old != new {
                        self.recorder.record(
                            now,
                            Event::KnobChanged {
                                knob: Knob::CoreSpeed { core },
                                old: i64::from(old),
                                new: i64::from(new),
                            },
                        );
                    }
                }
            }
        }
    }

    // ----- fault injection ------------------------------------------------

    /// Injects a permanently faulty L2 way (e.g. flagged by in-field BIST):
    /// the way is masked out of the shared cache, the LAC's capacity
    /// shrinks by one way, and every live reservation is re-validated FCFS
    /// against the smaller cache — kept, downgraded within its Elastic
    /// slack, or revoked with [`crate::lac::RejectReason::CapacityRevoked`].
    ///
    /// Jobs still waiting on a revoked reservation become rejected; jobs
    /// already running keep their core and continue best-effort (the
    /// partition clamp absorbs any transient overcommit). Every
    /// consequence is emitted to the attached recorder.
    ///
    /// # Errors
    ///
    /// Propagates [`WayMaskError`] when `way` is out of range, already
    /// masked, or the last usable way; nothing changes in that case.
    pub fn inject_way_fault(&mut self, way: u16) -> Result<WayFaultOutcome, WayMaskError> {
        let now = self.node.now();
        self.lac.advance(now);
        let evictions = self.node.mask_l2_way(way)?;
        let node = NodeId::new(0);
        self.recorder.record(
            now,
            Event::FaultInjected {
                node,
                fault: FaultKind::WayFault { way },
            },
        );
        let new_capacity = self
            .lac
            .capacity()
            .minus(&ResourceRequest::new(0, Ways::new(1)));
        let revocations = self.lac.revoke_capacity(new_capacity, now);
        for r in &revocations {
            match r.action {
                RevocationAction::Kept => {}
                RevocationAction::Downgraded { ways_cut } => {
                    if let Some(m) = self.jobs.get_mut(&r.id) {
                        m.job.request = m.job.request.minus(&ResourceRequest::new(0, ways_cut));
                        m.events.push((now, JobEvent::FaultDowngraded(ways_cut)));
                    }
                    self.recorder.record(
                        now,
                        Event::DowngradedUnderFault {
                            job: r.id,
                            node,
                            ways_cut,
                        },
                    );
                }
                RevocationAction::Evicted { reason, .. } => {
                    if let Some(m) = self.jobs.get_mut(&r.id) {
                        m.events.push((now, JobEvent::ReservationRevoked));
                        if matches!(m.state, JobState::WaitingStart(_)) {
                            m.state = JobState::Rejected;
                            m.decision = Decision::Rejected(reason);
                        }
                    }
                    self.recorder.record(
                        now,
                        Event::ReservationRevoked {
                            job: r.id,
                            node,
                            cause: reason.into(),
                        },
                    );
                }
            }
        }
        self.recompute_partition();
        Ok(WayFaultOutcome {
            way,
            dirty_writebacks: evictions.len(),
            revocations,
        })
    }

    // ----- partition management -------------------------------------------

    /// A core with no pinned occupant.
    fn free_core(&self) -> Option<CoreId> {
        (0..self.node.config().num_cores as u32)
            .map(CoreId::new)
            .find(|&c| self.node.pinned_on(c).is_none())
    }

    /// Recomputes all L2 targets: reserved cores get their job's request
    /// minus stolen ways; everything else (unallocated + stolen) is split
    /// across cores available to floating work.
    fn recompute_partition(&mut self) {
        let cores = self.node.config().num_cores;
        let total = self.node.l2_usable_ways().get();
        let mut targets = vec![Ways::ZERO; cores];
        let mut reserved_sum: u16 = 0;
        let mut floating_cores = Vec::new();
        for (i, target) in targets.iter_mut().enumerate() {
            let core = CoreId::new(i as u32);
            match self.node.pinned_on(core) {
                Some(id) => {
                    let m = self.jobs.get(&id).expect("pinned jobs are tracked");
                    let ways = m
                        .stealing
                        .as_ref()
                        .map_or(m.job.request.cache_ways(), StealingController::current_ways);
                    *target = ways;
                    reserved_sum += ways.get();
                }
                None => floating_cores.push(i),
            }
        }
        // Clamp (defensively) if overrunning jobs transiently overcommit.
        if reserved_sum > total {
            let mut excess = reserved_sum - total;
            for t in targets.iter_mut().rev() {
                let cut = excess.min(t.get());
                *t -= Ways::new(cut);
                excess -= cut;
                if excess == 0 {
                    break;
                }
            }
            reserved_sum = total;
        }
        let pool = total.saturating_sub(reserved_sum);
        if !floating_cores.is_empty() {
            let share = pool / floating_cores.len() as u16;
            let extra = pool % floating_cores.len() as u16;
            for (rank, &i) in floating_cores.iter().enumerate() {
                let bonus = u16::from((rank as u16) < extra);
                targets[i] = Ways::new(share + bonus);
            }
        }
        self.node
            .set_l2_targets_recorded(&targets, self.recorder.as_mut())
            .expect("targets never exceed associativity");
        // Program bandwidth caps: reserved jobs with an explicit bandwidth
        // share are held to it; everything else is best-effort (uncapped,
        // but behind Reserved traffic in the channel's priority queue).
        for i in 0..cores {
            let core = CoreId::new(i as u32);
            let share = match self.node.pinned_on(core) {
                Some(id) => {
                    let pct = self
                        .jobs
                        .get(&id)
                        .map_or(0, |m| m.job.request.bandwidth_pct());
                    if pct == 0 {
                        100
                    } else {
                        pct.min(100) as u8
                    }
                }
                None => 100,
            };
            self.node.set_bandwidth_share(core, share);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_trace::spec;
    use cmpqos_types::Percent;

    const K: u64 = 16;

    fn sched(auto: bool) -> QosScheduler {
        let cfg = SchedulerConfig {
            auto_downgrade: auto,
            ..SchedulerConfig::default()
        };
        QosScheduler::new(SystemConfig::paper_scaled(K), cfg)
    }

    fn job(id: u32, mode: ExecutionMode, work: u64, tw: u64, td: Option<u64>) -> QosJob {
        QosJob {
            id: JobId::new(id),
            mode,
            request: ResourceRequest::paper_job(),
            work: Instructions::new(work),
            max_wall_clock: Cycles::new(tw),
            deadline: td.map(Cycles::new),
            slo: None,
        }
    }

    fn source(id: u32, bench: &str) -> Box<dyn TraceSource> {
        let p = spec::scaled(bench, K).unwrap();
        Box::new(p.instantiate(1000 + u64::from(id), u64::from(id) << 40))
    }

    /// gobmk at 7 ways runs at roughly CPI 2.6 → 100k instructions in
    /// ~300k cycles. Use generous tw.
    const WORK: u64 = 100_000;
    const TW: u64 = 800_000;

    #[test]
    fn strict_job_completes_within_deadline() {
        let mut s = sched(false);
        let d = s.submit(
            job(0, ExecutionMode::Strict, WORK, TW, Some(2 * TW)),
            source(0, "gobmk"),
        );
        assert!(d.is_accepted());
        s.run_to_idle(Cycles::new(100_000_000));
        let r = s.report(JobId::new(0)).unwrap();
        assert!(r.met_deadline(), "report: {r:?}");
        assert_eq!(r.perf.instructions().get(), WORK);
    }

    #[test]
    fn third_strict_job_waits_for_capacity() {
        let mut s = sched(false);
        for i in 0..3 {
            let d = s.submit(
                job(i, ExecutionMode::Strict, WORK, TW, Some(10 * TW)),
                source(i, "gobmk"),
            );
            assert!(d.is_accepted(), "job {i}");
        }
        // Jobs 0 and 1 start immediately; job 2 is reserved after one ends.
        let r2 = s.report(JobId::new(2)).unwrap();
        assert!(r2.decision.start().unwrap() > Cycles::ZERO);
        s.run_to_idle(Cycles::new(1_000_000_000));
        for i in 0..3 {
            assert!(s.report(JobId::new(i)).unwrap().met_deadline(), "job {i}");
        }
    }

    #[test]
    fn infeasible_deadline_is_rejected_upfront() {
        let mut s = sched(false);
        let _ = s.submit(
            job(0, ExecutionMode::Strict, WORK, TW, Some(10 * TW)),
            source(0, "gobmk"),
        );
        let _ = s.submit(
            job(1, ExecutionMode::Strict, WORK, TW, Some(10 * TW)),
            source(1, "gobmk"),
        );
        // Tight deadline + no capacity until TW: reject.
        let d = s.submit(
            job(2, ExecutionMode::Strict, WORK, TW, Some(TW + TW / 100)),
            source(2, "gobmk"),
        );
        assert!(!d.is_accepted());
    }

    #[test]
    fn opportunistic_jobs_run_on_spare_cores() {
        let mut s = sched(false);
        let _ = s.submit(
            job(0, ExecutionMode::Strict, WORK, TW, Some(10 * TW)),
            source(0, "gobmk"),
        );
        let d = s.submit(
            job(1, ExecutionMode::Opportunistic, WORK, TW, None),
            source(1, "gobmk"),
        );
        assert!(d.is_accepted());
        s.run_to_idle(Cycles::new(1_000_000_000));
        let r = s.report(JobId::new(1)).unwrap();
        assert!(r.finished.is_some());
        // It used the spare-way pool: 16 - 7 = 9 ways across 3 free cores.
        assert!(r.perf.instructions().get() == WORK);
    }

    #[test]
    fn elastic_job_donates_ways_to_opportunistic() {
        let mut s = sched(false);
        // gobmk is insensitive: stealing should proceed several intervals.
        let mut cfg = SchedulerConfig::default();
        cfg.stealing.interval = Instructions::new(10_000);
        let mut s2 = QosScheduler::new(SystemConfig::paper_scaled(K), cfg);
        std::mem::swap(&mut s, &mut s2);
        let d = s.submit(
            job(
                0,
                ExecutionMode::Elastic(Percent::new(20.0)),
                400_000,
                8 * TW,
                Some(80 * TW),
            ),
            source(0, "gobmk"),
        );
        assert!(d.is_accepted());
        let _ = s.submit(
            job(1, ExecutionMode::Opportunistic, 200_000, TW, None),
            source(1, "bzip2"),
        );
        s.run_until(Cycles::new(600_000));
        let ctl = s
            .stealing_state(JobId::new(0))
            .expect("controller attached");
        assert!(
            ctl.stolen() > Ways::ZERO || ctl.is_cancelled(),
            "stealing engaged: {ctl:?}"
        );
        s.run_to_idle(Cycles::new(4_000_000_000));
        assert!(s.report(JobId::new(0)).unwrap().met_deadline());
    }

    #[test]
    fn auto_downgrade_runs_opportunistically_then_switches_back() {
        let mut s = sched(true);
        // Occupy two cores' worth of ways so the downgraded job cannot get
        // a reservation immediately... actually: submit one relaxed job.
        let d = s.submit(
            job(0, ExecutionMode::Strict, WORK, TW, Some(3 * TW)),
            source(0, "gobmk"),
        );
        assert!(d.is_accepted());
        // Reservation sits at td - tw = 2*TW, not at 0.
        assert_eq!(d.start(), Some(Cycles::new(2 * TW)));
        let r = s.report(JobId::new(0)).unwrap();
        assert!(r.events.iter().any(|(_, e)| *e == JobEvent::AutoDowngraded));
        s.run_to_idle(Cycles::new(1_000_000_000));
        let r = s.report(JobId::new(0)).unwrap();
        assert!(r.met_deadline());
        // Completed early (free cores + pool ways) => never switched back.
        assert!(r.finished.unwrap() < Cycles::new(2 * TW));
    }

    #[test]
    fn auto_downgraded_job_switches_back_when_slow() {
        let mut s = sched(true);
        // Two long strict jobs pin cores (no deadline: not downgraded);
        // the third queues after them.
        for i in 0..3 {
            let _ = s.submit(
                job(i, ExecutionMode::Strict, 4 * WORK, 3 * TW, None),
                source(i, "gobmk"),
            );
        }
        // Slack job: fallback reservation at td - tw = 4*TW.
        let d = s.submit(
            job(9, ExecutionMode::Strict, 4 * WORK, 4 * TW, Some(8 * TW)),
            source(9, "gobmk"),
        );
        assert!(d.is_accepted(), "decision: {d:?}");
        let switch_back = d.start().unwrap();
        assert!(switch_back > Cycles::ZERO, "late reservation expected");
        s.run_to_idle(Cycles::new(10_000_000_000));
        let r = s.report(JobId::new(9)).unwrap();
        assert!(r.met_deadline(), "deadline held: {:?}", r.finished);
        // It must have either completed opportunistically before the
        // fallback slot or switched back to Strict at the slot.
        let switched = r.events.iter().any(|(_, e)| *e == JobEvent::SwitchedBack);
        let finished_early = r.finished.unwrap() <= switch_back;
        assert!(switched || finished_early, "events: {:?}", r.events);
    }

    #[test]
    fn reports_cover_all_submissions() {
        let mut s = sched(false);
        let _ = s.submit(
            job(0, ExecutionMode::Strict, WORK, TW, Some(10 * TW)),
            source(0, "gobmk"),
        );
        let _ = s.submit(
            job(1, ExecutionMode::Opportunistic, WORK, TW, None),
            source(1, "hmmer"),
        );
        assert_eq!(s.reports().len(), 2);
        assert!(!s.is_idle());
        s.run_to_idle(Cycles::new(1_000_000_000));
        assert!(s.is_idle());
    }

    #[test]
    fn bandwidth_shares_follow_reserved_requests() {
        let mut s = sched(false);
        let mut j = job(0, ExecutionMode::Strict, 4 * WORK, 4 * TW, None);
        j.request = ResourceRequest::paper_job().with_bandwidth(25);
        let d = s.submit(j, source(0, "milc"));
        assert!(d.is_accepted());
        s.run_until(Cycles::new(10_000));
        // Core 0 hosts the job: capped to its 25% share; others uncapped.
        assert_eq!(s.node().bandwidth_share(CoreId::new(0)), 25);
        assert_eq!(s.node().bandwidth_share(CoreId::new(1)), 100);
        s.run_to_idle(Cycles::new(10_000_000_000));
        assert!(s.report(JobId::new(0)).unwrap().finished.is_some());
    }

    #[test]
    fn bandwidth_cap_slows_a_streaming_job() {
        // milc is bandwidth-bound; capping its core below its natural
        // demand must stretch it. (A blocking in-order core with one
        // outstanding miss uses at most transfer/(latency+transfer) ≈ 6%
        // of the channel by itself, so the cap must sit below that.)
        let run_with = |share: u16| {
            let mut s = sched(false);
            let mut j = job(0, ExecutionMode::Strict, 2 * WORK, 40 * TW, None);
            if share > 0 {
                j.request = ResourceRequest::paper_job().with_bandwidth(share);
            }
            let d = s.submit(j, source(0, "milc"));
            assert!(d.is_accepted());
            s.run_to_idle(Cycles::new(100_000_000_000));
            s.report(JobId::new(0)).unwrap().wall_clock().unwrap()
        };
        let uncapped = run_with(0);
        let capped = run_with(2);
        assert!(
            capped > uncapped.scale(1.5),
            "2% cap must stretch milc: {capped} vs {uncapped}"
        );
    }

    #[test]
    fn partition_targets_track_reservations() {
        let mut s = sched(false);
        let _ = s.submit(
            job(0, ExecutionMode::Strict, 4 * WORK, 4 * TW, None),
            source(0, "gobmk"),
        );
        s.run_until(Cycles::new(10_000));
        // Core 0 reserved 7 ways; 9 spare ways split 3/3/3 across the rest.
        let targets = s.node().l2_targets().to_vec();
        assert_eq!(targets[0], Ways::new(7));
        assert_eq!(targets[1..].iter().map(|w| w.get()).sum::<u16>(), 9);
    }

    #[test]
    fn way_fault_masks_the_cache_and_shrinks_lac_capacity() {
        let mut s = sched(false);
        assert_eq!(s.node().l2_usable_ways(), Ways::new(16));
        let out = s.inject_way_fault(3).expect("way 3 is maskable");
        assert_eq!(out.way, 3);
        assert!(out.revocations.is_empty());
        assert_eq!(s.node().l2_usable_ways(), Ways::new(15));
        assert_eq!(s.lac().capacity().cache_ways(), Ways::new(15));
        // The same way cannot die twice.
        assert!(matches!(
            s.inject_way_fault(3),
            Err(WayMaskError::AlreadyMasked(3))
        ));
        // The floating pool now splits the 15 surviving ways.
        let total: u16 = s.node().l2_targets().iter().map(|w| w.get()).sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn way_fault_downgrades_a_running_elastic_job_within_slack() {
        let mut s = QosScheduler::with_recorder(
            SystemConfig::paper_scaled(K),
            SchedulerConfig::default(),
            Box::new(cmpqos_obs::RingBufferRecorder::new(128)),
        );
        let mut j = job(
            0,
            ExecutionMode::Elastic(Percent::new(50.0)),
            WORK,
            TW,
            None,
        );
        j.request = ResourceRequest::new(1, Ways::new(16));
        assert!(s.submit(j, source(0, "gobmk")).is_accepted());
        s.run_until(Cycles::new(10_000));
        let out = s.inject_way_fault(0).expect("first fault is maskable");
        assert_eq!(out.revocations.len(), 1);
        assert!(matches!(
            out.revocations[0].action,
            RevocationAction::Downgraded { ways_cut } if ways_cut == Ways::new(1)
        ));
        s.run_to_idle(Cycles::new(1_000_000_000));
        let r = s.report(JobId::new(0)).unwrap();
        assert!(r
            .events
            .iter()
            .any(|(_, e)| *e == JobEvent::FaultDowngraded(Ways::new(1))));
        assert!(r.finished.is_some());
        let rec = s.take_recorder();
        let rec = rec
            .as_any()
            .and_then(|a| a.downcast_ref::<cmpqos_obs::RingBufferRecorder>())
            .expect("ring buffer recorder");
        assert_eq!(rec.counters().faults_injected, 1);
        assert_eq!(rec.counters().downgraded_under_fault, 1);
        assert_eq!(rec.counters().reservations_revoked, 0);
    }

    #[test]
    fn way_fault_revokes_what_cannot_fit_but_running_jobs_finish() {
        let mut s = QosScheduler::with_recorder(
            SystemConfig::paper_scaled(K),
            SchedulerConfig::default(),
            Box::new(cmpqos_obs::RingBufferRecorder::new(128)),
        );
        // A Strict job occupying the whole cache, then a second queued
        // behind it: after one way dies neither 16-way reservation fits.
        for i in 0..2 {
            let mut j = job(i, ExecutionMode::Strict, WORK, TW, None);
            j.request = ResourceRequest::new(1, Ways::new(16));
            assert!(s.submit(j, source(i, "gobmk")).is_accepted(), "job {i}");
        }
        s.run_until(Cycles::new(10_000));
        let out = s.inject_way_fault(7).expect("way 7 is maskable");
        assert_eq!(out.revocations.len(), 2);
        assert!(out
            .revocations
            .iter()
            .all(|r| matches!(r.action, RevocationAction::Evicted { .. })));
        // The runner keeps its core and finishes best-effort; the waiter
        // is terminally rejected with the genuine cause.
        s.run_to_idle(Cycles::new(1_000_000_000));
        let r0 = s.report(JobId::new(0)).unwrap();
        assert!(r0.finished.is_some(), "runner finishes: {r0:?}");
        let r1 = s.report(JobId::new(1)).unwrap();
        assert!(r1.finished.is_none());
        assert_eq!(
            r1.decision,
            Decision::Rejected(crate::lac::RejectReason::CapacityRevoked)
        );
        assert!(r1
            .events
            .iter()
            .any(|(_, e)| *e == JobEvent::ReservationRevoked));
        assert!(s.is_idle(), "no job may linger after revocation");
    }

    // ----- the epoch hook -------------------------------------------------

    use std::sync::{Arc, Mutex};

    /// Replays the same canned knob updates every epoch and records how
    /// many samples each call saw.
    struct CannedController {
        calls: Arc<Mutex<Vec<usize>>>,
        updates: Vec<KnobUpdate>,
    }

    impl EpochController for CannedController {
        fn name(&self) -> &'static str {
            "canned"
        }
        fn epoch(&mut self, view: &EpochView<'_>) -> Vec<KnobUpdate> {
            self.calls.lock().unwrap().push(view.samples.len());
            self.updates.clone()
        }
    }

    fn recording_sched() -> QosScheduler {
        QosScheduler::with_recorder(
            SystemConfig::paper_scaled(K),
            SchedulerConfig::default(),
            Box::new(cmpqos_obs::RingBufferRecorder::new(4096)),
        )
    }

    fn counters(s: &mut QosScheduler) -> cmpqos_obs::Counters {
        let rec = s.take_recorder();
        rec.as_any()
            .and_then(|a| a.downcast_ref::<cmpqos_obs::RingBufferRecorder>())
            .expect("ring buffer recorder")
            .counters()
            .clone()
    }

    #[test]
    fn epoch_hook_samples_live_jobs_and_emits_slo_violations() {
        let mut s = recording_sched();
        let calls = Arc::new(Mutex::new(Vec::new()));
        s.set_epoch_controller(
            Box::new(CannedController {
                calls: Arc::clone(&calls),
                updates: Vec::new(),
            }),
            Cycles::new(50_000),
        );
        // gobmk runs at CPI ~3.5; a 0.5-CPI ceiling is violated every
        // busy window.
        let mut j = job(0, ExecutionMode::Strict, WORK, TW, None);
        j.slo = Some(SloSpec::cpi(0.5));
        assert!(s.submit(j, source(0, "gobmk")).is_accepted());
        s.run_to_idle(Cycles::new(10_000_000_000));
        let calls = calls.lock().unwrap();
        assert!(!calls.is_empty(), "controller must be invoked at epochs");
        assert!(
            calls.contains(&1),
            "some epoch must sample the one live job: {calls:?}"
        );
        let c = counters(&mut s);
        assert!(c.slo_violations > 0, "tight SLO must register violations");
        assert_eq!(c.knob_changes, 0, "no updates were requested");
    }

    #[test]
    fn epoch_knob_updates_apply_and_emit_only_on_change() {
        let mut s = recording_sched();
        let calls = Arc::new(Mutex::new(Vec::new()));
        // The same two updates every epoch: only the first application of
        // each may emit KnobChanged (the values stop changing after that).
        s.set_epoch_controller(
            Box::new(CannedController {
                calls: Arc::clone(&calls),
                updates: vec![
                    KnobUpdate::CoreSpeed {
                        core: CoreId::new(1),
                        percent: 50,
                    },
                    KnobUpdate::StealSlack {
                        job: JobId::new(0),
                        milli_pct: 10_000,
                    },
                ],
            }),
            Cycles::new(50_000),
        );
        let j = job(
            0,
            ExecutionMode::Elastic(Percent::new(20.0)),
            WORK,
            TW,
            None,
        );
        assert!(s.submit(j, source(0, "gobmk")).is_accepted());
        s.run_to_idle(Cycles::new(10_000_000_000));
        assert_eq!(s.node().core_speed(CoreId::new(1)), 50);
        let ctl = s.stealing_state(JobId::new(0));
        if let Some(ctl) = ctl {
            assert!((ctl.slack().value() - 10.0).abs() < 1e-9);
        }
        let epochs = calls.lock().unwrap().len();
        assert!(epochs > 1, "the run must span several epochs: {epochs}");
        let c = counters(&mut s);
        assert_eq!(
            c.knob_changes, 2,
            "each knob changes exactly once despite {epochs} identical requests"
        );
    }

    #[test]
    fn installing_a_controller_returns_the_previous_one() {
        let mut s = sched(false);
        let calls = Arc::new(Mutex::new(Vec::new()));
        let mk = || {
            Box::new(CannedController {
                calls: Arc::clone(&calls),
                updates: Vec::new(),
            })
        };
        assert!(s.set_epoch_controller(mk(), Cycles::new(1000)).is_none());
        let prev = s.set_epoch_controller(mk(), Cycles::new(1000));
        assert_eq!(prev.expect("first controller returned").name(), "canned");
    }
}
