//! The Global Admission Controller (Section 3.1 of the paper), hardened
//! against partial failure.
//!
//! A server consists of many CMP nodes; the GAC receives user submissions
//! and probes each node's Local Admission Controller for one that can
//! satisfy the job's QoS target. When no node accepts, the job is rejected
//! (in a full deployment the GAC would then renegotiate the target with the
//! user — out of this paper's scope, as it is of ours).
//!
//! Beyond the paper's fault-free model, this GAC treats probes as
//! *fallible*: a probe can be lost in transit ([`ProbeOutcome::Lost`]), in
//! which case it is retried with deterministic exponential backoff
//! ([`GacConfig::backoff_delay`]). Consecutive losses drive a node through
//! the health state machine Healthy → Suspect → Dead ([`NodeHealth`]);
//! dead nodes are excluded from probing and their reservations are
//! evacuated to survivors ([`GlobalAdmissionController::inject`]). Every
//! loss, retry, health transition, migration, and revocation is emitted as
//! a typed [`cmpqos_obs::Event`], so a recorded run fully reconstructs the
//! chaos.

use crate::lac::{Decision, Lac, LacConfig, LacState, RejectReason, Reservation, RevocationAction};
use crate::modes::ExecutionMode;
use crate::request::AdmissionRequest;
use crate::target::ResourceRequest;
use cmpqos_faults::{Fault, Injection};
use cmpqos_obs::{Event, NullRecorder, Recorder};
use cmpqos_types::{Cycles, JobId, NodeId, Ways};
use std::fmt;

/// Order in which nodes are probed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProbePolicy {
    /// Probe nodes in index order (first fit).
    #[default]
    FirstFit,
    /// Probe the node with the fewest live reservations first (a simple
    /// load-balancing heuristic).
    LeastLoaded,
}

/// Why a [`GlobalAdmissionController`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GacError {
    /// A server needs at least one node.
    NoNodes,
}

impl fmt::Display for GacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GacError::NoNodes => f.write_str("a server needs at least one node"),
        }
    }
}

impl std::error::Error for GacError {}

/// A node's health as tracked by the GAC's probe loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeHealth {
    /// Probes are answered; the node is probed first.
    Healthy,
    /// Probes were lost recently ([`GacConfig::suspect_after`] consecutive
    /// losses); the node is probed after all healthy nodes.
    Suspect,
    /// The node failed ([`GacConfig::dead_after`] consecutive losses *and*
    /// [`GacConfig::dead_timeout`] of silence, or an explicit node fault);
    /// it is never probed and its reservations were evacuated.
    Dead,
}

impl From<NodeHealth> for cmpqos_obs::Health {
    fn from(h: NodeHealth) -> Self {
        match h {
            NodeHealth::Healthy => cmpqos_obs::Health::Healthy,
            NodeHealth::Suspect => cmpqos_obs::Health::Suspect,
            NodeHealth::Dead => cmpqos_obs::Health::Dead,
        }
    }
}

/// A node's lifecycle membership state, orthogonal to [`NodeHealth`]:
/// health tracks whether the node *answers*, membership tracks whether it
/// *belongs*. Only `Live` nodes take new placements; the table is
/// append-only (a departed node's index is never reused), so `NodeId`s in
/// journals and event streams stay stable across churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemberState {
    /// Mid-handshake (announced or restarting, not yet reconciled); takes
    /// no new placements.
    Joining,
    /// Full member: probed, placed on, and heartbeated.
    #[default]
    Live,
    /// Graceful shutdown underway: no new placements while existing
    /// reservations migrate off.
    Draining,
    /// Departed for good; skipped by every probe, heartbeat, and sweep.
    Left,
}

/// One probe's outcome, as seen by the GAC's retry loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeOutcome {
    /// The LAC accepted; resources are reserved from `start`.
    Accepted {
        /// Reserved start cycle.
        start: Cycles,
    },
    /// The probe was delivered but the LAC rejected the job.
    Rejected(RejectReason),
    /// Every retry was lost in transit; the node gave no answer.
    Lost,
    /// The node is (or became) dead; it cannot be probed.
    NodeDead,
}

/// Retry, backoff, and health-tracking parameters.
///
/// Construct with [`GacConfig::default`] or [`GacConfig::builder`]; the
/// struct is `#[non_exhaustive]`, so fields may be added without breaking
/// downstream crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub struct GacConfig {
    /// Retries after a lost probe, per node per submission.
    pub max_retries: u32,
    /// Delay before the first retry; subsequent retries multiply it by
    /// [`GacConfig::backoff_factor`].
    pub backoff_base: Cycles,
    /// Exponential backoff multiplier.
    pub backoff_factor: u32,
    /// Consecutive losses that demote a node to [`NodeHealth::Suspect`].
    pub suspect_after: u32,
    /// Consecutive losses required (together with
    /// [`GacConfig::dead_timeout`]) to demote a node to
    /// [`NodeHealth::Dead`].
    pub dead_after: u32,
    /// How long a node must have gone without answering a single probe
    /// before loss-driven death is allowed. Losses alone — however many —
    /// only demote to Suspect until this timeout expires: a partitioned
    /// node is *unreachable, not dead*, and evacuating its (still honored)
    /// reservations would double-book them. `Cycles::ZERO` restores the
    /// legacy pure-loss-count behavior.
    pub dead_timeout: Cycles,
    /// Lifetime of a placement lease. Each heartbeat
    /// ([`GlobalAdmissionController::heartbeat_all`]) renews the node's
    /// leases to `heartbeat time + lease_ttl`; a lease that then goes
    /// unrenewed for `lease_ttl + dead_timeout` (the same
    /// unreachable-vs-dead grace as the health machine) expires and its
    /// reservation is revoked and re-placed like an evacuation.
    /// `Cycles::ZERO` (the default) disables leasing entirely.
    pub lease_ttl: Cycles,
}

impl Default for GacConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base: Cycles::new(1_000),
            backoff_factor: 2,
            suspect_after: 2,
            dead_after: 4,
            dead_timeout: Cycles::new(30_000),
            lease_ttl: Cycles::ZERO,
        }
    }
}

impl GacConfig {
    /// A fluent builder starting from the defaults.
    #[must_use]
    pub fn builder() -> GacConfigBuilder {
        GacConfigBuilder {
            config: GacConfig::default(),
        }
    }

    /// The deterministic backoff delay before retry number `attempt`
    /// (0-based): `backoff_base · backoff_factor^attempt`, saturating.
    ///
    /// Computed in closed form (`saturating_pow`), so huge attempt counts
    /// cap at `u64::MAX` in O(1) instead of iterating `attempt` times.
    #[must_use]
    pub fn backoff_delay(&self, attempt: u32) -> Cycles {
        let factor = u64::from(self.backoff_factor).saturating_pow(attempt);
        Cycles::new(self.backoff_base.get().saturating_mul(factor))
    }
}

/// Fluent builder for [`GacConfig`].
#[derive(Debug, Clone)]
pub struct GacConfigBuilder {
    config: GacConfig,
}

impl GacConfigBuilder {
    /// Sets the per-node retry budget.
    #[must_use]
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.config.max_retries = retries;
        self
    }

    /// Sets the first retry delay.
    #[must_use]
    pub fn backoff_base(mut self, base: Cycles) -> Self {
        self.config.backoff_base = base;
        self
    }

    /// Sets the exponential backoff multiplier.
    #[must_use]
    pub fn backoff_factor(mut self, factor: u32) -> Self {
        self.config.backoff_factor = factor;
        self
    }

    /// Sets the Suspect demotion threshold.
    #[must_use]
    pub fn suspect_after(mut self, losses: u32) -> Self {
        self.config.suspect_after = losses;
        self
    }

    /// Sets the Dead demotion threshold.
    #[must_use]
    pub fn dead_after(mut self, losses: u32) -> Self {
        self.config.dead_after = losses;
        self
    }

    /// Sets the unreachable-before-dead timeout (`Cycles::ZERO` restores
    /// the legacy pure-loss-count behavior).
    #[must_use]
    pub fn dead_timeout(mut self, timeout: Cycles) -> Self {
        self.config.dead_timeout = timeout;
        self
    }

    /// Sets the placement-lease lifetime (`Cycles::ZERO` disables leasing).
    #[must_use]
    pub fn lease_ttl(mut self, ttl: Cycles) -> Self {
        self.config.lease_ttl = ttl;
        self
    }

    /// Finishes the configuration.
    #[must_use]
    pub fn build(self) -> GacConfig {
        self.config
    }
}

/// What one fault injection did to the admitted-job population.
///
/// Returned by [`GlobalAdmissionController::inject`] so callers can
/// account for every affected reservation without parsing the event
/// stream: an admitted job only ever completes, migrates, downgrades, or
/// is revoked **with a reason** — never silently lost.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Elastic jobs that absorbed the loss by giving up ways.
    pub downgraded: Vec<(JobId, Ways)>,
    /// Jobs re-placed on a surviving node: `(job, from, to)`.
    pub migrated: Vec<(JobId, NodeId, NodeId)>,
    /// Jobs whose reservation was revoked (no survivor could take them).
    pub revoked: Vec<JobId>,
}

impl FaultReport {
    /// Whether the fault affected no reservation at all.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.downgraded.is_empty() && self.migrated.is_empty() && self.revoked.is_empty()
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: FaultReport) {
        self.downgraded.extend(other.downgraded);
        self.migrated.extend(other.migrated);
        self.revoked.extend(other.revoked);
    }
}

#[derive(Debug, Clone, PartialEq)]
struct NodeState {
    lac: Lac,
    health: NodeHealth,
    consecutive_losses: u32,
    pending_losses: u32,
    last_heard: Cycles,
    partitioned: bool,
    member: MemberState,
    lease_frozen: bool,
}

/// A serializable snapshot of one node as the GAC sees it.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeSnapshot {
    /// The node's LAC state.
    pub lac: LacState,
    /// The node's health.
    pub health: NodeHealth,
    /// Consecutive lost probes driving the health state machine.
    pub consecutive_losses: u32,
    /// Injected probe losses not yet consumed.
    pub pending_losses: u32,
    /// When the node last answered a probe.
    pub last_heard: Cycles,
    /// Whether the GAC ↔ node link is currently severed.
    pub partitioned: bool,
    /// The node's membership lifecycle state (defaults to `Live` when
    /// deserializing pre-membership journals).
    pub member: MemberState,
    /// Whether lease renewals to this node are suppressed (the
    /// `LeaseFreeze` fault; heartbeats still count as proof of life).
    pub lease_frozen: bool,
}

/// A complete, serializable snapshot of a [`GlobalAdmissionController`].
///
/// Produced by [`GlobalAdmissionController::snapshot`] and consumed by
/// [`GlobalAdmissionController::restore`]; `cmpqos-recovery` embeds one
/// in each journal compaction record. Restoring yields a controller whose
/// every subsequent decision matches the original's.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GacState {
    /// Per-node LAC states and health, in node order.
    pub nodes: Vec<NodeSnapshot>,
    /// The probe policy.
    pub policy: ProbePolicy,
    /// Retry/backoff/health configuration.
    pub config: GacConfig,
    /// Total submissions seen.
    pub submissions: u64,
    /// The placement table (admitted, not yet completed).
    pub placements: Vec<(JobId, NodeId)>,
    /// Per-job lease: the placement node and the expiry cycle (empty when
    /// leasing is disabled; defaults to empty when deserializing
    /// pre-membership journals).
    pub leases: Vec<(JobId, NodeId, Cycles)>,
    /// The LAC configuration nodes were built with, so joined nodes get
    /// identical capacity (defaults for pre-membership journals).
    pub lac_config: LacConfig,
    /// The GAC's clock.
    pub now: Cycles,
}

/// The server-level admission controller over a set of per-node LACs.
///
/// # Examples
///
/// ```
/// use cmpqos_core::gac::{GlobalAdmissionController, ProbePolicy};
/// use cmpqos_core::{ExecutionMode, LacConfig, ResourceRequest};
/// use cmpqos_types::{Cycles, JobId};
///
/// let mut gac = GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit);
/// let (node, decision) = gac.submit(
///     JobId::new(0),
///     ExecutionMode::Strict,
///     ResourceRequest::paper_job(),
///     Cycles::new(100),
///     Some(Cycles::new(1_000)),
/// );
/// assert!(decision.is_accepted());
/// assert_eq!(node, Some(cmpqos_types::NodeId::new(0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalAdmissionController {
    nodes: Vec<NodeState>,
    policy: ProbePolicy,
    config: GacConfig,
    submissions: u64,
    placements: Vec<(JobId, NodeId)>,
    leases: Vec<(JobId, NodeId, Cycles)>,
    lac_config: LacConfig,
    now: Cycles,
}

impl GlobalAdmissionController {
    /// Creates a GAC over `nodes` identical CMP nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GacError::NoNodes`] when `nodes` is zero.
    pub fn try_new(nodes: usize, config: LacConfig, policy: ProbePolicy) -> Result<Self, GacError> {
        if nodes == 0 {
            return Err(GacError::NoNodes);
        }
        Ok(Self {
            nodes: (0..nodes)
                .map(|_| NodeState {
                    lac: Lac::new(config),
                    health: NodeHealth::Healthy,
                    consecutive_losses: 0,
                    pending_losses: 0,
                    last_heard: Cycles::ZERO,
                    partitioned: false,
                    member: MemberState::Live,
                    lease_frozen: false,
                })
                .collect(),
            policy,
            config: GacConfig::default(),
            submissions: 0,
            placements: Vec::new(),
            leases: Vec::new(),
            lac_config: config,
            now: Cycles::ZERO,
        })
    }

    /// Creates a GAC over `nodes` identical CMP nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero; use [`GlobalAdmissionController::try_new`]
    /// to handle that case.
    #[must_use]
    pub fn new(nodes: usize, config: LacConfig, policy: ProbePolicy) -> Self {
        match Self::try_new(nodes, config, policy) {
            Ok(gac) => gac,
            Err(e) => panic!("{e}"),
        }
    }

    /// Replaces the retry/backoff/health configuration.
    #[must_use]
    pub fn with_gac_config(mut self, config: GacConfig) -> Self {
        self.config = config;
        self
    }

    /// The retry/backoff/health configuration.
    #[must_use]
    pub fn gac_config(&self) -> GacConfig {
        self.config
    }

    /// Captures the controller's complete state for journaling.
    #[must_use]
    pub fn snapshot(&self) -> GacState {
        GacState {
            nodes: self
                .nodes
                .iter()
                .map(|n| NodeSnapshot {
                    lac: n.lac.snapshot(),
                    health: n.health,
                    consecutive_losses: n.consecutive_losses,
                    pending_losses: n.pending_losses,
                    last_heard: n.last_heard,
                    partitioned: n.partitioned,
                    member: n.member,
                    lease_frozen: n.lease_frozen,
                })
                .collect(),
            policy: self.policy,
            config: self.config,
            submissions: self.submissions,
            placements: self.placements.clone(),
            leases: self.leases.clone(),
            lac_config: self.lac_config,
            now: self.now,
        }
    }

    /// Rebuilds a controller from a [`GlobalAdmissionController::snapshot`].
    /// The result is indistinguishable from the controller the snapshot was
    /// taken of.
    #[must_use]
    pub fn restore(state: GacState) -> Self {
        Self {
            nodes: state
                .nodes
                .into_iter()
                .map(|n| NodeState {
                    lac: Lac::restore(n.lac),
                    health: n.health,
                    consecutive_losses: n.consecutive_losses,
                    pending_losses: n.pending_losses,
                    last_heard: n.last_heard,
                    partitioned: n.partitioned,
                    member: n.member,
                    lease_frozen: n.lease_frozen,
                })
                .collect(),
            policy: state.policy,
            config: state.config,
            submissions: state.submissions,
            placements: state.placements,
            leases: state.leases,
            lac_config: state.lac_config,
            now: state.now,
        }
    }

    /// Size of the membership table — every node ever admitted, in any
    /// state (the table is append-only, so this never shrinks).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes still probed: `Live` members that are not dead.
    /// Draining and departed nodes no longer take placements, so they do
    /// not count even while their link is healthy.
    #[must_use]
    pub fn live_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.member == MemberState::Live && n.health != NodeHealth::Dead)
            .count()
    }

    /// One node's membership lifecycle state.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn member_state(&self, node: NodeId) -> MemberState {
        self.nodes[node.as_usize()].member
    }

    /// The lease table: each placed job's node and current expiry cycle.
    /// Empty when leasing is disabled ([`GacConfig::lease_ttl`] of zero).
    #[must_use]
    pub fn leases(&self) -> &[(JobId, NodeId, Cycles)] {
        &self.leases
    }

    /// Access to one node's LAC.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn lac(&self, node: NodeId) -> &Lac {
        &self.nodes[node.as_usize()].lac
    }

    /// One node's health.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn node_health(&self, node: NodeId) -> NodeHealth {
        self.nodes[node.as_usize()].health
    }

    /// Advances every node's clock, purging expired reservations. Jobs
    /// whose reservation window ended by `now` are treated as completed:
    /// they are removed from [`GlobalAdmissionController::placements`] and
    /// returned, so the placement table cannot grow without bound.
    pub fn advance(&mut self, now: Cycles) -> Vec<(JobId, NodeId)> {
        self.advance_recorded(now, &mut NullRecorder)
    }

    /// [`GlobalAdmissionController::advance`], additionally emitting lease
    /// expirations (and the migrations/revocations they trigger) to
    /// `recorder`.
    pub fn advance_recorded(
        &mut self,
        now: Cycles,
        recorder: &mut dyn Recorder,
    ) -> Vec<(JobId, NodeId)> {
        self.now = self.now.max(now);
        let mut completed = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if node.member == MemberState::Left {
                continue;
            }
            let id = NodeId::new(i as u32);
            for r in node.lac.reservations() {
                if r.end <= now {
                    completed.push((r.id, id));
                }
            }
            node.lac.advance(now);
        }
        // A probe backoff may have advanced a node's clock past `now`,
        // letting its LAC purge a reservation before the sweep above saw
        // it end. A placed job whose node no longer holds its reservation
        // has therefore completed; without this sweep it would be
        // stranded in the placement table forever.
        for &(job, node) in &self.placements {
            let held = self.nodes[node.as_usize()]
                .lac
                .reservations()
                .iter()
                .any(|r| r.id == job);
            if !held && !completed.iter().any(|&(done, _)| done == job) {
                completed.push((job, node));
            }
        }
        self.placements
            .retain(|(job, _)| !completed.iter().any(|(done, _)| done == job));
        self.leases
            .retain(|(job, _, _)| !completed.iter().any(|(done, _)| done == job));
        self.expire_leases(recorder);
        completed
    }

    /// Revokes and re-places every job whose lease has gone unrenewed past
    /// the grace window: expiry at `lease + dead_timeout`, the same
    /// hysteresis that separates *unreachable* from *dead* in the health
    /// machine, so a short partition stalls renewals without losing the
    /// placement.
    fn expire_leases(&mut self, recorder: &mut dyn Recorder) {
        if self.config.lease_ttl == Cycles::ZERO {
            return;
        }
        let grace = self.config.dead_timeout;
        let expired: Vec<JobId> = self
            .leases
            .iter()
            .filter(|&&(_, _, until)| self.now > until + grace)
            .map(|&(job, _, _)| job)
            .collect();
        for job in expired {
            self.drop_lease(job);
            let Some(node) = self.placement(job) else {
                continue;
            };
            if recorder.enabled() {
                recorder.record(self.now, Event::LeaseExpired { job, node });
            }
            let i = node.as_usize();
            let held = self.nodes[i]
                .lac
                .reservations()
                .iter()
                .find(|r| r.id == job)
                .cloned();
            match held {
                Some(r) => {
                    // Revoke + re-place exactly like an evacuation. The
                    // cancel is a control-plane order: if the node is truly
                    // unreachable it re-learns the revocation on rejoin
                    // (restart reconciliation); in-process it is immediate.
                    self.nodes[i].lac.cancel(r.id);
                    let mut report = FaultReport::default();
                    self.relocate(r, node, recorder, &mut report);
                }
                None => {
                    self.placements.retain(|&(j, _)| j != job);
                }
            }
        }
    }

    /// Drains one heartbeat round over every reachable member, renewing
    /// its placement leases to `at + lease_ttl` and counting as proof of
    /// life for the health machine. Dead, partitioned, and departed nodes
    /// miss the round; a lease-frozen node answers (health recovers) but
    /// its renewals are dropped — the `LeaseFreeze` fault. A no-op while
    /// leasing is disabled.
    pub fn heartbeat_all(&mut self, at: Cycles, recorder: &mut dyn Recorder) {
        if self.config.lease_ttl == Cycles::ZERO {
            return;
        }
        self.now = self.now.max(at);
        // Pass 1 — proof of life and renewal eligibility, O(nodes).
        let mut renewing = vec![false; self.nodes.len()];
        for (i, slot) in renewing.iter_mut().enumerate() {
            let n = &self.nodes[i];
            if !matches!(n.member, MemberState::Live | MemberState::Draining)
                || n.health == NodeHealth::Dead
                || n.partitioned
            {
                continue;
            }
            self.nodes[i].consecutive_losses = 0;
            self.nodes[i].last_heard = self.nodes[i].last_heard.max(at);
            if self.nodes[i].health == NodeHealth::Suspect {
                self.set_health(i, NodeHealth::Healthy, recorder);
            }
            *slot = !self.nodes[i].lease_frozen;
        }
        // Pass 2 — renew in one sweep over the lease table, O(leases);
        // each lease carries its placement node, so no per-node join with
        // the placement table is needed.
        let until = at + self.config.lease_ttl;
        let mut renewed = vec![0u64; self.nodes.len()];
        for lease in &mut self.leases {
            let i = lease.1.as_usize();
            if renewing[i] {
                lease.2 = until;
                renewed[i] += 1;
            }
        }
        if recorder.enabled() {
            for (i, &leases) in renewed.iter().enumerate() {
                if leases > 0 {
                    recorder.record(
                        at,
                        Event::LeaseRenewed {
                            node: NodeId::new(i as u32),
                            leases,
                        },
                    );
                }
            }
        }
    }

    /// Grants (or renews) job `job`'s lease on `node`, ending at
    /// `at + lease_ttl`.
    fn grant_lease(&mut self, job: JobId, node: NodeId, at: Cycles) {
        if self.config.lease_ttl == Cycles::ZERO {
            return;
        }
        let until = at + self.config.lease_ttl;
        match self.leases.iter_mut().find(|(j, _, _)| *j == job) {
            Some(lease) => {
                lease.1 = node;
                lease.2 = until;
            }
            None => self.leases.push((job, node, until)),
        }
    }

    fn drop_lease(&mut self, job: JobId) {
        self.leases.retain(|&(j, _, _)| j != job);
    }

    /// Admits a brand-new node to the membership table with the same LAC
    /// configuration as the founding nodes. The in-process handshake is
    /// synchronous, so the node enters `Live` immediately and its id is
    /// the next unused index (membership is append-only).
    pub fn join_node(&mut self, at: Cycles, recorder: &mut dyn Recorder) -> NodeId {
        self.now = self.now.max(at);
        let node = NodeId::new(self.nodes.len() as u32);
        let mut lac = Lac::new(self.lac_config);
        lac.advance(self.now);
        self.nodes.push(NodeState {
            lac,
            health: NodeHealth::Healthy,
            consecutive_losses: 0,
            pending_losses: 0,
            last_heard: self.now,
            partitioned: false,
            member: MemberState::Live,
            lease_frozen: false,
        });
        if recorder.enabled() {
            recorder.record(self.now, Event::NodeJoined { node });
        }
        node
    }

    /// Gracefully drains `node`: it stops taking new placements, every
    /// reservation it still holds migrates to a survivor (or is revoked
    /// with a reason when none fits), and only then does the node
    /// transition `Left`. A second drain of the same node — or of one
    /// mid-handshake — is a no-op, so rolling-restart scripts are
    /// idempotent.
    pub fn drain_node(
        &mut self,
        node: NodeId,
        at: Cycles,
        recorder: &mut dyn Recorder,
    ) -> FaultReport {
        let mut report = FaultReport::default();
        let i = node.as_usize();
        if i >= self.nodes.len() || self.nodes[i].member != MemberState::Live {
            return report;
        }
        self.now = self.now.max(at);
        // Draining first: probe_order skips the node from here on, so
        // nothing lands on it while its reservations move off (and the
        // relocation loop below cannot pick it as its own target).
        self.nodes[i].member = MemberState::Draining;
        self.evacuate(i, recorder, &mut report);
        self.nodes[i].member = MemberState::Left;
        if recorder.enabled() {
            recorder.record(self.now, Event::NodeDrained { node });
        }
        report
    }

    /// Restarts `node`: its link state and health reset, and its
    /// journal-recovered reservation table is reconciled against the GAC's
    /// placement view *before* the node re-enters `Live` — orphaned
    /// reservations (held by the node but placed elsewhere, or nowhere, by
    /// the GAC) are cancelled; placements the node no longer holds are
    /// revoked with a reason. Restarting a departed node is a no-op.
    pub fn restart_node(
        &mut self,
        node: NodeId,
        at: Cycles,
        recorder: &mut dyn Recorder,
    ) -> FaultReport {
        let mut report = FaultReport::default();
        let i = node.as_usize();
        if i >= self.nodes.len() || self.nodes[i].member == MemberState::Left {
            return report;
        }
        self.now = self.now.max(at);
        self.nodes[i].member = MemberState::Joining;
        self.nodes[i].health = NodeHealth::Healthy;
        self.nodes[i].consecutive_losses = 0;
        self.nodes[i].pending_losses = 0;
        self.nodes[i].partitioned = false;
        self.nodes[i].last_heard = self.now;
        self.nodes[i].lease_frozen = false;
        let held: Vec<JobId> = self.nodes[i]
            .lac
            .reservations()
            .iter()
            .map(|r| r.id)
            .collect();
        let mut orphans_revoked = 0u64;
        for job in &held {
            if self.placement(*job) != Some(node) {
                self.nodes[i].lac.cancel(*job);
                orphans_revoked += 1;
            }
        }
        // A placement the restarted node no longer holds was lost with its
        // pre-journal state; the reservation's window is gone too, so it
        // cannot be readmitted — revoke it with a reason.
        let lost: Vec<JobId> = self
            .placements
            .iter()
            .filter(|&&(job, on)| on == node && !held.contains(&job))
            .map(|&(job, _)| job)
            .collect();
        let placements_repaired = lost.len() as u64;
        for job in lost {
            self.placements.retain(|&(j, _)| j != job);
            self.drop_lease(job);
            report.revoked.push(job);
            if recorder.enabled() {
                recorder.record(
                    self.now,
                    Event::ReservationRevoked {
                        job,
                        node,
                        cause: RejectReason::CapacityRevoked.into(),
                    },
                );
            }
        }
        if recorder.enabled() {
            recorder.record(
                self.now,
                Event::Reconciled {
                    node,
                    orphans_revoked,
                    placements_repaired,
                },
            );
        }
        self.nodes[i].member = MemberState::Live;
        if recorder.enabled() {
            recorder.record(self.now, Event::NodeJoined { node });
        }
        // Surviving leases restart their clock: the node just proved it is
        // alive, and punishing it for pre-restart silence would expire a
        // reservation it verifiably still holds.
        for job in held {
            if self.placement(job) == Some(node) {
                let granted = self.now;
                self.grant_lease(job, node, granted);
            }
        }
        report
    }

    /// Releases job `id`'s reservation (early completion) and drops its
    /// placement entry.
    pub fn complete(&mut self, id: JobId, at: Cycles) {
        if let Some(pos) = self.placements.iter().position(|(job, _)| *job == id) {
            let (_, node) = self.placements.remove(pos);
            self.nodes[node.as_usize()].lac.release(id, at);
            self.drop_lease(id);
        }
    }

    /// Submits a job: probes LACs per the policy (healthy nodes first,
    /// then suspect; dead nodes never) and returns the accepting node (if
    /// any) and the final decision — the genuine last rejection when every
    /// probed LAC rejected, or [`RejectReason::NoHealthyNodes`] when no LAC
    /// answered at all.
    #[must_use = "dropping the decision loses whether (and where) the job was placed"]
    pub fn submit(
        &mut self,
        id: JobId,
        mode: ExecutionMode,
        request: ResourceRequest,
        tw: Cycles,
        deadline: Option<Cycles>,
    ) -> (Option<NodeId>, Decision) {
        let req = Self::build_request(id, mode, request, tw, deadline);
        self.submit_request(&req, &mut NullRecorder)
    }

    /// [`GlobalAdmissionController::submit`], additionally emitting the
    /// full probe history — `Submitted`, per-probe `Admitted`/`Rejected`,
    /// `ProbeLost`/`ProbeBackoff`, health transitions, and the final
    /// `Placed` — to `recorder`.
    #[must_use = "dropping the decision loses whether (and where) the job was placed"]
    pub fn submit_recorded(
        &mut self,
        id: JobId,
        mode: ExecutionMode,
        request: ResourceRequest,
        tw: Cycles,
        deadline: Option<Cycles>,
        recorder: &mut dyn Recorder,
    ) -> (Option<NodeId>, Decision) {
        let req = Self::build_request(id, mode, request, tw, deadline);
        self.submit_request(&req, recorder)
    }

    fn build_request(
        id: JobId,
        mode: ExecutionMode,
        request: ResourceRequest,
        tw: Cycles,
        deadline: Option<Cycles>,
    ) -> AdmissionRequest {
        let mut b = AdmissionRequest::builder(id, request, tw).mode(mode);
        if let Some(td) = deadline {
            b = b.deadline(td);
        }
        b.build()
    }

    /// Submits a typed [`AdmissionRequest`], emitting the full probe
    /// history to `recorder`. This is the primary entry point;
    /// [`GlobalAdmissionController::submit`] and
    /// [`GlobalAdmissionController::submit_recorded`] delegate here.
    #[must_use = "dropping the decision loses whether (and where) the job was placed"]
    pub fn submit_request(
        &mut self,
        req: &AdmissionRequest,
        recorder: &mut dyn Recorder,
    ) -> (Option<NodeId>, Decision) {
        let id = req.id;
        self.submissions += 1;
        if recorder.enabled() {
            recorder.record(
                self.now,
                Event::Submitted {
                    job: id,
                    mode: req.mode.into(),
                },
            );
        }
        let mut last: Option<Decision> = None;
        for i in self.probe_order() {
            match self.probe(i, req, recorder) {
                ProbeOutcome::Accepted { start } => {
                    let node = NodeId::new(i as u32);
                    self.placements.push((id, node));
                    let granted = self.stamp(i);
                    self.grant_lease(id, node, granted);
                    if recorder.enabled() {
                        recorder.record(granted, Event::Placed { job: id, node });
                    }
                    return (Some(node), Decision::Accepted { start });
                }
                ProbeOutcome::Rejected(reason) => last = Some(Decision::Rejected(reason)),
                ProbeOutcome::Lost | ProbeOutcome::NodeDead => {}
            }
        }
        match last {
            Some(decision) => (None, decision),
            None => {
                if recorder.enabled() {
                    recorder.record(
                        self.now,
                        Event::Rejected {
                            job: id,
                            cause: RejectReason::NoHealthyNodes.into(),
                        },
                    );
                }
                (None, Decision::Rejected(RejectReason::NoHealthyNodes))
            }
        }
    }

    /// Submits a FCFS run of typed requests, returning one
    /// placement/decision pair per request. Outcomes are bit-identical to
    /// calling [`GlobalAdmissionController::submit_request`] once per
    /// request, in order.
    #[must_use = "dropping the decisions loses where the jobs were placed"]
    pub fn submit_batch(
        &mut self,
        reqs: &[AdmissionRequest],
        recorder: &mut dyn Recorder,
    ) -> Vec<(Option<NodeId>, Decision)> {
        reqs.iter()
            .map(|req| self.submit_request(req, recorder))
            .collect()
    }

    /// Applies one fault injection, emitting every consequence to
    /// `recorder` and returning the [`FaultReport`] of affected jobs.
    ///
    /// * Way/core faults shrink the node's capacity and re-validate its
    ///   reservations ([`Lac::revoke_capacity`]); evicted jobs are
    ///   re-placed on surviving nodes when possible.
    /// * Node faults mark the node [`NodeHealth::Dead`] and evacuate every
    ///   reservation the same way.
    /// * Probe losses queue up and consume future probes to that node.
    /// * Churn faults delegate to [`GlobalAdmissionController::join_node`],
    ///   [`GlobalAdmissionController::restart_node`], and
    ///   [`GlobalAdmissionController::drain_node`]; `LeaseFreeze` stops
    ///   renewing the node's leases until it restarts.
    ///
    /// Injections naming a node outside the server are ignored — except
    /// `NodeJoin`, which is valid *only* for the next unused index.
    pub fn inject(&mut self, injection: Injection, recorder: &mut dyn Recorder) -> FaultReport {
        let mut report = FaultReport::default();
        let at = injection.at;
        self.now = self.now.max(at);
        let i = injection.fault.node().as_usize();
        // Membership is append-only: a join is valid only when it names the
        // next unused index, so journal replay reconstructs the identical
        // table. Every other fault must name an existing node.
        let valid = if matches!(injection.fault, Fault::NodeJoin { .. }) {
            i == self.nodes.len()
        } else {
            i < self.nodes.len()
        };
        if !valid {
            return report;
        }
        if recorder.enabled() {
            recorder.record(
                at,
                Event::FaultInjected {
                    node: injection.fault.node(),
                    fault: injection.fault.obs_kind(),
                },
            );
        }
        match injection.fault {
            Fault::WayFault { .. } => {
                let shrunk = self.nodes[i]
                    .lac
                    .capacity()
                    .minus(&ResourceRequest::new(0, Ways::new(1)));
                self.shrink(i, shrunk, at, recorder, &mut report);
            }
            Fault::CoreFault { .. } => {
                let shrunk = self.nodes[i]
                    .lac
                    .capacity()
                    .minus(&ResourceRequest::new(1, Ways::ZERO));
                self.shrink(i, shrunk, at, recorder, &mut report);
            }
            Fault::NodeFault { .. } => {
                self.set_health(i, NodeHealth::Dead, recorder);
                self.evacuate(i, recorder, &mut report);
            }
            Fault::ProbeLoss { count, .. } => {
                self.nodes[i].pending_losses += count;
            }
            Fault::ControllerCrash { .. } => {
                // The crash destroys the controller process, not the node's
                // resources or reservations: in-core state is simply gone.
                // The GAC cannot "lose its own memory" from inside a method
                // call, so the harness interprets this fault — it drops the
                // controller and rebuilds it from the write-ahead journal
                // (`cmpqos-recovery`). Only the FaultInjected event above is
                // emitted here.
            }
            Fault::LinkPartition { node } => {
                self.nodes[i].partitioned = true;
                if recorder.enabled() {
                    recorder.record(at, Event::LinkPartitioned { node });
                }
            }
            Fault::LinkHeal { node } => {
                self.nodes[i].partitioned = false;
                if recorder.enabled() {
                    recorder.record(at, Event::LinkHealed { node });
                }
            }
            Fault::MessageDrop { count, .. } => {
                // At the probe layer a transient message loss is
                // indistinguishable from a lost probe.
                self.nodes[i].pending_losses += count;
            }
            Fault::NodeJoin { .. } => {
                let _ = self.join_node(at, recorder);
            }
            Fault::NodeRestart { node } => {
                report.merge(self.restart_node(node, at, recorder));
            }
            Fault::NodeDrain { node } => {
                report.merge(self.drain_node(node, at, recorder));
            }
            Fault::LeaseFreeze { .. } => {
                self.nodes[i].lease_frozen = true;
            }
        }
        report
    }

    /// Applies every injection due by `now` from `schedule` (in cycle
    /// order), merging the reports.
    pub fn inject_due(
        &mut self,
        schedule: &mut cmpqos_faults::FaultSchedule,
        now: Cycles,
        recorder: &mut dyn Recorder,
    ) -> FaultReport {
        let mut report = FaultReport::default();
        for injection in schedule.due(now) {
            report.merge(self.inject(injection, recorder));
        }
        report
    }

    /// Where each admitted-and-not-yet-completed job is placed.
    #[must_use]
    pub fn placements(&self) -> &[(JobId, NodeId)] {
        &self.placements
    }

    /// The node job `id` is currently placed on, if any.
    #[must_use]
    pub fn placement(&self, id: JobId) -> Option<NodeId> {
        self.placements
            .iter()
            .find(|(job, _)| *job == id)
            .map(|&(_, node)| node)
    }

    /// Total submissions seen.
    #[must_use]
    pub fn submissions(&self) -> u64 {
        self.submissions
    }

    /// Probe order: live members only (Joining, Draining, and Left nodes
    /// take no new placements), healthy before suspect, the policy's order
    /// within each health class.
    fn probe_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| {
                self.nodes[i].member == MemberState::Live
                    && self.nodes[i].health != NodeHealth::Dead
            })
            .collect();
        if self.policy == ProbePolicy::LeastLoaded {
            order.sort_by_key(|&i| self.nodes[i].lac.reservation_count());
        }
        order.sort_by_key(|&i| match self.nodes[i].health {
            NodeHealth::Healthy => 0u8,
            NodeHealth::Suspect => 1,
            NodeHealth::Dead => 2,
        });
        order
    }

    /// Event timestamp for node `i`: its LAC clock (which backoff may have
    /// advanced past the GAC's).
    fn stamp(&self, i: usize) -> Cycles {
        self.nodes[i].lac.now().max(self.now)
    }

    /// One node's probe with bounded retry. Lost probes consume queued
    /// losses, count toward the health state machine, and back off
    /// deterministically (the delay advances only this node's LAC clock).
    fn probe(
        &mut self,
        i: usize,
        req: &AdmissionRequest,
        recorder: &mut dyn Recorder,
    ) -> ProbeOutcome {
        let id = req.id;
        let node = NodeId::new(i as u32);
        for attempt in 0..=self.config.max_retries {
            if self.nodes[i].health == NodeHealth::Dead {
                return ProbeOutcome::NodeDead;
            }
            if self.nodes[i].partitioned || self.nodes[i].pending_losses > 0 {
                // A severed link loses every probe without consuming the
                // queued transient losses.
                if !self.nodes[i].partitioned {
                    self.nodes[i].pending_losses -= 1;
                }
                self.nodes[i].consecutive_losses += 1;
                if recorder.enabled() {
                    recorder.record(self.stamp(i), Event::ProbeLost { job: id, node });
                }
                self.update_health(i, recorder);
                if self.nodes[i].health == NodeHealth::Dead {
                    let mut report = FaultReport::default();
                    self.evacuate(i, recorder, &mut report);
                    return ProbeOutcome::NodeDead;
                }
                if attempt < self.config.max_retries {
                    let delay = self.config.backoff_delay(attempt);
                    let fire_at = self.stamp(i) + delay;
                    self.nodes[i].lac.advance(fire_at);
                    if recorder.enabled() {
                        recorder.record(
                            fire_at,
                            Event::ProbeBackoff {
                                job: id,
                                node,
                                delay,
                            },
                        );
                    }
                }
                continue;
            }
            // Probe delivered: the node answered, so it is not losing
            // messages anymore.
            self.nodes[i].consecutive_losses = 0;
            self.nodes[i].last_heard = self.stamp(i);
            if self.nodes[i].health == NodeHealth::Suspect {
                self.set_health(i, NodeHealth::Healthy, recorder);
            }
            let decision = self.nodes[i].lac.admit_with(req, recorder);
            return match decision {
                Decision::Accepted { start } => ProbeOutcome::Accepted { start },
                Decision::Rejected(reason) => ProbeOutcome::Rejected(reason),
            };
        }
        ProbeOutcome::Lost
    }

    /// Demotes node `i` per its consecutive-loss count (health only ever
    /// worsens here; recovery happens when a probe is answered).
    ///
    /// Loss-driven death needs **both** [`GacConfig::dead_after`]
    /// consecutive losses and [`GacConfig::dead_timeout`] of silence:
    /// losing probes only proves the *link* is down, not the node. Without
    /// the timeout a short partition burst would evacuate reservations a
    /// healthy LAC is still honoring — double-booking them elsewhere.
    fn update_health(&mut self, i: usize, recorder: &mut dyn Recorder) {
        let losses = self.nodes[i].consecutive_losses;
        let silent_for = self.stamp(i).saturating_sub(self.nodes[i].last_heard);
        let target = if losses >= self.config.dead_after && silent_for >= self.config.dead_timeout {
            NodeHealth::Dead
        } else if losses >= self.config.suspect_after {
            NodeHealth::Suspect
        } else {
            return;
        };
        if self.nodes[i].health != NodeHealth::Dead {
            self.set_health(i, target, recorder);
        }
    }

    fn set_health(&mut self, i: usize, to: NodeHealth, recorder: &mut dyn Recorder) {
        let from = self.nodes[i].health;
        if from == to {
            return;
        }
        self.nodes[i].health = to;
        if recorder.enabled() {
            recorder.record(
                self.stamp(i),
                Event::NodeHealthChanged {
                    node: NodeId::new(i as u32),
                    from: from.into(),
                    to: to.into(),
                },
            );
        }
    }

    /// Shrinks node `i`'s capacity and handles every revocation: keeps are
    /// silent, downgrades are reported, evictions are re-placed elsewhere
    /// (or revoked with a reason when no survivor fits them).
    fn shrink(
        &mut self,
        i: usize,
        new_capacity: ResourceRequest,
        at: Cycles,
        recorder: &mut dyn Recorder,
        report: &mut FaultReport,
    ) {
        let node = NodeId::new(i as u32);
        let revocations = self.nodes[i].lac.revoke_capacity(new_capacity, at);
        for rev in revocations {
            match rev.action {
                RevocationAction::Kept => {}
                RevocationAction::Downgraded { ways_cut } => {
                    report.downgraded.push((rev.id, ways_cut));
                    if recorder.enabled() {
                        recorder.record(
                            self.stamp(i),
                            Event::DowngradedUnderFault {
                                job: rev.id,
                                node,
                                ways_cut,
                            },
                        );
                    }
                }
                RevocationAction::Evicted { reservation, .. } => {
                    self.relocate(reservation, node, recorder, report);
                }
            }
        }
    }

    /// Moves every reservation off (dead) node `i`.
    fn evacuate(&mut self, i: usize, recorder: &mut dyn Recorder, report: &mut FaultReport) {
        let from = NodeId::new(i as u32);
        let stranded = self.nodes[i].lac.reservations().to_vec();
        for r in &stranded {
            self.nodes[i].lac.cancel(r.id);
        }
        for r in stranded {
            self.relocate(r, from, recorder, report);
        }
    }

    /// Re-places one stranded reservation on a surviving node, preserving
    /// its duration, mode, and original deadline. Migration readmits are an
    /// internal control-plane path: they bypass queued probe losses. When
    /// no survivor fits, the reservation is revoked **with a reason** — it
    /// is never silently lost.
    fn relocate(
        &mut self,
        r: Reservation,
        from: NodeId,
        recorder: &mut dyn Recorder,
        report: &mut FaultReport,
    ) {
        for i in self.probe_order() {
            if i == from.as_usize() {
                continue;
            }
            if let Decision::Accepted { .. } = self.nodes[i].lac.readmit(&r) {
                let to = NodeId::new(i as u32);
                for p in &mut self.placements {
                    if p.0 == r.id {
                        p.1 = to;
                    }
                }
                let granted = self.stamp(i);
                self.grant_lease(r.id, to, granted);
                report.migrated.push((r.id, from, to));
                if recorder.enabled() {
                    recorder.record(
                        self.stamp(i),
                        Event::Migrated {
                            job: r.id,
                            from,
                            to,
                        },
                    );
                }
                return;
            }
        }
        report.revoked.push(r.id);
        self.placements.retain(|(id, _)| *id != r.id);
        self.drop_lease(r.id);
        if recorder.enabled() {
            recorder.record(
                self.now,
                Event::ReservationRevoked {
                    job: r.id,
                    node: from,
                    cause: RejectReason::CapacityRevoked.into(),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_faults::FaultPlan;
    use cmpqos_obs::RingBufferRecorder;
    use cmpqos_types::Percent;

    fn submit_strict(gac: &mut GlobalAdmissionController, id: u32) -> (Option<NodeId>, Decision) {
        gac.submit(
            JobId::new(id),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(100),
            Some(Cycles::new(105)),
        )
    }

    #[test]
    fn overflow_spills_to_next_node() {
        let mut gac =
            GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit);
        // Two jobs fill node 0 (7+7 of 16 ways, tight deadlines), the third
        // must go to node 1.
        assert_eq!(submit_strict(&mut gac, 0).0, Some(NodeId::new(0)));
        assert_eq!(submit_strict(&mut gac, 1).0, Some(NodeId::new(0)));
        assert_eq!(submit_strict(&mut gac, 2).0, Some(NodeId::new(1)));
    }

    #[test]
    fn rejects_when_all_nodes_full() {
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit);
        let _ = submit_strict(&mut gac, 0);
        let _ = submit_strict(&mut gac, 1);
        let (node, d) = submit_strict(&mut gac, 2);
        assert_eq!(node, None);
        // The genuine LAC rejection, not a fabricated default.
        assert_eq!(
            d,
            Decision::Rejected(RejectReason::NoCapacityBeforeDeadline)
        );
    }

    #[test]
    fn least_loaded_spreads_jobs() {
        let mut gac =
            GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::LeastLoaded);
        assert_eq!(submit_strict(&mut gac, 0).0, Some(NodeId::new(0)));
        assert_eq!(submit_strict(&mut gac, 1).0, Some(NodeId::new(1)));
        assert_eq!(gac.placements().len(), 2);
        assert_eq!(gac.submissions(), 2);
    }

    #[test]
    fn advance_propagates_to_all_lacs() {
        let mut gac =
            GlobalAdmissionController::new(3, LacConfig::default(), ProbePolicy::FirstFit);
        gac.advance(Cycles::new(42));
        for i in 0..3 {
            assert_eq!(gac.lac(NodeId::new(i)).now(), Cycles::new(42));
        }
    }

    #[test]
    fn try_new_rejects_an_empty_server() {
        assert_eq!(
            GlobalAdmissionController::try_new(0, LacConfig::default(), ProbePolicy::FirstFit)
                .err(),
            Some(GacError::NoNodes)
        );
        assert_eq!(
            GacError::NoNodes.to_string(),
            "a server needs at least one node"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn new_panics_on_an_empty_server() {
        let _ = GlobalAdmissionController::new(0, LacConfig::default(), ProbePolicy::FirstFit);
    }

    #[test]
    fn backoff_sequence_is_deterministic() {
        let cfg = GacConfig::builder()
            .backoff_base(Cycles::new(100))
            .backoff_factor(2)
            .build();
        let delays: Vec<u64> = (0..4).map(|a| cfg.backoff_delay(a).get()).collect();
        assert_eq!(delays, vec![100, 200, 400, 800]);
        // Saturates instead of overflowing.
        assert_eq!(cfg.backoff_delay(u32::MAX).get(), u64::MAX);
    }

    #[test]
    fn backoff_saturates_with_a_pinned_capped_sequence() {
        // base 100 · 2^a overflows u64 at a = 58 (100 ≈ 2^6.6), so the
        // sequence must walk up to the cap and then stay pinned there —
        // in O(1) per call even for absurd attempt counts.
        let cfg = GacConfig::builder()
            .backoff_base(Cycles::new(100))
            .backoff_factor(2)
            .build();
        assert_eq!(cfg.backoff_delay(57).get(), 100u64 << 57);
        for attempt in [58, 64, 1_000, u32::MAX - 1, u32::MAX] {
            assert_eq!(cfg.backoff_delay(attempt).get(), u64::MAX, "{attempt}");
        }
        // Degenerate factors stay exact: factor 1 never grows, factor 0
        // collapses to zero after the first retry (0^0 == 1).
        let flat = GacConfig::builder()
            .backoff_base(Cycles::new(500))
            .backoff_factor(1)
            .build();
        assert_eq!(flat.backoff_delay(u32::MAX).get(), 500);
        let zero = GacConfig::builder()
            .backoff_base(Cycles::new(500))
            .backoff_factor(0)
            .build();
        assert_eq!(zero.backoff_delay(0).get(), 500);
        assert_eq!(zero.backoff_delay(7).get(), 0);
    }

    #[test]
    fn completed_jobs_leave_the_placement_table() {
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit);
        let _ = submit_strict(&mut gac, 0);
        assert_eq!(gac.placements().len(), 1);
        let done = gac.advance(Cycles::new(200));
        assert_eq!(done, vec![(JobId::new(0), NodeId::new(0))]);
        assert!(gac.placements().is_empty());
    }

    #[test]
    fn lost_probes_retry_with_backoff_then_place() {
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit)
                .with_gac_config(
                    GacConfig::builder()
                        .max_retries(3)
                        .backoff_base(Cycles::new(100))
                        .suspect_after(10)
                        .dead_after(20)
                        .build(),
                );
        let mut rec = RingBufferRecorder::new(64);
        // Two probes vanish; the third is answered.
        gac.inject(
            FaultPlan::new()
                .probe_loss(Cycles::ZERO, NodeId::new(0), 2)
                .build()
                .injections()[0],
            &mut rec,
        );
        let (node, d) = gac.submit_recorded(
            JobId::new(0),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(100),
            None,
            &mut rec,
        );
        assert!(d.is_accepted());
        assert_eq!(node, Some(NodeId::new(0)));
        let c = rec.counters();
        assert_eq!(c.probes_lost, 2);
        assert_eq!(c.probe_backoffs, 2);
        assert_eq!(c.placed, 1);
        // Backoff advanced the node's clock: 100 then 200.
        assert_eq!(gac.lac(NodeId::new(0)).now(), Cycles::new(300));
    }

    #[test]
    fn reservation_purged_by_a_backoff_clock_still_completes() {
        // A backoff stamp advances the probed node's LAC clock, which may
        // purge an already-finished reservation before the GAC's own
        // advance() sweep sees its end. The job must still be reported
        // completed (and leave the placement table), never stranded.
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit);
        let mut rec = RingBufferRecorder::new(64);
        let (node, d) = gac.submit_recorded(
            JobId::new(0),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(100),
            None,
            &mut rec,
        );
        assert!(d.is_accepted());
        assert_eq!(node, Some(NodeId::new(0)));
        // Two lost probes: the retry backoffs (default base 1000) advance
        // node 0's clock far past job 0's end at cycle 100.
        gac.inject(
            FaultPlan::new()
                .probe_loss(Cycles::ZERO, NodeId::new(0), 2)
                .build()
                .injections()[0],
            &mut rec,
        );
        let (_, d) = gac.submit_recorded(
            JobId::new(1),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(100),
            None,
            &mut rec,
        );
        assert!(d.is_accepted());
        assert!(gac.lac(NodeId::new(0)).now() > Cycles::new(100));
        let done = gac.advance(Cycles::new(50));
        assert!(
            done.contains(&(JobId::new(0), NodeId::new(0))),
            "purged job 0 reported completed: {done:?}"
        );
        assert!(gac.placement(JobId::new(0)).is_none());
        assert!(gac.placement(JobId::new(1)).is_some());
    }

    #[test]
    fn sustained_losses_demote_to_suspect_not_dead_within_timeout() {
        let mut gac =
            GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit);
        let mut rec = RingBufferRecorder::new(64);
        gac.inject(
            FaultPlan::new()
                .probe_loss(Cycles::ZERO, NodeId::new(0), 10)
                .build()
                .injections()[0],
            &mut rec,
        );
        // Default config: suspect after 2 losses; the 4 losses of one
        // submission satisfy dead_after, but only ~7k cycles of backoff
        // have elapsed — far short of the 30k dead_timeout. The node must
        // stay Suspect (losses prove the link is down, not the node).
        let (node, d) = gac.submit_recorded(
            JobId::new(0),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(100),
            None,
            &mut rec,
        );
        assert!(d.is_accepted(), "spills to the healthy node");
        assert_eq!(node, Some(NodeId::new(1)));
        assert_eq!(gac.node_health(NodeId::new(0)), NodeHealth::Suspect);
        assert_eq!(gac.live_nodes(), 2, "suspect nodes are still probed");
        assert_eq!(rec.counters().node_health_changes, 1);
    }

    #[test]
    fn sustained_losses_past_the_timeout_demote_to_dead() {
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit);
        let mut rec = RingBufferRecorder::new(64);
        gac.inject(
            FaultPlan::new()
                .probe_loss(Cycles::ZERO, NodeId::new(0), 10)
                .build()
                .injections()[0],
            &mut rec,
        );
        let (_, d) = gac.submit_recorded(
            JobId::new(0),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(100),
            None,
            &mut rec,
        );
        assert_eq!(d, Decision::Rejected(RejectReason::NoHealthyNodes));
        assert_eq!(gac.node_health(NodeId::new(0)), NodeHealth::Suspect);
        // Past the 30k dead_timeout the node has been silent for too long:
        // the next burst of losses is allowed to declare it dead.
        let _ = gac.advance(Cycles::new(40_000));
        let (_, d) = gac.submit_recorded(
            JobId::new(1),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(100),
            None,
            &mut rec,
        );
        assert_eq!(d, Decision::Rejected(RejectReason::NoHealthyNodes));
        assert_eq!(gac.node_health(NodeId::new(0)), NodeHealth::Dead);
        assert_eq!(gac.live_nodes(), 0);
        assert_eq!(rec.counters().node_health_changes, 2);
    }

    #[test]
    fn partition_is_not_death_and_heal_restores() {
        // THE regression this PR pins: a partitioned node is unreachable,
        // not dead. Evacuating its reservations would double-book them —
        // the LAC on the far side of the partition is still honoring them.
        let mut gac =
            GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit);
        let mut rec = RingBufferRecorder::new(128);
        let submit = |gac: &mut GlobalAdmissionController,
                      id: u32,
                      deadline: Option<Cycles>,
                      rec: &mut RingBufferRecorder| {
            gac.submit_recorded(
                JobId::new(id),
                ExecutionMode::Strict,
                ResourceRequest::paper_job(),
                Cycles::new(100),
                deadline,
                rec,
            )
        };
        let (node, d) = submit(&mut gac, 0, None, &mut rec);
        assert!(d.is_accepted());
        assert_eq!(node, Some(NodeId::new(0)));
        gac.inject(
            FaultPlan::new()
                .link_partition(Cycles::ZERO, NodeId::new(0))
                .build()
                .injections()[0],
            &mut rec,
        );
        // Every probe to node 0 is now lost; jobs spill to node 1. However
        // many submissions hammer the dead link, node 0 must not be
        // declared dead within the timeout — and job 0 must stay put.
        for i in 1..4u32 {
            let _ = submit(&mut gac, i, None, &mut rec);
        }
        assert_eq!(gac.node_health(NodeId::new(0)), NodeHealth::Suspect);
        assert_eq!(
            gac.placement(JobId::new(0)),
            Some(NodeId::new(0)),
            "the partitioned node keeps its placement"
        );
        let c = rec.counters();
        assert_eq!(c.migrated, 0, "no evacuation of a merely-partitioned node");
        assert_eq!(c.reservations_revoked, 0);
        assert_eq!(c.links_partitioned, 1);
        // Heal the link; the next answered probe restores the node.
        gac.inject(
            FaultPlan::new()
                .link_heal(Cycles::ZERO, NodeId::new(0))
                .build()
                .injections()[0],
            &mut rec,
        );
        // Advance past every backoff-skewed clock so old reservations
        // complete, then fill node 1 with two tight-deadline jobs. The
        // third forces a probe of the still-Suspect node 0, which now
        // answers: health recovers and the job lands there.
        let _ = gac.advance(Cycles::new(10_000));
        let deadline = Some(Cycles::new(10_105));
        assert_eq!(
            submit(&mut gac, 4, deadline, &mut rec).0,
            Some(NodeId::new(1))
        );
        assert_eq!(
            submit(&mut gac, 5, deadline, &mut rec).0,
            Some(NodeId::new(1))
        );
        let (node, d) = submit(&mut gac, 6, deadline, &mut rec);
        assert!(d.is_accepted(), "healed node takes jobs: {d:?}");
        assert_eq!(node, Some(NodeId::new(0)), "healed node takes jobs");
        assert_eq!(gac.node_health(NodeId::new(0)), NodeHealth::Healthy);
        assert_eq!(rec.counters().links_healed, 1);
    }

    #[test]
    fn all_nodes_dead_rejects_with_no_healthy_nodes() {
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit);
        let mut rec = RingBufferRecorder::new(16);
        gac.inject(
            FaultPlan::new()
                .node_fault(Cycles::ZERO, NodeId::new(0))
                .build()
                .injections()[0],
            &mut rec,
        );
        let (node, d) = submit_strict(&mut gac, 0);
        assert_eq!(node, None);
        assert_eq!(d, Decision::Rejected(RejectReason::NoHealthyNodes));
    }

    #[test]
    fn node_fault_migrates_reservations_to_survivors() {
        let mut gac =
            GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit);
        let mut rec = RingBufferRecorder::new(64);
        let (node, _) = submit_strict(&mut gac, 0);
        assert_eq!(node, Some(NodeId::new(0)));
        let report = gac.inject(
            FaultPlan::new()
                .node_fault(Cycles::ZERO, NodeId::new(0))
                .build()
                .injections()[0],
            &mut rec,
        );
        assert_eq!(
            report.migrated,
            vec![(JobId::new(0), NodeId::new(0), NodeId::new(1))]
        );
        assert!(report.revoked.is_empty());
        assert_eq!(gac.placement(JobId::new(0)), Some(NodeId::new(1)));
        assert!(gac.lac(NodeId::new(0)).reservations().is_empty());
        assert_eq!(gac.lac(NodeId::new(1)).reservations().len(), 1);
        // Migration honors the original deadline.
        assert_eq!(
            gac.lac(NodeId::new(1)).reservations()[0].deadline,
            Some(Cycles::new(105))
        );
    }

    #[test]
    fn way_fault_downgrades_elastic_and_evicts_what_cannot_fit() {
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit);
        let mut rec = RingBufferRecorder::new(64);
        // Two Elastic(50%) jobs of 8 ways each fill all 16 ways.
        for i in 0..2u32 {
            let (_, d) = gac.submit(
                JobId::new(i),
                ExecutionMode::Elastic(Percent::new(50.0)),
                ResourceRequest::new(1, Ways::new(8)),
                Cycles::new(100),
                None,
            );
            assert!(d.is_accepted());
        }
        let report = gac.inject(
            FaultPlan::new()
                .way_fault(Cycles::ZERO, NodeId::new(0), 3)
                .build()
                .injections()[0],
            &mut rec,
        );
        // FCFS: job 0 keeps its 8 ways; job 1 absorbs the loss by giving
        // up one way (within its floor(8 · 0.5) = 4-way slack).
        assert_eq!(report.downgraded, vec![(JobId::new(1), Ways::new(1))]);
        assert!(report.revoked.is_empty());
        assert_eq!(rec.counters().downgraded_under_fault, 1);
        let total: u16 = gac
            .lac(NodeId::new(0))
            .reservations()
            .iter()
            .map(|r| r.request.cache_ways().get())
            .sum();
        assert_eq!(total, 15, "8 kept + 7 downgraded fits 15 ways");
    }

    #[test]
    fn joined_node_takes_placements_and_draining_stops_them() {
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit);
        let mut rec = RingBufferRecorder::new(64);
        assert_eq!(gac.nodes(), 1);
        let joined = gac.join_node(Cycles::ZERO, &mut rec);
        assert_eq!(joined, NodeId::new(1));
        assert_eq!(gac.nodes(), 2);
        assert_eq!(gac.live_nodes(), 2);
        assert_eq!(gac.member_state(joined), MemberState::Live);
        assert_eq!(rec.counters().nodes_joined, 1);
        // Two paper jobs land on node 0 (FirstFit); draining it migrates
        // both onto the joined node (2 x 7 = 14 <= 16 ways) and departs —
        // no admitted job is lost.
        let _ = submit_strict(&mut gac, 0);
        let _ = submit_strict(&mut gac, 1);
        let report = gac.drain_node(NodeId::new(0), Cycles::ZERO, &mut rec);
        assert_eq!(report.migrated.len(), 2);
        assert!(report.revoked.is_empty());
        assert_eq!(gac.member_state(NodeId::new(0)), MemberState::Left);
        assert_eq!(gac.live_nodes(), 1);
        assert_eq!(rec.counters().nodes_drained, 1);
        for (job, node) in gac.placements() {
            assert_eq!(*node, joined, "{job:?} moved off the drained node");
        }
        // A departed node takes nothing, and a second drain is a no-op.
        assert!(gac
            .drain_node(NodeId::new(0), Cycles::ZERO, &mut rec)
            .is_quiet());
        assert_eq!(rec.counters().nodes_drained, 1);
    }

    #[test]
    fn restart_reconciles_the_node_before_it_reenters_live() {
        let mut gac =
            GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit);
        let mut rec = RingBufferRecorder::new(64);
        let _ = submit_strict(&mut gac, 0);
        assert_eq!(gac.placement(JobId::new(0)), Some(NodeId::new(0)));
        // A clean restart: the journal-recovered table matches the GAC's
        // placement view, so nothing is revoked and the job survives.
        let report = gac.restart_node(NodeId::new(0), Cycles::ZERO, &mut rec);
        assert!(report.is_quiet());
        assert_eq!(gac.member_state(NodeId::new(0)), MemberState::Live);
        assert_eq!(gac.placement(JobId::new(0)), Some(NodeId::new(0)));
        assert_eq!(rec.counters().reconciled, 1);
        assert_eq!(rec.counters().nodes_joined, 1);
        // Restarting a departed node is a no-op.
        let _ = gac.drain_node(NodeId::new(0), Cycles::ZERO, &mut rec);
        assert!(gac
            .restart_node(NodeId::new(0), Cycles::ZERO, &mut rec)
            .is_quiet());
        assert_eq!(gac.member_state(NodeId::new(0)), MemberState::Left);
    }

    #[test]
    fn unrenewed_lease_expires_after_grace_and_the_job_migrates() {
        let mut gac =
            GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit)
                .with_gac_config(
                    GacConfig::builder()
                        .lease_ttl(Cycles::new(1_000))
                        .dead_timeout(Cycles::new(2_000))
                        .build(),
                );
        let mut rec = RingBufferRecorder::new(64);
        let (node, d) = gac.submit_recorded(
            JobId::new(0),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(100_000),
            None,
            &mut rec,
        );
        assert!(d.is_accepted());
        assert_eq!(node, Some(NodeId::new(0)));
        assert_eq!(gac.leases().len(), 1);
        // Heartbeats reach node 0 until its link is severed; renewals then
        // stop and the lease runs out ttl + grace later.
        gac.heartbeat_all(Cycles::new(500), &mut rec);
        assert_eq!(rec.counters().leases_renewed, 1);
        gac.inject(
            FaultPlan::new()
                .link_partition(Cycles::new(600), NodeId::new(0))
                .build()
                .injections()[0],
            &mut rec,
        );
        gac.heartbeat_all(Cycles::new(1_000), &mut rec);
        assert_eq!(rec.counters().leases_renewed, 1, "partitioned: no renewal");
        // Within ttl + grace the placement survives (unreachable ≠ dead) …
        let _ = gac.advance_recorded(Cycles::new(3_000), &mut rec);
        assert_eq!(gac.placement(JobId::new(0)), Some(NodeId::new(0)));
        // … but past it the lease expires and the job re-places, exactly
        // like an evacuation.
        let _ = gac.advance_recorded(Cycles::new(4_000), &mut rec);
        assert_eq!(rec.counters().leases_expired, 1);
        assert_eq!(gac.placement(JobId::new(0)), Some(NodeId::new(1)));
        assert_eq!(rec.counters().migrated, 1);
        assert_eq!(
            gac.leases().len(),
            1,
            "the migrated job holds a fresh lease"
        );
    }

    #[test]
    fn heartbeats_keep_leases_alive_and_freeze_forces_expiry() {
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit)
                .with_gac_config(
                    GacConfig::builder()
                        .lease_ttl(Cycles::new(1_000))
                        .dead_timeout(Cycles::new(2_000))
                        .build(),
                );
        let mut rec = RingBufferRecorder::new(128);
        let (_, d) = gac.submit_recorded(
            JobId::new(0),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(100_000),
            None,
            &mut rec,
        );
        assert!(d.is_accepted());
        // Renewed every 500 cycles, the lease never nears expiry even far
        // past its original ttl.
        for t in (500..=10_000).step_by(500) {
            gac.heartbeat_all(Cycles::new(t), &mut rec);
            let _ = gac.advance_recorded(Cycles::new(t), &mut rec);
        }
        assert_eq!(rec.counters().leases_expired, 0);
        assert_eq!(gac.placement(JobId::new(0)), Some(NodeId::new(0)));
        // Freeze renewals: heartbeats still arrive (health stays Healthy)
        // but the lease dies ttl + grace later — on a one-node server the
        // job is revoked, never silently lost.
        gac.inject(
            FaultPlan::new()
                .lease_freeze(Cycles::new(10_000), NodeId::new(0))
                .build()
                .injections()[0],
            &mut rec,
        );
        for t in (10_500..=14_000).step_by(500) {
            gac.heartbeat_all(Cycles::new(t), &mut rec);
            let _ = gac.advance_recorded(Cycles::new(t), &mut rec);
        }
        assert_eq!(rec.counters().leases_expired, 1);
        assert_eq!(gac.node_health(NodeId::new(0)), NodeHealth::Healthy);
        assert_eq!(rec.counters().reservations_revoked, 1);
        assert!(gac.placements().is_empty());
    }

    #[test]
    fn snapshot_round_trips_membership_and_leases() {
        let mut gac =
            GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit)
                .with_gac_config(GacConfig::builder().lease_ttl(Cycles::new(5_000)).build());
        let mut rec = RingBufferRecorder::new(64);
        let _ = submit_strict(&mut gac, 0);
        let joined = gac.join_node(Cycles::new(10), &mut rec);
        let _ = gac.drain_node(NodeId::new(0), Cycles::new(20), &mut rec);
        let restored = GlobalAdmissionController::restore(gac.snapshot());
        assert_eq!(restored, gac);
        assert_eq!(restored.member_state(NodeId::new(0)), MemberState::Left);
        assert_eq!(restored.member_state(joined), MemberState::Live);
        assert_eq!(restored.leases(), gac.leases());
        assert!(!restored.leases().is_empty());
    }

    #[test]
    fn injected_join_is_valid_only_for_the_next_index() {
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit);
        let mut rec = RingBufferRecorder::new(16);
        // Joining index 5 on a 1-node table is ignored (append-only).
        let _ = gac.inject(
            FaultPlan::new()
                .node_join(Cycles::ZERO, NodeId::new(5))
                .build()
                .injections()[0],
            &mut rec,
        );
        assert_eq!(gac.nodes(), 1);
        // Joining the next index works.
        let _ = gac.inject(
            FaultPlan::new()
                .node_join(Cycles::ZERO, NodeId::new(1))
                .build()
                .injections()[0],
            &mut rec,
        );
        assert_eq!(gac.nodes(), 2);
        assert_eq!(gac.live_nodes(), 2);
    }

    #[test]
    fn stranded_strict_job_with_no_survivor_is_revoked_with_reason() {
        // One-node server: a node fault leaves nowhere to migrate.
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit);
        let mut rec = RingBufferRecorder::new(32);
        let _ = submit_strict(&mut gac, 0);
        let report = gac.inject(
            FaultPlan::new()
                .node_fault(Cycles::ZERO, NodeId::new(0))
                .build()
                .injections()[0],
            &mut rec,
        );
        assert_eq!(report.revoked, vec![JobId::new(0)]);
        assert!(gac.placements().is_empty(), "no stranded placement entry");
        assert_eq!(rec.counters().reservations_revoked, 1);
    }
}
