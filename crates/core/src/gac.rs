//! The Global Admission Controller (Section 3.1 of the paper).
//!
//! A server consists of many CMP nodes; the GAC receives user submissions
//! and probes each node's Local Admission Controller for one that can
//! satisfy the job's QoS target. When no node accepts, the job is rejected
//! (in a full deployment the GAC would then renegotiate the target with the
//! user — out of this paper's scope, as it is of ours).

use crate::lac::{Decision, Lac};
use crate::modes::ExecutionMode;
use crate::target::ResourceRequest;
use cmpqos_types::{Cycles, JobId, NodeId};

/// Order in which nodes are probed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbePolicy {
    /// Probe nodes in index order (first fit).
    #[default]
    FirstFit,
    /// Probe the node with the fewest live reservations first (a simple
    /// load-balancing heuristic).
    LeastLoaded,
}

/// The server-level admission controller over a set of per-node LACs.
///
/// # Examples
///
/// ```
/// use cmpqos_core::gac::{GlobalAdmissionController, ProbePolicy};
/// use cmpqos_core::{ExecutionMode, LacConfig, ResourceRequest};
/// use cmpqos_types::{Cycles, JobId};
///
/// let mut gac = GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit);
/// let (node, decision) = gac.submit(
///     JobId::new(0),
///     ExecutionMode::Strict,
///     ResourceRequest::paper_job(),
///     Cycles::new(100),
///     Some(Cycles::new(1_000)),
/// );
/// assert!(decision.is_accepted());
/// assert_eq!(node, Some(cmpqos_types::NodeId::new(0)));
/// ```
#[derive(Debug, Clone)]
pub struct GlobalAdmissionController {
    lacs: Vec<Lac>,
    policy: ProbePolicy,
    submissions: u64,
    placements: Vec<(JobId, NodeId)>,
}

impl GlobalAdmissionController {
    /// Creates a GAC over `nodes` identical CMP nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(nodes: usize, config: crate::lac::LacConfig, policy: ProbePolicy) -> Self {
        assert!(nodes > 0, "a server needs at least one node");
        Self {
            lacs: (0..nodes).map(|_| Lac::new(config)).collect(),
            policy,
            submissions: 0,
            placements: Vec::new(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.lacs.len()
    }

    /// Access to one node's LAC.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn lac(&self, node: NodeId) -> &Lac {
        &self.lacs[node.as_usize()]
    }

    /// Advances every node's clock.
    pub fn advance(&mut self, now: Cycles) {
        for lac in &mut self.lacs {
            lac.advance(now);
        }
    }

    /// Submits a job: probes LACs per the policy and returns the accepting
    /// node (if any) and the final decision (the last rejection when all
    /// nodes reject).
    pub fn submit(
        &mut self,
        id: JobId,
        mode: ExecutionMode,
        request: ResourceRequest,
        tw: Cycles,
        deadline: Option<Cycles>,
    ) -> (Option<NodeId>, Decision) {
        self.submissions += 1;
        let mut order: Vec<usize> = (0..self.lacs.len()).collect();
        if self.policy == ProbePolicy::LeastLoaded {
            order.sort_by_key(|&i| self.lacs[i].reservations().len());
        }
        let mut last = Decision::Rejected(crate::lac::RejectReason::NoCapacityBeforeDeadline);
        for i in order {
            let d = self.lacs[i].admit(id, mode, request, tw, deadline);
            if d.is_accepted() {
                let node = NodeId::new(i as u32);
                self.placements.push((id, node));
                return (Some(node), d);
            }
            last = d;
        }
        (None, last)
    }

    /// Where each accepted job was placed.
    #[must_use]
    pub fn placements(&self) -> &[(JobId, NodeId)] {
        &self.placements
    }

    /// Total submissions seen.
    #[must_use]
    pub fn submissions(&self) -> u64 {
        self.submissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lac::LacConfig;

    fn submit_strict(gac: &mut GlobalAdmissionController, id: u32) -> (Option<NodeId>, Decision) {
        gac.submit(
            JobId::new(id),
            ExecutionMode::Strict,
            ResourceRequest::paper_job(),
            Cycles::new(100),
            Some(Cycles::new(105)),
        )
    }

    #[test]
    fn overflow_spills_to_next_node() {
        let mut gac =
            GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit);
        // Two jobs fill node 0 (7+7 of 16 ways, tight deadlines), the third
        // must go to node 1.
        assert_eq!(submit_strict(&mut gac, 0).0, Some(NodeId::new(0)));
        assert_eq!(submit_strict(&mut gac, 1).0, Some(NodeId::new(0)));
        assert_eq!(submit_strict(&mut gac, 2).0, Some(NodeId::new(1)));
    }

    #[test]
    fn rejects_when_all_nodes_full() {
        let mut gac =
            GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit);
        submit_strict(&mut gac, 0);
        submit_strict(&mut gac, 1);
        let (node, d) = submit_strict(&mut gac, 2);
        assert_eq!(node, None);
        assert!(!d.is_accepted());
    }

    #[test]
    fn least_loaded_spreads_jobs() {
        let mut gac =
            GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::LeastLoaded);
        assert_eq!(submit_strict(&mut gac, 0).0, Some(NodeId::new(0)));
        assert_eq!(submit_strict(&mut gac, 1).0, Some(NodeId::new(1)));
        assert_eq!(gac.placements().len(), 2);
        assert_eq!(gac.submissions(), 2);
    }

    #[test]
    fn advance_propagates_to_all_lacs() {
        let mut gac =
            GlobalAdmissionController::new(3, LacConfig::default(), ProbePolicy::FirstFit);
        gac.advance(Cycles::new(42));
        for i in 0..3 {
            assert_eq!(gac.lac(NodeId::new(i)).now(), Cycles::new(42));
        }
    }
}
