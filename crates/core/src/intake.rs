//! Overload protection in front of the LAC: a bounded intake queue with
//! deadline-aware load shedding, a per-source token-bucket rate limiter,
//! and a circuit breaker on the sliding-window reject ratio.
//!
//! The paper's admission pipeline (Section 5) assumes requests arrive at a
//! trickle; under a flood, every hopeless request still costs an O(table)
//! FCFS scan and clogs the queue for feasible ones. [`AdmissionIntake`]
//! sits *in front of* [`Lac::admit`] and sheds in O(1):
//!
//! 1. **Infeasible slack** — a request whose `now + duration > deadline`
//!    can never be placed, so it is rejected with
//!    [`RejectReason::ShedInfeasible`] without touching the table.
//! 2. **Circuit breaker** — when the reject ratio over the last
//!    [`IntakeConfig::breaker_window`] drained decisions crosses
//!    [`IntakeConfig::breaker_threshold_pct`], the breaker opens for
//!    [`IntakeConfig::breaker_cooldown`] cycles and everything is shed
//!    with [`RejectReason::ShedOverload`].
//! 3. **Rate limit** — each [`SourceId`] owns a token bucket
//!    ([`IntakeConfig::bucket_capacity`] tokens, one refilled every
//!    [`IntakeConfig::refill_interval`] cycles); an empty bucket sheds.
//! 4. **Bounded queue** — at most [`IntakeConfig::queue_capacity`]
//!    requests wait; overflow sheds.
//!
//! Everything is clocked by the caller-supplied cycle count — no wall
//! clock, no randomness — so runs replay deterministically. Shedding never
//! touches the LAC: accepted jobs' reservations are bit-identical to a run
//! where the shed requests were never offered (see the crate tests).

use std::collections::{BTreeMap, VecDeque};

use crate::lac::{Decision, Lac, RejectReason};
use cmpqos_obs::{Event, Recorder};
use cmpqos_types::{Cycles, JobId, NodeId, SourceId};

pub use crate::request::AdmissionRequest;

/// What the intake did with an offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a shed request was rejected; dropping the outcome loses the job"]
pub enum IntakeOutcome {
    /// Queued; the next [`AdmissionIntake::drain`] runs the FCFS test.
    Enqueued,
    /// Shed in O(1) with [`RejectReason::ShedOverload`] or
    /// [`RejectReason::ShedInfeasible`]; the LAC never saw it.
    Shed(RejectReason),
}

impl IntakeOutcome {
    /// Whether the request made it into the queue.
    #[must_use]
    pub fn is_enqueued(&self) -> bool {
        matches!(self, IntakeOutcome::Enqueued)
    }
}

/// An admission decision handed back by [`AdmissionIntake::drain`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrainedDecision {
    /// The job.
    pub id: JobId,
    /// The LAC's decision (or a drain-time shed).
    pub decision: Decision,
    /// Cycles the request waited in the intake queue.
    pub waited: Cycles,
}

/// Monotonic intake statistics (all cycle-deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntakeStats {
    /// Requests offered to the intake.
    pub offered: u64,
    /// Requests that entered the queue.
    pub enqueued: u64,
    /// Shed because the deadline slack fits no feasible slot.
    pub shed_infeasible: u64,
    /// Shed because the source's token bucket was empty.
    pub shed_rate_limited: u64,
    /// Shed because the circuit breaker was open.
    pub shed_breaker: u64,
    /// Shed because the bounded queue was full.
    pub shed_queue_full: u64,
    /// Drained requests the LAC accepted.
    pub admitted: u64,
    /// Drained requests the LAC rejected (including drain-time sheds).
    pub rejected: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
}

impl IntakeStats {
    /// All sheds combined.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_infeasible + self.shed_rate_limited + self.shed_breaker + self.shed_queue_full
    }
}

/// Intake configuration.
///
/// Construct with [`IntakeConfig::default`] or [`IntakeConfig::builder`];
/// the struct is `#[non_exhaustive]`, so fields may be added without
/// breaking downstream crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct IntakeConfig {
    /// Bounded intake queue depth.
    pub queue_capacity: usize,
    /// Token-bucket capacity per source (burst size).
    pub bucket_capacity: u32,
    /// One token per source refills every this many cycles.
    pub refill_interval: Cycles,
    /// Sliding window of drained decisions the breaker watches.
    pub breaker_window: usize,
    /// Reject percentage over a full window that trips the breaker.
    pub breaker_threshold_pct: u32,
    /// How long a tripped breaker sheds everything.
    pub breaker_cooldown: Cycles,
}

impl Default for IntakeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 32,
            bucket_capacity: 8,
            refill_interval: Cycles::new(10_000),
            breaker_window: 16,
            breaker_threshold_pct: 75,
            breaker_cooldown: Cycles::new(50_000),
        }
    }
}

impl IntakeConfig {
    /// A fluent builder starting from the defaults.
    #[must_use]
    pub fn builder() -> IntakeConfigBuilder {
        IntakeConfigBuilder {
            config: IntakeConfig::default(),
        }
    }
}

/// Fluent builder for [`IntakeConfig`].
#[derive(Debug, Clone)]
pub struct IntakeConfigBuilder {
    config: IntakeConfig,
}

impl IntakeConfigBuilder {
    /// Sets the bounded queue depth (clamped to at least 1).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the per-source token-bucket capacity (clamped to at least 1).
    #[must_use]
    pub fn bucket_capacity(mut self, tokens: u32) -> Self {
        self.config.bucket_capacity = tokens.max(1);
        self
    }

    /// Sets the per-token refill interval.
    #[must_use]
    pub fn refill_interval(mut self, interval: Cycles) -> Self {
        self.config.refill_interval = interval;
        self
    }

    /// Sets the breaker's sliding-window length (clamped to at least 1).
    #[must_use]
    pub fn breaker_window(mut self, window: usize) -> Self {
        self.config.breaker_window = window.max(1);
        self
    }

    /// Sets the reject percentage that trips the breaker.
    #[must_use]
    pub fn breaker_threshold_pct(mut self, pct: u32) -> Self {
        self.config.breaker_threshold_pct = pct.min(100);
        self
    }

    /// Sets the open-breaker cooldown.
    #[must_use]
    pub fn breaker_cooldown(mut self, cooldown: Cycles) -> Self {
        self.config.breaker_cooldown = cooldown;
        self
    }

    /// Finishes the configuration.
    #[must_use]
    pub fn build(self) -> IntakeConfig {
        self.config
    }
}

#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: u32,
    last_refill: Cycles,
}

/// The overload-protection layer in front of one node's [`Lac`].
///
/// # Examples
///
/// ```
/// use cmpqos_core::intake::{AdmissionIntake, AdmissionRequest, IntakeConfig};
/// use cmpqos_core::{Lac, LacConfig, ResourceRequest};
/// use cmpqos_obs::NullRecorder;
/// use cmpqos_types::{Cycles, JobId, NodeId};
///
/// let mut lac = Lac::new(LacConfig::default());
/// let mut intake = AdmissionIntake::new(NodeId::new(0), IntakeConfig::default());
/// let req = AdmissionRequest::builder(
///     JobId::new(0),
///     ResourceRequest::paper_job(),
///     Cycles::new(1_000),
/// )
/// .deadline(Cycles::new(10_000))
/// .build();
/// let outcome = intake.offer(req, Cycles::new(0), &mut NullRecorder);
/// assert!(outcome.is_enqueued());
/// let drained = intake.drain(&mut lac, Cycles::new(0), &mut NullRecorder);
/// assert!(drained[0].decision.is_accepted());
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionIntake {
    node: NodeId,
    config: IntakeConfig,
    queue: VecDeque<(AdmissionRequest, Cycles)>,
    buckets: BTreeMap<SourceId, TokenBucket>,
    window: VecDeque<bool>,
    open_until: Option<Cycles>,
    stats: IntakeStats,
}

impl AdmissionIntake {
    /// An empty intake guarding `node`'s LAC.
    #[must_use]
    pub fn new(node: NodeId, config: IntakeConfig) -> Self {
        Self {
            node,
            config,
            queue: VecDeque::with_capacity(config.queue_capacity.min(1_024)),
            buckets: BTreeMap::new(),
            window: VecDeque::with_capacity(config.breaker_window.min(1_024)),
            open_until: None,
            stats: IntakeStats::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> IntakeConfig {
        self.config
    }

    /// Intake statistics so far.
    #[must_use]
    pub fn stats(&self) -> IntakeStats {
        self.stats
    }

    /// Requests currently waiting.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the breaker is open (shedding everything) at `now`.
    #[must_use]
    pub fn breaker_open(&self, now: Cycles) -> bool {
        self.open_until.is_some_and(|until| now < until)
    }

    /// Offers a request at cycle `now`. Every check is O(1); a shed
    /// request is rejected immediately (with a `Rejected` event) and the
    /// LAC never sees it. Checks run in order: infeasible slack, open
    /// breaker, per-source rate limit, queue bound.
    pub fn offer(
        &mut self,
        req: AdmissionRequest,
        now: Cycles,
        recorder: &mut dyn Recorder,
    ) -> IntakeOutcome {
        self.stats.offered += 1;
        self.maybe_restore(now, recorder);

        if let (Some(td), Some(duration)) = (req.deadline, req.mode.reservation_duration(req.tw)) {
            if now + duration > td {
                self.stats.shed_infeasible += 1;
                return self.shed(req.id, RejectReason::ShedInfeasible, now, recorder);
            }
        }
        if self.breaker_open(now) {
            self.stats.shed_breaker += 1;
            return self.shed(req.id, RejectReason::ShedOverload, now, recorder);
        }
        if !self.take_token(req.source, now) {
            self.stats.shed_rate_limited += 1;
            return self.shed(req.id, RejectReason::ShedOverload, now, recorder);
        }
        if self.queue.len() >= self.config.queue_capacity {
            self.stats.shed_queue_full += 1;
            return self.shed(req.id, RejectReason::ShedOverload, now, recorder);
        }
        self.stats.enqueued += 1;
        self.queue.push_back((req, now));
        IntakeOutcome::Enqueued
    }

    /// Drains the whole queue FCFS through `lac` at cycle `now`, feeding
    /// the breaker window with each decision. Consecutive feasible
    /// requests are admitted as one [`Lac::admit_batch`] run, amortizing
    /// the per-decision bookkeeping; decisions and statistics are
    /// bit-identical to draining one request at a time. Requests whose
    /// deadline became infeasible while waiting are shed here (still
    /// O(1), still without an FCFS scan).
    pub fn drain(
        &mut self,
        lac: &mut Lac,
        now: Cycles,
        recorder: &mut dyn Recorder,
    ) -> Vec<DrainedDecision> {
        self.maybe_restore(now, recorder);
        let mut out = Vec::with_capacity(self.queue.len());
        let mut run: Vec<(AdmissionRequest, Cycles)> = Vec::new();
        while let Some((req, offered_at)) = self.queue.pop_front() {
            let infeasible = match (req.deadline, req.mode.reservation_duration(req.tw)) {
                (Some(td), Some(duration)) => now + duration > td,
                _ => false,
            };
            if !infeasible {
                run.push((req, offered_at));
                continue;
            }
            // A drain-time shed ends the current batch run: its decision
            // must land between its neighbours' in FCFS order.
            self.flush_run(lac, &mut run, &mut out, now, recorder);
            self.stats.shed_infeasible += 1;
            if recorder.enabled() {
                recorder.record(
                    now,
                    Event::Rejected {
                        job: req.id,
                        cause: RejectReason::ShedInfeasible.into(),
                    },
                );
            }
            let decision = Decision::Rejected(RejectReason::ShedInfeasible);
            self.stats.rejected += 1;
            self.observe(true, now, recorder);
            out.push(DrainedDecision {
                id: req.id,
                decision,
                waited: now.saturating_sub(offered_at),
            });
        }
        self.flush_run(lac, &mut run, &mut out, now, recorder);
        out
    }

    /// Admits one buffered FCFS run through [`Lac::admit_batch`], then
    /// applies the per-decision bookkeeping (stats, breaker window,
    /// output) in the original queue order.
    fn flush_run(
        &mut self,
        lac: &mut Lac,
        run: &mut Vec<(AdmissionRequest, Cycles)>,
        out: &mut Vec<DrainedDecision>,
        now: Cycles,
        recorder: &mut dyn Recorder,
    ) {
        if run.is_empty() {
            return;
        }
        lac.advance(now);
        let reqs: Vec<AdmissionRequest> = run.iter().map(|&(req, _)| req).collect();
        let decisions = lac.admit_batch(&reqs, recorder);
        for ((req, offered_at), decision) in run.drain(..).zip(decisions) {
            if decision.is_accepted() {
                self.stats.admitted += 1;
            } else {
                self.stats.rejected += 1;
            }
            self.observe(!decision.is_accepted(), now, recorder);
            out.push(DrainedDecision {
                id: req.id,
                decision,
                waited: now.saturating_sub(offered_at),
            });
        }
    }

    fn shed(
        &mut self,
        id: JobId,
        reason: RejectReason,
        now: Cycles,
        recorder: &mut dyn Recorder,
    ) -> IntakeOutcome {
        if recorder.enabled() {
            recorder.record(
                now,
                Event::Rejected {
                    job: id,
                    cause: reason.into(),
                },
            );
        }
        IntakeOutcome::Shed(reason)
    }

    /// Refills `source`'s bucket by elapsed full intervals and takes one
    /// token; `false` when the bucket is empty.
    fn take_token(&mut self, source: SourceId, now: Cycles) -> bool {
        let cap = self.config.bucket_capacity.max(1);
        let interval = self.config.refill_interval.get().max(1);
        let bucket = self.buckets.entry(source).or_insert(TokenBucket {
            tokens: cap,
            last_refill: now,
        });
        let elapsed = now.get().saturating_sub(bucket.last_refill.get());
        let refills = elapsed / interval;
        if refills > 0 {
            bucket.tokens = bucket
                .tokens
                .saturating_add(refills.min(u64::from(cap)) as u32);
            bucket.tokens = bucket.tokens.min(cap);
            // Advance by whole intervals so fractional progress carries.
            bucket.last_refill = Cycles::new(bucket.last_refill.get() + refills * interval);
        }
        if bucket.tokens == 0 {
            return false;
        }
        bucket.tokens -= 1;
        true
    }

    /// Feeds one drained decision into the breaker's sliding window and
    /// trips it when a full window crosses the threshold.
    fn observe(&mut self, rejected: bool, now: Cycles, recorder: &mut dyn Recorder) {
        if self.breaker_open(now) {
            return;
        }
        self.window.push_back(rejected);
        while self.window.len() > self.config.breaker_window {
            let _ = self.window.pop_front();
        }
        if self.window.len() < self.config.breaker_window {
            return;
        }
        let rejects = self.window.iter().filter(|&&r| r).count() as u64;
        let len = self.window.len() as u64;
        if rejects * 100 >= u64::from(self.config.breaker_threshold_pct) * len {
            self.open_until = Some(now + self.config.breaker_cooldown);
            self.stats.breaker_trips += 1;
            self.window.clear();
            if recorder.enabled() {
                recorder.record(
                    now,
                    Event::CircuitTripped {
                        node: self.node,
                        rejected: rejects,
                        window: len,
                    },
                );
            }
        }
    }

    /// Closes the breaker when its cooldown has elapsed.
    fn maybe_restore(&mut self, now: Cycles, recorder: &mut dyn Recorder) {
        if let Some(until) = self.open_until {
            if now >= until {
                self.open_until = None;
                if recorder.enabled() {
                    recorder.record(now, Event::CircuitRestored { node: self.node });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lac::LacConfig;
    use crate::target::ResourceRequest;
    use cmpqos_obs::{NullRecorder, RingBufferRecorder};

    fn req(id: u32, source: u32, tw: u64, td: u64) -> AdmissionRequest {
        AdmissionRequest::builder(
            JobId::new(id),
            ResourceRequest::paper_job(),
            Cycles::new(tw),
        )
        .source(SourceId::new(source))
        .deadline(Cycles::new(td))
        .build()
    }

    fn intake() -> AdmissionIntake {
        AdmissionIntake::new(NodeId::new(0), IntakeConfig::default())
    }

    #[test]
    fn infeasible_slack_is_shed_without_touching_the_lac() {
        let mut lac = Lac::new(LacConfig::default());
        let mut i = intake();
        // Deadline 50 with tw 100: can never fit.
        let out = i.offer(req(0, 0, 100, 50), Cycles::new(0), &mut NullRecorder);
        assert_eq!(out, IntakeOutcome::Shed(RejectReason::ShedInfeasible));
        assert_eq!(lac.admission_tests(), 0);
        assert_eq!(i.stats().shed_infeasible, 1);
        // A feasible request flows through to the LAC.
        let out = i.offer(req(1, 0, 100, 1_000), Cycles::new(0), &mut NullRecorder);
        assert!(out.is_enqueued());
        let drained = i.drain(&mut lac, Cycles::new(0), &mut NullRecorder);
        assert!(drained[0].decision.is_accepted());
        assert_eq!(lac.admission_tests(), 1);
    }

    #[test]
    fn token_bucket_rate_limits_per_source() {
        let cfg = IntakeConfig::builder()
            .bucket_capacity(2)
            .refill_interval(Cycles::new(1_000))
            .queue_capacity(64)
            .build();
        let mut i = AdmissionIntake::new(NodeId::new(0), cfg);
        let mut shed = 0;
        for n in 0..4 {
            let out = i.offer(
                req(n, 7, 100, u64::MAX / 4),
                Cycles::new(0),
                &mut NullRecorder,
            );
            if !out.is_enqueued() {
                shed += 1;
            }
        }
        // Capacity 2: third and fourth burst requests are rate limited.
        assert_eq!(shed, 2);
        assert_eq!(i.stats().shed_rate_limited, 2);
        // A different source has its own bucket.
        let out = i.offer(
            req(9, 8, 100, u64::MAX / 4),
            Cycles::new(0),
            &mut NullRecorder,
        );
        assert!(out.is_enqueued());
        // Tokens refill with time.
        let out = i.offer(
            req(10, 7, 100, u64::MAX / 4),
            Cycles::new(2_000),
            &mut NullRecorder,
        );
        assert!(out.is_enqueued());
    }

    #[test]
    fn full_queue_sheds_overload() {
        let cfg = IntakeConfig::builder()
            .queue_capacity(2)
            .bucket_capacity(16)
            .build();
        let mut i = AdmissionIntake::new(NodeId::new(0), cfg);
        for n in 0..2 {
            assert!(i
                .offer(
                    req(n, n, 100, u64::MAX / 4),
                    Cycles::new(0),
                    &mut NullRecorder
                )
                .is_enqueued());
        }
        let out = i.offer(
            req(5, 5, 100, u64::MAX / 4),
            Cycles::new(0),
            &mut NullRecorder,
        );
        assert_eq!(out, IntakeOutcome::Shed(RejectReason::ShedOverload));
        assert_eq!(i.stats().shed_queue_full, 1);
        assert_eq!(i.queue_len(), 2);
    }

    #[test]
    fn breaker_trips_on_reject_ratio_and_restores_after_cooldown() {
        let cfg = IntakeConfig::builder()
            .breaker_window(4)
            .breaker_threshold_pct(75)
            .breaker_cooldown(Cycles::new(1_000))
            .bucket_capacity(64)
            .queue_capacity(64)
            .build();
        // A 1-core LAC: the first request owns it, everything after is
        // rejected, so the window fills with rejects.
        let mut lac = Lac::new(
            LacConfig::builder()
                .capacity(ResourceRequest::new(1, cmpqos_types::Ways::new(16)))
                .build(),
        );
        let mut i = AdmissionIntake::new(NodeId::new(1), cfg);
        let mut rec = RingBufferRecorder::new(256);
        for n in 0..6 {
            let _ = i.offer(req(n, n, 1_000_000, 1_000_000), Cycles::new(0), &mut rec);
        }
        let drained = i.drain(&mut lac, Cycles::new(0), &mut rec);
        assert_eq!(drained.len(), 6);
        assert!(i.stats().breaker_trips >= 1);
        assert!(i.breaker_open(Cycles::new(500)));
        // Open breaker sheds instantly.
        let out = i.offer(req(50, 50, 100, u64::MAX / 4), Cycles::new(500), &mut rec);
        assert_eq!(out, IntakeOutcome::Shed(RejectReason::ShedOverload));
        assert_eq!(i.stats().shed_breaker, 1);
        // Cooldown elapses: restored, accepts again.
        let out = i.offer(req(51, 51, 100, u64::MAX / 4), Cycles::new(2_000), &mut rec);
        assert!(out.is_enqueued());
        assert_eq!(rec.counters().circuits_tripped, 1);
        assert_eq!(rec.counters().circuits_restored, 1);
    }

    #[test]
    fn accepted_reservations_match_a_run_without_the_shed_requests() {
        // The acceptance invariant: shedding happens strictly before the
        // LAC, so feeding only the enqueued requests to a fresh LAC yields
        // byte-identical reservations.
        let cfg = IntakeConfig::builder()
            .queue_capacity(3)
            .bucket_capacity(2)
            .build();
        let mut i = AdmissionIntake::new(NodeId::new(0), cfg);
        let mut lac = Lac::new(LacConfig::default());
        let requests: Vec<AdmissionRequest> = (0..8).map(|n| req(n, n % 2, 500, 100_000)).collect();
        let mut enqueued = Vec::new();
        for r in &requests {
            if i.offer(*r, Cycles::new(10), &mut NullRecorder)
                .is_enqueued()
            {
                enqueued.push(*r);
            }
        }
        let _ = i.drain(&mut lac, Cycles::new(10), &mut NullRecorder);

        let mut reference = Lac::new(LacConfig::default());
        reference.advance(Cycles::new(10));
        for r in &enqueued {
            let _ = reference.admit(r);
        }
        assert_eq!(lac.reservations(), reference.reservations());
    }
}
