//! Occupancy-indexed reservation storage for the LAC hot path.
//!
//! [`ReservationTable`] replaces the flat `Vec<Reservation>` the LAC used
//! to scan on every admission test. It keeps the same reservations, but
//! three ordered indexes make the Section 5 FCFS test cheap:
//!
//! * **Slab arena** — reservations live in stable slots (`Vec<Option<Slot>>`
//!   plus a free list), so every index refers to a reservation by a small
//!   integer id that never moves.
//! * **Step index** (`steps`) — the reserved-usage step function, keyed on
//!   reservation change points. `usage_at` is one `BTreeMap` lookup
//!   (O(log n)) instead of a table scan, and a feasibility check over a
//!   window walks only the change points inside that window.
//! * **End index** (`by_end`) — reservation end points in ascending order:
//!   exactly the candidate set of `earliest_start` (capacity only frees
//!   when something ends), streamed lazily instead of collected and sorted
//!   per query.
//!
//! The table is an *index*, not a new algorithm: every query is defined to
//! return bit-identical answers to the brute-force scan (the testkit's
//! `OracleLac` is the referee). Two equivalences carry that proof:
//!
//! * `fits_over` checks the step boundaries inside the window, a superset
//!   of the brute-force candidate points (which are reservation *starts*
//!   only). The extra end-only boundaries can never flip the answer:
//!   between two consecutive starts the usage only steps *down* (ends
//!   subtract componentwise), so a window that fits at every start also
//!   fits at every end-only boundary.
//! * `earliest_start` streams `{not_before} ∪ {end points > not_before}` in
//!   ascending order — the same candidates the brute force collects,
//!   sorts, and dedups (`BTreeMap` keys are already sorted and unique).
//!
//! Zero-length reservations (`end == start`, e.g. a `tw = 0` admission)
//! are kept in the arena and in `by_end` — their end points are still
//! `earliest_start` candidates, matching the brute force — but contribute
//! no steps, since they never cover an instant.

use crate::lac::Reservation;
use crate::target::ResourceRequest;
use cmpqos_types::{Cycles, JobId, Ways};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound::{Excluded, Unbounded};

/// Stable handle to one live reservation in the slab arena.
pub(crate) type SlotId = u32;

fn zero_usage() -> ResourceRequest {
    ResourceRequest::new(0, Ways::ZERO)
}

#[derive(Debug, Clone)]
struct Slot {
    /// FCFS sequence number: ascending admission order, never reused, so
    /// iterating `by_seq` reproduces the exact order the old `Vec` kept.
    seq: u64,
    reservation: Reservation,
}

/// One point where the usage step function may change value. The entry's
/// `usage` holds the total reserved usage over `[key, next key)`.
#[derive(Debug, Clone)]
struct Boundary {
    usage: ResourceRequest,
    /// Live reservations whose start or end sits exactly at this key; the
    /// boundary is dropped when the count reaches zero (no reservation
    /// changes the step function here any more).
    refs: u32,
}

/// Slab arena + occupancy step index over the LAC's live reservations.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReservationTable {
    slots: Vec<Option<Slot>>,
    free: Vec<SlotId>,
    next_seq: u64,
    /// FCFS iteration order: seq → slot.
    by_seq: BTreeMap<u64, SlotId>,
    /// End point → slots ending there (earliest-start candidates; also the
    /// purge set for `advance`). Includes zero-length reservations.
    by_end: BTreeMap<u64, Vec<SlotId>>,
    /// Owning job → slots (O(log n) release/cancel).
    by_id: BTreeMap<JobId, Vec<SlotId>>,
    /// Slots with `end == start`, purged wholesale by `release`.
    zero_len: BTreeSet<SlotId>,
    /// The usage step function, keyed on reservation change points.
    steps: BTreeMap<u64, Boundary>,
}

impl ReservationTable {
    /// Number of live reservations.
    pub(crate) fn len(&self) -> usize {
        self.by_seq.len()
    }

    /// Live reservations in FCFS (admission) order.
    pub(crate) fn iter_fcfs(&self) -> impl Iterator<Item = &Reservation> + '_ {
        self.by_seq.values().map(|&id| &self.slot(id).reservation)
    }

    /// Materializes the FCFS reservation list (what the old `Vec` held).
    pub(crate) fn to_vec(&self) -> Vec<Reservation> {
        self.iter_fcfs().copied().collect()
    }

    fn slot(&self, id: SlotId) -> &Slot {
        self.slots[id as usize].as_ref().expect("live slot")
    }

    /// The reservation held in `id`.
    pub(crate) fn reservation(&self, id: SlotId) -> Reservation {
        self.slot(id).reservation
    }

    /// Slots currently owned by `job`, in insertion order.
    pub(crate) fn slots_of(&self, job: JobId) -> Vec<SlotId> {
        self.by_id.get(&job).cloned().unwrap_or_default()
    }

    /// Inserts a reservation at the back of the FCFS order.
    pub(crate) fn insert(&mut self, r: Reservation) -> SlotId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = Slot {
            seq,
            reservation: r,
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(slot);
                id
            }
            None => {
                self.slots.push(Some(slot));
                SlotId::try_from(self.slots.len() - 1).expect("slab within u32 range")
            }
        };
        self.by_seq.insert(seq, id);
        self.by_end.entry(r.end.get()).or_default().push(id);
        self.by_id.entry(r.id).or_default().push(id);
        if r.end > r.start {
            self.add_steps(r.start.get(), r.end.get(), &r.request);
        } else {
            self.zero_len.insert(id);
        }
        id
    }

    fn detach_end(&mut self, key: u64, id: SlotId) {
        if let Some(ids) = self.by_end.get_mut(&key) {
            ids.retain(|&s| s != id);
            if ids.is_empty() {
                self.by_end.remove(&key);
            }
        }
    }

    fn remove_slot(&mut self, id: SlotId) {
        let slot = self.slots[id as usize].take().expect("live slot");
        let r = slot.reservation;
        self.by_seq.remove(&slot.seq);
        self.detach_end(r.end.get(), id);
        if let Some(ids) = self.by_id.get_mut(&r.id) {
            ids.retain(|&s| s != id);
            if ids.is_empty() {
                self.by_id.remove(&r.id);
            }
        }
        if r.end > r.start {
            self.remove_steps(r.start.get(), r.end.get(), &r.request);
        } else {
            self.zero_len.remove(&id);
        }
        self.free.push(id);
    }

    /// Removes every reservation owned by `job`.
    pub(crate) fn remove_job(&mut self, job: JobId) {
        for id in self.slots_of(job) {
            self.remove_slot(id);
        }
    }

    /// Truncates a reservation to `new_end`, keeping its FCFS position.
    pub(crate) fn update_end(&mut self, id: SlotId, new_end: Cycles) {
        let r = self.reservation(id);
        if new_end == r.end {
            return;
        }
        self.detach_end(r.end.get(), id);
        self.by_end.entry(new_end.get()).or_default().push(id);
        if r.end > r.start {
            self.remove_steps(r.start.get(), r.end.get(), &r.request);
        } else {
            self.zero_len.remove(&id);
        }
        if new_end > r.start {
            self.add_steps(r.start.get(), new_end.get(), &r.request);
        } else {
            self.zero_len.insert(id);
        }
        self.slots[id as usize]
            .as_mut()
            .expect("live slot")
            .reservation
            .end = new_end;
    }

    /// Drops every zero-length reservation (the old `retain(end > start)`).
    pub(crate) fn purge_zero_len(&mut self) {
        let ids: Vec<SlotId> = self.zero_len.iter().copied().collect();
        for id in ids {
            self.remove_slot(id);
        }
    }

    /// Drops every reservation with `end ≤ t` (the old `retain(end > t)`).
    pub(crate) fn purge_through(&mut self, t: Cycles) {
        let expired: Vec<SlotId> = self
            .by_end
            .range(..=t.get())
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect();
        for id in expired {
            self.remove_slot(id);
        }
    }

    /// Empties the table (capacity revocation rebuilds from scratch).
    pub(crate) fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.next_seq = 0;
        self.by_seq.clear();
        self.by_end.clear();
        self.by_id.clear();
        self.zero_len.clear();
        self.steps.clear();
    }

    /// Reserved usage at instant `t`: one ordered lookup in the step index.
    pub(crate) fn usage_at(&self, t: Cycles) -> ResourceRequest {
        self.steps
            .range(..=t.get())
            .next_back()
            .map_or_else(zero_usage, |(_, b)| b.usage)
    }

    /// Whether `request` fits on top of existing reservations at every
    /// instant of `[start, end)`: the segment covering `start` plus every
    /// change point strictly inside the window.
    pub(crate) fn fits_over(
        &self,
        request: &ResourceRequest,
        start: Cycles,
        end: Cycles,
        capacity: &ResourceRequest,
    ) -> bool {
        if end <= start {
            return true;
        }
        if !self.usage_at(start).plus(request).fits_within(capacity) {
            return false;
        }
        self.steps
            .range((Excluded(start.get()), Excluded(end.get())))
            .all(|(_, b)| b.usage.plus(request).fits_within(capacity))
    }

    /// Earliest `s ∈ [not_before, latest_start]` such that `request` fits
    /// over `[s, s+duration)`. Candidates are `not_before` and reservation
    /// end points after it, streamed in ascending order.
    pub(crate) fn earliest_start(
        &self,
        request: &ResourceRequest,
        duration: Cycles,
        not_before: Cycles,
        latest_start: Cycles,
        capacity: &ResourceRequest,
    ) -> Option<Cycles> {
        if not_before <= latest_start
            && self.fits_over(request, not_before, not_before + duration, capacity)
        {
            return Some(not_before);
        }
        for &end in self
            .by_end
            .range((Excluded(not_before.get()), Unbounded))
            .map(|(k, _)| k)
        {
            let s = Cycles::new(end);
            if s > latest_start {
                break;
            }
            if self.fits_over(request, s, s + duration, capacity) {
                return Some(s);
            }
        }
        None
    }

    fn ensure_boundary(&mut self, at: u64) {
        if self.steps.contains_key(&at) {
            return;
        }
        // A fresh boundary splits an existing segment: it inherits the
        // usage of the segment it lands in.
        let usage = self
            .steps
            .range(..at)
            .next_back()
            .map_or_else(zero_usage, |(_, b)| b.usage);
        self.steps.insert(at, Boundary { usage, refs: 0 });
    }

    fn add_steps(&mut self, start: u64, end: u64, request: &ResourceRequest) {
        debug_assert!(start < end);
        self.ensure_boundary(start);
        self.ensure_boundary(end);
        for (_, b) in self.steps.range_mut(start..end) {
            b.usage = b.usage.plus(request);
        }
        self.steps.get_mut(&start).expect("boundary").refs += 1;
        self.steps.get_mut(&end).expect("boundary").refs += 1;
    }

    fn remove_steps(&mut self, start: u64, end: u64, request: &ResourceRequest) {
        debug_assert!(start < end);
        for (_, b) in self.steps.range_mut(start..end) {
            // Exact, not merely saturating: this reservation's request was
            // added to every segment in the range and nothing else touched
            // its contribution since.
            b.usage = b.usage.minus(request);
        }
        for key in [start, end] {
            let b = self.steps.get_mut(&key).expect("boundary");
            b.refs -= 1;
            if b.refs == 0 {
                self.steps.remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::ExecutionMode;

    fn res(id: u32, start: u64, end: u64, cores: u32, ways: u16) -> Reservation {
        Reservation {
            id: JobId::new(id),
            start: Cycles::new(start),
            end: Cycles::new(end),
            request: ResourceRequest::new(cores, Ways::new(ways)),
            mode: ExecutionMode::Strict,
            deadline: None,
        }
    }

    /// Brute-force mirror of the original `Vec<Reservation>` queries.
    struct BruteForce(Vec<Reservation>);

    impl BruteForce {
        fn usage_at(&self, t: Cycles) -> ResourceRequest {
            self.0
                .iter()
                .filter(|r| r.start <= t && t < r.end)
                .fold(zero_usage(), |acc, r| acc.plus(&r.request))
        }

        fn fits_during(
            &self,
            request: &ResourceRequest,
            start: Cycles,
            end: Cycles,
            capacity: &ResourceRequest,
        ) -> bool {
            if end <= start {
                return true;
            }
            let mut points = vec![start];
            for r in &self.0 {
                if r.start > start && r.start < end {
                    points.push(r.start);
                }
            }
            points
                .iter()
                .all(|&p| self.usage_at(p).plus(request).fits_within(capacity))
        }

        fn earliest_start(
            &self,
            request: &ResourceRequest,
            duration: Cycles,
            not_before: Cycles,
            latest_start: Cycles,
            capacity: &ResourceRequest,
        ) -> Option<Cycles> {
            let mut candidates = vec![not_before];
            for r in &self.0 {
                if r.end > not_before {
                    candidates.push(r.end);
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
            candidates
                .into_iter()
                .filter(|&s| s <= latest_start)
                .find(|&s| self.fits_during(request, s, s + duration, capacity))
        }
    }

    /// Tiny deterministic LCG so the comparison sweep needs no RNG crate.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self, bound: u64) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (self.0 >> 33) % bound.max(1)
        }
    }

    #[test]
    fn queries_match_the_brute_force_across_mutation_sequences() {
        let capacity = ResourceRequest::new(4, Ways::new(16)).with_bandwidth(100);
        for seed in 0..24u64 {
            let mut rng = Lcg(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
            let mut table = ReservationTable::default();
            let mut model: Vec<Reservation> = Vec::new();
            for step in 0..60u32 {
                match rng.next(10) {
                    // Insert (zero-length ~10% of the time via dur == 0).
                    0..=5 => {
                        let start = rng.next(500);
                        let dur = rng.next(120).saturating_sub(10);
                        let r = res(
                            step,
                            start,
                            start + dur,
                            rng.next(3) as u32,
                            rng.next(9) as u16,
                        );
                        table.insert(r);
                        model.push(r);
                    }
                    6 => {
                        let job = JobId::new(rng.next(u64::from(step.max(1))) as u32);
                        table.remove_job(job);
                        model.retain(|r| r.id != job);
                    }
                    7 => {
                        let t = Cycles::new(rng.next(600));
                        table.purge_through(t);
                        model.retain(|r| r.end > t);
                    }
                    8 => {
                        // Truncate one job's reservations to `at`, then
                        // purge zero-length, exactly like `Lac::release`.
                        let job = JobId::new(rng.next(u64::from(step.max(1))) as u32);
                        let at = Cycles::new(rng.next(600));
                        for id in table.slots_of(job) {
                            let r = table.reservation(id);
                            if r.end > at {
                                table.update_end(id, r.end.min(at.max(r.start)));
                            }
                        }
                        for r in &mut model {
                            if r.id == job && r.end > at {
                                r.end = r.end.min(at.max(r.start));
                            }
                        }
                        table.purge_zero_len();
                        model.retain(|r| r.end > r.start);
                    }
                    _ => {}
                }
                let brute = BruteForce(model.clone());
                assert_eq!(table.to_vec(), model, "seed {seed} step {step}: order");
                for t in [0, 1, 99, 100, 250, 499, 700] {
                    assert_eq!(
                        table.usage_at(Cycles::new(t)),
                        brute.usage_at(Cycles::new(t)),
                        "seed {seed} step {step}: usage at {t}"
                    );
                }
                let probe = ResourceRequest::new(1, Ways::new(5));
                for (s, e) in [(0, 50), (40, 200), (100, 101), (480, 700), (10, 10)] {
                    assert_eq!(
                        table.fits_over(&probe, Cycles::new(s), Cycles::new(e), &capacity),
                        brute.fits_during(&probe, Cycles::new(s), Cycles::new(e), &capacity),
                        "seed {seed} step {step}: fits over [{s}, {e})"
                    );
                }
                for (nb, ls) in [(0, 1_000), (50, 400), (200, 199), (0, 0)] {
                    assert_eq!(
                        table.earliest_start(
                            &probe,
                            Cycles::new(75),
                            Cycles::new(nb),
                            Cycles::new(ls),
                            &capacity,
                        ),
                        brute.earliest_start(
                            &probe,
                            Cycles::new(75),
                            Cycles::new(nb),
                            Cycles::new(ls),
                            &capacity,
                        ),
                        "seed {seed} step {step}: earliest start [{nb}, {ls}]"
                    );
                }
            }
        }
    }

    #[test]
    fn step_index_collapses_when_reservations_leave() {
        let mut table = ReservationTable::default();
        table.insert(res(0, 0, 100, 1, 4));
        table.insert(res(1, 50, 150, 1, 4));
        assert!(!table.steps.is_empty());
        table.remove_job(JobId::new(0));
        table.remove_job(JobId::new(1));
        assert!(table.steps.is_empty(), "boundaries must refcount to zero");
        assert_eq!(table.len(), 0);
        assert_eq!(table.usage_at(Cycles::new(75)), zero_usage());
    }

    #[test]
    fn slab_reuses_freed_slots_and_keeps_fcfs_order() {
        let mut table = ReservationTable::default();
        table.insert(res(0, 0, 10, 1, 1));
        table.insert(res(1, 0, 20, 1, 1));
        table.remove_job(JobId::new(0));
        // The freed slot is reused, but FCFS order is by seq, not slot id.
        table.insert(res(2, 0, 30, 1, 1));
        assert_eq!(table.slots.len(), 2);
        let ids: Vec<u32> = table.iter_fcfs().map(|r| r.id.index()).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn zero_length_reservations_index_but_do_not_occupy() {
        let capacity = ResourceRequest::new(4, Ways::new(16));
        let mut table = ReservationTable::default();
        table.insert(res(0, 40, 40, 4, 16));
        // No usage anywhere...
        assert_eq!(table.usage_at(Cycles::new(40)), zero_usage());
        // ...but its end point is still an earliest-start candidate.
        let probe = ResourceRequest::new(1, Ways::new(1));
        assert_eq!(
            table.earliest_start(
                &probe,
                Cycles::new(10),
                Cycles::new(0),
                Cycles::new(1_000),
                &capacity,
            ),
            Some(Cycles::new(0))
        );
        table.purge_zero_len();
        assert_eq!(table.len(), 0);
    }
}
