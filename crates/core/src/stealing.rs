//! The resource-stealing controller (Section 4 of the paper).
//!
//! While an `Elastic(X)` job runs, the controller removes one L2 way per
//! repartitioning interval (the paper uses 2M retired instructions of the
//! Elastic job) and donates it to Opportunistic jobs. A sampled duplicate
//! tag array ([`cmpqos_cache::DuplicateTagMonitor`]) tracks the misses the
//! job *would* have had at its original allocation; if the cumulative main
//! misses reach or exceed `X%` above that, stealing is **cancelled** and all
//! stolen ways return to the job. Stealing also pauses while the memory bus
//! is saturated (footnote 2: beyond saturation, queueing delay stops being
//! roughly constant, so the miss-rate guard would no longer bound slowdown).

use cmpqos_cache::DuplicateTagMonitor;
use cmpqos_types::{Cycles, Instructions, JobId, Percent, Ways};

/// Stealing parameters.
///
/// Construct with [`StealingConfig::default`] or the
/// [`StealingConfig::builder`]; the struct is `#[non_exhaustive]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct StealingConfig {
    /// Repartitioning interval, in retired instructions of the Elastic job
    /// (paper: 2,000,000).
    pub interval: Instructions,
    /// Minimum allocation stealing may leave the job (at least one way).
    pub min_ways: Ways,
    /// Bus-utilization threshold above which stealing pauses.
    pub bus_saturation_threshold: f64,
}

impl Default for StealingConfig {
    fn default() -> Self {
        Self {
            interval: Instructions::new(2_000_000),
            min_ways: Ways::new(1),
            bus_saturation_threshold: 0.9,
        }
    }
}

impl StealingConfig {
    /// A fluent builder starting from the paper defaults.
    #[must_use]
    pub fn builder() -> StealingConfigBuilder {
        StealingConfigBuilder {
            config: StealingConfig::default(),
        }
    }
}

/// Fluent builder for [`StealingConfig`].
#[derive(Debug, Clone)]
pub struct StealingConfigBuilder {
    config: StealingConfig,
}

impl StealingConfigBuilder {
    /// Sets the repartitioning interval (retired instructions).
    #[must_use]
    pub fn interval(mut self, interval: Instructions) -> Self {
        self.config.interval = interval;
        self
    }

    /// Sets the minimum allocation stealing may leave the job.
    #[must_use]
    pub fn min_ways(mut self, min_ways: Ways) -> Self {
        self.config.min_ways = min_ways;
        self
    }

    /// Sets the bus-utilization threshold above which stealing pauses.
    #[must_use]
    pub fn bus_saturation_threshold(mut self, threshold: f64) -> Self {
        self.config.bus_saturation_threshold = threshold;
        self
    }

    /// Finishes the configuration.
    #[must_use]
    pub fn build(self) -> StealingConfig {
        self.config
    }
}

/// What the controller wants done at an interval boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealingAction {
    /// Remove one more way from the Elastic job and donate it.
    StealOne,
    /// Guard tripped: return *all* stolen ways to the job and stop stealing
    /// permanently (for this job).
    Cancel {
        /// Ways to give back.
        returned: Ways,
    },
    /// Do nothing this interval (floor reached, bus saturated, or already
    /// cancelled).
    Hold,
}

/// Per-Elastic-job stealing state machine.
///
/// # Examples
///
/// ```
/// use cmpqos_core::{StealingConfig, StealingController};
/// use cmpqos_types::{Percent, Ways};
///
/// let ctl = StealingController::new(Percent::new(5.0), Ways::new(7), StealingConfig::default());
/// assert_eq!(ctl.current_ways(), Ways::new(7));
/// assert_eq!(ctl.stolen(), Ways::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct StealingController {
    config: StealingConfig,
    slack: Percent,
    original: Ways,
    stolen: Ways,
    max_stolen: Ways,
    cancelled: bool,
    intervals_seen: u64,
    last_fire_retired: u64,
}

impl StealingController {
    /// Creates a controller for a job with `slack` (the `X` of Elastic(X))
    /// and an original allocation of `original` ways.
    #[must_use]
    pub fn new(slack: Percent, original: Ways, config: StealingConfig) -> Self {
        Self {
            config,
            slack,
            original,
            stolen: Ways::ZERO,
            max_stolen: Ways::ZERO,
            cancelled: false,
            intervals_seen: 0,
            last_fire_retired: 0,
        }
    }

    /// The job's slack.
    #[must_use]
    pub fn slack(&self) -> Percent {
        self.slack
    }

    /// The repartitioning interval currently in force.
    #[must_use]
    pub fn interval(&self) -> Instructions {
        self.config.interval
    }

    /// Retunes the guard's slack threshold in place, returning the
    /// previous value. This is the adaptive control plane's "stealing
    /// aggressiveness" actuator: a lower threshold makes the guard trip
    /// (and return stolen ways) sooner; setting it to zero makes the next
    /// [`StealingController::decide`] return everything. Raising it back
    /// up un-does nothing retroactively — a cancelled controller stays
    /// cancelled.
    pub fn set_slack(&mut self, slack: Percent) -> Percent {
        std::mem::replace(&mut self.slack, slack)
    }

    /// Retunes the repartitioning interval in place, returning the
    /// previous value. A longer interval slows the steal cadence without
    /// touching the guard. Boundary detection keys on
    /// `retired / interval`, so stretching the interval naturally pauses
    /// the cadence until the job retires into the new, coarser grid.
    pub fn set_interval(&mut self, interval: Instructions) -> Instructions {
        std::mem::replace(&mut self.config.interval, interval)
    }

    /// The original allocation.
    #[must_use]
    pub fn original_ways(&self) -> Ways {
        self.original
    }

    /// Ways currently stolen from the job.
    #[must_use]
    pub fn stolen(&self) -> Ways {
        self.stolen
    }

    /// The most ways that were ever stolen at once (stolen ways return on
    /// cancellation, so this is the figure-of-merit for how much capacity
    /// the job donated).
    #[must_use]
    pub fn max_stolen(&self) -> Ways {
        self.max_stolen
    }

    /// The job's current allocation (`original − stolen`).
    #[must_use]
    pub fn current_ways(&self) -> Ways {
        self.original - self.stolen
    }

    /// Whether the guard has permanently cancelled stealing.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Intervals processed so far.
    #[must_use]
    pub fn intervals_seen(&self) -> u64 {
        self.intervals_seen
    }

    /// Returns `true` when `retired` (the job's cumulative retired
    /// instructions) has crossed into a new repartitioning interval since
    /// the last call that returned `true`.
    pub fn interval_due(&mut self, retired: Instructions) -> bool {
        // The grid is recomputed from the retired count at the last fire so
        // that a retuned interval re-grids from where the job actually is;
        // keying on a stored grid index would leave the boundary stranded in
        // the old grid's units after `set_interval` stretches the cadence.
        let interval = self.config.interval.get().max(1);
        if retired.get() / interval > self.last_fire_retired / interval {
            self.last_fire_retired = retired.get();
            true
        } else {
            false
        }
    }

    /// Decides the action for one interval boundary given the duplicate-tag
    /// monitor and the current bus utilization.
    pub fn decide(
        &mut self,
        monitor: &DuplicateTagMonitor,
        bus_utilization: f64,
    ) -> StealingAction {
        self.intervals_seen += 1;
        if self.cancelled {
            return StealingAction::Hold;
        }
        if self.slack.fraction() <= 0.0 {
            // Elastic(0) tolerates no slowdown at all, and the guard is
            // reactive — it can only trip *after* extra misses were already
            // inflicted. The only allocation consistent with X = 0 is to
            // never start stealing (and never emit a stealing event), which
            // also makes an X = 0 run byte-identical to one with stealing
            // disabled. When the adaptive control plane *cuts* a running
            // donor's slack to zero, though, ways may already be out — the
            // only X = 0-consistent state is to take them all back.
            if self.stolen > Ways::ZERO {
                self.cancelled = true;
                let returned = self.stolen;
                self.stolen = Ways::ZERO;
                return StealingAction::Cancel { returned };
            }
            return StealingAction::Hold;
        }
        if monitor.exceeded(self.slack) {
            self.cancelled = true;
            let returned = self.stolen;
            self.stolen = Ways::ZERO;
            return StealingAction::Cancel { returned };
        }
        if bus_utilization >= self.config.bus_saturation_threshold {
            return StealingAction::Hold;
        }
        if self.current_ways() > self.config.min_ways {
            self.stolen += Ways::new(1);
            self.max_stolen = self.max_stolen.max(self.stolen);
            StealingAction::StealOne
        } else {
            StealingAction::Hold
        }
    }

    /// [`StealingController::decide`], additionally emitting
    /// `StealTaken`/`GuardTripped`/`StealReturned` for `job` to `recorder`
    /// at cycle `now`.
    pub fn decide_recorded(
        &mut self,
        monitor: &DuplicateTagMonitor,
        bus_utilization: f64,
        job: JobId,
        now: Cycles,
        recorder: &mut dyn cmpqos_obs::Recorder,
    ) -> StealingAction {
        // A Cancel can only come from the guard, but capture the condition
        // before `decide` mutates state so the attribution stays honest.
        let guard_trips =
            !self.cancelled && self.slack.fraction() > 0.0 && monitor.exceeded(self.slack);
        let action = self.decide(monitor, bus_utilization);
        if recorder.enabled() {
            match action {
                StealingAction::StealOne => recorder.record(
                    now,
                    cmpqos_obs::Event::StealTaken {
                        job,
                        stolen_total: self.stolen,
                    },
                ),
                StealingAction::Cancel { returned } => {
                    if guard_trips {
                        recorder.record(
                            now,
                            cmpqos_obs::Event::GuardTripped {
                                job,
                                miss_increase: monitor.miss_increase(),
                            },
                        );
                    }
                    recorder.record(now, cmpqos_obs::Event::StealReturned { job, returned });
                }
                StealingAction::Hold => {}
            }
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_monitor() -> DuplicateTagMonitor {
        // No traffic: never exceeds.
        DuplicateTagMonitor::new(Ways::new(7), 64, 8)
    }

    fn tripped_monitor(slack_needed: f64) -> DuplicateTagMonitor {
        let mut m = DuplicateTagMonitor::new(Ways::new(1), 64, 8);
        // Build shadow misses, then extra main misses on shadow hits.
        for i in 0..100u64 {
            m.observe(0, i, false);
        }
        let extra = (100.0 * slack_needed).ceil() as u64;
        for _ in 0..extra {
            m.observe(0, 99, false);
        }
        m
    }

    #[test]
    fn steals_one_way_per_interval_down_to_floor() {
        let mut ctl =
            StealingController::new(Percent::new(5.0), Ways::new(3), StealingConfig::default());
        let m = quiet_monitor();
        assert_eq!(ctl.decide(&m, 0.0), StealingAction::StealOne);
        assert_eq!(ctl.current_ways(), Ways::new(2));
        assert_eq!(ctl.decide(&m, 0.0), StealingAction::StealOne);
        assert_eq!(ctl.current_ways(), Ways::new(1));
        // Floor reached.
        assert_eq!(ctl.decide(&m, 0.0), StealingAction::Hold);
        assert_eq!(ctl.current_ways(), Ways::new(1));
    }

    #[test]
    fn guard_trip_returns_all_stolen_ways() {
        let mut ctl =
            StealingController::new(Percent::new(5.0), Ways::new(7), StealingConfig::default());
        let quiet = quiet_monitor();
        for _ in 0..3 {
            ctl.decide(&quiet, 0.0);
        }
        assert_eq!(ctl.stolen(), Ways::new(3));
        let tripped = tripped_monitor(0.10);
        assert_eq!(
            ctl.decide(&tripped, 0.0),
            StealingAction::Cancel {
                returned: Ways::new(3)
            }
        );
        assert!(ctl.is_cancelled());
        assert_eq!(ctl.current_ways(), Ways::new(7));
        // Permanently off.
        assert_eq!(ctl.decide(&quiet, 0.0), StealingAction::Hold);
    }

    #[test]
    fn zero_slack_never_steals_and_never_trips() {
        let mut ctl =
            StealingController::new(Percent::ZERO, Ways::new(7), StealingConfig::default());
        let quiet = quiet_monitor();
        // Even a monitor with main > shadow (which `exceeded(0%)` flags)
        // must produce no Cancel: with X = 0 nothing was ever stolen, so
        // there is nothing to return and no event to emit.
        let noisy = tripped_monitor(0.01);
        for _ in 0..5 {
            assert_eq!(ctl.decide(&quiet, 0.0), StealingAction::Hold);
            assert_eq!(ctl.decide(&noisy, 0.0), StealingAction::Hold);
        }
        assert_eq!(ctl.stolen(), Ways::ZERO);
        assert!(!ctl.is_cancelled());

        // And the recorded variant emits nothing at all.
        use cmpqos_obs::RingBufferRecorder;
        use cmpqos_types::{Cycles, JobId};
        let mut rec = RingBufferRecorder::new(16);
        assert_eq!(
            ctl.decide_recorded(&noisy, 0.0, JobId::new(1), Cycles::new(5), &mut rec),
            StealingAction::Hold
        );
        assert!(rec.to_vec().is_empty());
    }

    #[test]
    fn bus_saturation_pauses_stealing() {
        let mut ctl =
            StealingController::new(Percent::new(5.0), Ways::new(7), StealingConfig::default());
        let m = quiet_monitor();
        assert_eq!(ctl.decide(&m, 0.95), StealingAction::Hold);
        assert_eq!(ctl.stolen(), Ways::ZERO);
        // Bus cleared: stealing resumes.
        assert_eq!(ctl.decide(&m, 0.2), StealingAction::StealOne);
    }

    #[test]
    fn interval_detection() {
        let mut ctl = StealingController::new(
            Percent::new(5.0),
            Ways::new(7),
            StealingConfig {
                interval: Instructions::new(1000),
                ..StealingConfig::default()
            },
        );
        assert!(!ctl.interval_due(Instructions::new(500)));
        assert!(ctl.interval_due(Instructions::new(1000)));
        assert!(!ctl.interval_due(Instructions::new(1500)));
        assert!(ctl.interval_due(Instructions::new(2100)));
        // Skipping multiple intervals still fires once.
        assert!(ctl.interval_due(Instructions::new(9000)));
        assert!(!ctl.interval_due(Instructions::new(9000)));
    }

    #[test]
    fn retuned_interval_regrids_from_the_current_position() {
        let mut ctl = StealingController::new(
            Percent::new(5.0),
            Ways::new(7),
            StealingConfig {
                interval: Instructions::new(1000),
                ..StealingConfig::default()
            },
        );
        // Fire a few fine-grained boundaries first.
        assert!(ctl.interval_due(Instructions::new(1000)));
        assert!(ctl.interval_due(Instructions::new(2000)));
        assert!(ctl.interval_due(Instructions::new(30_000)));
        // Stretch the cadence. The next boundary must be one *new*-sized
        // interval ahead of where the job already is, not a translation of
        // the old grid index (30 × 5000 = 150,000 would strand the cadence
        // past the end of most jobs).
        ctl.set_interval(Instructions::new(5000));
        assert!(!ctl.interval_due(Instructions::new(31_000)));
        assert!(ctl.interval_due(Instructions::new(35_000)));
        // Shrinking re-grids the same way.
        ctl.set_interval(Instructions::new(100));
        assert!(ctl.interval_due(Instructions::new(35_150)));
    }

    #[test]
    fn builder_overrides_fields() {
        let cfg = StealingConfig::builder()
            .interval(Instructions::new(1000))
            .min_ways(Ways::new(2))
            .bus_saturation_threshold(0.5)
            .build();
        assert_eq!(cfg.interval, Instructions::new(1000));
        assert_eq!(cfg.min_ways, Ways::new(2));
        assert_eq!(cfg.bus_saturation_threshold, 0.5);
        assert_eq!(StealingConfig::builder().build(), StealingConfig::default());
    }

    #[test]
    fn recorded_decisions_emit_steal_and_guard_events() {
        use cmpqos_obs::{Event, RingBufferRecorder};
        use cmpqos_types::{Cycles, JobId};

        let mut ctl =
            StealingController::new(Percent::new(5.0), Ways::new(7), StealingConfig::default());
        let mut rec = RingBufferRecorder::new(16);
        let job = JobId::new(3);
        let quiet = quiet_monitor();
        assert_eq!(
            ctl.decide_recorded(&quiet, 0.0, job, Cycles::new(10), &mut rec),
            StealingAction::StealOne
        );
        // Bus saturation holds silently.
        assert_eq!(
            ctl.decide_recorded(&quiet, 0.95, job, Cycles::new(20), &mut rec),
            StealingAction::Hold
        );
        let tripped = tripped_monitor(0.10);
        assert!(matches!(
            ctl.decide_recorded(&tripped, 0.0, job, Cycles::new(30), &mut rec),
            StealingAction::Cancel { .. }
        ));
        let events: Vec<Event> = rec.to_vec().into_iter().map(|r| r.event).collect();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0],
            Event::StealTaken {
                job,
                stolen_total: Ways::new(1),
            }
        );
        assert!(matches!(events[1], Event::GuardTripped { .. }));
        assert_eq!(
            events[2],
            Event::StealReturned {
                job,
                returned: Ways::new(1),
            }
        );
        assert_eq!(rec.counters().guard_trips, 1);
    }

    #[test]
    fn slack_cut_to_zero_returns_stolen_ways() {
        let mut ctl =
            StealingController::new(Percent::new(20.0), Ways::new(7), StealingConfig::default());
        let quiet = quiet_monitor();
        for _ in 0..2 {
            assert_eq!(ctl.decide(&quiet, 0.0), StealingAction::StealOne);
        }
        assert_eq!(ctl.set_slack(Percent::ZERO), Percent::new(20.0));
        assert_eq!(
            ctl.decide(&quiet, 0.0),
            StealingAction::Cancel {
                returned: Ways::new(2)
            }
        );
        assert!(ctl.is_cancelled());
        assert_eq!(ctl.current_ways(), Ways::new(7));
    }

    #[test]
    fn interval_stretch_pauses_the_cadence() {
        let mut ctl = StealingController::new(
            Percent::new(5.0),
            Ways::new(7),
            StealingConfig {
                interval: Instructions::new(1000),
                ..StealingConfig::default()
            },
        );
        assert!(ctl.interval_due(Instructions::new(1000)));
        assert_eq!(
            ctl.set_interval(Instructions::new(4000)),
            Instructions::new(1000)
        );
        assert_eq!(ctl.interval(), Instructions::new(4000));
        // 2000 retired is boundary 0 of the coarser grid: no fire until the
        // job retires past the next coarse boundary.
        assert!(!ctl.interval_due(Instructions::new(2000)));
        assert!(!ctl.interval_due(Instructions::new(3999)));
        assert!(ctl.interval_due(Instructions::new(8000)));
    }

    #[test]
    fn larger_slack_tolerates_more_miss_increase() {
        let mut tight =
            StealingController::new(Percent::new(2.0), Ways::new(7), StealingConfig::default());
        let mut loose =
            StealingController::new(Percent::new(20.0), Ways::new(7), StealingConfig::default());
        let m = tripped_monitor(0.10); // ~10% increase
        assert!(matches!(
            tight.decide(&m, 0.0),
            StealingAction::Cancel { .. }
        ));
        assert_eq!(loose.decide(&m, 0.0), StealingAction::StealOne);
    }
}
