//! The GAC↔LAC control plane as a request/reply protocol over a
//! message network.
//!
//! The in-process [`GlobalAdmissionController`](crate::gac) calls its LACs
//! as plain methods; this module re-expresses the same conversations as
//! typed messages over a [`Transport`] (usually a seeded
//! [`cmpqos_net::SimNet`]), so partitions, drops, duplicates, and reorder
//! become first-class failure modes of admission control itself:
//!
//! * [`NetRequest`]/[`NetReply`] — the wire protocol: probe, readmit,
//!   revoke, occupancy summary, and reconciliation, each carrying a
//!   monotonic per-node sequence number, the GAC's per-node *epoch*, and
//!   the logical cycle the conversation was opened at.
//! * [`LacEndpoint`] — the node side: delivers requests to a
//!   [`LacBackend`] exactly once and in sequence order, buffering
//!   reordered frames and re-acknowledging duplicates from a bounded
//!   reply cache. A higher epoch resynchronizes the expected sequence, so
//!   a conversation the GAC abandoned (its request lost forever) can
//!   never deadlock the stream.
//! * [`NetGac`] — the GAC side: a task queue (place / readmit / revoke /
//!   reconcile / ping) driven one conversation at a time per the
//!   failure-detector state machine. Lost replies are retried with the
//!   same sequence number (idempotent by the endpoint's cache); a
//!   conversation that exhausts its retries bumps the node's epoch — any
//!   straggler reply is then *stale* and discarded — and flags the node
//!   for reconciliation.
//! * **Unreachable is not dead.** Retry exhaustion demotes a node to
//!   [`NodeHealth::Suspect`]: placements pause, nothing is evacuated.
//!   Only when the node has also been silent for
//!   [`GacConfig::dead_timeout`] is it declared [`NodeHealth::Dead`] and
//!   its reservations migrated. A partitioned LAC keeps honoring its
//!   reservations; evacuating them would double-book the jobs.
//! * **Reconciliation.** After the GAC gives up on any conversation with
//!   side effects, the node may hold *orphan* reservations (it admitted,
//!   the accept reply was lost). On the next successful contact the GAC
//!   sends its view of the node's placements; the endpoint revokes
//!   orphans, reports what it still holds, and the GAC re-places
//!   anything the node lost.
//! * [`Cluster`] — the harness: GAC + endpoints + network, advanced
//!   event-to-event so a run is a deterministic function of
//!   `(seed, submissions, faults)`.

use crate::gac::{GacConfig, MemberState, NodeHealth, ProbePolicy};
use crate::lac::{Decision, Lac, RejectReason, Reservation};
use crate::request::AdmissionRequest;
use cmpqos_faults::{Fault, Injection};
use cmpqos_net::{Addr, LinkConfig, SimNet, Transport};
use cmpqos_obs::{Event, Recorder};
use cmpqos_types::{Cycles, JobId, NodeId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The node-side admission state machine a [`LacEndpoint`] drives.
///
/// [`Lac`] implements it directly; `cmpqos-recovery`'s journaled LAC
/// implements it with write-ahead logging, so a reconciliation after a
/// crash-restart diffs against the journal-recovered table.
pub trait LacBackend {
    /// The backend's clock.
    fn now(&self) -> Cycles;
    /// Advances the clock (never backwards), completing due reservations.
    fn advance(&mut self, now: Cycles);
    /// FCFS admission test.
    fn admit(&mut self, req: &AdmissionRequest) -> Decision;
    /// Re-admission of a migrated reservation.
    fn readmit(&mut self, r: &Reservation) -> Decision;
    /// Cancels a reservation (idempotent: unknown ids are a no-op).
    fn cancel(&mut self, id: JobId);
    /// The current reservation table.
    fn reservations(&self) -> Vec<Reservation>;
}

impl LacBackend for Lac {
    fn now(&self) -> Cycles {
        Lac::now(self)
    }

    fn advance(&mut self, now: Cycles) {
        Lac::advance(self, now);
    }

    fn admit(&mut self, req: &AdmissionRequest) -> Decision {
        Lac::admit(self, req)
    }

    fn readmit(&mut self, r: &Reservation) -> Decision {
        Lac::readmit(self, r)
    }

    fn cancel(&mut self, id: JobId) {
        Lac::cancel(self, id);
    }

    fn reservations(&self) -> Vec<Reservation> {
        Lac::reservations(self)
    }
}

/// What the GAC asks a node.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Admission probe for a new job.
    Probe(AdmissionRequest),
    /// Re-admission of a reservation evacuated from another node.
    Readmit(Reservation),
    /// Cancel the job's reservation.
    Revoke {
        /// The job to cancel.
        job: JobId,
    },
    /// Occupancy summary (also the failure detector's ping).
    Summary,
    /// Reconciliation: `placed` is every job the GAC believes is placed
    /// on this node. The endpoint revokes *orphans* (held but not in
    /// `placed`) and reports what it still holds.
    Reconcile {
        /// The GAC's view of this node's placements.
        placed: Vec<JobId>,
    },
    /// Per-node liveness beacon; the ack renews every lease the GAC
    /// holds for this node's placements.
    Heartbeat,
    /// Join announce: the opening of a new node's membership handshake
    /// (the epoch travels in the frame header like every request).
    Join,
    /// Drain request: release every reservation so the node can leave
    /// gracefully. Idempotent — a retransmitted drain releases nothing
    /// further and re-acks.
    Drain,
}

impl RequestBody {
    /// Whether giving up on this conversation can leave the node's table
    /// out of sync with the GAC's (and therefore requires reconciliation
    /// on the next successful contact). Summary, heartbeat, and join are
    /// side-effect free; a drain mutates the node's table.
    #[must_use]
    pub fn needs_reconcile_on_give_up(&self) -> bool {
        !matches!(
            self,
            RequestBody::Summary | RequestBody::Heartbeat | RequestBody::Join
        )
    }
}

/// What a node answers.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// The admission decision for a probe or readmit.
    Decision(Decision),
    /// The revoke was applied.
    Revoked {
        /// The cancelled job.
        job: JobId,
        /// Whether the node still held the reservation.
        held: bool,
    },
    /// The occupancy summary.
    Summary {
        /// Reservations currently held.
        held: u32,
        /// The node's clock.
        now: Cycles,
    },
    /// The reconciliation outcome.
    Reconcile {
        /// Orphan reservations the endpoint revoked (held locally but
        /// unknown to the GAC — their accept replies were lost).
        orphans_revoked: Vec<JobId>,
        /// Jobs from the GAC's `placed` list the node still holds.
        held: Vec<JobId>,
        /// The node's clock, so the GAC can tell "completed naturally"
        /// from "lost" for placements the node no longer holds.
        now: Cycles,
    },
    /// The heartbeat answer.
    HeartbeatAck {
        /// Reservations currently held.
        held: u32,
        /// The node's clock.
        now: Cycles,
    },
    /// The join handshake completed on the node side.
    JoinAck {
        /// The node's clock.
        now: Cycles,
    },
    /// The drain was applied.
    DrainAck {
        /// Reservations the node released (empty on a retransmission).
        released: Vec<JobId>,
        /// The node's clock, so the GAC can tell which released
        /// reservations had already run to completion.
        now: Cycles,
    },
}

/// One GAC→node request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct NetRequest {
    /// Per-node monotonic sequence number. Retransmissions reuse it, so
    /// the endpoint can re-acknowledge duplicates without re-executing.
    pub seq: u64,
    /// The GAC's epoch for this node; bumped when the GAC abandons a
    /// conversation, making every straggler from before the bump stale.
    pub epoch: u64,
    /// Logical cycle the conversation was opened at. The endpoint
    /// advances its backend to this stamp before deciding, so the
    /// decision depends on the conversation's logical time, not on how
    /// long the network sat on the frame.
    pub at: Cycles,
    /// The question.
    pub body: RequestBody,
}

/// One node→GAC reply frame (echoes `seq` and `epoch`).
#[derive(Debug, Clone, PartialEq)]
pub struct NetReply {
    /// The request's sequence number.
    pub seq: u64,
    /// The request's epoch.
    pub epoch: u64,
    /// The answer.
    pub body: ReplyBody,
}

/// Everything that travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Wire {
    /// GAC → node.
    Request(NetRequest),
    /// Node → GAC.
    Reply(NetReply),
}

/// How many replies an endpoint remembers for duplicate re-acknowledgment.
const REPLY_CACHE: usize = 512;

/// The node side of the protocol: exactly-once, in-order delivery of
/// requests to a [`LacBackend`] over an at-most-once lossy network.
#[derive(Debug)]
pub struct LacEndpoint<B> {
    backend: B,
    epoch: u64,
    next_seq: u64,
    pending: BTreeMap<u64, NetRequest>,
    replies: BTreeMap<u64, NetReply>,
    processed: u64,
    duplicates: u64,
    stale: u64,
}

impl<B: LacBackend> LacEndpoint<B> {
    /// Wraps a backend. The first expected sequence number is 0.
    #[must_use]
    pub fn new(backend: B) -> Self {
        Self {
            backend,
            epoch: 0,
            next_seq: 0,
            pending: BTreeMap::new(),
            replies: BTreeMap::new(),
            processed: 0,
            duplicates: 0,
            stale: 0,
        }
    }

    /// The wrapped backend.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Restarts the endpoint process: every piece of protocol state —
    /// epoch, expected sequence, buffered frames, reply cache, counters —
    /// is gone, but the backend (the journal-recovered reservation table)
    /// survives. The GAC bumps its epoch on restart, so the first frame
    /// the fresh endpoint sees resynchronizes it.
    pub fn reset(&mut self) {
        self.epoch = 0;
        self.next_seq = 0;
        self.pending.clear();
        self.replies.clear();
        self.processed = 0;
        self.duplicates = 0;
        self.stale = 0;
    }

    /// Requests executed exactly once.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Duplicate frames answered from the reply cache.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Frames from an abandoned epoch that were ignored.
    #[must_use]
    pub fn stale(&self) -> u64 {
        self.stale
    }

    /// Handles one delivered request frame, returning every reply that
    /// becomes sendable (a reordered frame can unblock buffered
    /// successors, so one delivery may release several replies).
    ///
    /// * `seq` already processed → the cached reply is re-sent verbatim;
    ///   the backend is **not** consulted again (idempotency).
    /// * `seq` ahead of the expected one (same epoch) → buffered until
    ///   the gap fills.
    /// * A *higher* epoch resynchronizes: the expected sequence jumps to
    ///   the frame's, because the GAC only bumps the epoch after
    ///   abandoning everything it sent before it.
    /// * A *lower* epoch is stale: answered from cache if possible,
    ///   otherwise dropped.
    pub fn handle(&mut self, req: NetRequest) -> Vec<NetReply> {
        let mut out = Vec::new();
        if req.epoch < self.epoch {
            match self.replies.get(&req.seq) {
                Some(r) => {
                    self.duplicates += 1;
                    out.push(r.clone());
                }
                None => self.stale += 1,
            }
            return out;
        }
        if req.epoch > self.epoch {
            self.epoch = req.epoch;
            self.pending.clear();
            self.next_seq = req.seq;
        }
        if req.seq < self.next_seq {
            match self.replies.get(&req.seq) {
                Some(r) => {
                    self.duplicates += 1;
                    out.push(r.clone());
                }
                None => self.stale += 1,
            }
            return out;
        }
        if self.pending.insert(req.seq, req).is_some() {
            // The same not-yet-processed frame arrived twice; one copy
            // suffices.
            self.duplicates += 1;
        }
        while let Some(next) = self.pending.remove(&self.next_seq) {
            let reply = self.process(next);
            self.replies.insert(reply.seq, reply.clone());
            while self.replies.len() > REPLY_CACHE {
                let oldest = *self.replies.keys().next().expect("non-empty");
                self.replies.remove(&oldest);
            }
            out.push(reply);
            self.next_seq += 1;
        }
        out
    }

    fn process(&mut self, req: NetRequest) -> NetReply {
        self.processed += 1;
        let at = req.at.max(self.backend.now());
        self.backend.advance(at);
        let body = match req.body {
            RequestBody::Probe(areq) => ReplyBody::Decision(self.backend.admit(&areq)),
            RequestBody::Readmit(r) => ReplyBody::Decision(self.backend.readmit(&r)),
            RequestBody::Revoke { job } => {
                let held = self.backend.reservations().iter().any(|r| r.id == job);
                self.backend.cancel(job);
                ReplyBody::Revoked { job, held }
            }
            RequestBody::Summary => ReplyBody::Summary {
                held: u32::try_from(self.backend.reservations().len()).unwrap_or(u32::MAX),
                now: self.backend.now(),
            },
            RequestBody::Reconcile { placed } => {
                let placed: BTreeSet<JobId> = placed.into_iter().collect();
                let mut orphans_revoked = Vec::new();
                let mut held = Vec::new();
                for r in self.backend.reservations() {
                    if placed.contains(&r.id) {
                        held.push(r.id);
                    } else {
                        orphans_revoked.push(r.id);
                    }
                }
                for &job in &orphans_revoked {
                    self.backend.cancel(job);
                }
                ReplyBody::Reconcile {
                    orphans_revoked,
                    held,
                    now: self.backend.now(),
                }
            }
            RequestBody::Heartbeat => ReplyBody::HeartbeatAck {
                held: u32::try_from(self.backend.reservations().len()).unwrap_or(u32::MAX),
                now: self.backend.now(),
            },
            RequestBody::Join => ReplyBody::JoinAck {
                now: self.backend.now(),
            },
            RequestBody::Drain => {
                let released: Vec<JobId> =
                    self.backend.reservations().iter().map(|r| r.id).collect();
                for &job in &released {
                    self.backend.cancel(job);
                }
                ReplyBody::DrainAck {
                    released,
                    now: self.backend.now(),
                }
            }
        };
        NetReply {
            seq: req.seq,
            epoch: req.epoch,
            body,
        }
    }
}

/// Timing knobs of the message-layer GAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetGacConfig {
    /// Retry/health thresholds (shared with the in-process GAC). The
    /// backoff fields are unused here; retransmission pacing comes from
    /// [`NetGacConfig::rto`].
    pub gac: GacConfig,
    /// Initial retransmission timeout; doubles per attempt.
    pub rto: Cycles,
    /// How long a parked task (failed revoke/reconcile/ping) waits
    /// before its next try.
    pub retry_interval: Cycles,
    /// Heartbeat period: every `heartbeat_every` cycles the GAC opens a
    /// heartbeat conversation with each reachable member. `Cycles::ZERO`
    /// (the default) disables heartbeats — existing cycle-precise runs
    /// are unperturbed.
    pub heartbeat_every: Cycles,
    /// Lease lifetime granted on each placement and renewed by every
    /// heartbeat ack; expiry (after a further
    /// [`GacConfig::dead_timeout`] grace) revokes and re-places the job
    /// like an evacuation. `Cycles::ZERO` (the default) disables leasing.
    pub lease_ttl: Cycles,
}

impl Default for NetGacConfig {
    fn default() -> Self {
        Self {
            gac: GacConfig::default(),
            rto: Cycles::new(100),
            retry_interval: Cycles::new(500),
            heartbeat_every: Cycles::ZERO,
            lease_ttl: Cycles::ZERO,
        }
    }
}

/// Per-node failure-detector and conversation state.
#[derive(Debug, Clone)]
struct NetNode {
    health: NodeHealth,
    member: MemberState,
    consecutive_losses: u32,
    last_heard: Cycles,
    epoch: u64,
    next_seq: u64,
    needs_reconcile: bool,
    reconcile_queued: bool,
    ping_queued: bool,
    heartbeat_queued: bool,
    lease_frozen: bool,
    /// Readmits still in flight for a graceful drain; the node leaves
    /// only when this reaches zero.
    drain_pending: u32,
}

impl NetNode {
    fn new() -> Self {
        Self {
            health: NodeHealth::Healthy,
            member: MemberState::Live,
            consecutive_losses: 0,
            last_heard: Cycles::ZERO,
            epoch: 0,
            next_seq: 0,
            needs_reconcile: false,
            reconcile_queued: false,
            ping_queued: false,
            heartbeat_queued: false,
            lease_frozen: false,
            drain_pending: 0,
        }
    }
}

/// One unit of control-plane work.
#[derive(Debug, Clone)]
enum Task {
    Place {
        req: AdmissionRequest,
        /// Submission stamp: carried on every probe of this job so the
        /// admission decision depends on *when the job was submitted*,
        /// never on how long the network took to carry the conversation.
        at: Cycles,
        tried: Vec<NodeId>,
        last: Option<RejectReason>,
    },
    Readmit {
        r: Reservation,
        from: NodeId,
        /// Evacuation stamp (same role as `Place::at`).
        at: Cycles,
        tried: Vec<NodeId>,
    },
    Revoke {
        job: JobId,
    },
    Reconcile {
        node: NodeId,
    },
    Ping {
        node: NodeId,
    },
    Heartbeat {
        node: NodeId,
    },
    Join {
        node: NodeId,
    },
    Drain {
        node: NodeId,
    },
}

/// The in-flight conversation (at most one at a time: the control plane
/// is strictly sequential, which keeps every run a deterministic function
/// of its inputs).
#[derive(Debug, Clone)]
struct Conversation {
    node: NodeId,
    seq: u64,
    epoch: u64,
    at: Cycles,
    body: RequestBody,
    task: Task,
    attempts: u32,
    timeout_at: Cycles,
}

/// Aggregate counters of a [`NetGac`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetGacStats {
    /// Conversations opened.
    pub conversations: u64,
    /// Retransmissions sent.
    pub retransmits: u64,
    /// Conversations abandoned after exhausting retries.
    pub gave_up: u64,
    /// Replies discarded as stale (wrong seq/epoch/sender).
    pub stale_replies: u64,
    /// Reconciliations completed.
    pub reconciles: u64,
}

/// The GAC re-expressed over a message network.
///
/// Feed it work with [`NetGac::submit`] / [`NetGac::revoke`], then
/// alternate [`NetGac::drive`] (open/retransmit/abandon conversations)
/// with [`NetGac::on_reply`] (route delivered replies) — or let a
/// [`Cluster`] do both.
#[derive(Debug)]
pub struct NetGac {
    config: NetGacConfig,
    policy: ProbePolicy,
    nodes: Vec<NetNode>,
    placements: BTreeMap<JobId, (NodeId, Reservation)>,
    decisions: BTreeMap<JobId, (Option<NodeId>, Decision)>,
    completed: BTreeSet<JobId>,
    revoked: BTreeSet<JobId>,
    tasks: VecDeque<Task>,
    parked: Vec<(Cycles, u64, Task)>,
    park_counter: u64,
    current: Option<Conversation>,
    leases: BTreeMap<JobId, Cycles>,
    next_heartbeat: Cycles,
    stats: NetGacStats,
    now: Cycles,
}

impl NetGac {
    /// A GAC over `nodes` LAC endpoints, all initially healthy.
    #[must_use]
    pub fn new(nodes: usize, config: NetGacConfig, policy: ProbePolicy) -> Self {
        Self {
            config,
            policy,
            nodes: (0..nodes).map(|_| NetNode::new()).collect(),
            placements: BTreeMap::new(),
            decisions: BTreeMap::new(),
            completed: BTreeSet::new(),
            revoked: BTreeSet::new(),
            tasks: VecDeque::new(),
            parked: Vec::new(),
            park_counter: 0,
            current: None,
            leases: BTreeMap::new(),
            next_heartbeat: config.heartbeat_every,
            stats: NetGacStats::default(),
            now: Cycles::ZERO,
        }
    }

    /// Queues a job for placement. The admission decision materializes in
    /// [`NetGac::decisions`] once the conversation completes.
    pub fn submit(&mut self, req: AdmissionRequest, at: Cycles, recorder: &mut dyn Recorder) {
        self.now = self.now.max(at);
        if recorder.enabled() {
            recorder.record(
                at,
                Event::Submitted {
                    job: req.id,
                    mode: req.mode.into(),
                },
            );
        }
        self.tasks.push_back(Task::Place {
            req,
            at,
            tried: Vec::new(),
            last: None,
        });
    }

    /// Queues a revocation of an admitted job's reservation.
    pub fn revoke(&mut self, job: JobId) {
        self.tasks.push_back(Task::Revoke { job });
    }

    /// Node health as the failure detector sees it.
    #[must_use]
    pub fn node_health(&self, node: NodeId) -> NodeHealth {
        self.nodes[node.as_usize()].health
    }

    /// One node's membership lifecycle state.
    #[must_use]
    pub fn member_state(&self, node: NodeId) -> MemberState {
        self.nodes[node.as_usize()].member
    }

    /// The lease table: each placed job's current expiry cycle (empty
    /// while leasing is disabled).
    #[must_use]
    pub fn leases(&self) -> &BTreeMap<JobId, Cycles> {
        &self.leases
    }

    /// Stops renewing `node`'s leases (the `LeaseFreeze` fault) until the
    /// node restarts. Its heartbeats still count as proof of life, so the
    /// failure detector sees nothing wrong — only the leases notice.
    pub fn freeze_leases(&mut self, node: NodeId) {
        if node.as_usize() < self.nodes.len() {
            self.nodes[node.as_usize()].lease_frozen = true;
        }
    }

    /// Adds a brand-new node to the membership table as `Joining` and
    /// queues its join-announce handshake; the node enters `Live` (and
    /// becomes placeable) when the ack arrives. Returns the node's id —
    /// the next unused index, since membership is append-only.
    pub fn join_node(&mut self, now: Cycles) -> NodeId {
        self.now = self.now.max(now);
        let node = NodeId::new(u32::try_from(self.nodes.len()).expect("node count fits u32"));
        let mut n = NetNode::new();
        n.member = MemberState::Joining;
        n.last_heard = self.now;
        self.nodes.push(n);
        self.tasks.push_back(Task::Join { node });
        node
    }

    /// Begins a graceful drain of `node`: it takes no further placements,
    /// and once the drain-request/ack releases its reservations they are
    /// re-placed on survivors; the node transitions `Left` only when the
    /// last of those readmits resolves. A no-op unless the node is `Live`.
    pub fn drain_node(&mut self, node: NodeId, now: Cycles) {
        self.now = self.now.max(now);
        let i = node.as_usize();
        if i >= self.nodes.len()
            || self.nodes[i].member != MemberState::Live
            || self.nodes[i].health == NodeHealth::Dead
        {
            // A dead node cannot ack a drain-request; its placements are
            // evacuation's business, not a graceful departure's.
            return;
        }
        self.nodes[i].member = MemberState::Draining;
        self.tasks.push_back(Task::Drain { node });
    }

    /// Restarts `node`'s process: the GAC bumps the node's epoch (so the
    /// freshly-reset endpoint resynchronizes on first contact, and every
    /// straggler from before the restart is stale), resets its link
    /// state, and sends the node back through reconciliation as
    /// `Joining` — it re-enters `Live` only after its journal-recovered
    /// table has been diffed against the GAC's placement view. A no-op on
    /// a departed node.
    pub fn restart_node(&mut self, node: NodeId, now: Cycles, recorder: &mut dyn Recorder) {
        self.now = self.now.max(now);
        let i = node.as_usize();
        if i >= self.nodes.len() || self.nodes[i].member == MemberState::Left {
            return;
        }
        // Any open conversation with the node died with its old process.
        if let Some(conv) = self.current.take() {
            if conv.node == node {
                self.fail_task(conv.task, node, recorder);
            } else {
                self.current = Some(conv);
            }
        }
        self.nodes[i].epoch += 1;
        self.nodes[i].consecutive_losses = 0;
        self.nodes[i].last_heard = self.now;
        self.nodes[i].lease_frozen = false;
        self.nodes[i].ping_queued = false;
        self.nodes[i].heartbeat_queued = false;
        self.nodes[i].drain_pending = 0;
        self.set_health(i, NodeHealth::Healthy, recorder);
        self.nodes[i].member = MemberState::Joining;
        self.nodes[i].needs_reconcile = true;
        if !self.nodes[i].reconcile_queued {
            self.nodes[i].reconcile_queued = true;
            self.tasks.push_back(Task::Reconcile { node });
        }
    }

    /// Number of nodes under this controller.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current placements (job → node and the GAC's copy of the
    /// reservation).
    #[must_use]
    pub fn placements(&self) -> &BTreeMap<JobId, (NodeId, Reservation)> {
        &self.placements
    }

    /// Final admission decisions, one per submitted job that completed
    /// its placement conversation.
    #[must_use]
    pub fn decisions(&self) -> &BTreeMap<JobId, (Option<NodeId>, Decision)> {
        &self.decisions
    }

    /// Jobs whose reservations ran to completion.
    #[must_use]
    pub fn completed(&self) -> &BTreeSet<JobId> {
        &self.completed
    }

    /// Jobs whose reservations were revoked (explicitly, or because no
    /// surviving node could re-admit them).
    #[must_use]
    pub fn revoked(&self) -> &BTreeSet<JobId> {
        &self.revoked
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> NetGacStats {
        self.stats
    }

    /// Nodes flagged for reconciliation that have not completed one yet.
    /// A quiesced, fully-healed run must report 0.
    #[must_use]
    pub fn pending_reconciles(&self) -> usize {
        self.nodes.iter().filter(|n| n.needs_reconcile).count()
    }

    /// Whether every queued task and conversation has completed.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.current.is_none() && self.tasks.is_empty() && self.parked.is_empty()
    }

    /// The next cycle at which [`NetGac::drive`] has work to do
    /// (retransmission timeout, parked-task wake, or heartbeat round),
    /// if any.
    #[must_use]
    pub fn next_wake(&self) -> Option<Cycles> {
        let timeout = self.current.as_ref().map(|c| c.timeout_at);
        let parked = self.parked.iter().map(|(due, _, _)| *due).min();
        let heartbeat = (self.config.heartbeat_every > Cycles::ZERO).then_some(self.next_heartbeat);
        // `expire_leases` fires on strict `now > until + grace`, hence +1.
        let lease = (self.config.lease_ttl > Cycles::ZERO)
            .then(|| {
                let grace = self.config.gac.dead_timeout;
                self.leases
                    .values()
                    .map(|&until| until + grace + Cycles::new(1))
                    .min()
            })
            .flatten();
        [timeout, parked, heartbeat, lease]
            .into_iter()
            .flatten()
            .min()
    }

    /// Advances the GAC clock, retiring placements whose reservation
    /// window has closed (their jobs completed on their nodes) and
    /// expiring leases that have gone unrenewed past the grace window.
    pub fn advance(&mut self, now: Cycles, recorder: &mut dyn Recorder) {
        self.now = self.now.max(now);
        let done: Vec<JobId> = self
            .placements
            .iter()
            .filter(|(_, (_, r))| r.end <= self.now)
            .map(|(&job, _)| job)
            .collect();
        for job in done {
            let (_, r) = self.placements.remove(&job).expect("collected above");
            self.leases.remove(&job);
            self.completed.insert(job);
            if recorder.enabled() {
                recorder.record(
                    r.end,
                    Event::Completed {
                        job,
                        met_deadline: r.deadline.is_none_or(|d| r.end <= d),
                    },
                );
            }
        }
        self.expire_leases(recorder);
    }

    /// Revokes and re-places every job whose lease ran out `lease_ttl +
    /// dead_timeout` ago — the same unreachable-vs-dead hysteresis as the
    /// health machine, so a short partition stalls renewals without
    /// losing the placement. Deliberately *not* gated on node silence:
    /// a lease-frozen node answers every heartbeat yet its leases still
    /// die, which is exactly what makes the `LeaseFreeze` fault visible.
    fn expire_leases(&mut self, recorder: &mut dyn Recorder) {
        if self.config.lease_ttl == Cycles::ZERO {
            return;
        }
        let grace = self.config.gac.dead_timeout;
        let expired: Vec<JobId> = self
            .leases
            .iter()
            .filter(|&(_, &until)| self.now > until + grace)
            .map(|(&job, _)| job)
            .collect();
        for job in expired {
            self.leases.remove(&job);
            let Some((node, r)) = self.placements.remove(&job) else {
                continue;
            };
            if r.end <= self.now {
                // The reservation ran out before the grace did; the job
                // completed (retirement just hadn't swept yet). Completed
                // XOR revoked: completion wins.
                self.completed.insert(job);
                if recorder.enabled() {
                    recorder.record(
                        r.end,
                        Event::Completed {
                            job,
                            met_deadline: r.deadline.is_none_or(|d| r.end <= d),
                        },
                    );
                }
                continue;
            }
            if recorder.enabled() {
                recorder.record(self.now, Event::LeaseExpired { job, node });
            }
            // The node may still hold the reservation (we only know its
            // renewals stopped); the next successful contact revokes the
            // orphan, exactly like any abandoned conversation.
            self.flag_reconcile(node);
            self.tasks.push_back(Task::Readmit {
                r,
                from: node,
                at: self.now,
                tried: Vec::new(),
            });
        }
    }

    /// Routes one delivered reply. Replies that do not match the open
    /// conversation (wrong sender, sequence, or epoch) are stale — a
    /// straggler from a conversation the GAC already abandoned — and are
    /// counted but otherwise ignored.
    pub fn on_reply(
        &mut self,
        from: NodeId,
        reply: &NetReply,
        now: Cycles,
        recorder: &mut dyn Recorder,
    ) {
        self.now = self.now.max(now);
        let matches = self
            .current
            .as_ref()
            .is_some_and(|c| c.node == from && c.seq == reply.seq && c.epoch == reply.epoch);
        if !matches {
            self.stats.stale_replies += 1;
            return;
        }
        let conv = self.current.take().expect("matched above");
        let i = from.as_usize();
        self.nodes[i].consecutive_losses = 0;
        self.nodes[i].last_heard = self.now;
        if self.nodes[i].health == NodeHealth::Suspect {
            self.set_health(i, NodeHealth::Healthy, recorder);
        }
        self.complete(conv, reply, recorder);
    }

    /// Opens, retransmits, and abandons conversations. Returns whether
    /// anything was sent (callers loop until the network quiesces).
    pub fn drive(
        &mut self,
        now: Cycles,
        net: &mut dyn Transport<Wire>,
        recorder: &mut dyn Recorder,
    ) -> bool {
        self.now = self.now.max(now);
        let mut sent = false;
        self.expire_leases(recorder);
        if self.config.heartbeat_every > Cycles::ZERO {
            while self.now >= self.next_heartbeat {
                self.queue_heartbeats();
                self.next_heartbeat += self.config.heartbeat_every;
            }
        }
        self.unpark();
        if let Some(conv) = self.current.take() {
            if self.now >= conv.timeout_at {
                sent |= self.on_timeout(conv, net, recorder);
            } else {
                self.current = Some(conv);
            }
        }
        while self.current.is_none() {
            let Some(task) = self.tasks.pop_front() else {
                break;
            };
            if let Some(conv) = self.open(task, net, recorder) {
                self.current = Some(conv);
                sent = true;
            }
        }
        sent
    }

    fn unpark(&mut self) {
        self.parked.sort_by_key(|(due, order, _)| (*due, *order));
        let mut still_parked = Vec::new();
        for (due, order, task) in self.parked.drain(..) {
            if due <= self.now {
                self.tasks.push_back(task);
            } else {
                still_parked.push((due, order, task));
            }
        }
        self.parked = still_parked;
    }

    fn park(&mut self, task: Task) {
        let due = self.now + self.config.retry_interval;
        self.parked.push((due, self.park_counter, task));
        self.park_counter += 1;
    }

    /// Opens one heartbeat round: every reachable member (Live or
    /// Draining, not Dead) gets a beacon queued, at most one in flight
    /// per node.
    fn queue_heartbeats(&mut self) {
        for i in 0..self.nodes.len() {
            let n = &self.nodes[i];
            if !matches!(n.member, MemberState::Live | MemberState::Draining)
                || n.health == NodeHealth::Dead
                || n.heartbeat_queued
            {
                continue;
            }
            self.nodes[i].heartbeat_queued = true;
            self.tasks.push_back(Task::Heartbeat {
                node: NodeId::new(u32::try_from(i).expect("node count fits u32")),
            });
        }
    }

    /// Healthy Live members in placement-probe order, per the policy
    /// (Joining, Draining, and Left nodes take no new placements).
    fn probe_order(&self) -> Vec<NodeId> {
        let mut order: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| {
                self.nodes[i].member == MemberState::Live
                    && self.nodes[i].health == NodeHealth::Healthy
            })
            .collect();
        if self.policy == ProbePolicy::LeastLoaded {
            let mut load = vec![0usize; self.nodes.len()];
            for (node, _) in self.placements.values() {
                load[node.as_usize()] += 1;
            }
            order.sort_by_key(|&i| load[i]);
        }
        order
            .into_iter()
            .map(|i| NodeId::new(u32::try_from(i).expect("node count fits u32")))
            .collect()
    }

    fn open(
        &mut self,
        task: Task,
        net: &mut dyn Transport<Wire>,
        recorder: &mut dyn Recorder,
    ) -> Option<Conversation> {
        match task {
            Task::Place {
                req,
                at,
                tried,
                last,
            } => {
                let next = self.probe_order().into_iter().find(|n| !tried.contains(n));
                match next {
                    Some(node) => Some(self.send_new(
                        node,
                        RequestBody::Probe(req),
                        at,
                        Task::Place {
                            req,
                            at,
                            tried,
                            last,
                        },
                        net,
                    )),
                    None => {
                        let cause = last.unwrap_or(RejectReason::NoHealthyNodes);
                        self.decisions
                            .insert(req.id, (None, Decision::Rejected(cause)));
                        if recorder.enabled() {
                            recorder.record(
                                self.now,
                                Event::Rejected {
                                    job: req.id,
                                    cause: cause.into(),
                                },
                            );
                        }
                        None
                    }
                }
            }
            Task::Readmit { r, from, at, tried } => {
                let next = self
                    .probe_order()
                    .into_iter()
                    .find(|n| *n != from && !tried.contains(n));
                match next {
                    Some(node) => Some(self.send_new(
                        node,
                        RequestBody::Readmit(r),
                        at,
                        Task::Readmit { r, from, at, tried },
                        net,
                    )),
                    None => {
                        self.revoked.insert(r.id);
                        self.leases.remove(&r.id);
                        if recorder.enabled() {
                            recorder.record(
                                self.now,
                                Event::ReservationRevoked {
                                    job: r.id,
                                    node: from,
                                    cause: cmpqos_obs::RejectCause::CapacityRevoked,
                                },
                            );
                        }
                        self.drain_readmit_resolved(from, recorder);
                        None
                    }
                }
            }
            Task::Revoke { job } => {
                let &(node, _) = self.placements.get(&job)?;
                if self.nodes[node.as_usize()].health == NodeHealth::Dead {
                    // Evacuation already owns this placement's fate.
                    return None;
                }
                let at = self.now;
                Some(self.send_new(
                    node,
                    RequestBody::Revoke { job },
                    at,
                    Task::Revoke { job },
                    net,
                ))
            }
            Task::Reconcile { node } => {
                let i = node.as_usize();
                if self.nodes[i].health == NodeHealth::Dead || !self.nodes[i].needs_reconcile {
                    self.nodes[i].reconcile_queued = false;
                    return None;
                }
                let placed: Vec<JobId> = self
                    .placements
                    .iter()
                    .filter(|(_, (n, _))| *n == node)
                    .map(|(&job, _)| job)
                    .collect();
                let at = self.now;
                Some(self.send_new(
                    node,
                    RequestBody::Reconcile { placed },
                    at,
                    Task::Reconcile { node },
                    net,
                ))
            }
            Task::Ping { node } => {
                let i = node.as_usize();
                if self.nodes[i].health != NodeHealth::Suspect {
                    self.nodes[i].ping_queued = false;
                    return None;
                }
                let at = self.now;
                Some(self.send_new(node, RequestBody::Summary, at, Task::Ping { node }, net))
            }
            Task::Heartbeat { node } => {
                let i = node.as_usize();
                if !matches!(
                    self.nodes[i].member,
                    MemberState::Live | MemberState::Draining
                ) || self.nodes[i].health == NodeHealth::Dead
                {
                    self.nodes[i].heartbeat_queued = false;
                    return None;
                }
                let at = self.now;
                Some(self.send_new(
                    node,
                    RequestBody::Heartbeat,
                    at,
                    Task::Heartbeat { node },
                    net,
                ))
            }
            Task::Join { node } => {
                let i = node.as_usize();
                if self.nodes[i].member != MemberState::Joining
                    || self.nodes[i].health == NodeHealth::Dead
                {
                    return None;
                }
                let at = self.now;
                Some(self.send_new(node, RequestBody::Join, at, Task::Join { node }, net))
            }
            Task::Drain { node } => {
                let i = node.as_usize();
                if self.nodes[i].member != MemberState::Draining
                    || self.nodes[i].health == NodeHealth::Dead
                {
                    // Death-while-draining: evacuation already owns the
                    // placements (and transitioned the member Left).
                    return None;
                }
                let at = self.now;
                Some(self.send_new(node, RequestBody::Drain, at, Task::Drain { node }, net))
            }
        }
    }

    fn send_new(
        &mut self,
        node: NodeId,
        body: RequestBody,
        at: Cycles,
        task: Task,
        net: &mut dyn Transport<Wire>,
    ) -> Conversation {
        let i = node.as_usize();
        let seq = self.nodes[i].next_seq;
        self.nodes[i].next_seq += 1;
        let conv = Conversation {
            node,
            seq,
            epoch: self.nodes[i].epoch,
            at,
            body,
            task,
            attempts: 0,
            timeout_at: self.now + self.config.rto,
        };
        self.stats.conversations += 1;
        // The send report is deliberately ignored: a real controller
        // cannot observe whether the interconnect ate its frame.
        let _ = net.send(
            Addr::Gac,
            Addr::Node(node),
            self.now,
            Wire::Request(NetRequest {
                seq: conv.seq,
                epoch: conv.epoch,
                at: conv.at,
                body: conv.body.clone(),
            }),
        );
        conv
    }

    fn on_timeout(
        &mut self,
        mut conv: Conversation,
        net: &mut dyn Transport<Wire>,
        recorder: &mut dyn Recorder,
    ) -> bool {
        let i = conv.node.as_usize();
        self.nodes[i].consecutive_losses += 1;
        if recorder.enabled() {
            if let RequestBody::Probe(req) = &conv.body {
                recorder.record(
                    self.now,
                    Event::ProbeLost {
                        job: req.id,
                        node: conv.node,
                    },
                );
            }
        }
        self.update_health(i, recorder);
        if self.nodes[i].health == NodeHealth::Dead {
            self.fail_task(conv.task, conv.node, recorder);
            return false;
        }
        conv.attempts += 1;
        if conv.attempts > self.config.gac.max_retries {
            // Abandon: everything sent under this epoch is now stale.
            self.stats.gave_up += 1;
            self.nodes[i].epoch += 1;
            if conv.body.needs_reconcile_on_give_up() {
                self.flag_reconcile(conv.node);
            }
            self.fail_task(conv.task, conv.node, recorder);
            return false;
        }
        self.stats.retransmits += 1;
        let _ = net.send(
            Addr::Gac,
            Addr::Node(conv.node),
            self.now,
            Wire::Request(NetRequest {
                seq: conv.seq,
                epoch: conv.epoch,
                at: conv.at,
                body: conv.body.clone(),
            }),
        );
        conv.timeout_at = self.now + self.config.rto * 2u64.saturating_pow(conv.attempts);
        self.current = Some(conv);
        true
    }

    /// What happens to a task whose conversation was abandoned (or whose
    /// node died mid-conversation).
    fn fail_task(&mut self, task: Task, node: NodeId, recorder: &mut dyn Recorder) {
        match task {
            Task::Place {
                req,
                at,
                mut tried,
                last,
            } => {
                tried.push(node);
                // FCFS: the job goes back to the head of the queue and
                // tries the next node.
                self.tasks.push_front(Task::Place {
                    req,
                    at,
                    tried,
                    last,
                });
            }
            Task::Readmit {
                r,
                from,
                at,
                mut tried,
            } => {
                tried.push(node);
                self.tasks.push_front(Task::Readmit { r, from, at, tried });
            }
            task @ (Task::Revoke { .. } | Task::Drain { .. } | Task::Join { .. }) => {
                self.park(task)
            }
            Task::Reconcile { node } => {
                self.nodes[node.as_usize()].reconcile_queued = false;
                self.flag_reconcile(node);
            }
            Task::Ping { node } => {
                self.nodes[node.as_usize()].ping_queued = false;
                self.flag_ping(node);
            }
            Task::Heartbeat { node } => {
                // The next round re-beacons; the losses were already
                // counted by the failure detector.
                self.nodes[node.as_usize()].heartbeat_queued = false;
            } // Recorder is threaded for symmetry with open(); nothing to
              // record on the give-up itself beyond the probe losses above.
        }
        let _ = recorder;
    }

    /// Grants (or renews) a freshly-placed job's lease.
    fn grant_lease(&mut self, job: JobId) {
        if self.config.lease_ttl > Cycles::ZERO {
            self.leases.insert(job, self.now + self.config.lease_ttl);
        }
    }

    /// The last step of a graceful drain: every reservation has moved off
    /// (or completed), so the node departs.
    fn finish_drain(&mut self, node: NodeId, recorder: &mut dyn Recorder) {
        let i = node.as_usize();
        if self.nodes[i].member != MemberState::Draining {
            return;
        }
        self.nodes[i].member = MemberState::Left;
        self.nodes[i].drain_pending = 0;
        self.nodes[i].heartbeat_queued = false;
        if recorder.enabled() {
            recorder.record(self.now, Event::NodeDrained { node });
        }
    }

    /// One of a draining node's readmits reached its terminal state
    /// (migrated or revoked); the node leaves once the last one does.
    fn drain_readmit_resolved(&mut self, from: NodeId, recorder: &mut dyn Recorder) {
        let i = from.as_usize();
        if self.nodes[i].member == MemberState::Draining && self.nodes[i].drain_pending > 0 {
            self.nodes[i].drain_pending -= 1;
            if self.nodes[i].drain_pending == 0 {
                self.finish_drain(from, recorder);
            }
        }
    }

    fn flag_reconcile(&mut self, node: NodeId) {
        let i = node.as_usize();
        self.nodes[i].needs_reconcile = true;
        if !self.nodes[i].reconcile_queued {
            self.nodes[i].reconcile_queued = true;
            self.park(Task::Reconcile { node });
        }
    }

    fn flag_ping(&mut self, node: NodeId) {
        let i = node.as_usize();
        if self.nodes[i].health == NodeHealth::Suspect && !self.nodes[i].ping_queued {
            self.nodes[i].ping_queued = true;
            self.park(Task::Ping { node });
        }
    }

    fn update_health(&mut self, i: usize, recorder: &mut dyn Recorder) {
        let losses = self.nodes[i].consecutive_losses;
        let silent_for = self.now.saturating_sub(self.nodes[i].last_heard);
        let cfg = &self.config.gac;
        let target = if losses >= cfg.dead_after && silent_for >= cfg.dead_timeout {
            NodeHealth::Dead
        } else if losses >= cfg.suspect_after {
            NodeHealth::Suspect
        } else {
            return;
        };
        if self.nodes[i].health != NodeHealth::Dead {
            self.set_health(i, target, recorder);
        }
    }

    fn set_health(&mut self, i: usize, to: NodeHealth, recorder: &mut dyn Recorder) {
        let from = self.nodes[i].health;
        if from == to {
            return;
        }
        self.nodes[i].health = to;
        let node = NodeId::new(u32::try_from(i).expect("node count fits u32"));
        if recorder.enabled() {
            recorder.record(
                self.now,
                Event::NodeHealthChanged {
                    node,
                    from: from.into(),
                    to: to.into(),
                },
            );
        }
        match to {
            NodeHealth::Suspect => self.flag_ping(node),
            NodeHealth::Dead => self.evacuate(node, recorder),
            NodeHealth::Healthy => {
                if self.nodes[i].needs_reconcile {
                    self.flag_reconcile(node);
                }
            }
        }
    }

    /// Declares a node dead out-of-band (an injected node fault) and
    /// evacuates its placements.
    pub fn kill_node(&mut self, node: NodeId, now: Cycles, recorder: &mut dyn Recorder) {
        self.now = self.now.max(now);
        let i = node.as_usize();
        if i >= self.nodes.len() || self.nodes[i].health == NodeHealth::Dead {
            return;
        }
        self.set_health(i, NodeHealth::Dead, recorder);
    }

    fn evacuate(&mut self, node: NodeId, recorder: &mut dyn Recorder) {
        let i = node.as_usize();
        self.nodes[i].needs_reconcile = false;
        self.nodes[i].reconcile_queued = false;
        self.nodes[i].ping_queued = false;
        self.nodes[i].heartbeat_queued = false;
        // A node that dies mid-drain departs ungracefully: evacuation
        // owns every placement from here, so the drain is over.
        if self.nodes[i].member == MemberState::Draining {
            self.nodes[i].member = MemberState::Left;
            self.nodes[i].drain_pending = 0;
            if recorder.enabled() {
                recorder.record(self.now, Event::NodeDrained { node });
            }
        }
        // A conversation with the dead node can never complete.
        if let Some(conv) = self.current.take() {
            if conv.node == node {
                self.fail_task(conv.task, node, recorder);
            } else {
                self.current = Some(conv);
            }
        }
        let stranded: Vec<JobId> = self
            .placements
            .iter()
            .filter(|(_, (n, _))| *n == node)
            .map(|(&job, _)| job)
            .collect();
        for job in stranded {
            let (_, r) = self.placements.remove(&job).expect("collected above");
            self.leases.remove(&job);
            self.tasks.push_back(Task::Readmit {
                r,
                from: node,
                at: self.now,
                tried: Vec::new(),
            });
        }
    }

    fn complete(&mut self, conv: Conversation, reply: &NetReply, recorder: &mut dyn Recorder) {
        match (conv.task, &reply.body) {
            (
                Task::Place {
                    req, at, mut tried, ..
                },
                ReplyBody::Decision(d),
            ) => match *d {
                Decision::Accepted { start } => {
                    let r = Reservation {
                        id: req.id,
                        start,
                        end: start + req.tw,
                        request: req.request,
                        mode: req.mode,
                        deadline: req.deadline,
                    };
                    self.placements.insert(req.id, (conv.node, r));
                    self.grant_lease(req.id);
                    self.decisions.insert(req.id, (Some(conv.node), *d));
                    if recorder.enabled() {
                        recorder.record(
                            self.now,
                            Event::Placed {
                                job: req.id,
                                node: conv.node,
                            },
                        );
                    }
                }
                Decision::Rejected(reason) => {
                    tried.push(conv.node);
                    self.tasks.push_front(Task::Place {
                        req,
                        at,
                        tried,
                        last: Some(reason),
                    });
                }
            },
            (
                Task::Readmit {
                    r,
                    from,
                    at,
                    mut tried,
                },
                ReplyBody::Decision(d),
            ) => match *d {
                Decision::Accepted { start } => {
                    let moved = Reservation {
                        start,
                        end: start + (r.end.saturating_sub(r.start)),
                        ..r
                    };
                    self.placements.insert(r.id, (conv.node, moved));
                    self.grant_lease(r.id);
                    if recorder.enabled() {
                        recorder.record(
                            self.now,
                            Event::Migrated {
                                job: r.id,
                                from,
                                to: conv.node,
                            },
                        );
                    }
                    self.drain_readmit_resolved(from, recorder);
                }
                Decision::Rejected(_) => {
                    tried.push(conv.node);
                    self.tasks.push_front(Task::Readmit { r, from, at, tried });
                }
            },
            (Task::Revoke { job }, ReplyBody::Revoked { .. }) => {
                // If the reservation ran out while the revoke was in
                // flight, the completion wins: a job is completed XOR
                // revoked, never both.
                if !self.completed.contains(&job) {
                    self.placements.remove(&job);
                    self.leases.remove(&job);
                    self.revoked.insert(job);
                    if recorder.enabled() {
                        recorder.record(
                            self.now,
                            Event::ReservationRevoked {
                                job,
                                node: conv.node,
                                cause: cmpqos_obs::RejectCause::CapacityRevoked,
                            },
                        );
                    }
                }
            }
            (
                Task::Reconcile { node },
                ReplyBody::Reconcile {
                    orphans_revoked,
                    held,
                    now: lac_now,
                },
            ) => {
                let i = node.as_usize();
                let held: BTreeSet<JobId> = held.iter().copied().collect();
                let mine: Vec<JobId> = self
                    .placements
                    .iter()
                    .filter(|(_, (n, _))| *n == node)
                    .map(|(&job, _)| job)
                    .collect();
                let mut repaired = 0u64;
                for job in mine {
                    if held.contains(&job) {
                        continue;
                    }
                    let (_, r) = self.placements.remove(&job).expect("iterated above");
                    self.leases.remove(&job);
                    if r.end <= *lac_now {
                        // The node ran it to completion while we were out
                        // of touch.
                        self.completed.insert(job);
                        if recorder.enabled() {
                            recorder.record(
                                r.end,
                                Event::Completed {
                                    job,
                                    met_deadline: r.deadline.is_none_or(|d| r.end <= d),
                                },
                            );
                        }
                    } else {
                        repaired += 1;
                        self.tasks.push_back(Task::Readmit {
                            r,
                            from: node,
                            at: self.now,
                            tried: Vec::new(),
                        });
                    }
                }
                self.nodes[i].needs_reconcile = false;
                self.nodes[i].reconcile_queued = false;
                self.stats.reconciles += 1;
                if recorder.enabled() {
                    recorder.record(
                        self.now,
                        Event::Reconciled {
                            node,
                            orphans_revoked: orphans_revoked.len() as u64,
                            placements_repaired: repaired,
                        },
                    );
                }
                // A restarted node re-enters Live only now, its
                // journal-recovered table verified against ours; its
                // surviving leases restart their clock — it just proved
                // it holds the reservations.
                if self.nodes[i].member == MemberState::Joining {
                    self.nodes[i].member = MemberState::Live;
                    if recorder.enabled() {
                        recorder.record(self.now, Event::NodeJoined { node });
                    }
                }
                if self.config.lease_ttl > Cycles::ZERO && !self.nodes[i].lease_frozen {
                    let until = self.now + self.config.lease_ttl;
                    for (&job, lease) in &mut self.leases {
                        if self.placements.get(&job).is_some_and(|(n, _)| *n == node) {
                            *lease = until;
                        }
                    }
                }
            }
            (Task::Ping { node }, ReplyBody::Summary { .. }) => {
                self.nodes[node.as_usize()].ping_queued = false;
            }
            (Task::Heartbeat { node }, ReplyBody::HeartbeatAck { .. }) => {
                let i = node.as_usize();
                self.nodes[i].heartbeat_queued = false;
                if self.config.lease_ttl > Cycles::ZERO && !self.nodes[i].lease_frozen {
                    let until = self.now + self.config.lease_ttl;
                    let mut renewed = 0u64;
                    for (&job, lease) in &mut self.leases {
                        if self.placements.get(&job).is_some_and(|(n, _)| *n == node) {
                            *lease = until;
                            renewed += 1;
                        }
                    }
                    if renewed > 0 && recorder.enabled() {
                        recorder.record(
                            self.now,
                            Event::LeaseRenewed {
                                node,
                                leases: renewed,
                            },
                        );
                    }
                }
            }
            (Task::Join { node }, ReplyBody::JoinAck { .. }) => {
                let i = node.as_usize();
                if self.nodes[i].member == MemberState::Joining {
                    self.nodes[i].member = MemberState::Live;
                    if recorder.enabled() {
                        recorder.record(self.now, Event::NodeJoined { node });
                    }
                }
            }
            (
                Task::Drain { node },
                ReplyBody::DrainAck {
                    now: lac_now,
                    released: _,
                },
            ) => {
                // The GAC trusts its own placement view, not the released
                // list: a retransmitted drain re-acks with an empty list,
                // and the set the node *thinks* it released can predate a
                // migration the GAC already performed.
                let i = node.as_usize();
                let mine: Vec<JobId> = self
                    .placements
                    .iter()
                    .filter(|(_, (n, _))| *n == node)
                    .map(|(&job, _)| job)
                    .collect();
                let mut pending = 0u32;
                for job in mine {
                    let (_, r) = self.placements.remove(&job).expect("iterated above");
                    self.leases.remove(&job);
                    if r.end <= *lac_now {
                        self.completed.insert(job);
                        if recorder.enabled() {
                            recorder.record(
                                r.end,
                                Event::Completed {
                                    job,
                                    met_deadline: r.deadline.is_none_or(|d| r.end <= d),
                                },
                            );
                        }
                    } else {
                        pending += 1;
                        self.tasks.push_back(Task::Readmit {
                            r,
                            from: node,
                            at: self.now,
                            tried: Vec::new(),
                        });
                    }
                }
                if pending == 0 {
                    self.finish_drain(node, recorder);
                } else {
                    self.nodes[i].drain_pending = pending;
                }
            }
            (task, _) => {
                // A well-formed endpoint never answers a request with the
                // wrong reply shape; treat it as a failed conversation.
                self.stats.stale_replies += 1;
                self.fail_task(task, conv.node, recorder);
            }
        }
    }
}

/// GAC + LAC endpoints + network: the full message-layer control plane.
///
/// [`Cluster::run_until`] advances event-to-event (frame deliveries,
/// retransmission timeouts, parked-task wakes), so the outcome is
/// independent of how coarsely the caller steps time.
#[derive(Debug)]
pub struct Cluster<B> {
    gac: NetGac,
    endpoints: Vec<LacEndpoint<B>>,
    net: SimNet<Wire>,
    now: Cycles,
}

impl<B: LacBackend> Cluster<B> {
    /// Builds a cluster from per-node backends. `seed` drives every
    /// probabilistic decision of the network; `link` is the default
    /// behavior of every GAC↔node link.
    #[must_use]
    pub fn from_backends(
        backends: Vec<B>,
        seed: u64,
        link: LinkConfig,
        config: NetGacConfig,
        policy: ProbePolicy,
    ) -> Self {
        let gac = NetGac::new(backends.len(), config, policy);
        Self {
            gac,
            endpoints: backends.into_iter().map(LacEndpoint::new).collect(),
            net: SimNet::new(seed, link),
            now: Cycles::ZERO,
        }
    }

    /// The GAC.
    #[must_use]
    pub fn gac(&self) -> &NetGac {
        &self.gac
    }

    /// Mutable GAC access (submitting jobs, queueing revocations).
    pub fn gac_mut(&mut self) -> &mut NetGac {
        &mut self.gac
    }

    /// One node's endpoint.
    #[must_use]
    pub fn endpoint(&self, node: NodeId) -> &LacEndpoint<B> {
        &self.endpoints[node.as_usize()]
    }

    /// Number of nodes in the cluster.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.endpoints.len()
    }

    /// The network.
    #[must_use]
    pub fn net(&self) -> &SimNet<Wire> {
        &self.net
    }

    /// The cluster clock.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Admits a new node to the cluster. The endpoint is live on the
    /// network immediately (addressing is by index, so no registration is
    /// needed), but the GAC only places work on it after the join
    /// handshake completes.
    pub fn join_node(&mut self, backend: B, now: Cycles) -> NodeId {
        self.now = self.now.max(now);
        self.endpoints.push(LacEndpoint::new(backend));
        self.gac.join_node(self.now)
    }

    /// Restarts a node: its endpoint loses all protocol state (epoch,
    /// sequence numbers, dedup caches — the backend's reservations
    /// survive, as journal recovery restores them), and the GAC bumps its
    /// epoch and re-runs reconciliation before the node re-enters Live.
    pub fn restart_node(&mut self, node: NodeId, now: Cycles, recorder: &mut dyn Recorder) {
        if node.as_usize() >= self.endpoints.len() {
            return;
        }
        self.now = self.now.max(now);
        self.endpoints[node.as_usize()].reset();
        self.gac.restart_node(node, self.now, recorder);
    }

    /// Starts a graceful drain of `node`. New placements stop
    /// immediately; the node transitions to Left once every reservation
    /// has migrated or completed.
    pub fn drain_node(&mut self, node: NodeId, now: Cycles) {
        if node.as_usize() >= self.endpoints.len() {
            return;
        }
        self.now = self.now.max(now);
        self.gac.drain_node(node, self.now);
    }

    /// Applies one fault injection to the control plane. Link faults act
    /// on the network (the GAC cannot observe them directly — it only
    /// sees its probes go unanswered); node faults kill the node;
    /// probe-loss faults drop the next frames toward the node. Way/core
    /// faults are node-local capacity events outside this control plane
    /// and are ignored here.
    pub fn apply(&mut self, injection: Injection, recorder: &mut dyn Recorder) {
        let at = injection.at;
        self.now = self.now.max(at);
        let node = injection.fault.node();
        if node.as_usize() >= self.endpoints.len() {
            return;
        }
        if recorder.enabled() {
            recorder.record(
                at,
                Event::FaultInjected {
                    node,
                    fault: injection.fault.obs_kind(),
                },
            );
        }
        match injection.fault {
            Fault::LinkPartition { .. } => {
                self.net.partition(Addr::Gac, Addr::Node(node));
                if recorder.enabled() {
                    recorder.record(at, Event::LinkPartitioned { node });
                }
            }
            Fault::LinkHeal { .. } => {
                self.net.heal(Addr::Gac, Addr::Node(node));
                if recorder.enabled() {
                    recorder.record(at, Event::LinkHealed { node });
                }
            }
            Fault::MessageDrop { count, .. } => {
                self.net.force_drops(Addr::Gac, Addr::Node(node), count);
                if recorder.enabled() {
                    recorder.record(at, Event::MessageDropped { node });
                }
            }
            Fault::ProbeLoss { count, .. } => {
                self.net.force_drops(Addr::Gac, Addr::Node(node), count);
            }
            Fault::NodeFault { .. } => {
                self.gac.kill_node(node, at, recorder);
            }
            Fault::NodeRestart { .. } => {
                self.restart_node(node, at, recorder);
            }
            Fault::NodeDrain { .. } => {
                self.gac.drain_node(node, at);
            }
            Fault::LeaseFreeze { .. } => {
                self.gac.freeze_leases(node);
            }
            // Way/core faults are node-local capacity events; a controller
            // crash is the recovery harness's concern. Neither is a
            // control-plane message fault. A join needs a backend for the
            // new endpoint, which a generic injection cannot supply — use
            // [`Cluster::join_node`]. (The bounds check above already
            // returns early for joins, since they name the next index.)
            Fault::WayFault { .. }
            | Fault::CoreFault { .. }
            | Fault::ControllerCrash { .. }
            | Fault::NodeJoin { .. } => {}
        }
    }

    /// Advances the cluster to `until`, processing every frame delivery,
    /// retransmission timeout, and parked-task wake along the way in
    /// `(cycle, event)` order.
    pub fn run_until(&mut self, until: Cycles, recorder: &mut dyn Recorder) {
        loop {
            self.settle(recorder);
            let next_delivery = self.net.next_deliver_at();
            let next_wake = self.gac.next_wake();
            let next = match (next_delivery, next_wake) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            match next {
                Some(t) if t <= until => self.now = self.now.max(t),
                _ => break,
            }
        }
        self.now = self.now.max(until);
        self.settle(recorder);
        self.gac.advance(self.now, recorder);
    }

    /// Runs everything runnable at the current instant: delivers due
    /// frames, routes them, and lets the GAC open/retry conversations,
    /// until the instant produces no further work.
    fn settle(&mut self, recorder: &mut dyn Recorder) {
        loop {
            let frames = self.net.deliver_due(self.now);
            let mut progressed = !frames.is_empty();
            for env in frames {
                match (env.to, env.msg) {
                    (Addr::Node(node), Wire::Request(req)) => {
                        let replies = self.endpoints[node.as_usize()].handle(req);
                        for reply in replies {
                            // The reply leaves the node the moment the
                            // request arrived, regardless of how coarsely
                            // the caller ticks the cluster.
                            let _ = self.net.send(
                                Addr::Node(node),
                                Addr::Gac,
                                env.deliver_at,
                                Wire::Reply(reply),
                            );
                        }
                    }
                    (Addr::Gac, Wire::Reply(reply)) => {
                        let Addr::Node(from) = env.from else { continue };
                        self.gac.on_reply(from, &reply, env.deliver_at, recorder);
                    }
                    // A request addressed to the GAC or a reply addressed
                    // to a node would be a routing bug; drop it.
                    _ => {}
                }
            }
            progressed |= self.gac.drive(self.now, &mut self.net, recorder);
            if !progressed {
                break;
            }
        }
    }
}

impl Cluster<Lac> {
    /// A cluster of `nodes` plain [`Lac`]s with identical configuration.
    #[must_use]
    pub fn new(
        nodes: usize,
        lac: crate::lac::LacConfig,
        seed: u64,
        link: LinkConfig,
        config: NetGacConfig,
        policy: ProbePolicy,
    ) -> Self {
        Self::from_backends(
            (0..nodes).map(|_| Lac::new(lac)).collect(),
            seed,
            link,
            config,
            policy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lac::LacConfig;
    use crate::modes::ExecutionMode;
    use crate::target::ResourceRequest;
    use cmpqos_faults::FaultPlan;
    use cmpqos_obs::{NullRecorder, RingBufferRecorder};

    fn request(id: u32) -> AdmissionRequest {
        AdmissionRequest::builder(
            JobId::new(id),
            ResourceRequest::paper_job(),
            Cycles::new(100),
        )
        .mode(ExecutionMode::Strict)
        .build()
    }

    /// A job whose reservation outlives every assertion window below, so
    /// tests about placement survival aren't racing natural completion.
    fn long_request(id: u32) -> AdmissionRequest {
        AdmissionRequest::builder(
            JobId::new(id),
            ResourceRequest::paper_job(),
            Cycles::new(100_000),
        )
        .mode(ExecutionMode::Strict)
        .build()
    }

    /// Like [`long_request`], but with a deadline tight enough that the
    /// reservation must start (nearly) immediately — jobs cannot dodge a
    /// full node by queueing behind its current reservations in time.
    fn tight_request(id: u32, submit_at: Cycles) -> AdmissionRequest {
        AdmissionRequest::builder(
            JobId::new(id),
            ResourceRequest::paper_job(),
            Cycles::new(100_000),
        )
        .mode(ExecutionMode::Strict)
        .deadline(submit_at + Cycles::new(101_000))
        .build()
    }

    fn probe_req(seq: u64, epoch: u64, id: u32) -> NetRequest {
        NetRequest {
            seq,
            epoch,
            at: Cycles::new(10),
            body: RequestBody::Probe(request(id)),
        }
    }

    #[test]
    fn endpoint_processes_in_order_and_reacks_duplicates() {
        let mut ep = LacEndpoint::new(Lac::new(LacConfig::default()));
        // Out-of-order: seq 1 first, buffered; seq 0 releases both.
        assert!(ep.handle(probe_req(1, 0, 1)).is_empty());
        let replies = ep.handle(probe_req(0, 0, 0));
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].seq, 0);
        assert_eq!(replies[1].seq, 1);
        assert_eq!(ep.processed(), 2);
        // A duplicate re-acks from the cache without re-admitting.
        let again = ep.handle(probe_req(0, 0, 0));
        assert_eq!(again, vec![replies[0].clone()]);
        assert_eq!(ep.processed(), 2);
        assert_eq!(ep.duplicates(), 1);
        assert_eq!(ep.backend().reservations().len(), 2);
    }

    #[test]
    fn endpoint_epoch_bump_resynchronizes_over_a_lost_seq() {
        let mut ep = LacEndpoint::new(Lac::new(LacConfig::default()));
        assert_eq!(ep.handle(probe_req(0, 0, 0)).len(), 1);
        // seq 1 (epoch 0) was lost forever; the GAC gave up, bumped the
        // epoch, and moved on to seq 2. Without resync this would buffer
        // forever.
        let replies = ep.handle(probe_req(2, 1, 2));
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].seq, 2);
        // A straggler from the abandoned epoch is stale, not executed.
        assert!(ep.handle(probe_req(1, 0, 1)).is_empty());
        assert_eq!(ep.stale(), 1);
        assert_eq!(ep.processed(), 2);
    }

    fn quiet_cluster(nodes: usize, seed: u64, link: LinkConfig) -> Cluster<Lac> {
        Cluster::new(
            nodes,
            LacConfig::default(),
            seed,
            link,
            NetGacConfig::default(),
            ProbePolicy::FirstFit,
        )
    }

    #[test]
    fn cluster_places_jobs_over_a_clean_network() {
        let mut cluster = quiet_cluster(4, 1, LinkConfig::default());
        let mut rec = NullRecorder;
        for i in 0..8u32 {
            cluster.gac_mut().submit(request(i), Cycles::ZERO, &mut rec);
        }
        cluster.run_until(Cycles::new(5_000), &mut rec);
        assert!(cluster.gac().idle());
        let accepted = cluster
            .gac()
            .decisions()
            .values()
            .filter(|(_, d)| d.is_accepted())
            .count();
        assert_eq!(accepted, 8, "{:?}", cluster.gac().decisions());
        // GAC placement table and LAC reservation tables agree.
        for (job, (node, _)) in cluster.gac().placements() {
            assert!(cluster
                .endpoint(*node)
                .backend()
                .reservations()
                .iter()
                .any(|r| r.id == *job));
        }
        // Reservations run out; placements retire as completions.
        cluster.run_until(Cycles::new(100_000), &mut rec);
        assert!(cluster.gac().placements().is_empty());
        assert_eq!(cluster.gac().completed().len(), 8);
    }

    #[test]
    fn duplicates_and_reorder_leave_placements_identical_to_a_quiet_net() {
        let quiet = {
            let mut c = quiet_cluster(4, 7, LinkConfig::default());
            let mut rec = NullRecorder;
            for i in 0..12u32 {
                c.gac_mut().submit(request(i), Cycles::ZERO, &mut rec);
            }
            c.run_until(Cycles::new(20_000), &mut rec);
            c.gac().decisions().clone()
        };
        let noisy = {
            let link = LinkConfig::default().duplicate(0.5).reorder(15);
            let mut c = quiet_cluster(4, 7, link);
            let mut rec = NullRecorder;
            for i in 0..12u32 {
                c.gac_mut().submit(request(i), Cycles::ZERO, &mut rec);
            }
            c.run_until(Cycles::new(20_000), &mut rec);
            assert!(c.gac().stats().stale_replies > 0 || c.net().stats().duplicated > 0);
            c.gac().decisions().clone()
        };
        assert_eq!(quiet, noisy, "dup/reorder must not change any decision");
    }

    #[test]
    fn partition_suspects_without_evacuating_and_heal_recovers() {
        let mut cluster = quiet_cluster(2, 3, LinkConfig::default());
        let mut rec = RingBufferRecorder::new(256);
        cluster
            .gac_mut()
            .submit(long_request(0), Cycles::ZERO, &mut rec);
        cluster.run_until(Cycles::new(500), &mut rec);
        assert_eq!(
            cluster.gac().placements().get(&JobId::new(0)).map(|p| p.0),
            Some(NodeId::new(0))
        );
        let plan = FaultPlan::new()
            .link_partition(Cycles::new(500), NodeId::new(0))
            .build();
        cluster.apply(plan.injections()[0], &mut rec);
        cluster
            .gac_mut()
            .submit(long_request(1), Cycles::new(500), &mut rec);
        cluster.run_until(Cycles::new(10_000), &mut rec);
        // Job 1 spilled to node 1; node 0 is Suspect, not Dead, its
        // placement was not evacuated, and the job stays put.
        assert_eq!(
            cluster.gac().node_health(NodeId::new(0)),
            NodeHealth::Suspect
        );
        assert_eq!(
            cluster.gac().decisions().get(&JobId::new(1)).map(|d| d.0),
            Some(Some(NodeId::new(1)))
        );
        assert_eq!(
            cluster.gac().placements().get(&JobId::new(0)).map(|p| p.0),
            Some(NodeId::new(0)),
            "partition must not evacuate the placement"
        );
        assert_eq!(rec.counters().migrated, 0);
        assert_eq!(rec.counters().reservations_revoked, 0);
        // Heal before the dead timeout expires; the parked ping
        // re-contacts the node, health recovers, and the rejoin
        // reconciliation confirms the placement.
        let heal = FaultPlan::new()
            .link_heal(Cycles::new(10_000), NodeId::new(0))
            .build();
        cluster.apply(heal.injections()[0], &mut rec);
        cluster.run_until(Cycles::new(40_000), &mut rec);
        assert_eq!(
            cluster.gac().node_health(NodeId::new(0)),
            NodeHealth::Healthy
        );
        assert_eq!(cluster.gac().pending_reconciles(), 0);
        assert_eq!(
            cluster.gac().placements().get(&JobId::new(0)).map(|p| p.0),
            Some(NodeId::new(0)),
            "reconciliation found nothing to repair"
        );
        assert!(cluster.gac().idle());
    }

    #[test]
    fn lost_accept_reply_creates_an_orphan_that_reconciliation_revokes() {
        let mut cluster = quiet_cluster(1, 5, LinkConfig::default());
        let mut rec = RingBufferRecorder::new(256);
        // Every node→GAC frame is eaten for a while: the LAC admits, but
        // no accept reply (or its retransmitted re-acks) arrives.
        cluster
            .net
            .force_drops(Addr::Node(NodeId::new(0)), Addr::Gac, 8);
        cluster
            .gac_mut()
            .submit(long_request(0), Cycles::ZERO, &mut rec);
        // The probe conversation gives up (~1.5k cycles); the first
        // reconcile is parked but has not fired yet at 1.6k.
        cluster.run_until(Cycles::new(1_600), &mut rec);
        assert_eq!(
            cluster.gac().decisions().get(&JobId::new(0)).map(|d| d.0),
            Some(None),
            "the GAC rejected the job for lack of an answer"
        );
        assert_eq!(
            cluster
                .endpoint(NodeId::new(0))
                .backend()
                .reservations()
                .len(),
            1,
            "the LAC holds the orphan"
        );
        assert_eq!(cluster.gac().pending_reconciles(), 1);
        // The parked reconcile revokes the orphan and eventually gets an
        // answer through once the drop budget is exhausted.
        cluster.run_until(Cycles::new(40_000), &mut rec);
        assert_eq!(cluster.gac().pending_reconciles(), 0);
        assert!(cluster
            .endpoint(NodeId::new(0))
            .backend()
            .reservations()
            .is_empty());
        assert!(rec.counters().reconciled >= 1);
        assert!(cluster.gac().idle());
    }

    #[test]
    fn revoke_conversation_cancels_on_both_sides() {
        let mut cluster = quiet_cluster(1, 9, LinkConfig::default());
        let mut rec = RingBufferRecorder::new(64);
        cluster.gac_mut().submit(request(0), Cycles::ZERO, &mut rec);
        cluster.run_until(Cycles::new(50), &mut rec);
        assert_eq!(cluster.gac().placements().len(), 1);
        cluster.gac_mut().revoke(JobId::new(0));
        cluster.run_until(Cycles::new(100), &mut rec);
        assert!(cluster.gac().placements().is_empty());
        assert!(cluster.gac().revoked().contains(&JobId::new(0)));
        assert!(cluster
            .endpoint(NodeId::new(0))
            .backend()
            .reservations()
            .is_empty());
        assert_eq!(rec.counters().reservations_revoked, 1);
    }

    #[test]
    fn node_fault_evacuates_to_survivors_over_the_network() {
        let mut cluster = quiet_cluster(2, 11, LinkConfig::default());
        let mut rec = RingBufferRecorder::new(128);
        cluster
            .gac_mut()
            .submit(long_request(0), Cycles::ZERO, &mut rec);
        cluster.run_until(Cycles::new(50), &mut rec);
        assert_eq!(
            cluster.gac().placements().get(&JobId::new(0)).map(|p| p.0),
            Some(NodeId::new(0))
        );
        let plan = FaultPlan::new()
            .node_fault(Cycles::new(50), NodeId::new(0))
            .build();
        cluster.apply(plan.injections()[0], &mut rec);
        cluster.run_until(Cycles::new(1_000), &mut rec);
        assert_eq!(cluster.gac().node_health(NodeId::new(0)), NodeHealth::Dead);
        assert_eq!(
            cluster.gac().placements().get(&JobId::new(0)).map(|p| p.0),
            Some(NodeId::new(1)),
            "the reservation migrated over the wire"
        );
        assert_eq!(rec.counters().migrated, 1);
    }

    #[test]
    fn join_handshake_brings_a_node_live_and_placeable() {
        let mut cluster = quiet_cluster(1, 13, LinkConfig::default());
        let mut rec = RingBufferRecorder::new(128);
        // Fill node 0 (2 x 7 = 14 of 16 ways; a third concurrent paper
        // job cannot fit, and the tight deadlines forbid queueing in time).
        cluster
            .gac_mut()
            .submit(tight_request(0, Cycles::ZERO), Cycles::ZERO, &mut rec);
        cluster
            .gac_mut()
            .submit(tight_request(1, Cycles::ZERO), Cycles::ZERO, &mut rec);
        cluster.run_until(Cycles::new(1_000), &mut rec);
        assert_eq!(cluster.gac().placements().len(), 2);
        let joined = cluster.join_node(Lac::new(LacConfig::default()), Cycles::new(1_000));
        assert_eq!(joined, NodeId::new(1));
        assert_eq!(cluster.gac().member_state(joined), MemberState::Joining);
        // The join-announce handshake completes over the wire.
        cluster.run_until(Cycles::new(2_000), &mut rec);
        assert_eq!(cluster.gac().member_state(joined), MemberState::Live);
        assert_eq!(rec.counters().nodes_joined, 1);
        // The spill that had nowhere to go now lands on the joined node.
        cluster.gac_mut().submit(
            tight_request(2, Cycles::new(2_000)),
            Cycles::new(2_000),
            &mut rec,
        );
        cluster.run_until(Cycles::new(3_000), &mut rec);
        assert_eq!(
            cluster.gac().placements().get(&JobId::new(2)).map(|p| p.0),
            Some(joined)
        );
        assert!(cluster.gac().idle());
    }

    #[test]
    fn graceful_drain_migrates_over_the_wire_then_departs() {
        let mut cluster = quiet_cluster(2, 17, LinkConfig::default());
        let mut rec = RingBufferRecorder::new(256);
        cluster
            .gac_mut()
            .submit(long_request(0), Cycles::ZERO, &mut rec);
        cluster
            .gac_mut()
            .submit(long_request(1), Cycles::ZERO, &mut rec);
        cluster.run_until(Cycles::new(1_000), &mut rec);
        assert_eq!(
            cluster.gac().placements().get(&JobId::new(0)).map(|p| p.0),
            Some(NodeId::new(0))
        );
        cluster.drain_node(NodeId::new(0), Cycles::new(1_000));
        assert_eq!(
            cluster.gac().member_state(NodeId::new(0)),
            MemberState::Draining
        );
        cluster.run_until(Cycles::new(10_000), &mut rec);
        // Both reservations moved to node 1 over the wire; only then did
        // the drained node depart. No admitted job was lost.
        assert_eq!(
            cluster.gac().member_state(NodeId::new(0)),
            MemberState::Left
        );
        assert_eq!(rec.counters().nodes_drained, 1);
        for (job, (node, _)) in cluster.gac().placements() {
            assert_eq!(*node, NodeId::new(1), "{job:?} moved off the drained node");
        }
        assert_eq!(cluster.gac().placements().len(), 2);
        assert!(cluster
            .endpoint(NodeId::new(0))
            .backend()
            .reservations()
            .is_empty());
        assert_eq!(
            cluster
                .endpoint(NodeId::new(1))
                .backend()
                .reservations()
                .len(),
            2
        );
        // A drained node is out of the placement rotation.
        cluster
            .gac_mut()
            .submit(long_request(2), Cycles::new(10_000), &mut rec);
        cluster.run_until(Cycles::new(11_000), &mut rec);
        assert_eq!(
            cluster.gac().placements().get(&JobId::new(2)).map(|p| p.0),
            Some(NodeId::new(1))
        );
        assert!(cluster.gac().idle());
    }

    #[test]
    fn restart_resets_the_endpoint_and_reconciles_before_reentering_live() {
        let mut cluster = quiet_cluster(1, 19, LinkConfig::default());
        let mut rec = RingBufferRecorder::new(256);
        cluster
            .gac_mut()
            .submit(long_request(0), Cycles::ZERO, &mut rec);
        cluster.run_until(Cycles::new(1_000), &mut rec);
        assert!(cluster.endpoint(NodeId::new(0)).processed() > 0);
        // The node restarts: protocol state is wiped (the journal-recovered
        // backend keeps its reservations), and the GAC must re-handshake at
        // a higher epoch — without the bump, the fresh endpoint would
        // buffer the next mid-stream sequence number forever.
        cluster.restart_node(NodeId::new(0), Cycles::new(1_000), &mut rec);
        assert_eq!(cluster.endpoint(NodeId::new(0)).processed(), 0);
        assert_eq!(
            cluster.gac().member_state(NodeId::new(0)),
            MemberState::Joining
        );
        cluster.run_until(Cycles::new(10_000), &mut rec);
        // Reconciliation compared the recovered table against the GAC's
        // placement view, found them in agreement, and re-admitted the node.
        assert_eq!(
            cluster.gac().member_state(NodeId::new(0)),
            MemberState::Live
        );
        assert_eq!(cluster.gac().pending_reconciles(), 0);
        assert_eq!(
            cluster.gac().placements().get(&JobId::new(0)).map(|p| p.0),
            Some(NodeId::new(0)),
            "the placement survived the restart"
        );
        assert!(rec.counters().reconciled >= 1);
        assert_eq!(rec.counters().nodes_joined, 1);
        assert!(cluster.gac().idle());
    }

    #[test]
    fn heartbeats_renew_leases_and_a_freeze_expires_them() {
        let config = NetGacConfig {
            gac: GacConfig::builder()
                .dead_timeout(Cycles::new(2_000))
                .build(),
            heartbeat_every: Cycles::new(500),
            lease_ttl: Cycles::new(2_000),
            ..NetGacConfig::default()
        };
        let mut cluster = Cluster::new(
            2,
            LacConfig::default(),
            23,
            LinkConfig::default(),
            config,
            ProbePolicy::FirstFit,
        );
        let mut rec = RingBufferRecorder::new(512);
        cluster
            .gac_mut()
            .submit(long_request(0), Cycles::ZERO, &mut rec);
        cluster.run_until(Cycles::new(20_000), &mut rec);
        // Heartbeat acks kept renewing the lease well past its TTL.
        assert!(rec.counters().leases_renewed > 0);
        assert_eq!(rec.counters().leases_expired, 0);
        assert!(cluster.gac().leases().contains_key(&JobId::new(0)));
        // Freeze renewals on the placed node: acks still arrive (the node
        // stays Healthy — this is not a liveness failure), but the lease
        // runs out TTL + grace later and the job is revoked and re-placed.
        cluster.gac_mut().freeze_leases(NodeId::new(0));
        cluster.run_until(Cycles::new(40_000), &mut rec);
        assert!(rec.counters().leases_expired >= 1);
        assert_eq!(
            cluster.gac().node_health(NodeId::new(0)),
            NodeHealth::Healthy
        );
        assert_eq!(
            cluster.gac().placements().get(&JobId::new(0)).map(|p| p.0),
            Some(NodeId::new(1)),
            "the expired lease's job migrated"
        );
    }

    #[test]
    fn same_seed_same_everything() {
        let run = |seed: u64| {
            let link = LinkConfig::default().drop(0.2).duplicate(0.2).jitter(20);
            let mut c = quiet_cluster(3, seed, link);
            let mut rec = NullRecorder;
            for i in 0..10u32 {
                c.gac_mut()
                    .submit(request(i), Cycles::new(u64::from(i) * 50), &mut rec);
            }
            c.run_until(Cycles::new(100_000), &mut rec);
            (
                c.gac().decisions().clone(),
                c.gac().stats(),
                c.net().stats(),
            )
        };
        assert_eq!(run(42), run(42));
    }
}
