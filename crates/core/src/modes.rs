//! QoS execution modes and mode-downgrade rules (Sections 3.3–3.4).

use cmpqos_types::{Cycles, Percent, Ways};
use std::fmt;

/// How strictly a job's QoS target must be followed.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ExecutionMode {
    /// Rigid throughput and deadline: resources and timeslot are strictly
    /// reserved.
    Strict,
    /// Rigid deadline, but tolerates up to `X` slowdown versus the Strict
    /// reservation — enabling resource stealing. The reservation is
    /// extended to `tw · (1 + X)`.
    Elastic(Percent),
    /// No rigid throughput or deadline: runs on spare resources only, with
    /// no reservation.
    Opportunistic,
}

impl ExecutionMode {
    /// Whether this mode reserves resources (Strict and Elastic do).
    #[must_use]
    pub fn reserves_resources(&self) -> bool {
        !matches!(self, ExecutionMode::Opportunistic)
    }

    /// The reservation duration for a job with maximum wall-clock `tw`:
    /// `tw` for Strict, `tw · (1 + X)` for Elastic(X), none for
    /// Opportunistic.
    #[must_use]
    pub fn reservation_duration(&self, tw: Cycles) -> Option<Cycles> {
        match self {
            ExecutionMode::Strict => Some(tw),
            ExecutionMode::Elastic(x) => Some(tw.scale(1.0 + x.fraction())),
            ExecutionMode::Opportunistic => None,
        }
    }

    /// Whether this mode's jobs donate capacity to resource stealing.
    #[must_use]
    pub fn is_stealing_donor(&self) -> bool {
        matches!(self, ExecutionMode::Elastic(_))
    }

    /// How many of a reservation's `ways` this mode can give up under a
    /// capacity fault without violating its guarantee: `floor(ways · X)`
    /// for Elastic(X), whose `tw · (1 + X)` reservation already absorbs a
    /// proportional slowdown (Section 3.3 linear model); zero for Strict
    /// (rigid throughput) and Opportunistic (nothing reserved).
    #[must_use]
    pub fn fault_absorbable_ways(&self, ways: Ways) -> Ways {
        match self {
            ExecutionMode::Elastic(x) => {
                Ways::new((f64::from(ways.get()) * x.fraction()).floor() as u16)
            }
            ExecutionMode::Strict | ExecutionMode::Opportunistic => Ways::ZERO,
        }
    }
}

impl From<ExecutionMode> for cmpqos_obs::Mode {
    fn from(mode: ExecutionMode) -> Self {
        match mode {
            ExecutionMode::Strict => cmpqos_obs::Mode::Strict,
            ExecutionMode::Elastic(x) => cmpqos_obs::Mode::Elastic(x),
            ExecutionMode::Opportunistic => cmpqos_obs::Mode::Opportunistic,
        }
    }
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionMode::Strict => f.write_str("Strict"),
            ExecutionMode::Elastic(x) => write!(f, "Elastic({x})"),
            ExecutionMode::Opportunistic => f.write_str("Opportunistic"),
        }
    }
}

/// The largest `X` such that downgrading a Strict job (arrival `ta`,
/// wall-clock `tw`, deadline `td`) to `Elastic(X)` still guarantees its
/// deadline: `X = ((td − ta) − tw) / tw` (Section 3.3). `None` when the
/// job has no slack (or the deadline is infeasible).
///
/// # Examples
///
/// ```
/// use cmpqos_core::modes::elastic_downgrade_slack;
/// use cmpqos_types::Cycles;
///
/// // td - ta = 2 tw: the job tolerates a 100% slowdown.
/// let x = elastic_downgrade_slack(Cycles::new(0), Cycles::new(200), Cycles::new(100));
/// assert_eq!(x.unwrap().value(), 100.0);
/// ```
#[must_use]
pub fn elastic_downgrade_slack(ta: Cycles, td: Cycles, tw: Cycles) -> Option<Percent> {
    if tw == Cycles::ZERO {
        return None;
    }
    let window = td.saturating_sub(ta);
    if window <= tw {
        return None;
    }
    let slack = (window - tw).as_f64() / tw.as_f64();
    Some(Percent::from_fraction(slack))
}

/// Plan for automatically downgrading a Strict job to Opportunistic while
/// still guaranteeing its deadline (Section 3.4): the job's resources stay
/// reserved in the **latest** feasible timeslot `[td − tw, td]`; the job
/// runs opportunistically before `switch_back_at = td − tw` and reverts to
/// Strict there if it has not completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoDowngradePlan {
    /// Start of the reserved (fallback) timeslot; the moment the job must
    /// revert to Strict execution.
    pub switch_back_at: Cycles,
    /// End of the reserved timeslot (= the deadline).
    pub reservation_end: Cycles,
}

/// Computes the automatic-downgrade plan, or `None` when the job has no
/// slack (`td − ta ≤ tw` — it must start Strict immediately).
///
/// The reserved slot is placed as late as possible to maximize the chance
/// the job completes opportunistically first and the reservation is
/// reclaimed (Section 3.4).
#[must_use]
pub fn auto_downgrade_plan(ta: Cycles, td: Cycles, tw: Cycles) -> Option<AutoDowngradePlan> {
    let window = td.saturating_sub(ta);
    if window <= tw {
        return None;
    }
    Some(AutoDowngradePlan {
        switch_back_at: td - tw,
        reservation_end: td,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_durations() {
        let tw = Cycles::new(1000);
        assert_eq!(
            ExecutionMode::Strict.reservation_duration(tw),
            Some(Cycles::new(1000))
        );
        assert_eq!(
            ExecutionMode::Elastic(Percent::new(5.0)).reservation_duration(tw),
            Some(Cycles::new(1050))
        );
        assert_eq!(ExecutionMode::Opportunistic.reservation_duration(tw), None);
    }

    #[test]
    fn only_reserved_modes_reserve() {
        assert!(ExecutionMode::Strict.reserves_resources());
        assert!(ExecutionMode::Elastic(Percent::new(10.0)).reserves_resources());
        assert!(!ExecutionMode::Opportunistic.reserves_resources());
    }

    #[test]
    fn only_elastic_donates() {
        assert!(!ExecutionMode::Strict.is_stealing_donor());
        assert!(ExecutionMode::Elastic(Percent::new(5.0)).is_stealing_donor());
        assert!(!ExecutionMode::Opportunistic.is_stealing_donor());
    }

    #[test]
    fn elastic_slack_formula() {
        // Tight deadline (1.05 tw): 5% slack.
        let x =
            elastic_downgrade_slack(Cycles::new(0), Cycles::new(105), Cycles::new(100)).unwrap();
        assert!((x.value() - 5.0).abs() < 1e-9);
        // No slack at all.
        assert_eq!(
            elastic_downgrade_slack(Cycles::new(0), Cycles::new(100), Cycles::new(100)),
            None
        );
        // Infeasible deadline.
        assert_eq!(
            elastic_downgrade_slack(Cycles::new(50), Cycles::new(100), Cycles::new(100)),
            None
        );
        // Zero wall-clock is degenerate.
        assert_eq!(
            elastic_downgrade_slack(Cycles::new(0), Cycles::new(100), Cycles::ZERO),
            None
        );
    }

    #[test]
    fn auto_plan_reserves_latest_slot() {
        let plan = auto_downgrade_plan(Cycles::new(0), Cycles::new(300), Cycles::new(100)).unwrap();
        assert_eq!(plan.switch_back_at, Cycles::new(200));
        assert_eq!(plan.reservation_end, Cycles::new(300));
        // Tight job: no plan.
        assert_eq!(
            auto_downgrade_plan(Cycles::new(250), Cycles::new(300), Cycles::new(100)),
            None
        );
    }

    #[test]
    fn display_shows_slack() {
        assert_eq!(
            ExecutionMode::Elastic(Percent::new(5.0)).to_string(),
            "Elastic(5.0%)"
        );
        assert_eq!(ExecutionMode::Strict.to_string(), "Strict");
    }
}
