//! The bounded work-stealing worker pool.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Pool tuning for an [`Engine`].
///
/// Construct with [`PoolConfig::new`] and chain setters; the struct is
/// `#[non_exhaustive]` so new knobs can land without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct PoolConfig {
    /// Concurrency bound (clamped to at least 1; `1` is exactly serial).
    pub jobs: usize,
    /// Per-cell time budget. A cell whose execution exceeds the budget is
    /// reported as [`CellFailure::TimedOut`] and its result discarded.
    ///
    /// Honest limitation: safe Rust cannot preempt a running closure, so
    /// the watchdog fires when the cell *returns* (or panics) — a cell
    /// that never yields keeps its worker busy until the process exits.
    /// What the budget guarantees is that a stalled cell's late result
    /// never silently enters the output set.
    pub cell_timeout: Option<Duration>,
}

impl PoolConfig {
    /// A config running up to `jobs` cells concurrently, with no cell
    /// budget.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            cell_timeout: None,
        }
    }

    /// Sets the per-cell time budget (see [`PoolConfig::cell_timeout`]).
    #[must_use]
    pub fn cell_timeout(mut self, budget: Duration) -> Self {
        self.cell_timeout = Some(budget);
        self
    }
}

impl Default for PoolConfig {
    /// `CMPQOS_JOBS` when set (0 = auto), otherwise the machine's
    /// available parallelism; no cell budget.
    fn default() -> Self {
        Self::new(crate::jobs_from_env().unwrap_or_else(crate::default_jobs))
    }
}

/// A cell that failed to produce a usable result.
///
/// Failures are isolated per cell: one bad cell never tears down the rest
/// of the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellFailure {
    /// The cell panicked; the payload's message is preserved
    /// ([`std::panic::catch_unwind`] inside the worker).
    Panicked {
        /// The failed cell's index in the input order.
        index: usize,
        /// The panic message (`"<non-string panic payload>"` when the
        /// payload was neither `&str` nor `String`).
        message: String,
    },
    /// The cell ran longer than [`PoolConfig::cell_timeout`]; its result
    /// was discarded.
    TimedOut {
        /// The failed cell's index in the input order.
        index: usize,
        /// The configured budget the cell exceeded.
        budget: Duration,
        /// How long the cell actually ran.
        elapsed: Duration,
    },
}

impl CellFailure {
    /// The failed cell's index in the input order, whatever the failure
    /// mode.
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            Self::Panicked { index, .. } | Self::TimedOut { index, .. } => *index,
        }
    }
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Panicked { index, message } => {
                write!(f, "cell {index} panicked: {message}")
            }
            Self::TimedOut {
                index,
                budget,
                elapsed,
            } => write!(
                f,
                "cell {index} timed out: ran {elapsed:?}, budget {budget:?}"
            ),
        }
    }
}

impl std::error::Error for CellFailure {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A deterministic parallel executor over independent cells.
///
/// `Engine` owns nothing but a [`PoolConfig`]; every [`Engine::run`] /
/// [`Engine::try_run`] call spins up a fresh scoped pool, distributes the
/// cells round-robin over per-worker deques, and lets idle workers steal
/// from the back of their peers' queues. Results always come back in cell
/// order, so callers cannot observe scheduling at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    config: PoolConfig,
}

impl Engine {
    /// An engine running up to `jobs` cells concurrently (`jobs` is
    /// clamped to at least 1; `1` is exactly serial execution).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self::with_config(PoolConfig::new(jobs))
    }

    /// An engine with explicit pool tuning (width, cell watchdog).
    #[must_use]
    pub fn with_config(config: PoolConfig) -> Self {
        let mut config = config;
        config.jobs = config.jobs.max(1);
        Self { config }
    }

    /// The serial engine: cells run one after another on the caller's
    /// thread (still with panic isolation).
    #[must_use]
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// `CMPQOS_JOBS` when set (0 = auto), otherwise the machine's
    /// available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        Self::with_config(PoolConfig::default())
    }

    /// The configured concurrency bound.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.config.jobs
    }

    /// The full pool tuning.
    #[must_use]
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Runs `f` over every cell and returns the outcomes **in cell
    /// order**: `result[i]` is `f(i, inputs[i])`, or the captured failure
    /// (panic, or blown [`PoolConfig::cell_timeout`] budget) if that cell
    /// went wrong. All cells run to completion regardless of failures
    /// elsewhere.
    pub fn try_run<I, T, F>(&self, inputs: Vec<I>, f: F) -> Vec<Result<T, CellFailure>>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        // The watchdog clock for real runs is wall time; tests inject a
        // deterministic clock through `try_run_clocked`.
        let start = Instant::now();
        self.try_run_clocked(inputs, f, &move || start.elapsed())
    }

    /// [`Engine::try_run`] with an injected monotonic clock (the cell
    /// watchdog measures each cell between two `clock()` samples).
    pub(crate) fn try_run_clocked<I, T, F, C>(
        &self,
        inputs: Vec<I>,
        f: F,
        clock: &C,
    ) -> Vec<Result<T, CellFailure>>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
        C: Fn() -> Duration + Sync,
    {
        let n = inputs.len();
        let workers = self.config.jobs.min(n);
        let budget = self.config.cell_timeout;
        let call = |index: usize, input: I| -> Result<T, CellFailure> {
            let began = clock();
            let outcome = catch_unwind(AssertUnwindSafe(|| f(index, input)));
            let elapsed = clock().saturating_sub(began);
            let value = outcome.map_err(|payload| CellFailure::Panicked {
                index,
                message: panic_message(payload),
            })?;
            if let Some(budget) = budget {
                if elapsed > budget {
                    return Err(CellFailure::TimedOut {
                        index,
                        budget,
                        elapsed,
                    });
                }
            }
            Ok(value)
        };

        if workers <= 1 {
            return inputs
                .into_iter()
                .enumerate()
                .map(|(i, input)| call(i, input))
                .collect();
        }

        // Round-robin the cells over per-worker deques. Workers pop from
        // the front of their own deque and steal from the back of their
        // peers', so the common case is contention-free and the tail of a
        // skewed distribution still spreads out.
        let mut queues: Vec<Mutex<VecDeque<(usize, I)>>> = (0..workers)
            .map(|_| Mutex::new(VecDeque::with_capacity(n.div_ceil(workers))))
            .collect();
        for (i, input) in inputs.into_iter().enumerate() {
            queues[i % workers]
                .get_mut()
                .expect("fresh")
                .push_back((i, input));
        }
        let queues = &queues;

        let mut results: Vec<Option<Result<T, CellFailure>>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let (tx, rx) = mpsc::channel::<(usize, Result<T, CellFailure>)>();

        std::thread::scope(|scope| {
            for me in 0..workers {
                let tx = tx.clone();
                let call = &call;
                scope.spawn(move || {
                    loop {
                        // Own queue first, then sweep the peers once; when
                        // every queue is empty the remaining cells are all
                        // in flight on other workers and we are done.
                        let mut task = queues[me].lock().expect("queue").pop_front();
                        if task.is_none() {
                            for other in (0..workers).filter(|&o| o != me) {
                                task = queues[other].lock().expect("queue").pop_back();
                                if task.is_some() {
                                    break;
                                }
                            }
                        }
                        let Some((index, input)) = task else { break };
                        // A receiver that hung up means the caller is
                        // gone; nothing useful left to do.
                        if tx.send((index, call(index, input))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for (index, outcome) in rx {
                results[index] = Some(outcome);
            }
        });

        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("cell {i} produced no outcome")))
            .collect()
    }

    /// [`Engine::try_run`] for grids where a cell failure is fatal: every
    /// cell still runs to completion, then the first failure is re-raised
    /// with a summary of all of them.
    ///
    /// # Panics
    ///
    /// Panics if any cell failed.
    pub fn run<I, T, F>(&self, inputs: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let outcomes = self.try_run(inputs, f);
        let failures: Vec<&CellFailure> =
            outcomes.iter().filter_map(|o| o.as_ref().err()).collect();
        assert!(
            failures.is_empty(),
            "{} of {} cells failed: {}",
            failures.len(),
            outcomes.len(),
            failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
        outcomes
            .into_iter()
            .map(|o| o.expect("failures checked above"))
            .collect()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_come_back_in_cell_order() {
        let engine = Engine::new(4);
        // Uneven work so completion order differs from cell order.
        let out = engine.run((0..32u64).collect(), |i, n| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            n * 10
        });
        assert_eq!(out, (0..32u64).map(|n| n * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize, n: u64| n.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
        let inputs: Vec<u64> = (0..57).map(|i| i * 31 % 13).collect();
        let serial = Engine::serial().run(inputs.clone(), f);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(
                Engine::new(jobs).run(inputs.clone(), f),
                serial,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn a_panicking_cell_is_isolated() {
        let engine = Engine::new(3);
        let out = engine.try_run((0..10u32).collect(), |_, n| {
            assert!(n != 4, "cell four exploded");
            n + 1
        });
        for (i, o) in out.iter().enumerate() {
            if i == 4 {
                let failure = o.as_ref().expect_err("cell 4 panicked");
                assert_eq!(failure.index(), 4);
                assert!(
                    matches!(
                        failure,
                        CellFailure::Panicked { message, .. }
                            if message.contains("cell four exploded")
                    ),
                    "{failure}"
                );
            } else {
                assert_eq!(o.as_ref().expect("healthy cell"), &(i as u32 + 1));
            }
        }
    }

    #[test]
    fn the_watchdog_times_out_a_stalled_cell_deterministically() {
        // Simulated time: each cell advances the fake clock by its own
        // "runtime"; cell 2 stalls for 100 ms against a 10 ms budget. The
        // serial path makes the clock sequence exactly reproducible.
        let fake_ms = AtomicU64::new(0);
        let clock = || Duration::from_millis(fake_ms.load(Ordering::SeqCst));
        let engine =
            Engine::with_config(PoolConfig::new(1).cell_timeout(Duration::from_millis(10)));
        let out = engine.try_run_clocked(
            (0..4u32).collect(),
            |i, n| {
                fake_ms.fetch_add(if i == 2 { 100 } else { 1 }, Ordering::SeqCst);
                n + 1
            },
            &clock,
        );
        for (i, o) in out.iter().enumerate() {
            if i == 2 {
                assert_eq!(
                    o.as_ref().expect_err("cell 2 blew its budget"),
                    &CellFailure::TimedOut {
                        index: 2,
                        budget: Duration::from_millis(10),
                        elapsed: Duration::from_millis(100),
                    }
                );
            } else {
                assert_eq!(o.as_ref().expect("within budget"), &(i as u32 + 1));
            }
        }
    }

    #[test]
    fn the_watchdog_times_out_on_wall_clock_in_try_run() {
        let engine = Engine::with_config(PoolConfig::new(2).cell_timeout(Duration::from_millis(5)));
        let out = engine.try_run(vec![0u8, 1], |i, x| {
            if i == 1 {
                std::thread::sleep(Duration::from_millis(50));
            }
            x
        });
        assert_eq!(out[0].as_ref().expect("fast cell passes"), &0);
        let failure = out[1].as_ref().expect_err("slow cell times out");
        assert_eq!(failure.index(), 1);
        assert!(
            matches!(
                failure,
                CellFailure::TimedOut { budget, elapsed, .. }
                    if *budget == Duration::from_millis(5) && *elapsed >= Duration::from_millis(50)
            ),
            "{failure}"
        );
    }

    #[test]
    fn a_panic_in_a_stalled_cell_stays_a_panic() {
        // The panic carries more diagnostic value than the blown budget.
        let engine = Engine::with_config(PoolConfig::new(1).cell_timeout(Duration::from_millis(1)));
        let fake_ms = AtomicU64::new(0);
        let clock = || Duration::from_millis(fake_ms.load(Ordering::SeqCst));
        let out = engine.try_run_clocked(
            vec![0u8],
            |_, _| -> u8 {
                fake_ms.fetch_add(1_000, Ordering::SeqCst);
                panic!("stalled and then died");
            },
            &clock,
        );
        assert!(
            matches!(
                out[0].as_ref().expect_err("cell panicked"),
                CellFailure::Panicked { message, .. } if message.contains("stalled and then died")
            ),
            "{:?}",
            out[0]
        );
    }

    #[test]
    fn failure_displays_name_the_cell_and_mode() {
        let p = CellFailure::Panicked {
            index: 3,
            message: "boom".into(),
        };
        assert_eq!(p.to_string(), "cell 3 panicked: boom");
        let t = CellFailure::TimedOut {
            index: 7,
            budget: Duration::from_millis(10),
            elapsed: Duration::from_millis(25),
        };
        assert_eq!(t.to_string(), "cell 7 timed out: ran 25ms, budget 10ms");
        assert_eq!(t.index(), 7);
    }

    #[test]
    #[should_panic(expected = "1 of 3 cells failed")]
    fn run_reraises_failures_after_completion() {
        Engine::new(2).run(vec![1u32, 2, 3], |_, n| {
            assert!(n != 2, "boom");
            n
        });
    }

    #[test]
    fn zero_and_empty_edges() {
        assert_eq!(Engine::new(0).jobs(), 1);
        assert_eq!(Engine::with_config(PoolConfig::new(0)).jobs(), 1);
        let out: Vec<u8> = Engine::new(8).run(Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }
}
