//! The bounded work-stealing worker pool.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

/// A cell that panicked instead of producing a result.
///
/// The panic is caught inside the worker ([`std::panic::catch_unwind`]),
/// so one bad cell never tears down the rest of the run; the payload's
/// message is preserved for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The failed cell's index in the input order.
    pub index: usize,
    /// The panic message (`"<non-string panic payload>"` when the payload
    /// was neither `&str` nor `String`).
    pub message: String,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for CellFailure {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A deterministic parallel executor over independent cells.
///
/// `Engine` owns nothing but a worker count; every [`Engine::run`] /
/// [`Engine::try_run`] call spins up a fresh scoped pool, distributes the
/// cells round-robin over per-worker deques, and lets idle workers steal
/// from the back of their peers' queues. Results always come back in cell
/// order, so callers cannot observe scheduling at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    jobs: usize,
}

impl Engine {
    /// An engine running up to `jobs` cells concurrently (`jobs` is
    /// clamped to at least 1; `1` is exactly serial execution).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The serial engine: cells run one after another on the caller's
    /// thread (still with panic isolation).
    #[must_use]
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// `CMPQOS_JOBS` when set (0 = auto), otherwise the machine's
    /// available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(crate::jobs_from_env().unwrap_or_else(crate::default_jobs))
    }

    /// The configured concurrency bound.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every cell and returns the outcomes **in cell
    /// order**: `result[i]` is `f(i, inputs[i])`, or the captured panic if
    /// that cell blew up. All cells run to completion regardless of
    /// failures elsewhere.
    pub fn try_run<I, T, F>(&self, inputs: Vec<I>, f: F) -> Vec<Result<T, CellFailure>>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let n = inputs.len();
        let workers = self.jobs.min(n);
        let call = |index: usize, input: I| -> Result<T, CellFailure> {
            catch_unwind(AssertUnwindSafe(|| f(index, input))).map_err(|payload| CellFailure {
                index,
                message: panic_message(payload),
            })
        };

        if workers <= 1 {
            return inputs
                .into_iter()
                .enumerate()
                .map(|(i, input)| call(i, input))
                .collect();
        }

        // Round-robin the cells over per-worker deques. Workers pop from
        // the front of their own deque and steal from the back of their
        // peers', so the common case is contention-free and the tail of a
        // skewed distribution still spreads out.
        let mut queues: Vec<Mutex<VecDeque<(usize, I)>>> = (0..workers)
            .map(|_| Mutex::new(VecDeque::with_capacity(n.div_ceil(workers))))
            .collect();
        for (i, input) in inputs.into_iter().enumerate() {
            queues[i % workers]
                .get_mut()
                .expect("fresh")
                .push_back((i, input));
        }
        let queues = &queues;

        let mut results: Vec<Option<Result<T, CellFailure>>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let (tx, rx) = mpsc::channel::<(usize, Result<T, CellFailure>)>();

        std::thread::scope(|scope| {
            for me in 0..workers {
                let tx = tx.clone();
                let call = &call;
                scope.spawn(move || {
                    loop {
                        // Own queue first, then sweep the peers once; when
                        // every queue is empty the remaining cells are all
                        // in flight on other workers and we are done.
                        let mut task = queues[me].lock().expect("queue").pop_front();
                        if task.is_none() {
                            for other in (0..workers).filter(|&o| o != me) {
                                task = queues[other].lock().expect("queue").pop_back();
                                if task.is_some() {
                                    break;
                                }
                            }
                        }
                        let Some((index, input)) = task else { break };
                        // A receiver that hung up means the caller is
                        // gone; nothing useful left to do.
                        if tx.send((index, call(index, input))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for (index, outcome) in rx {
                results[index] = Some(outcome);
            }
        });

        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("cell {i} produced no outcome")))
            .collect()
    }

    /// [`Engine::try_run`] for grids where a cell failure is fatal: every
    /// cell still runs to completion, then the first failure is re-raised
    /// with a summary of all of them.
    ///
    /// # Panics
    ///
    /// Panics if any cell panicked.
    pub fn run<I, T, F>(&self, inputs: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let outcomes = self.try_run(inputs, f);
        let failures: Vec<&CellFailure> =
            outcomes.iter().filter_map(|o| o.as_ref().err()).collect();
        assert!(
            failures.is_empty(),
            "{} of {} cells failed: {}",
            failures.len(),
            outcomes.len(),
            failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
        outcomes
            .into_iter()
            .map(|o| o.expect("failures checked above"))
            .collect()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order() {
        let engine = Engine::new(4);
        // Uneven work so completion order differs from cell order.
        let out = engine.run((0..32u64).collect(), |i, n| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            n * 10
        });
        assert_eq!(out, (0..32u64).map(|n| n * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize, n: u64| n.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
        let inputs: Vec<u64> = (0..57).map(|i| i * 31 % 13).collect();
        let serial = Engine::serial().run(inputs.clone(), f);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(
                Engine::new(jobs).run(inputs.clone(), f),
                serial,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn a_panicking_cell_is_isolated() {
        let engine = Engine::new(3);
        let out = engine.try_run((0..10u32).collect(), |_, n| {
            assert!(n != 4, "cell four exploded");
            n + 1
        });
        for (i, o) in out.iter().enumerate() {
            if i == 4 {
                let failure = o.as_ref().expect_err("cell 4 panicked");
                assert_eq!(failure.index, 4);
                assert!(failure.message.contains("cell four exploded"), "{failure}");
            } else {
                assert_eq!(o.as_ref().expect("healthy cell"), &(i as u32 + 1));
            }
        }
    }

    #[test]
    #[should_panic(expected = "1 of 3 cells failed")]
    fn run_reraises_failures_after_completion() {
        Engine::new(2).run(vec![1u32, 2, 3], |_, n| {
            assert!(n != 2, "boom");
            n
        });
    }

    #[test]
    fn zero_and_empty_edges() {
        assert_eq!(Engine::new(0).jobs(), 1);
        let out: Vec<u8> = Engine::new(8).run(Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }
}
