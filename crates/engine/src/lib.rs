//! Deterministic parallel execution engine for independent simulation
//! cells.
//!
//! The paper's evaluation is a grid of *independent* cells: every
//! (workload, configuration, seed) tuple is a self-contained, seeded
//! simulation whose outcome depends only on its inputs. This crate runs
//! such grids on a bounded work-stealing worker pool while guaranteeing
//! **bit-identical results to serial execution**:
//!
//! * results are returned **ordered by cell index**, never by completion
//!   order;
//! * cells receive no shared mutable state — each cell owns its input and
//!   produces an owned output;
//! * a panicking cell is isolated ([`std::panic::catch_unwind`]) and
//!   reported as a failed cell instead of tearing down the whole run;
//! * an optional per-cell watchdog ([`PoolConfig::cell_timeout`]) reports
//!   a cell that overran its budget as [`CellFailure::TimedOut`] and
//!   discards its late result.
//!
//! The pool is plain `std` (threads + channels + mutex-guarded deques):
//! the workspace builds offline with no registry dependencies. Cells are
//! coarse (milliseconds to minutes of simulation), so queue overhead is
//! irrelevant next to determinism and robustness.
//!
//! # Example
//!
//! ```
//! use cmpqos_engine::Engine;
//!
//! let engine = Engine::new(4);
//! let squares = engine.run((0u64..8).collect(), |_idx, n| n * n);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Serial and parallel runs are indistinguishable:
//! assert_eq!(squares, Engine::serial().run((0u64..8).collect(), |_i, n| n * n));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::{CellFailure, Engine, PoolConfig};

/// The `CMPQOS_JOBS` environment variable read by [`Engine::from_env`] and
/// the experiment binaries' `--jobs` flag.
pub const JOBS_ENV: &str = "CMPQOS_JOBS";

/// The machine's available parallelism (1 when it cannot be queried).
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses [`JOBS_ENV`]; `Some(0)` (= "auto") resolves to
/// [`default_jobs`]. Returns `None` when unset or unparseable.
#[must_use]
pub fn jobs_from_env() -> Option<usize> {
    let raw = std::env::var(JOBS_ENV).ok()?;
    let n: usize = raw.trim().parse().ok()?;
    Some(if n == 0 { default_jobs() } else { n })
}
