//! Component micro-benchmarks: cache access paths, synthetic trace
//! generation, admission tests (Section 7.5's cost scaling) and raw node
//! simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cmpqos_cache::{CacheConfig, DuplicateTagMonitor, L1Cache, PartitionPolicy, SharedL2};
use cmpqos_core::{AdmissionRequest, Lac, LacConfig, ResourceRequest};
use cmpqos_system::{CmpNode, Placement, SystemConfig, TaskSpec};
use cmpqos_trace::{spec, TraceSource};
use cmpqos_types::{CoreId, Cycles, Instructions, JobId, Ways};

fn bench_l1(c: &mut Criterion) {
    let mut group = c.benchmark_group("l1_cache");
    group.throughput(Throughput::Elements(1));
    group.bench_function("access_hit", |b| {
        let mut l1 = L1Cache::new(CacheConfig::paper_l1());
        l1.access(0x1000, false);
        b.iter(|| black_box(l1.access(black_box(0x1000), false)));
    });
    group.bench_function("access_miss_stream", |b| {
        let mut l1 = L1Cache::new(CacheConfig::paper_l1());
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            black_box(l1.access(black_box(addr), false))
        });
    });
    group.finish();
}

fn bench_l2(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_cache");
    group.throughput(Throughput::Elements(1));
    for policy in [
        PartitionPolicy::Unpartitioned,
        PartitionPolicy::PerSet,
        PartitionPolicy::Global,
    ] {
        group.bench_with_input(
            BenchmarkId::new("miss_stream", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let mut l2 = SharedL2::new(CacheConfig::paper_l2(), 4, policy);
                l2.set_targets(&[Ways::new(4); 4]).unwrap();
                let mut addr = 0u64;
                b.iter(|| {
                    addr += 64;
                    black_box(l2.access(CoreId::new((addr / 64 % 4) as u32), addr, false))
                });
            },
        );
    }
    group.bench_function("shadow_observe", |b| {
        let mut mon = DuplicateTagMonitor::new(Ways::new(7), 2048, 8);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            mon.observe((i % 2048) as u32, i % 4096, i.is_multiple_of(5));
        });
    });
    group.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(1));
    for bench in ["bzip2", "gobmk", "libquantum"] {
        group.bench_with_input(
            BenchmarkId::new("next_instruction", bench),
            &bench,
            |b, n| {
                let mut t = spec::benchmark(n).unwrap().instantiate(1, 0);
                b.iter(|| black_box(t.next_instruction()));
            },
        );
    }
    group.finish();
}

/// Section 7.5: the admission test's cost grows linearly with the live
/// reservation count and stays trivially small in absolute terms.
fn bench_lac(c: &mut Criterion) {
    let mut group = c.benchmark_group("lac_admission");
    for reservations in [0usize, 10, 100] {
        group.bench_with_input(
            BenchmarkId::new("admit", reservations),
            &reservations,
            |b, &n| {
                let mut lac = Lac::new(LacConfig::default());
                for i in 0..n {
                    let _ = lac.admit(
                        &AdmissionRequest::builder(
                            JobId::new(i as u32),
                            ResourceRequest::new(1, Ways::new(1)),
                            Cycles::new(1_000_000),
                        )
                        .build(),
                    );
                }
                let mut next = n as u32;
                b.iter(|| {
                    next += 1;
                    let req = AdmissionRequest::builder(
                        JobId::new(next),
                        ResourceRequest::paper_job(),
                        Cycles::new(100),
                    )
                    .deadline(Cycles::new(150))
                    .build();
                    let d = lac.admit(&req);
                    lac.cancel(JobId::new(next));
                    black_box(d)
                });
            },
        );
    }
    group.finish();
}

fn bench_node(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_throughput");
    group.sample_size(10);
    let instrs = 200_000u64;
    group.throughput(Throughput::Elements(instrs * 4));
    group.bench_function("four_pinned_gobmk", |b| {
        b.iter(|| {
            let mut node = CmpNode::new(SystemConfig::paper_scaled(8));
            node.set_l2_targets(&[Ways::new(4); 4]).unwrap();
            let profile = spec::scaled("gobmk", 8).unwrap();
            for i in 0..4u32 {
                node.spawn(TaskSpec {
                    id: JobId::new(i),
                    source: Box::new(profile.instantiate(u64::from(i), u64::from(i) << 40)),
                    budget: Instructions::new(instrs),
                    placement: Placement::Pinned(CoreId::new(i)),
                    reserved: true,
                })
                .unwrap();
            }
            black_box(node.run_to_completion(Cycles::new(u64::MAX / 4)))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_l1,
    bench_l2,
    bench_trace,
    bench_lac,
    bench_node
);
criterion_main!(benches);
