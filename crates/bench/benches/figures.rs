//! One benchmark per paper table/figure: each iteration runs a scaled-down
//! instance of the corresponding experiment cell, so `cargo bench`
//! exercises and times the full reproduction pipeline. The printed
//! experiment data comes from the `cmpqos-experiments` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cmpqos_experiments::{
    ablation, fig1, fig3, fig5, fig6, fig7, fig8, fig9, lac_overhead, table1, ExperimentParams,
};
use cmpqos_types::Instructions;

fn quick() -> ExperimentParams {
    ExperimentParams {
        scale: 16,
        work: Instructions::new(60_000),
        seed: 1,
        jobs: 1,
        events: None,
    }
}

fn figure_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));
    let p = quick();

    group.bench_function("fig1_motivation", |b| b.iter(|| black_box(fig1::run(&p))));
    group.bench_function("fig3_downgrade_illustration", |b| {
        b.iter(|| black_box(fig3::run()))
    });
    group.bench_function("fig4_sensitivity_representatives", |b| {
        // The three representative benchmarks (the full 15-benchmark sweep
        // runs in the fig4 binary).
        b.iter(|| {
            for bench in ["bzip2", "hmmer", "gobmk"] {
                for ways in [7u16, 4, 1] {
                    black_box(cmpqos_workloads::calibrate::solo_run(
                        bench,
                        cmpqos_types::Ways::new(ways),
                        p.work,
                        p.scale,
                        p.seed,
                    ));
                }
            }
        })
    });
    group.bench_function("table1_characteristics", |b| {
        b.iter(|| black_box(table1::run(&p)))
    });
    group.bench_function("fig5_modes_one_workload", |b| {
        b.iter(|| black_box(fig5::run_for(&p, &["gobmk"])))
    });
    group.bench_function("fig6_wallclock_by_mode", |b| {
        b.iter(|| black_box(fig6::run_bench(&p, "gobmk")))
    });
    group.bench_function("fig7_execution_trace", |b| {
        b.iter(|| black_box(fig7::run_bench(&p, "gobmk", 6)))
    });
    group.bench_function("fig8_stealing_two_slacks", |b| {
        b.iter(|| black_box(fig8::run_bench(&p, "bzip2", &[5.0, 20.0])))
    });
    group.bench_function("fig9_mix1", |b| {
        b.iter(|| black_box(fig9::run_mix(&p, cmpqos_workloads::WorkloadSpec::mix1())))
    });
    group.bench_function("lac_overhead_characterization", |b| {
        b.iter(|| black_box(lac_overhead::run(&p)))
    });
    group.finish();
}

fn ablation_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(15));
    let p = quick();
    group.bench_function("partition_variance_per_set", |b| {
        b.iter(|| {
            black_box(ablation::partition_variance(
                &p,
                cmpqos_cache::PartitionPolicy::PerSet,
                2,
            ))
        })
    });
    group.bench_function("sampling_accuracy", |b| {
        b.iter(|| black_box(ablation::sampling_accuracy(&p, &[8])))
    });
    group.finish();
}

criterion_group!(benches, figure_benches, ablation_benches);
criterion_main!(benches);
