//! Criterion benchmark harness for `cmpqos`.
//!
//! Two bench targets:
//!
//! * `components` — micro-benchmarks of the substrates (cache access paths,
//!   trace generation, LAC admission tests, node simulation throughput),
//!   including the Section 7.5 admission-cost scaling measurement.
//! * `figures` — one benchmark per paper table/figure, each running a
//!   scaled-down instance of the corresponding experiment cell so the full
//!   reproduction pipeline is exercised and timed under `cargo bench`.
//!   (The full-fidelity numbers come from the `cmpqos-experiments`
//!   binaries; see `EXPERIMENTS.md`.)

#![forbid(unsafe_code)]
