//! A deterministic, seeded in-process network simulator.
//!
//! The paper's controller hierarchy (one GAC over many per-node LACs)
//! coordinates over an interconnect; this crate is the interconnect's
//! fault model. A [`SimNet`] carries typed [`Envelope`]s between [`Addr`]s
//! over links with configurable latency distributions, drop/duplicate
//! probabilities, and reorder windows ([`LinkConfig`]), plus explicit
//! [`Transport::partition`] / [`Transport::heal`] controls that sever a
//! link in both directions.
//!
//! Everything is deterministic: one [`StdRng`] seeded at construction
//! drives every probabilistic decision, and in-flight messages sit in a
//! single event heap keyed on `(deliver_at, seq)` — `seq` is a monotonic
//! send counter, so ties are broken by send order and the same seed always
//! yields the byte-identical delivery sequence. The full delivered and
//! dropped logs are retained so a test oracle can replay a run
//! message-for-message (see `cmpqos-testkit`).
//!
//! The simulator is deliberately passive: it never interprets payloads.
//! The GAC↔LAC request/reply protocol built on top of it lives in
//! `cmpqos_core::protocol`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cmpqos_types::{Cycles, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

/// A network endpoint: the global controller or one node's LAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Addr {
    /// The global admission controller.
    Gac,
    /// One CMP node (its local admission controller).
    Node(NodeId),
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Gac => f.write_str("gac"),
            Addr::Node(n) => write!(f, "{n}"),
        }
    }
}

/// One typed frame in flight (or delivered, or dropped).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Monotonic send counter (ties in the event heap break on it, so
    /// delivery order is total and reproducible).
    pub seq: u64,
    /// Sender.
    pub from: Addr,
    /// Receiver.
    pub to: Addr,
    /// When the sender handed the frame to the network.
    pub sent_at: Cycles,
    /// When the network delivers it.
    pub deliver_at: Cycles,
    /// The payload.
    pub msg: M,
}

/// One directed link's behavior.
///
/// Latency is `base + U(0..=jitter) + U(0..=reorder)`: `jitter` models
/// service-time noise, `reorder` an extra displacement window large enough
/// for later sends to overtake earlier ones. Probabilities are evaluated
/// per frame from the simulator's seeded RNG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Fixed one-way latency floor.
    pub base_latency: Cycles,
    /// Uniform extra latency, `0..=jitter` cycles.
    pub jitter: u64,
    /// Uniform extra displacement, `0..=reorder` cycles. Any value larger
    /// than the inter-send gap lets frames overtake each other.
    pub reorder: u64,
    /// Probability a frame is silently lost.
    pub drop: f64,
    /// Probability a frame is delivered twice (the copy gets its own
    /// independent latency draw).
    pub duplicate: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            base_latency: Cycles::new(10),
            jitter: 0,
            reorder: 0,
            drop: 0.0,
            duplicate: 0.0,
        }
    }
}

impl LinkConfig {
    /// Sets the fixed latency floor.
    #[must_use]
    pub fn base_latency(mut self, cycles: Cycles) -> Self {
        self.base_latency = cycles;
        self
    }

    /// Sets the uniform latency jitter bound.
    #[must_use]
    pub fn jitter(mut self, cycles: u64) -> Self {
        self.jitter = cycles;
        self
    }

    /// Sets the reorder displacement window.
    #[must_use]
    pub fn reorder(mut self, cycles: u64) -> Self {
        self.reorder = cycles;
        self
    }

    /// Sets the drop probability (clamped to `[0, 1]`).
    #[must_use]
    pub fn drop(mut self, p: f64) -> Self {
        self.drop = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the duplicate probability (clamped to `[0, 1]`).
    #[must_use]
    pub fn duplicate(mut self, p: f64) -> Self {
        self.duplicate = p.clamp(0.0, 1.0);
        self
    }

    /// The worst-case one-way latency of this link.
    #[must_use]
    pub fn max_latency(&self) -> Cycles {
        self.base_latency + Cycles::new(self.jitter) + Cycles::new(self.reorder)
    }
}

/// What happened to one [`Transport::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendReport {
    /// Copies enqueued for delivery (0 = lost, 2 = duplicated).
    pub enqueued: u32,
    /// The frame was eaten by an active partition.
    pub partitioned: bool,
    /// The frame was dropped (probabilistically or by a forced drop).
    pub dropped: bool,
}

impl SendReport {
    /// Whether at least one copy will be delivered.
    #[must_use]
    pub fn delivered(&self) -> bool {
        self.enqueued > 0
    }
}

/// Aggregate traffic counters of one [`SimNet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to [`Transport::send`].
    pub sent: u64,
    /// Frames delivered (duplicates count each delivery).
    pub delivered: u64,
    /// Frames lost to the drop probability or a forced drop.
    pub dropped: u64,
    /// Frames eaten by an active partition.
    pub partitioned: u64,
    /// Extra copies enqueued by the duplicate probability.
    pub duplicated: u64,
}

/// A message fabric between [`Addr`]s.
///
/// Implemented by [`SimNet`]; the protocol layer is generic over it so a
/// test can substitute a perfect (or adversarial) transport.
pub trait Transport<M> {
    /// Hands a frame to the network at cycle `at`. The frame may be
    /// dropped, duplicated, delayed, or eaten by a partition; the report
    /// says which.
    fn send(&mut self, from: Addr, to: Addr, at: Cycles, msg: M) -> SendReport;

    /// Pops every frame with `deliver_at <= now`, in `(deliver_at, seq)`
    /// order.
    fn deliver_due(&mut self, now: Cycles) -> Vec<Envelope<M>>;

    /// Severs the `a ↔ b` link in both directions: every frame sent while
    /// the partition is active is lost (senders get no error — exactly
    /// like a real interconnect).
    fn partition(&mut self, a: Addr, b: Addr);

    /// Restores the `a ↔ b` link. Frames already lost stay lost.
    fn heal(&mut self, a: Addr, b: Addr);

    /// Whether `a ↔ b` is currently severed.
    fn is_partitioned(&self, a: Addr, b: Addr) -> bool;
}

/// An in-flight frame in the event heap, ordered so the heap pops the
/// smallest `(deliver_at, seq)` first.
#[derive(Debug)]
struct InFlight<M> {
    key: (Cycles, u64),
    env: Envelope<M>,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<M> Eq for InFlight<M> {}

impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest frame.
        other.key.cmp(&self.key)
    }
}

fn ordered(a: Addr, b: Addr) -> (Addr, Addr) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The deterministic network simulator.
///
/// # Examples
///
/// ```
/// use cmpqos_net::{Addr, LinkConfig, SimNet, Transport};
/// use cmpqos_types::{Cycles, NodeId};
///
/// let mut net = SimNet::new(42, LinkConfig::default());
/// let node = Addr::Node(NodeId::new(0));
/// let report = net.send(Addr::Gac, node, Cycles::ZERO, "probe");
/// assert!(report.delivered());
/// assert!(net.deliver_due(Cycles::new(5)).is_empty(), "still in flight");
/// let arrived = net.deliver_due(Cycles::new(10));
/// assert_eq!(arrived.len(), 1);
/// assert_eq!(arrived[0].msg, "probe");
/// net.partition(Addr::Gac, node);
/// assert!(!net.send(Addr::Gac, node, Cycles::new(20), "lost").delivered());
/// net.heal(Addr::Gac, node);
/// assert!(net.send(Addr::Gac, node, Cycles::new(30), "back").delivered());
/// ```
#[derive(Debug)]
pub struct SimNet<M> {
    rng: StdRng,
    default_link: LinkConfig,
    links: BTreeMap<(Addr, Addr), LinkConfig>,
    partitions: BTreeSet<(Addr, Addr)>,
    forced_drops: BTreeMap<(Addr, Addr), u32>,
    queue: BinaryHeap<InFlight<M>>,
    next_seq: u64,
    stats: NetStats,
    delivered_log: Vec<Envelope<M>>,
    dropped_log: Vec<Envelope<M>>,
    keep_logs: bool,
}

impl<M: Clone> SimNet<M> {
    /// A simulator where every link behaves per `default_link`, with all
    /// randomness drawn from a [`StdRng`] seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64, default_link: LinkConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            default_link,
            links: BTreeMap::new(),
            partitions: BTreeSet::new(),
            forced_drops: BTreeMap::new(),
            queue: BinaryHeap::new(),
            next_seq: 0,
            stats: NetStats::default(),
            delivered_log: Vec::new(),
            dropped_log: Vec::new(),
            keep_logs: true,
        }
    }

    /// Disables the delivered/dropped logs (long benchmark runs).
    #[must_use]
    pub fn without_logs(mut self) -> Self {
        self.keep_logs = false;
        self
    }

    /// Overrides the directed `from → to` link's behavior.
    pub fn set_link(&mut self, from: Addr, to: Addr, config: LinkConfig) {
        self.links.insert((from, to), config);
    }

    /// Overrides the `a ↔ b` link's behavior in both directions.
    pub fn set_link_bidir(&mut self, a: Addr, b: Addr, config: LinkConfig) {
        self.set_link(a, b, config);
        self.set_link(b, a, config);
    }

    /// The directed `from → to` link's behavior.
    #[must_use]
    pub fn link(&self, from: Addr, to: Addr) -> LinkConfig {
        self.links
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Forces the next `count` frames on the directed `from → to` link to
    /// be dropped, regardless of probabilities (the `MessageDrop` fault).
    pub fn force_drops(&mut self, from: Addr, to: Addr, count: u32) {
        *self.forced_drops.entry((from, to)).or_insert(0) += count;
    }

    /// Traffic counters.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Frames still in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// The earliest pending delivery time, if anything is in flight.
    #[must_use]
    pub fn next_deliver_at(&self) -> Option<Cycles> {
        self.queue.peek().map(|f| f.key.0)
    }

    /// Every delivered frame, in delivery order (empty after
    /// [`SimNet::without_logs`]).
    #[must_use]
    pub fn delivered_log(&self) -> &[Envelope<M>] {
        &self.delivered_log
    }

    /// Every lost frame (partitioned, forced, or probabilistic), in send
    /// order (empty after [`SimNet::without_logs`]).
    #[must_use]
    pub fn dropped_log(&self) -> &[Envelope<M>] {
        &self.dropped_log
    }

    /// Currently severed endpoint pairs.
    #[must_use]
    pub fn partitions(&self) -> Vec<(Addr, Addr)> {
        self.partitions.iter().copied().collect()
    }

    fn enqueue(&mut self, mut env: Envelope<M>, link: &LinkConfig) {
        let mut delay = link.base_latency.get();
        if link.jitter > 0 {
            delay += self.rng.gen_range(0..link.jitter + 1);
        }
        if link.reorder > 0 {
            delay += self.rng.gen_range(0..link.reorder + 1);
        }
        env.deliver_at = env.sent_at + Cycles::new(delay);
        self.queue.push(InFlight {
            key: (env.deliver_at, env.seq),
            env,
        });
    }
}

impl<M: Clone> Transport<M> for SimNet<M> {
    fn send(&mut self, from: Addr, to: Addr, at: Cycles, msg: M) -> SendReport {
        self.stats.sent += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let env = Envelope {
            seq,
            from,
            to,
            sent_at: at,
            deliver_at: at,
            msg,
        };
        if self.partitions.contains(&ordered(from, to)) {
            self.stats.partitioned += 1;
            if self.keep_logs {
                self.dropped_log.push(env);
            }
            return SendReport {
                enqueued: 0,
                partitioned: true,
                dropped: false,
            };
        }
        if let Some(n) = self.forced_drops.get_mut(&(from, to)) {
            if *n > 0 {
                *n -= 1;
                self.stats.dropped += 1;
                if self.keep_logs {
                    self.dropped_log.push(env);
                }
                return SendReport {
                    enqueued: 0,
                    partitioned: false,
                    dropped: true,
                };
            }
        }
        let link = self.link(from, to);
        if link.drop > 0.0 && self.rng.gen_bool(link.drop) {
            self.stats.dropped += 1;
            if self.keep_logs {
                self.dropped_log.push(env);
            }
            return SendReport {
                enqueued: 0,
                partitioned: false,
                dropped: true,
            };
        }
        let mut enqueued = 1u32;
        let duplicate = link.duplicate > 0.0 && self.rng.gen_bool(link.duplicate);
        self.enqueue(env.clone(), &link);
        if duplicate {
            self.stats.duplicated += 1;
            enqueued += 1;
            let copy = Envelope {
                seq: self.next_seq,
                ..env
            };
            self.next_seq += 1;
            self.enqueue(copy, &link);
        }
        SendReport {
            enqueued,
            partitioned: false,
            dropped: false,
        }
    }

    fn deliver_due(&mut self, now: Cycles) -> Vec<Envelope<M>> {
        let mut out = Vec::new();
        while let Some(head) = self.queue.peek() {
            if head.key.0 > now {
                break;
            }
            let frame = self.queue.pop().expect("peeked").env;
            self.stats.delivered += 1;
            if self.keep_logs {
                self.delivered_log.push(frame.clone());
            }
            out.push(frame);
        }
        out
    }

    fn partition(&mut self, a: Addr, b: Addr) {
        self.partitions.insert(ordered(a, b));
    }

    fn heal(&mut self, a: Addr, b: Addr) {
        self.partitions.remove(&ordered(a, b));
    }

    fn is_partitioned(&self, a: Addr, b: Addr) -> bool {
        self.partitions.contains(&ordered(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> Addr {
        Addr::Node(NodeId::new(i))
    }

    fn drain<M: Clone>(net: &mut SimNet<M>, until: Cycles) -> Vec<Envelope<M>> {
        net.deliver_due(until)
    }

    #[test]
    fn frames_arrive_after_base_latency_in_send_order() {
        let mut net = SimNet::new(1, LinkConfig::default());
        for i in 0..5u32 {
            let r = net.send(Addr::Gac, node(i), Cycles::new(u64::from(i)), i);
            assert!(r.delivered());
        }
        assert_eq!(net.in_flight(), 5);
        assert_eq!(net.next_deliver_at(), Some(Cycles::new(10)));
        let got = drain(&mut net, Cycles::new(100));
        let payloads: Vec<u32> = got.iter().map(|e| e.msg).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
        for e in &got {
            assert_eq!(e.deliver_at, e.sent_at + Cycles::new(10));
        }
        assert_eq!(net.stats().delivered, 5);
        assert_eq!(net.delivered_log().len(), 5);
    }

    #[test]
    fn same_seed_same_delivery_order_any_fault_mix() {
        let cfg = LinkConfig::default()
            .jitter(40)
            .reorder(60)
            .drop(0.2)
            .duplicate(0.2);
        let run = |seed: u64| {
            let mut net = SimNet::new(seed, cfg);
            for i in 0..200u64 {
                let _ = net.send(Addr::Gac, node((i % 7) as u32), Cycles::new(i * 3), i);
            }
            let order: Vec<(u64, u64, u64)> = net
                .deliver_due(Cycles::new(10_000))
                .iter()
                .map(|e| (e.deliver_at.get(), e.seq, e.msg))
                .collect();
            (order, net.stats())
        };
        let (a, sa) = run(7);
        let (b, sb) = run(7);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = run(8);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn reorder_window_lets_frames_overtake() {
        let cfg = LinkConfig::default().reorder(500);
        let mut net = SimNet::new(3, cfg);
        for i in 0..50u64 {
            let _ = net.send(Addr::Gac, node(0), Cycles::new(i), i);
        }
        let got = drain(&mut net, Cycles::new(10_000));
        assert_eq!(got.len(), 50);
        let payloads: Vec<u64> = got.iter().map(|e| e.msg).collect();
        let mut sorted = payloads.clone();
        sorted.sort_unstable();
        assert_ne!(
            payloads, sorted,
            "a 500-cycle window reorders 1-cycle-apart sends"
        );
    }

    #[test]
    fn partition_eats_frames_until_healed() {
        let mut net = SimNet::new(5, LinkConfig::default());
        net.partition(Addr::Gac, node(1));
        assert!(net.is_partitioned(node(1), Addr::Gac), "symmetric");
        let r = net.send(node(1), Addr::Gac, Cycles::ZERO, 1u8);
        assert!(!r.delivered());
        assert!(r.partitioned);
        // Other links unaffected.
        assert!(net.send(Addr::Gac, node(2), Cycles::ZERO, 2u8).delivered());
        net.heal(Addr::Gac, node(1));
        assert!(!net.is_partitioned(Addr::Gac, node(1)));
        assert!(net
            .send(node(1), Addr::Gac, Cycles::new(5), 3u8)
            .delivered());
        assert_eq!(net.stats().partitioned, 1);
        assert_eq!(net.dropped_log().len(), 1);
        assert_eq!(net.dropped_log()[0].msg, 1u8);
    }

    #[test]
    fn forced_drops_consume_exactly_count_frames() {
        let mut net = SimNet::new(9, LinkConfig::default());
        net.force_drops(Addr::Gac, node(0), 2);
        assert!(!net.send(Addr::Gac, node(0), Cycles::ZERO, 0u8).delivered());
        assert!(!net.send(Addr::Gac, node(0), Cycles::ZERO, 1u8).delivered());
        // Reverse direction unaffected; third frame goes through.
        assert!(net.send(node(0), Addr::Gac, Cycles::ZERO, 2u8).delivered());
        assert!(net.send(Addr::Gac, node(0), Cycles::ZERO, 3u8).delivered());
        assert_eq!(net.stats().dropped, 2);
    }

    #[test]
    fn duplicates_get_their_own_latency_draw() {
        let cfg = LinkConfig::default().jitter(100).duplicate(1.0);
        let mut net = SimNet::new(11, cfg);
        let r = net.send(Addr::Gac, node(0), Cycles::ZERO, 42u8);
        assert_eq!(r.enqueued, 2);
        let got = drain(&mut net, Cycles::new(1_000));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].msg, 42);
        assert_eq!(got[1].msg, 42);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn per_link_overrides_beat_the_default() {
        let mut net = SimNet::new(13, LinkConfig::default());
        net.set_link_bidir(
            Addr::Gac,
            node(0),
            LinkConfig::default().base_latency(Cycles::new(50)),
        );
        let _ = net.send(Addr::Gac, node(0), Cycles::ZERO, 0u8);
        let _ = net.send(Addr::Gac, node(1), Cycles::ZERO, 1u8);
        let slow = net.link(node(0), Addr::Gac);
        assert_eq!(slow.base_latency, Cycles::new(50));
        let got = drain(&mut net, Cycles::new(100));
        assert_eq!(got[0].msg, 1, "default 10-cycle link wins the race");
        assert_eq!(got[1].msg, 0);
    }

    #[test]
    fn delivery_is_exhaustive_and_in_key_order() {
        let cfg = LinkConfig::default().jitter(30);
        let mut net = SimNet::new(17, cfg);
        for i in 0..100u64 {
            let _ = net.send(Addr::Gac, node((i % 3) as u32), Cycles::new(i), i);
        }
        let mut all = Vec::new();
        for t in (0..300).step_by(7) {
            all.extend(net.deliver_due(Cycles::new(t)));
        }
        all.extend(net.deliver_due(Cycles::new(10_000)));
        assert_eq!(all.len(), 100);
        let keys: Vec<(u64, u64)> = all.iter().map(|e| (e.deliver_at.get(), e.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(
            keys, sorted,
            "(deliver_at, seq) order regardless of tick granularity"
        );
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn without_logs_keeps_stats_only() {
        let mut net = SimNet::new(19, LinkConfig::default().drop(1.0)).without_logs();
        let _ = net.send(Addr::Gac, node(0), Cycles::ZERO, 0u8);
        assert_eq!(net.stats().dropped, 1);
        assert!(net.dropped_log().is_empty());
    }

    #[test]
    fn addr_ordering_and_display() {
        assert!(Addr::Gac < node(0));
        assert!(node(0) < node(1));
        assert_eq!(Addr::Gac.to_string(), "gac");
        assert_eq!(ordered(node(3), Addr::Gac), (Addr::Gac, node(3)));
    }
}
