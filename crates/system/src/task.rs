//! Tasks: the schedulable unit the node executes.

use cmpqos_cpu::ExecutionContext;
use cmpqos_mem::Priority;
use cmpqos_trace::TraceSource;
use cmpqos_types::{CoreId, Cycles, Instructions, JobId};
use std::fmt;

/// Where a task runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Exclusive use of one core (Strict / Elastic jobs: the LAC pins one
    /// such job per core).
    Pinned(CoreId),
    /// Timeshared round-robin across cores that have no pinned occupant
    /// (Opportunistic jobs; all jobs under `EqualPart`).
    Floating,
}

/// Specification for spawning a task onto a [`crate::CmpNode`].
pub struct TaskSpec {
    /// The task's identifier (must be unique among live tasks).
    pub id: JobId,
    /// Its instruction stream.
    pub source: Box<dyn TraceSource>,
    /// Instructions to retire before the task completes.
    pub budget: Instructions,
    /// Pinned or floating.
    pub placement: Placement,
    /// Whether the task's resources are reserved (Strict/Elastic): reserved
    /// tasks get `Reserved` victim class and prioritized memory requests.
    pub reserved: bool,
}

impl fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskSpec")
            .field("id", &self.id)
            .field("source", &self.source.name())
            .field("budget", &self.budget)
            .field("placement", &self.placement)
            .field("reserved", &self.reserved)
            .finish()
    }
}

/// A completed task's record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskCompletion {
    /// The task.
    pub id: JobId,
    /// When it first started executing.
    pub started_at: Cycles,
    /// When its last instruction retired.
    pub finished_at: Cycles,
}

/// Error spawning a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnError {
    /// A live task already uses this id.
    DuplicateId(JobId),
    /// The pin target does not exist.
    NoSuchCore(CoreId),
    /// The pin target already has a pinned task.
    CoreAlreadyPinned(CoreId),
    /// The instruction budget was zero.
    EmptyBudget,
}

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpawnError::DuplicateId(id) => write!(f, "task id {id} is already live"),
            SpawnError::NoSuchCore(c) => write!(f, "{c} does not exist"),
            SpawnError::CoreAlreadyPinned(c) => write!(f, "{c} already has a pinned task"),
            SpawnError::EmptyBudget => f.write_str("instruction budget must be positive"),
        }
    }
}

impl std::error::Error for SpawnError {}

/// Internal live-task state.
#[derive(Debug)]
pub(crate) struct Task {
    pub(crate) ctx: ExecutionContext,
    pub(crate) remaining: u64,
    pub(crate) placement: Placement,
    pub(crate) priority: Priority,
    pub(crate) ready_at: Cycles,
    pub(crate) started_at: Option<Cycles>,
}

impl Task {
    pub(crate) fn new(spec: TaskSpec, now: Cycles) -> Self {
        Self {
            ctx: ExecutionContext::new(spec.source),
            remaining: spec.budget.get(),
            placement: spec.placement,
            priority: if spec.reserved {
                Priority::Reserved
            } else {
                Priority::Opportunistic
            },
            ready_at: now,
            started_at: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_error_messages() {
        assert!(SpawnError::DuplicateId(JobId::new(3))
            .to_string()
            .contains("job3"));
        assert!(SpawnError::CoreAlreadyPinned(CoreId::new(1))
            .to_string()
            .contains("core1"));
        assert!(SpawnError::EmptyBudget.to_string().contains("positive"));
    }

    #[test]
    fn placement_equality() {
        assert_eq!(
            Placement::Pinned(CoreId::new(0)),
            Placement::Pinned(CoreId::new(0))
        );
        assert_ne!(Placement::Pinned(CoreId::new(0)), Placement::Floating);
    }
}
