//! The CMP node engine.

use crate::config::{SystemConfig, SystemConfigError};
use crate::task::{Placement, SpawnError, Task, TaskCompletion, TaskSpec};
use cmpqos_cache::l2::{Eviction, PartitionError, WayMaskError};
use cmpqos_cache::{DuplicateTagMonitor, L1Cache, SharedL2, VictimClass};
use cmpqos_cpu::{MemOutcome, PerfCounters, Throttle};
use cmpqos_mem::{BandwidthRegulator, BusMonitor, MemoryChannel, Priority};
use cmpqos_trace::Access;
use cmpqos_types::{CoreId, Cycles, JobId, Ways};
use std::collections::{BTreeMap, VecDeque};

/// Bus-utilization monitoring window.
const BUS_WINDOW: Cycles = Cycles::new(100_000);

#[derive(Debug)]
struct CoreState {
    pinned: Option<JobId>,
    current: Option<JobId>,
    last_task: Option<JobId>,
    next_free: Cycles,
    quantum_end: Cycles,
    /// DVFS-style frequency scaler; identity at full speed.
    throttle: Throttle,
}

impl CoreState {
    fn new() -> Self {
        Self {
            pinned: None,
            current: None,
            last_task: None,
            next_free: Cycles::ZERO,
            quantum_end: Cycles::ZERO,
            throttle: Throttle::full(),
        }
    }
}

/// An event-driven CMP node: `N` cores, private L1s, a shared partitioned
/// L2 and a memory channel, plus pin/timeshare scheduling.
///
/// See the [crate docs](crate) for the role split between this mechanism
/// layer and the QoS policy layer in `cmpqos-core`.
#[derive(Debug)]
pub struct CmpNode {
    cfg: SystemConfig,
    now: Cycles,
    cores: Vec<CoreState>,
    tasks: BTreeMap<JobId, Task>,
    finished: BTreeMap<JobId, (PerfCounters, TaskCompletion)>,
    /// Ready floating tasks not currently on a core, in round-robin order.
    floating: VecDeque<JobId>,
    l1s: Vec<L1Cache>,
    l2: SharedL2,
    mem: MemoryChannel,
    bus: BusMonitor,
    monitors: BTreeMap<JobId, DuplicateTagMonitor>,
    regulator: BandwidthRegulator,
    completions: Vec<TaskCompletion>,
}

impl CmpNode {
    /// Creates an idle node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]). Prefer [`CmpNode::try_new`] outside
    /// test code.
    #[must_use]
    pub fn new(cfg: SystemConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(node) => node,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`CmpNode::new`]: validates the configuration first.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`SystemConfigError`].
    pub fn try_new(cfg: SystemConfig) -> Result<Self, SystemConfigError> {
        cfg.validate()?;
        let l1s = (0..cfg.num_cores).map(|_| L1Cache::new(cfg.l1)).collect();
        let l2 = SharedL2::try_new(cfg.l2, cfg.num_cores, cfg.partition_policy)?;
        let mem = MemoryChannel::new(cfg.memory);
        Ok(Self {
            cores: (0..cfg.num_cores).map(|_| CoreState::new()).collect(),
            tasks: BTreeMap::new(),
            finished: BTreeMap::new(),
            floating: VecDeque::new(),
            l1s,
            l2,
            mem,
            bus: BusMonitor::new(BUS_WINDOW),
            monitors: BTreeMap::new(),
            regulator: BandwidthRegulator::new(cfg.num_cores, cfg.memory.transfer_cycles() * 10),
            completions: Vec::new(),
            now: Cycles::ZERO,
            cfg,
        })
    }

    /// The node configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current simulation time (everything before this instant has been
    /// processed).
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Spawns a task; it becomes ready at the current simulation time.
    ///
    /// Pinning a core that currently runs a floating task preempts the
    /// floating task back into the shared pool.
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError`] for duplicate ids, bad pin targets or empty
    /// budgets.
    pub fn spawn(&mut self, spec: TaskSpec) -> Result<(), SpawnError> {
        if self.tasks.contains_key(&spec.id) {
            return Err(SpawnError::DuplicateId(spec.id));
        }
        if spec.budget.get() == 0 {
            return Err(SpawnError::EmptyBudget);
        }
        if let Placement::Pinned(core) = spec.placement {
            let Some(state) = self.cores.get(core.as_usize()) else {
                return Err(SpawnError::NoSuchCore(core));
            };
            if state.pinned.is_some() {
                return Err(SpawnError::CoreAlreadyPinned(core));
            }
        }
        let id = spec.id;
        let placement = spec.placement;
        let task = Task::new(spec, self.now);
        self.tasks.insert(id, task);
        match placement {
            Placement::Pinned(core) => {
                self.cores[core.as_usize()].pinned = Some(id);
                self.refresh_core_class(core.as_usize());
            }
            Placement::Floating => self.floating.push_back(id),
        }
        Ok(())
    }

    /// Re-pins a live floating task to `core` (the automatic-downgrade
    /// switch-back path: an Opportunistic-running job reverting to Strict).
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError::NoSuchCore`] / [`SpawnError::CoreAlreadyPinned`]
    /// for bad targets, or [`SpawnError::DuplicateId`] if the task is not
    /// live (id reported back).
    pub fn repin(&mut self, id: JobId, core: CoreId) -> Result<(), SpawnError> {
        if !self.tasks.contains_key(&id) {
            return Err(SpawnError::DuplicateId(id));
        }
        let Some(state) = self.cores.get(core.as_usize()) else {
            return Err(SpawnError::NoSuchCore(core));
        };
        if state.pinned.is_some() && state.pinned != Some(id) {
            return Err(SpawnError::CoreAlreadyPinned(core));
        }
        // Remove from the floating pool / its current core.
        self.floating.retain(|&j| j != id);
        for c in &mut self.cores {
            if c.current == Some(id) {
                c.current = None;
            }
        }
        let task = self.tasks.get_mut(&id).expect("checked live above");
        task.placement = Placement::Pinned(core);
        task.ready_at = task.ready_at.max(self.now);
        self.cores[core.as_usize()].pinned = Some(id);
        self.refresh_core_class(core.as_usize());
        Ok(())
    }

    /// Sets a live task's memory priority (Reserved vs Opportunistic).
    /// Unknown ids are ignored.
    pub fn set_reserved(&mut self, id: JobId, reserved: bool) {
        if let Some(task) = self.tasks.get_mut(&id) {
            task.priority = if reserved {
                Priority::Reserved
            } else {
                Priority::Opportunistic
            };
        }
        for i in 0..self.cores.len() {
            self.refresh_core_class(i);
        }
    }

    /// Applies a full set of L2 partition targets.
    ///
    /// # Errors
    ///
    /// Propagates [`PartitionError`] from the cache.
    pub fn set_l2_targets(&mut self, targets: &[Ways]) -> Result<(), PartitionError> {
        self.l2.set_targets(targets)
    }

    /// [`CmpNode::set_l2_targets`], additionally emitting
    /// `PartitionChanged` to `recorder` at the node's current time.
    ///
    /// # Errors
    ///
    /// Propagates [`PartitionError`] from the cache (nothing is recorded on
    /// error).
    pub fn set_l2_targets_recorded(
        &mut self,
        targets: &[Ways],
        recorder: &mut dyn cmpqos_obs::Recorder,
    ) -> Result<(), PartitionError> {
        let now = self.now;
        self.l2.set_targets_recorded(targets, now, recorder)
    }

    /// Current L2 partition targets.
    #[must_use]
    pub fn l2_targets(&self) -> &[Ways] {
        self.l2.targets()
    }

    /// Read-only view of the shared L2 (stats, occupancy).
    #[must_use]
    pub fn l2(&self) -> &SharedL2 {
        &self.l2
    }

    /// L2 ways still usable (associativity minus masked faulty ways).
    #[must_use]
    pub fn l2_usable_ways(&self) -> Ways {
        Ways::new(self.l2.effective_associativity())
    }

    /// Masks a faulty L2 way (see [`SharedL2::mask_way`]): the way is
    /// flushed and excluded from future fills, and partition targets are
    /// re-normalized to the shrunken associativity.
    ///
    /// # Errors
    ///
    /// Propagates [`WayMaskError`] from the cache.
    pub fn mask_l2_way(&mut self, way: u16) -> Result<Vec<Eviction>, WayMaskError> {
        self.l2.mask_way(way)
    }

    /// Attaches a duplicate-tag monitor to a live task, modelling
    /// `original_ways` (its allocation before stealing).
    pub fn attach_monitor(&mut self, id: JobId, original_ways: Ways) {
        let sets = self.cfg.l2.geometry().sets();
        self.monitors.insert(
            id,
            DuplicateTagMonitor::new(original_ways, sets, self.cfg.shadow_sample_every),
        );
    }

    /// Detaches and returns a task's monitor.
    pub fn detach_monitor(&mut self, id: JobId) -> Option<DuplicateTagMonitor> {
        self.monitors.remove(&id)
    }

    /// The task's monitor, if attached.
    #[must_use]
    pub fn monitor(&self, id: JobId) -> Option<&DuplicateTagMonitor> {
        self.monitors.get(&id)
    }

    /// Performance counters of a live or finished task.
    #[must_use]
    pub fn perf(&self, id: JobId) -> Option<&PerfCounters> {
        self.tasks
            .get(&id)
            .map(|t| t.ctx.perf())
            .or_else(|| self.finished.get(&id).map(|(p, _)| p))
    }

    /// Remaining instruction budget of a live task.
    #[must_use]
    pub fn remaining(&self, id: JobId) -> Option<u64> {
        self.tasks.get(&id).map(|t| t.remaining)
    }

    /// Whether the task is still live (spawned and not completed).
    #[must_use]
    pub fn is_live(&self, id: JobId) -> bool {
        self.tasks.contains_key(&id)
    }

    /// The task currently executing on `core`.
    #[must_use]
    pub fn running_on(&self, core: CoreId) -> Option<JobId> {
        self.cores.get(core.as_usize()).and_then(|c| c.current)
    }

    /// The task pinned to `core`.
    #[must_use]
    pub fn pinned_on(&self, core: CoreId) -> Option<JobId> {
        self.cores.get(core.as_usize()).and_then(|c| c.pinned)
    }

    /// Drains the completion records accumulated since the last call.
    #[must_use = "dropping drained completions loses the jobs' terminal records"]
    pub fn take_completions(&mut self) -> Vec<TaskCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Completion record of a finished task.
    #[must_use]
    pub fn completion(&self, id: JobId) -> Option<TaskCompletion> {
        self.finished.get(&id).map(|(_, c)| *c)
    }

    /// Caps `core`'s off-chip bandwidth to `percent` of peak (100 =
    /// unregulated). Set from a job's reserved bandwidth share so that
    /// admitted bandwidth vectors (`Σ ≤ 100%`) cannot be trampled.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_bandwidth_share(&mut self, core: CoreId, percent: u8) {
        self.regulator.set_share(core.as_usize(), percent);
    }

    /// The configured bandwidth share of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn bandwidth_share(&self, core: CoreId) -> u8 {
        self.regulator.share(core.as_usize())
    }

    /// Sets `core`'s DVFS-style speed (percent of full frequency, clamped
    /// to `[cmpqos_cpu::throttle::MIN_SPEED_PCT, 100]`), returning the
    /// previous speed. Core-domain cycles — compute time and L2-hit stalls
    /// — stretch by `100/percent`; off-chip memory stalls are unaffected
    /// (DRAM does not slow down when a core does).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_core_speed(&mut self, core: CoreId, percent: u8) -> u8 {
        self.cores[core.as_usize()].throttle.set_speed(percent)
    }

    /// The current DVFS-style speed of `core`, in percent.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_speed(&self, core: CoreId) -> u8 {
        self.cores[core.as_usize()].throttle.speed()
    }

    /// Memory-bus utilization over the last completed window.
    #[must_use]
    pub fn bus_utilization(&mut self) -> f64 {
        let now = self.now;
        self.bus.utilization(now)
    }

    /// Runs the node until simulation time `deadline`: every instruction
    /// *starting* before `deadline` is executed.
    pub fn run_until(&mut self, deadline: Cycles) {
        loop {
            self.dispatch();
            let Some(c) = self.pick_core(deadline) else {
                break;
            };
            let limit = self.batch_limit(c, deadline);
            self.run_core(c, limit, deadline);
        }
        self.now = self.now.max(deadline);
    }

    /// Runs until all live tasks complete or `hard_cap` is reached.
    /// Returns the time the last task finished (or `hard_cap`).
    pub fn run_to_completion(&mut self, hard_cap: Cycles) -> Cycles {
        while !self.tasks.is_empty() && self.now < hard_cap {
            let next = (self.now + Cycles::new(1_000_000)).min(hard_cap);
            self.run_until(next);
        }
        self.finished
            .values()
            .map(|(_, c)| c.finished_at)
            .max()
            .unwrap_or(self.now)
    }

    // ----- scheduling ---------------------------------------------------

    /// Victim class of a core: Reserved iff its pinned occupant holds
    /// reserved resources.
    fn refresh_core_class(&mut self, core: usize) {
        let class = match self.cores[core].pinned {
            Some(id)
                if self
                    .tasks
                    .get(&id)
                    .is_some_and(|t| t.priority == Priority::Reserved) =>
            {
                VictimClass::Reserved
            }
            _ => VictimClass::Opportunistic,
        };
        self.l2.set_class(CoreId::new(core as u32), class);
    }

    fn dispatch(&mut self) {
        for i in 0..self.cores.len() {
            // Lazy preemption: a floating task on a newly pinned core yields.
            if let (Some(cur), Some(pin)) = (self.cores[i].current, self.cores[i].pinned) {
                if cur != pin {
                    self.preempt(i);
                }
            }
            if self.cores[i].current.is_some() {
                continue;
            }
            let candidate = match self.cores[i].pinned {
                Some(p) if self.tasks.contains_key(&p) => Some(p),
                Some(_) | None => {
                    if self.cores[i].pinned.is_some() {
                        None // pinned task not live yet/anymore
                    } else {
                        self.floating.pop_front()
                    }
                }
            };
            let Some(id) = candidate else { continue };
            self.assign(i, id);
        }
    }

    fn assign(&mut self, core: usize, id: JobId) {
        let task = self.tasks.get_mut(&id).expect("assigning a live task");
        let start = self.cores[core].next_free.max(task.ready_at);
        task.started_at.get_or_insert(start);
        let switching = self.cores[core].last_task != Some(id);
        let mut begin = start;
        if switching && self.cores[core].last_task.is_some() {
            begin += self.cfg.context_switch_cost;
            if self.cfg.flush_l1_on_switch {
                let outgoing = self.cores[core].last_task;
                self.flush_l1(core, outgoing, begin);
            }
        }
        let quantum = self.cfg.timeslice.max(Cycles::new(1));
        let c = &mut self.cores[core];
        c.current = Some(id);
        c.last_task = Some(id);
        c.next_free = begin;
        c.quantum_end = begin + quantum;
    }

    fn preempt(&mut self, core: usize) {
        let Some(id) = self.cores[core].current.take() else {
            return;
        };
        let when = self.cores[core].next_free;
        if let Some(task) = self.tasks.get_mut(&id) {
            task.ready_at = when;
            if task.placement == Placement::Floating {
                self.floating.push_back(id);
            }
        }
    }

    fn pick_core(&self, deadline: Cycles) -> Option<usize> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.current.is_some() && c.next_free < deadline)
            .min_by_key(|(_, c)| c.next_free)
            .map(|(i, _)| i)
    }

    /// How far core `c` may run without other active cores falling behind.
    fn batch_limit(&self, c: usize, deadline: Cycles) -> Cycles {
        self.cores
            .iter()
            .enumerate()
            .filter(|(i, s)| *i != c && s.current.is_some())
            .map(|(_, s)| s.next_free)
            .min()
            .unwrap_or(deadline)
            .min(deadline)
    }

    fn run_core(&mut self, core: usize, limit: Cycles, deadline: Cycles) {
        loop {
            let Some(id) = self.cores[core].current else {
                return;
            };
            let next_free = self.cores[core].next_free;
            if next_free > limit || next_free >= deadline {
                return;
            }
            // Quantum rotation for floating tasks.
            if next_free >= self.cores[core].quantum_end {
                if self.floating.is_empty() {
                    self.cores[core].quantum_end =
                        next_free + self.cfg.timeslice.max(Cycles::new(1));
                } else {
                    self.preempt(core);
                    return;
                }
            }
            self.execute_one(core, id);
        }
    }

    fn execute_one(&mut self, core: usize, id: JobId) {
        let when = self.cores[core].next_free;
        let task = self.tasks.get_mut(&id).expect("current task is live");
        let priority = task.priority;
        let (raw_base, access) = task.ctx.issue();
        // DVFS throttle: compute cycles stretch in the core's clock domain.
        let base = self.cores[core].throttle.scale(raw_base);
        let cost = match access {
            Some(acc) => {
                let outcome = self.hierarchy_access(core, id, acc, when + base, priority);
                let task = self.tasks.get_mut(&id).expect("still live");
                task.ctx.complete(base, outcome);
                base + outcome.stall()
            }
            None => {
                task.ctx.complete_compute(base);
                base
            }
        };
        let task = self.tasks.get_mut(&id).expect("still live");
        task.remaining -= 1;
        let finish = when + cost;
        self.cores[core].next_free = finish;
        if task.remaining == 0 {
            let started = task.started_at.unwrap_or(when);
            let perf = *task.ctx.perf();
            self.tasks.remove(&id);
            let record = TaskCompletion {
                id,
                started_at: started,
                finished_at: finish,
            };
            self.completions.push(record);
            self.finished.insert(id, (perf, record));
            let c = &mut self.cores[core];
            c.current = None;
            if c.pinned == Some(id) {
                c.pinned = None;
            }
            self.refresh_core_class(core);
        }
    }

    // ----- memory hierarchy ---------------------------------------------

    fn hierarchy_access(
        &mut self,
        core: usize,
        id: JobId,
        access: Access,
        when: Cycles,
        priority: Priority,
    ) -> MemOutcome {
        let l1 = &mut self.l1s[core];
        let out = l1.access(access.addr(), access.is_write());
        if out.hit {
            return MemOutcome::L1Hit;
        }
        let core_id = CoreId::new(core as u32);
        // Dirty L1 victim written back into the L2.
        if let Some(wb) = out.writeback {
            self.l2_touch(core_id, Some(id), wb, true, when);
        }
        // Demand fill: a read from the L2's perspective (write-allocate; the
        // dirty bit lives in the L1 until written back).
        let t2 = self.cfg.l2.latency();
        let l2_out = self.l2.access(core_id, access.addr(), false);
        self.feed_monitor(id, l2_out.set, access.addr(), l2_out.hit);
        if l2_out.hit {
            // The L2 hit stall sits in the core's clock domain, so it
            // stretches under the DVFS throttle; the miss path below is
            // paced by the (unthrottled) off-chip channel instead.
            let stall = self.cores[core].throttle.scale(t2);
            return MemOutcome::L2Hit { stall };
        }
        if let Some(ev) = l2_out.eviction {
            if ev.dirty {
                self.mem_writeback(when);
            }
        }
        // Bandwidth regulation throttles the *core* (its next request is
        // delayed by the extended stall), keeping channel bookkeeping in
        // global time order.
        let transfer = self.cfg.memory.transfer_cycles();
        let throttle = self.regulator.delay(core, when + t2, transfer);
        let issue = when + t2;
        let completion = self.mem.request(issue, priority);
        self.bus.record_busy(when, transfer);
        MemOutcome::L2Miss {
            stall: completion - when + throttle,
        }
    }

    /// A state-only L2 access (L1 write-backs, flush traffic): updates cache
    /// contents, monitors and bandwidth, but nothing stalls on it.
    fn l2_touch(
        &mut self,
        core_id: CoreId,
        task: Option<JobId>,
        addr: u64,
        is_write: bool,
        when: Cycles,
    ) {
        let out = self.l2.access(core_id, addr, is_write);
        if let Some(id) = task {
            self.feed_monitor(id, out.set, addr, out.hit);
        }
        if let Some(ev) = out.eviction {
            if ev.dirty {
                self.mem_writeback(when);
            }
        }
    }

    fn feed_monitor(&mut self, id: JobId, set: u32, addr: u64, main_hit: bool) {
        if let Some(mon) = self.monitors.get_mut(&id) {
            let block = addr / self.cfg.l2.block_size().bytes();
            mon.observe(set, block, main_hit);
        }
    }

    fn mem_writeback(&mut self, when: Cycles) {
        self.mem.writeback(when);
        self.bus
            .record_busy(when, self.cfg.memory.transfer_cycles());
    }

    fn flush_l1(&mut self, core: usize, outgoing: Option<JobId>, when: Cycles) {
        let dirty = self.l1s[core].flush();
        let core_id = CoreId::new(core as u32);
        for addr in dirty {
            self.l2_touch(core_id, outgoing, addr, true, when);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_trace::spec;
    use cmpqos_types::Instructions;

    fn spec_task(id: u32, bench: &str, budget: u64, placement: Placement) -> TaskSpec {
        let profile = spec::benchmark(bench).expect("known benchmark");
        TaskSpec {
            id: JobId::new(id),
            source: Box::new(profile.instantiate(100 + u64::from(id), u64::from(id) << 40)),
            budget: Instructions::new(budget),
            placement,
            reserved: matches!(placement, Placement::Pinned(_)),
        }
    }

    fn paper_node() -> CmpNode {
        CmpNode::new(SystemConfig::paper())
    }

    #[test]
    fn single_pinned_task_completes_with_sane_ipc() {
        let mut node = paper_node();
        node.set_l2_targets(&[Ways::new(7), Ways::ZERO, Ways::ZERO, Ways::ZERO])
            .unwrap();
        node.spawn(spec_task(
            0,
            "gobmk",
            200_000,
            Placement::Pinned(CoreId::new(0)),
        ))
        .unwrap();
        let end = node.run_to_completion(Cycles::new(100_000_000));
        assert!(end > Cycles::ZERO);
        let done = node.take_completions();
        assert_eq!(done.len(), 1);
        let perf = node.perf(JobId::new(0)).unwrap();
        assert_eq!(perf.instructions().get(), 200_000);
        let ipc = perf.ipc();
        assert!(ipc > 0.1 && ipc < 1.0, "gobmk IPC {ipc}");
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let mut cfg = SystemConfig::paper();
        cfg.num_cores = 0;
        assert_eq!(
            CmpNode::try_new(cfg).err(),
            Some(SystemConfigError::BadCoreCount)
        );
        assert!(CmpNode::try_new(SystemConfig::paper()).is_ok());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut node = paper_node();
        node.spawn(spec_task(1, "gobmk", 10, Placement::Floating))
            .unwrap();
        let err = node.spawn(spec_task(1, "gobmk", 10, Placement::Floating));
        assert_eq!(err.unwrap_err(), SpawnError::DuplicateId(JobId::new(1)));
    }

    #[test]
    fn pinning_an_occupied_core_rejected() {
        let mut node = paper_node();
        node.spawn(spec_task(0, "gobmk", 10, Placement::Pinned(CoreId::new(2))))
            .unwrap();
        let err = node.spawn(spec_task(1, "gobmk", 10, Placement::Pinned(CoreId::new(2))));
        assert_eq!(
            err.unwrap_err(),
            SpawnError::CoreAlreadyPinned(CoreId::new(2))
        );
    }

    #[test]
    fn floating_tasks_timeshare_one_free_core() {
        let mut node = paper_node();
        // Pin cores 0..3, leaving core 3 free.
        for i in 0..3u32 {
            node.spawn(spec_task(
                i,
                "gobmk",
                300_000,
                Placement::Pinned(CoreId::new(i)),
            ))
            .unwrap();
        }
        node.spawn(spec_task(10, "gobmk", 50_000, Placement::Floating))
            .unwrap();
        node.spawn(spec_task(11, "gobmk", 50_000, Placement::Floating))
            .unwrap();
        node.run_until(Cycles::new(3_000_000));
        // Both floating tasks must have made progress (round-robin), and
        // only on core 3.
        let p10 = node.perf(JobId::new(10)).unwrap().instructions().get();
        let p11 = node.perf(JobId::new(11)).unwrap().instructions().get();
        assert!(p10 > 0 && p11 > 0, "both made progress: {p10} {p11}");
    }

    #[test]
    fn pinned_preempts_floating_on_its_core() {
        let mut node = paper_node();
        node.spawn(spec_task(5, "gobmk", 10_000_000, Placement::Floating))
            .unwrap();
        node.run_until(Cycles::new(100_000));
        // The floating task is running somewhere (core 0, first free).
        assert_eq!(node.running_on(CoreId::new(0)), Some(JobId::new(5)));
        // Pin a reserved task everywhere.
        for i in 0..4u32 {
            node.spawn(spec_task(
                i,
                "gobmk",
                100_000,
                Placement::Pinned(CoreId::new(i)),
            ))
            .unwrap();
        }
        node.run_until(Cycles::new(200_000));
        for i in 0..4u32 {
            assert_eq!(node.running_on(CoreId::new(i)), Some(JobId::new(i)));
        }
        // The floating task waits (no eligible core), still live.
        assert!(node.is_live(JobId::new(5)));
    }

    #[test]
    fn completions_record_start_and_finish() {
        let mut node = paper_node();
        node.spawn(spec_task(
            0,
            "namd",
            10_000,
            Placement::Pinned(CoreId::new(0)),
        ))
        .unwrap();
        node.run_to_completion(Cycles::new(10_000_000));
        let c = node.completion(JobId::new(0)).unwrap();
        assert_eq!(c.started_at, Cycles::ZERO);
        assert!(c.finished_at > c.started_at);
        assert!(!node.is_live(JobId::new(0)));
        // The core's pin is released on completion.
        assert_eq!(node.pinned_on(CoreId::new(0)), None);
    }

    #[test]
    fn monitors_observe_the_tasks_accesses() {
        let mut node = paper_node();
        node.set_l2_targets(&[Ways::new(7), Ways::ZERO, Ways::ZERO, Ways::ZERO])
            .unwrap();
        node.spawn(spec_task(
            0,
            "bzip2",
            100_000,
            Placement::Pinned(CoreId::new(0)),
        ))
        .unwrap();
        node.attach_monitor(JobId::new(0), Ways::new(7));
        node.run_to_completion(Cycles::new(100_000_000));
        let mon = node.monitor(JobId::new(0)).unwrap();
        assert!(mon.sampled_accesses() > 0, "monitor saw traffic");
        // At an unchanged allocation the main tags track the shadow tags.
        assert!(!mon.exceeded(cmpqos_types::Percent::new(50.0)));
    }

    #[test]
    fn later_spawn_starts_later() {
        let mut node = paper_node();
        node.run_until(Cycles::new(500_000));
        node.spawn(spec_task(
            0,
            "namd",
            1_000,
            Placement::Pinned(CoreId::new(1)),
        ))
        .unwrap();
        node.run_to_completion(Cycles::new(10_000_000));
        let c = node.completion(JobId::new(0)).unwrap();
        assert!(c.started_at >= Cycles::new(500_000));
    }

    #[test]
    fn repin_moves_a_floating_task() {
        let mut node = paper_node();
        node.spawn(spec_task(0, "gobmk", 1_000_000, Placement::Floating))
            .unwrap();
        node.run_until(Cycles::new(10_000));
        node.repin(JobId::new(0), CoreId::new(3)).unwrap();
        node.run_until(Cycles::new(50_000));
        assert_eq!(node.running_on(CoreId::new(3)), Some(JobId::new(0)));
        assert_eq!(node.pinned_on(CoreId::new(3)), Some(JobId::new(0)));
    }

    #[test]
    fn zero_budget_rejected() {
        let mut node = paper_node();
        let err = node.spawn(spec_task(0, "gobmk", 0, Placement::Floating));
        assert_eq!(err.unwrap_err(), SpawnError::EmptyBudget);
    }

    #[test]
    fn parallel_pinned_tasks_progress_concurrently() {
        let mut node = paper_node();
        node.set_l2_targets(&[Ways::new(4); 4]).unwrap();
        for i in 0..4u32 {
            node.spawn(spec_task(
                i,
                "gobmk",
                100_000,
                Placement::Pinned(CoreId::new(i)),
            ))
            .unwrap();
        }
        node.run_until(Cycles::new(1_000_000));
        for i in 0..4u32 {
            let done = node.perf(JobId::new(i)).unwrap().instructions().get();
            assert!(done > 10_000, "core {i} executed {done}");
        }
    }

    /// Runs a scaled-down bzip2 alone with `ways` of L2 and returns its CPI.
    fn scaled_bzip2_cpi(ways: u16, budget: u64) -> f64 {
        const K: u64 = 16;
        let mut node = CmpNode::new(SystemConfig::paper_scaled(K));
        node.set_l2_targets(&[Ways::new(ways), Ways::ZERO, Ways::ZERO, Ways::ZERO])
            .unwrap();
        let profile = spec::scaled("bzip2", K).unwrap();
        node.spawn(TaskSpec {
            id: JobId::new(0),
            source: Box::new(profile.instantiate(42, 0)),
            budget: Instructions::new(budget),
            placement: Placement::Pinned(CoreId::new(0)),
            reserved: true,
        })
        .unwrap();
        node.run_to_completion(Cycles::new(10_000_000_000));
        node.perf(JobId::new(0)).unwrap().cpi()
    }

    #[test]
    fn more_cache_means_faster_for_sensitive_benchmark() {
        let slow_cpi = scaled_bzip2_cpi(2, 400_000);
        let fast_cpi = scaled_bzip2_cpi(14, 400_000);
        assert!(
            slow_cpi > fast_cpi * 1.15,
            "bzip2 CPI should react to capacity: {slow_cpi:.2} vs {fast_cpi:.2}"
        );
    }

    /// Runs a scaled gobmk pinned to core 0 at the given speed; returns CPI.
    fn throttled_gobmk_cpi(speed: u8) -> f64 {
        const K: u64 = 16;
        let mut node = CmpNode::new(SystemConfig::paper_scaled(K));
        assert_eq!(node.core_speed(CoreId::new(0)), 100);
        let old = node.set_core_speed(CoreId::new(0), speed);
        assert_eq!(old, 100);
        let profile = spec::scaled("gobmk", K).unwrap();
        node.spawn(TaskSpec {
            id: JobId::new(0),
            source: Box::new(profile.instantiate(42, 0)),
            budget: Instructions::new(100_000),
            placement: Placement::Pinned(CoreId::new(0)),
            reserved: true,
        })
        .unwrap();
        node.run_to_completion(Cycles::new(10_000_000_000));
        node.perf(JobId::new(0)).unwrap().cpi()
    }

    #[test]
    fn throttled_core_runs_proportionally_slower() {
        let full = throttled_gobmk_cpi(100);
        let half = throttled_gobmk_cpi(50);
        // Core-domain cycles double; memory-miss stalls don't scale, so
        // CPI grows markedly but stays well under 2x.
        assert!(
            half > full * 1.3 && half < full * 2.05,
            "half-speed CPI {half:.2} vs full {full:.2}"
        );
    }
}
