//! System-level configuration.

use cmpqos_cache::{CacheConfig, PartitionPolicy};
use cmpqos_mem::MemoryConfig;
use cmpqos_types::Cycles;

/// Static configuration of a CMP node.
///
/// Construct with [`SystemConfig::paper`] (the evaluated machine) and adjust
/// fields as needed; all fields are public plain data.
///
/// # Examples
///
/// ```
/// use cmpqos_system::SystemConfig;
///
/// let mut cfg = SystemConfig::paper();
/// assert_eq!(cfg.num_cores, 4);
/// cfg.timeslice = cmpqos_types::Cycles::new(500_000);
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of cores (paper: 4).
    pub num_cores: usize,
    /// Clock frequency in GHz, used only for cycle/second conversions in
    /// reports (paper: 2.0).
    pub clock_ghz: f64,
    /// Private L1 configuration.
    pub l1: CacheConfig,
    /// Shared L2 configuration.
    pub l2: CacheConfig,
    /// Memory-channel configuration.
    pub memory: MemoryConfig,
    /// L2 partitioning policy.
    pub partition_policy: PartitionPolicy,
    /// Round-robin timeslice for floating (timeshared) tasks.
    /// The default models a 0.5 ms Linux-like quantum at 2 GHz.
    pub timeslice: Cycles,
    /// Direct cost of a context switch.
    pub context_switch_cost: Cycles,
    /// Whether a context switch flushes the L1 (cold-cache effect for the
    /// incoming task).
    pub flush_l1_on_switch: bool,
    /// Duplicate-tag set-sampling period: every `N`-th set carries shadow
    /// tags (paper: 8, i.e. 1/8 coverage).
    pub shadow_sample_every: u32,
}

impl SystemConfig {
    /// The paper's evaluated machine: 4 in-order 2 GHz cores, 32 KiB 4-way
    /// L1s (2 cycles), shared 2 MiB 16-way L2 (10 cycles) with the QoS-aware
    /// per-set partitioning, 300-cycle / 6.4 GB/s memory.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            num_cores: 4,
            clock_ghz: 2.0,
            l1: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            memory: MemoryConfig::paper(),
            partition_policy: PartitionPolicy::PerSet,
            timeslice: Cycles::new(1_000_000),
            context_switch_cost: Cycles::new(10_000),
            flush_l1_on_switch: true,
            shadow_sample_every: 8,
        }
    }

    /// The paper's machine with both cache capacities divided by `k`
    /// (associativities and block sizes unchanged, so set counts shrink).
    ///
    /// Pair with benchmark profiles scaled by the same `k`
    /// ([`cmpqos_trace::spec::scaled`]): every way-granular behaviour
    /// (partitioning, stealing, admission) is preserved while warm-up and
    /// simulation cost drop by ~`k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` does not evenly divide the cache sizes down to at
    /// least one set.
    #[must_use]
    pub fn paper_scaled(k: u64) -> Self {
        use cmpqos_cache::CacheConfig;
        use cmpqos_types::ByteSize;
        let base = Self::paper();
        let scale = |c: &CacheConfig| {
            CacheConfig::new(
                ByteSize::from_bytes(c.size().bytes() / k),
                c.associativity(),
                c.block_size(),
                c.latency(),
            )
            .expect("scale factor must preserve a valid geometry")
        };
        Self {
            l1: scale(&base.l1),
            l2: scale(&base.l2),
            ..base
        }
    }

    /// Converts cycles to milliseconds at this node's clock.
    #[must_use]
    pub fn cycles_to_ms(&self, cycles: Cycles) -> f64 {
        cycles.as_f64() / (self.clock_ghz * 1e6)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_evaluation_setup() {
        let c = SystemConfig::paper();
        assert_eq!(c.num_cores, 4);
        assert_eq!(c.l1.associativity(), 4);
        assert_eq!(c.l2.associativity(), 16);
        assert_eq!(c.memory.latency, Cycles::new(300));
        assert_eq!(c.partition_policy, PartitionPolicy::PerSet);
    }

    #[test]
    fn cycle_conversion() {
        let c = SystemConfig::paper();
        assert!((c.cycles_to_ms(Cycles::new(2_000_000)) - 1.0).abs() < 1e-12);
    }
}
