//! System-level configuration.

use cmpqos_cache::{CacheConfig, CacheConfigError, PartitionPolicy};
use cmpqos_mem::MemoryConfig;
use cmpqos_types::Cycles;
use std::fmt;

/// Error validating a [`SystemConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SystemConfigError {
    /// The core count must be within 1..=255 (the shared L2 tracks owners
    /// in a byte).
    BadCoreCount,
    /// The clock frequency must be positive and finite.
    BadClock,
    /// The duplicate-tag sampling period must be non-zero.
    BadShadowSampling,
    /// A cache geometry is invalid (e.g. a scale factor that does not
    /// preserve a power-of-two set count).
    BadCache(CacheConfigError),
}

impl fmt::Display for SystemConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemConfigError::BadCoreCount => f.write_str("core count must be within 1..=255"),
            SystemConfigError::BadClock => {
                f.write_str("clock frequency must be positive and finite")
            }
            SystemConfigError::BadShadowSampling => {
                f.write_str("shadow sampling period must be non-zero")
            }
            SystemConfigError::BadCache(e) => write!(f, "invalid cache geometry: {e}"),
        }
    }
}

impl std::error::Error for SystemConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SystemConfigError::BadCache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CacheConfigError> for SystemConfigError {
    fn from(e: CacheConfigError) -> Self {
        SystemConfigError::BadCache(e)
    }
}

/// Static configuration of a CMP node.
///
/// Construct with [`SystemConfig::paper`] (the evaluated machine) and adjust
/// fields as needed; all fields are public plain data.
///
/// # Examples
///
/// ```
/// use cmpqos_system::SystemConfig;
///
/// let mut cfg = SystemConfig::paper();
/// assert_eq!(cfg.num_cores, 4);
/// cfg.timeslice = cmpqos_types::Cycles::new(500_000);
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of cores (paper: 4).
    pub num_cores: usize,
    /// Clock frequency in GHz, used only for cycle/second conversions in
    /// reports (paper: 2.0).
    pub clock_ghz: f64,
    /// Private L1 configuration.
    pub l1: CacheConfig,
    /// Shared L2 configuration.
    pub l2: CacheConfig,
    /// Memory-channel configuration.
    pub memory: MemoryConfig,
    /// L2 partitioning policy.
    pub partition_policy: PartitionPolicy,
    /// Round-robin timeslice for floating (timeshared) tasks.
    /// The default models a 0.5 ms Linux-like quantum at 2 GHz.
    pub timeslice: Cycles,
    /// Direct cost of a context switch.
    pub context_switch_cost: Cycles,
    /// Whether a context switch flushes the L1 (cold-cache effect for the
    /// incoming task).
    pub flush_l1_on_switch: bool,
    /// Duplicate-tag set-sampling period: every `N`-th set carries shadow
    /// tags (paper: 8, i.e. 1/8 coverage).
    pub shadow_sample_every: u32,
}

impl SystemConfig {
    /// The paper's evaluated machine: 4 in-order 2 GHz cores, 32 KiB 4-way
    /// L1s (2 cycles), shared 2 MiB 16-way L2 (10 cycles) with the QoS-aware
    /// per-set partitioning, 300-cycle / 6.4 GB/s memory.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            num_cores: 4,
            clock_ghz: 2.0,
            l1: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            memory: MemoryConfig::paper(),
            partition_policy: PartitionPolicy::PerSet,
            timeslice: Cycles::new(1_000_000),
            context_switch_cost: Cycles::new(10_000),
            flush_l1_on_switch: true,
            shadow_sample_every: 8,
        }
    }

    /// The paper's machine with both cache capacities divided by `k`
    /// (associativities and block sizes unchanged, so set counts shrink).
    ///
    /// Pair with benchmark profiles scaled by the same `k`
    /// ([`cmpqos_trace::spec::scaled`]): every way-granular behaviour
    /// (partitioning, stealing, admission) is preserved while warm-up and
    /// simulation cost drop by ~`k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` does not evenly divide the cache sizes down to at
    /// least one set. Prefer [`SystemConfig::try_paper_scaled`] outside
    /// test code.
    #[must_use]
    pub fn paper_scaled(k: u64) -> Self {
        match Self::try_paper_scaled(k) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`SystemConfig::paper_scaled`].
    ///
    /// # Errors
    ///
    /// Returns [`SystemConfigError::BadCache`] when `k` does not preserve
    /// a valid cache geometry.
    pub fn try_paper_scaled(k: u64) -> Result<Self, SystemConfigError> {
        use cmpqos_types::ByteSize;
        let base = Self::paper();
        let scale = |c: &CacheConfig| {
            CacheConfig::new(
                ByteSize::from_bytes(c.size().bytes() / k.max(1)),
                c.associativity(),
                c.block_size(),
                c.latency(),
            )
        };
        Ok(Self {
            l1: scale(&base.l1)?,
            l2: scale(&base.l2)?,
            ..base
        })
    }

    /// Checks the cross-field invariants the engine relies on. All fields
    /// are public plain data, so call this after hand-building or mutating
    /// a configuration; `CmpNode::try_new` calls it for you.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`SystemConfigError`].
    pub fn validate(&self) -> Result<(), SystemConfigError> {
        if !(1..=255).contains(&self.num_cores) {
            return Err(SystemConfigError::BadCoreCount);
        }
        if !(self.clock_ghz.is_finite() && self.clock_ghz > 0.0) {
            return Err(SystemConfigError::BadClock);
        }
        if self.shadow_sample_every == 0 {
            return Err(SystemConfigError::BadShadowSampling);
        }
        Ok(())
    }

    /// Converts cycles to milliseconds at this node's clock.
    #[must_use]
    pub fn cycles_to_ms(&self, cycles: Cycles) -> f64 {
        cycles.as_f64() / (self.clock_ghz * 1e6)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_evaluation_setup() {
        let c = SystemConfig::paper();
        assert_eq!(c.num_cores, 4);
        assert_eq!(c.l1.associativity(), 4);
        assert_eq!(c.l2.associativity(), 16);
        assert_eq!(c.memory.latency, Cycles::new(300));
        assert_eq!(c.partition_policy, PartitionPolicy::PerSet);
    }

    #[test]
    fn cycle_conversion() {
        let c = SystemConfig::paper();
        assert!((c.cycles_to_ms(Cycles::new(2_000_000)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_catches_bad_fields() {
        assert_eq!(SystemConfig::paper().validate(), Ok(()));

        let mut c = SystemConfig::paper();
        c.num_cores = 0;
        assert_eq!(c.validate(), Err(SystemConfigError::BadCoreCount));

        let mut c = SystemConfig::paper();
        c.clock_ghz = f64::NAN;
        assert_eq!(c.validate(), Err(SystemConfigError::BadClock));

        let mut c = SystemConfig::paper();
        c.shadow_sample_every = 0;
        assert_eq!(c.validate(), Err(SystemConfigError::BadShadowSampling));
    }

    #[test]
    fn try_paper_scaled_rejects_degenerate_factor() {
        // Scaling 2 MiB down by 2^30 leaves less than one set per way.
        let err = SystemConfig::try_paper_scaled(1 << 30).unwrap_err();
        assert!(matches!(err, SystemConfigError::BadCache(_)));
        assert!(err.to_string().contains("cache"));
        // A sane factor round-trips through the panicking wrapper.
        assert_eq!(SystemConfig::paper_scaled(16).num_cores, 4);
    }
}
