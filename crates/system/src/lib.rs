//! The CMP node simulator: cores, caches, memory and an OS-like scheduler.
//!
//! This crate replaces the paper's Simics/Linux full-system substrate with an
//! event-driven timing model of a CMP node:
//!
//! * `N` in-order cores (paper: four at 2 GHz), each with a private
//!   [`cmpqos_cache::L1Cache`];
//! * one shared, way-partitioned [`cmpqos_cache::SharedL2`];
//! * one [`cmpqos_mem::MemoryChannel`] with priority-aware bandwidth
//!   queueing; and
//! * an OS layer: **pinned** tasks own a core exclusively (how the LAC runs
//!   Strict/Elastic jobs), while **floating** tasks are timeshared
//!   round-robin across cores without pinned occupants (Opportunistic jobs,
//!   and every job under the non-QoS `EqualPart` configuration).
//!
//! The engine is *mechanism only*: partition targets, victim classes,
//! memory priorities and duplicate-tag monitors are all set from outside by
//! the QoS framework (`cmpqos-core`), which implements the paper's policies
//! on top.
//!
//! # Examples
//!
//! ```
//! use cmpqos_system::{CmpNode, Placement, SystemConfig, TaskSpec};
//! use cmpqos_trace::spec;
//! use cmpqos_types::{Cycles, Instructions, JobId};
//!
//! let mut node = CmpNode::new(SystemConfig::paper());
//! let profile = spec::benchmark("gobmk").unwrap();
//! node.spawn(TaskSpec {
//!     id: JobId::new(0),
//!     source: Box::new(profile.instantiate(1, 0)),
//!     budget: Instructions::new(10_000),
//!     placement: Placement::Floating,
//!     reserved: false,
//! })?;
//! node.run_until(Cycles::new(1_000_000));
//! assert_eq!(node.take_completions().len(), 1);
//! # Ok::<(), cmpqos_system::SpawnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod node;
pub mod task;

pub use config::{SystemConfig, SystemConfigError};
pub use node::CmpNode;
pub use task::{Placement, SpawnError, TaskCompletion, TaskSpec};
