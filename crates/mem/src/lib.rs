//! Off-chip memory model for the `cmpqos` CMP simulator.
//!
//! Models the paper's evaluated memory system: 300-cycle access latency and
//! a 6.4 GB/s peak-bandwidth channel shared by all cores (at 2 GHz that is
//! 3.2 bytes per cycle, i.e. a 64-byte block occupies the channel for 20
//! cycles).
//!
//! Two QoS-relevant behaviours are modelled per the paper's footnote 2:
//!
//! * memory requests from Strict/Elastic(X) jobs are **prioritized** over
//!   those from Opportunistic jobs (so stealing does not inflate `t_m` for
//!   reserved jobs), and
//! * a **bus-utilization monitor** lets the stealing controller disable
//!   stealing when the bus approaches saturation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod monitor;
pub mod regulator;

pub use channel::{MemoryChannel, MemoryConfig, Priority};
pub use monitor::BusMonitor;
pub use regulator::BandwidthRegulator;
