//! Bus-utilization monitoring.
//!
//! Section 4.2 (footnote 2) of the paper notes that resource stealing can be
//! disabled when the memory bus saturates, since beyond saturation queueing
//! delay is no longer roughly constant (Little's law). [`BusMonitor`]
//! provides the windowed utilization estimate that decision needs.

use cmpqos_types::Cycles;

/// Windowed utilization estimator for the memory channel.
///
/// Tracks busy cycles within the current window; [`BusMonitor::utilization`]
/// reports the *previous completed* window's busy fraction so the signal is
/// stable within a window.
///
/// # Examples
///
/// ```
/// use cmpqos_mem::BusMonitor;
/// use cmpqos_types::Cycles;
///
/// let mut mon = BusMonitor::new(Cycles::new(1000));
/// mon.record_busy(Cycles::new(100), Cycles::new(500));
/// // Window [0, 1000) completes once time passes it:
/// assert_eq!(mon.utilization(Cycles::new(1500)), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct BusMonitor {
    window: Cycles,
    window_start: Cycles,
    busy_in_window: u64,
    last_utilization: f64,
}

impl BusMonitor {
    /// Creates a monitor with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: Cycles) -> Self {
        assert!(window > Cycles::ZERO, "window must be positive");
        Self {
            window,
            window_start: Cycles::ZERO,
            busy_in_window: 0,
            last_utilization: 0.0,
        }
    }

    /// Records `busy` cycles of channel occupancy at time `now`.
    pub fn record_busy(&mut self, now: Cycles, busy: Cycles) {
        self.roll(now);
        self.busy_in_window += busy.get();
    }

    /// Utilization (busy fraction, clamped to 1.0) of the most recently
    /// completed window as of `now`.
    #[must_use]
    pub fn utilization(&mut self, now: Cycles) -> f64 {
        self.roll(now);
        self.last_utilization
    }

    /// Whether the bus is saturated above `threshold` (e.g. `0.9`).
    #[must_use]
    pub fn saturated(&mut self, now: Cycles, threshold: f64) -> bool {
        self.utilization(now) >= threshold
    }

    fn roll(&mut self, now: Cycles) {
        while now >= self.window_start + self.window {
            self.last_utilization =
                (self.busy_in_window as f64 / self.window.get() as f64).min(1.0);
            self.busy_in_window = 0;
            self.window_start += self.window;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_reports_previous_window() {
        let mut m = BusMonitor::new(Cycles::new(100));
        m.record_busy(Cycles::new(10), Cycles::new(40));
        assert_eq!(m.utilization(Cycles::new(50)), 0.0); // window not done
        assert_eq!(m.utilization(Cycles::new(100)), 0.4);
    }

    #[test]
    fn empty_windows_reset_utilization() {
        let mut m = BusMonitor::new(Cycles::new(100));
        m.record_busy(Cycles::new(0), Cycles::new(100));
        assert_eq!(m.utilization(Cycles::new(100)), 1.0);
        // Two idle windows later:
        assert_eq!(m.utilization(Cycles::new(300)), 0.0);
    }

    #[test]
    fn clamps_to_one() {
        let mut m = BusMonitor::new(Cycles::new(10));
        m.record_busy(Cycles::new(0), Cycles::new(100));
        assert_eq!(m.utilization(Cycles::new(10)), 1.0);
    }

    #[test]
    fn saturation_threshold() {
        let mut m = BusMonitor::new(Cycles::new(100));
        m.record_busy(Cycles::new(0), Cycles::new(95));
        assert!(m.saturated(Cycles::new(100), 0.9));
        assert!(!m.saturated(Cycles::new(100), 0.99));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = BusMonitor::new(Cycles::ZERO);
    }
}
