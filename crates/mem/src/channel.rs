//! The shared memory channel: fixed access latency plus priority-aware
//! bandwidth queueing.

use cmpqos_types::{ByteSize, Cycles};
use std::fmt;

/// Scheduling priority of a memory request.
///
/// The paper (footnote 2) prioritizes requests from Strict/Elastic(X) jobs
/// over Opportunistic ones so that resource stealing does not inflate the
/// L2-miss penalty `t_m` observed by reserved jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Strict / Elastic(X) traffic.
    Reserved,
    /// Opportunistic traffic (and write-backs).
    Opportunistic,
}

/// Static memory-system parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// DRAM access latency, excluding queueing (paper: 300 cycles).
    pub latency: Cycles,
    /// Peak bandwidth in bytes per core cycle (paper: 6.4 GB/s at 2 GHz =
    /// 3.2 B/cycle).
    pub bytes_per_cycle: f64,
    /// Transfer unit (cache-block size; paper: 64 B).
    pub block_size: ByteSize,
}

impl MemoryConfig {
    /// The paper's configuration: 300-cycle latency, 6.4 GB/s at 2 GHz,
    /// 64-byte blocks.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            latency: Cycles::new(300),
            bytes_per_cycle: 3.2,
            block_size: ByteSize::from_bytes(64),
        }
    }

    /// Channel occupancy of one block transfer, in cycles (rounded up).
    #[must_use]
    pub fn transfer_cycles(&self) -> Cycles {
        Cycles::new((self.block_size.bytes() as f64 / self.bytes_per_cycle).ceil() as u64)
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl fmt::Display for MemoryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} latency, {:.1} B/cycle, {} blocks",
            self.latency, self.bytes_per_cycle, self.block_size
        )
    }
}

/// The shared channel with two-level priority queueing.
///
/// The model keeps one backlog of queued transfer work per priority class;
/// backlogs drain at one cycle of work per cycle of simulated time. A
/// `Reserved` request waits only behind reserved backlog; an `Opportunistic`
/// request waits behind both. This is an O(1) approximation of a
/// two-priority work-conserving queue (exact for non-preempted transfers
/// arriving in time order, which is how the system model issues them).
///
/// # Examples
///
/// ```
/// use cmpqos_mem::{MemoryChannel, MemoryConfig, Priority};
/// use cmpqos_types::Cycles;
///
/// let mut ch = MemoryChannel::new(MemoryConfig::paper());
/// let done = ch.request(Cycles::new(0), Priority::Reserved);
/// assert_eq!(done, Cycles::new(300)); // no queueing on an idle channel
/// ```
#[derive(Debug, Clone)]
pub struct MemoryChannel {
    config: MemoryConfig,
    transfer: Cycles,
    /// Simulation time of the last backlog update.
    last_update: Cycles,
    /// Outstanding transfer work per class, in cycles.
    backlog_reserved: u64,
    backlog_opportunistic: u64,
    /// Totals for utilization/energy accounting.
    requests: u64,
    busy_cycles: u64,
}

impl MemoryChannel {
    /// Creates an idle channel.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self {
            config,
            transfer: config.transfer_cycles(),
            last_update: Cycles::ZERO,
            backlog_reserved: 0,
            backlog_opportunistic: 0,
            requests: 0,
            busy_cycles: 0,
        }
    }

    /// The channel configuration.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Total requests served.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total cycles of channel occupancy generated.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Issues a block request at time `now`; returns its completion time
    /// (when the data is available to the core).
    ///
    /// Requests must be issued in non-decreasing time order; issuing one in
    /// the past is clamped to the last update time.
    pub fn request(&mut self, now: Cycles, priority: Priority) -> Cycles {
        self.drain_to(now);
        let wait = match priority {
            Priority::Reserved => self.backlog_reserved,
            Priority::Opportunistic => self.backlog_reserved + self.backlog_opportunistic,
        };
        match priority {
            Priority::Reserved => self.backlog_reserved += self.transfer.get(),
            Priority::Opportunistic => self.backlog_opportunistic += self.transfer.get(),
        }
        self.requests += 1;
        self.busy_cycles += self.transfer.get();
        self.last_update.max(now) + Cycles::new(wait) + self.config.latency
    }

    /// Registers a write-back transfer at time `now`. Write-backs occupy
    /// bandwidth (low priority) but nothing waits on their completion.
    pub fn writeback(&mut self, now: Cycles) {
        self.drain_to(now);
        self.backlog_opportunistic += self.transfer.get();
        self.requests += 1;
        self.busy_cycles += self.transfer.get();
    }

    /// Current queued work visible to a request of `priority`, in cycles.
    #[must_use]
    pub fn backlog(&self, priority: Priority) -> Cycles {
        match priority {
            Priority::Reserved => Cycles::new(self.backlog_reserved),
            Priority::Opportunistic => {
                Cycles::new(self.backlog_reserved + self.backlog_opportunistic)
            }
        }
    }

    fn drain_to(&mut self, now: Cycles) {
        if now <= self.last_update {
            return;
        }
        let mut elapsed = (now - self.last_update).get();
        self.last_update = now;
        // Reserved work drains first (it is at the head of the queue).
        let drain_r = elapsed.min(self.backlog_reserved);
        self.backlog_reserved -= drain_r;
        elapsed -= drain_r;
        let drain_o = elapsed.min(self.backlog_opportunistic);
        self.backlog_opportunistic -= drain_o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> MemoryChannel {
        MemoryChannel::new(MemoryConfig::paper())
    }

    #[test]
    fn paper_transfer_is_20_cycles() {
        assert_eq!(MemoryConfig::paper().transfer_cycles(), Cycles::new(20));
    }

    #[test]
    fn idle_channel_has_pure_latency() {
        let mut c = ch();
        assert_eq!(
            c.request(Cycles::new(100), Priority::Reserved),
            Cycles::new(400)
        );
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut c = ch();
        let t0 = c.request(Cycles::new(0), Priority::Reserved);
        let t1 = c.request(Cycles::new(0), Priority::Reserved);
        assert_eq!(t0, Cycles::new(300));
        assert_eq!(t1, Cycles::new(320)); // waits one transfer
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut c = ch();
        c.request(Cycles::new(0), Priority::Reserved);
        // 20 cycles later the transfer has fully drained.
        let t = c.request(Cycles::new(20), Priority::Reserved);
        assert_eq!(t, Cycles::new(320));
    }

    #[test]
    fn reserved_bypasses_opportunistic_backlog() {
        let mut c = ch();
        for _ in 0..5 {
            c.request(Cycles::new(0), Priority::Opportunistic);
        }
        // Reserved request does not wait behind the 100 cycles of
        // opportunistic work.
        let t = c.request(Cycles::new(0), Priority::Reserved);
        assert_eq!(t, Cycles::new(300));
        // But opportunistic waits behind everything.
        let t = c.request(Cycles::new(0), Priority::Opportunistic);
        assert_eq!(t, Cycles::new(300 + 6 * 20));
    }

    #[test]
    fn writebacks_consume_bandwidth_only() {
        let mut c = ch();
        c.writeback(Cycles::new(0));
        assert_eq!(c.backlog(Priority::Opportunistic), Cycles::new(20));
        assert_eq!(c.backlog(Priority::Reserved), Cycles::new(0));
        assert_eq!(c.requests(), 1);
    }

    #[test]
    fn utilization_counters_accumulate() {
        let mut c = ch();
        c.request(Cycles::new(0), Priority::Reserved);
        c.writeback(Cycles::new(0));
        assert_eq!(c.busy_cycles(), 40);
        assert_eq!(c.requests(), 2);
    }

    #[test]
    fn reserved_drains_before_opportunistic() {
        let mut c = ch();
        c.request(Cycles::new(0), Priority::Reserved); // 20 cycles reserved
        c.request(Cycles::new(0), Priority::Opportunistic); // 20 cycles opp
                                                            // After 30 cycles: reserved fully drained, 10 cycles of opp left.
        let t = c.request(Cycles::new(30), Priority::Opportunistic);
        assert_eq!(t, Cycles::new(30 + 10 + 300));
    }

    #[test]
    fn out_of_order_request_clamps() {
        let mut c = ch();
        c.request(Cycles::new(100), Priority::Reserved);
        // A request "in the past" behaves as if issued at t=100.
        let t = c.request(Cycles::new(50), Priority::Reserved);
        assert_eq!(t, Cycles::new(100 + 20 + 300));
    }

    #[test]
    fn config_display() {
        assert!(MemoryConfig::paper().to_string().contains("300 cycles"));
    }
}
