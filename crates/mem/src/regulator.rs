//! Per-core off-chip bandwidth regulation.
//!
//! The paper scopes its RUM targets to cores and L2 capacity and leaves
//! "off-chip bandwidth rate" as future work (Section 3.2). This module
//! supplies that extension's microarchitecture half: a token-bucket
//! regulator that **caps** each core's share of channel time, so that a
//! reserved bandwidth vector admitted by the LAC (`Σ shares ≤ 100%`)
//! cannot be trampled by a noisy neighbour. (The *guarantee* half is the
//! existing Reserved-over-Opportunistic priority plus admission control.)

use cmpqos_types::Cycles;

/// A per-consumer token-bucket bandwidth cap.
///
/// Shares are percent of peak channel bandwidth; a consumer with share `s`
/// accumulates `s/100` cycles of transfer budget per simulated cycle, up to
/// a configurable burst. Consumers with no share configured (share 100)
/// are unregulated.
///
/// # Examples
///
/// ```
/// use cmpqos_mem::regulator::BandwidthRegulator;
/// use cmpqos_types::Cycles;
///
/// let mut reg = BandwidthRegulator::new(4, Cycles::new(200));
/// reg.set_share(0, 50); // core 0 may use at most half the channel
/// let d0 = reg.delay(0, Cycles::new(0), Cycles::new(20));
/// assert_eq!(d0, Cycles::new(0)); // burst allowance covers the first
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthRegulator {
    /// Percent share per consumer (100 = unregulated).
    shares: Vec<u8>,
    /// Token balance per consumer, in channel cycles (may go negative
    /// conceptually; stored as signed).
    tokens: Vec<f64>,
    last_update: Vec<Cycles>,
    burst: f64,
}

impl BandwidthRegulator {
    /// Creates a regulator for `consumers` cores with the given burst
    /// allowance (in channel cycles).
    ///
    /// # Panics
    ///
    /// Panics if `consumers` is zero or `burst` is zero.
    #[must_use]
    pub fn new(consumers: usize, burst: Cycles) -> Self {
        assert!(consumers > 0, "need at least one consumer");
        assert!(burst > Cycles::ZERO, "burst must be positive");
        Self {
            shares: vec![100; consumers],
            tokens: vec![burst.as_f64(); consumers],
            last_update: vec![Cycles::ZERO; consumers],
            burst: burst.as_f64(),
        }
    }

    /// Sets a consumer's share in percent (clamped to 100; 100 =
    /// unregulated).
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    pub fn set_share(&mut self, consumer: usize, percent: u8) {
        self.shares[consumer] = percent.min(100);
    }

    /// The consumer's configured share.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    #[must_use]
    pub fn share(&self, consumer: usize) -> u8 {
        self.shares[consumer]
    }

    /// Charges a transfer of `transfer` channel cycles issued by
    /// `consumer` at time `now`, returning the regulation delay to add
    /// before the request may enter the channel.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    pub fn delay(&mut self, consumer: usize, now: Cycles, transfer: Cycles) -> Cycles {
        let share = f64::from(self.shares[consumer]) / 100.0;
        if share >= 1.0 {
            return Cycles::ZERO;
        }
        // Refill.
        let elapsed = now.saturating_sub(self.last_update[consumer]).as_f64();
        self.last_update[consumer] = now.max(self.last_update[consumer]);
        let t = &mut self.tokens[consumer];
        *t = (*t + elapsed * share).min(self.burst);
        // Spend.
        *t -= transfer.as_f64();
        if *t >= 0.0 {
            Cycles::ZERO
        } else {
            // Wait until the balance refills to zero; advance the refill
            // clock to the end of the wait so it is not credited twice.
            let wait = (-*t / share).ceil();
            *t += wait * share;
            self.last_update[consumer] = now + Cycles::new(wait as u64);
            Cycles::new(wait as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregulated_consumer_never_waits() {
        let mut reg = BandwidthRegulator::new(2, Cycles::new(100));
        for i in 0..50u64 {
            assert_eq!(reg.delay(1, Cycles::new(i), Cycles::new(20)), Cycles::ZERO);
        }
    }

    #[test]
    fn capped_consumer_converges_to_its_share() {
        let mut reg = BandwidthRegulator::new(1, Cycles::new(40));
        reg.set_share(0, 25); // quarter of the channel
        let transfer = Cycles::new(20);
        let mut now = Cycles::ZERO;
        let n = 200u64;
        for _ in 0..n {
            let d = reg.delay(0, now, transfer);
            // Back-to-back issue: next request right after this transfer.
            now = now + d + transfer;
        }
        // n transfers of 20 cycles at a 25% cap need ~ n*20/0.25 cycles.
        let expected = n as f64 * 20.0 / 0.25;
        let actual = now.as_f64();
        assert!(
            (actual - expected).abs() / expected < 0.1,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn idle_time_refills_up_to_burst_only() {
        let mut reg = BandwidthRegulator::new(1, Cycles::new(40));
        reg.set_share(0, 50);
        // Long idle: balance caps at the 40-cycle burst, so only two
        // 20-cycle transfers go through before throttling.
        assert_eq!(
            reg.delay(0, Cycles::new(1_000_000), Cycles::new(20)),
            Cycles::ZERO
        );
        assert_eq!(
            reg.delay(0, Cycles::new(1_000_000), Cycles::new(20)),
            Cycles::ZERO
        );
        let d = reg.delay(0, Cycles::new(1_000_000), Cycles::new(20));
        assert!(d > Cycles::ZERO, "third back-to-back transfer throttles");
    }

    #[test]
    fn shares_clamp_to_hundred() {
        let mut reg = BandwidthRegulator::new(1, Cycles::new(10));
        reg.set_share(0, 250);
        assert_eq!(reg.share(0), 100);
    }

    #[test]
    #[should_panic(expected = "at least one consumer")]
    fn zero_consumers_rejected() {
        let _ = BandwidthRegulator::new(0, Cycles::new(10));
    }
}
