//! The generic write-ahead journal: schema-versioned, checksummed records
//! with JSONL persistence, torn-tail truncation, and snapshot compaction.

use serde::{Deserialize, Serialize, Value};

/// The journal record schema version. Bumped when the record layout
/// changes; loading rejects records from a newer schema.
pub const JOURNAL_VERSION: u32 = 1;

/// FNV-1a 64-bit over `bytes` — the record checksum. Chosen because it is
/// dependency-free, deterministic across platforms, and plenty to detect
/// the torn/bit-flipped tails crash recovery must survive (it is *not* a
/// cryptographic integrity guarantee).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes
        .iter()
        .fold(OFFSET, |hash, &b| (hash ^ u64::from(b)).wrapping_mul(PRIME))
}

/// One journal record: a sequence-numbered, versioned, checksummed
/// operation. Serialized as one JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord<O> {
    /// Monotonically increasing sequence number (never reset, not even by
    /// compaction — a gap smaller than the last snapshot is impossible).
    pub seq: u64,
    /// Schema version the record was written with.
    pub version: u32,
    /// [`fnv1a64`] over the serialized `op`, computed at append time.
    pub checksum: u64,
    /// The journaled operation.
    pub op: O,
}

// The vendored serde's derive does not handle generic types, so the record
// envelope is implemented by hand. Field names are part of the on-disk
// format; changing them is a JOURNAL_VERSION bump.
impl<O: Serialize> Serialize for JournalRecord<O> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("seq".to_owned(), self.seq.to_value()),
            ("version".to_owned(), self.version.to_value()),
            ("checksum".to_owned(), self.checksum.to_value()),
            ("op".to_owned(), self.op.to_value()),
        ])
    }
}

impl<O: Deserialize> Deserialize for JournalRecord<O> {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("journal record missing `{name}`")))
        };
        Ok(Self {
            seq: u64::from_value(field("seq")?)?,
            version: u32::from_value(field("version")?)?,
            checksum: u64::from_value(field("checksum")?)?,
            op: O::from_value(field("op")?)?,
        })
    }
}

/// How loading a journal's tail went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailReport {
    /// Records that parsed, checksummed, and sequenced correctly.
    pub valid: u64,
    /// Trailing lines dropped at the first invalid record (torn write,
    /// flipped bits, bad version, or out-of-order sequence).
    pub lost: u64,
}

/// An append-only operation journal with snapshot compaction.
///
/// The write-ahead contract is the caller's: append the op **before**
/// mutating in-core state. [`Journal::to_jsonl`] persists; loading with
/// [`Journal::from_jsonl`] truncates at the last valid checksum instead of
/// failing, reporting what was lost.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal<O> {
    records: Vec<JournalRecord<O>>,
    next_seq: u64,
}

impl<O> Default for Journal<O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O> Journal<O> {
    /// An empty journal.
    #[must_use]
    pub fn new() -> Self {
        Self {
            records: Vec::new(),
            next_seq: 0,
        }
    }

    /// All live records (everything since the last compaction).
    #[must_use]
    pub fn records(&self) -> &[JournalRecord<O>] {
        &self.records
    }

    /// Live record count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The sequence number the next append will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

impl<O: Serialize> Journal<O> {
    /// Appends `op` as a checksummed record and returns its sequence
    /// number. Call this *before* applying the op to in-core state.
    pub fn append(&mut self, op: O) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let checksum = Self::checksum_of(&op);
        self.records.push(JournalRecord {
            seq,
            version: JOURNAL_VERSION,
            checksum,
            op,
        });
        seq
    }

    /// Compaction: replaces every live record with the single `snapshot`
    /// op (sequence numbering continues), so the journal stays bounded.
    pub fn compact(&mut self, snapshot: O) {
        self.records.clear();
        let _ = self.append(snapshot);
    }

    /// Serializes the journal as JSONL, one record per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).expect("journal records serialize"));
            out.push('\n');
        }
        out
    }

    fn checksum_of(op: &O) -> u64 {
        fnv1a64(
            serde_json::to_string(op)
                .expect("journal ops serialize")
                .as_bytes(),
        )
    }
}

impl<O: Serialize + Deserialize> Journal<O> {
    /// Loads a journal from JSONL, tolerating a torn or corrupted tail:
    /// parsing stops at the first line that fails to parse, carries a
    /// future schema version, breaks sequence monotonicity, or whose
    /// checksum does not match its op. Everything from that line on is
    /// dropped and counted in the [`TailReport`] — never a panic, never an
    /// error.
    #[must_use]
    pub fn from_jsonl(text: &str) -> (Self, TailReport) {
        let mut journal = Self::new();
        let mut report = TailReport::default();
        let lines: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let mut last_seq: Option<u64> = None;
        for (i, line) in lines.iter().enumerate() {
            let Ok(record) = serde_json::from_str::<JournalRecord<O>>(line) else {
                report.lost = (lines.len() - i) as u64;
                break;
            };
            let in_order = last_seq.is_none_or(|prev| record.seq > prev);
            if record.version > JOURNAL_VERSION
                || !in_order
                || Self::checksum_of(&record.op) != record.checksum
            {
                report.lost = (lines.len() - i) as u64;
                break;
            }
            last_seq = Some(record.seq);
            journal.next_seq = record.seq + 1;
            journal.records.push(record);
            report.valid += 1;
        }
        (journal, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_roundtrips_through_jsonl() {
        let mut j: Journal<Vec<u32>> = Journal::new();
        assert_eq!(j.append(vec![1, 2, 3]), 0);
        assert_eq!(j.append(vec![]), 1);
        assert_eq!(j.append(vec![9; 40]), 2);
        let (back, report) = Journal::<Vec<u32>>::from_jsonl(&j.to_jsonl());
        assert_eq!(back, j);
        assert_eq!(report, TailReport { valid: 3, lost: 0 });
        assert_eq!(back.next_seq(), 3);
    }

    #[test]
    fn a_torn_tail_truncates_cleanly() {
        let mut j: Journal<String> = Journal::new();
        let _ = j.append("alpha".into());
        let _ = j.append("beta".into());
        let mut text = j.to_jsonl();
        // Tear the last line mid-record, as a crash mid-write would.
        text.truncate(text.len() - 10);
        let (back, report) = Journal::<String>::from_jsonl(&text);
        assert_eq!(back.len(), 1);
        assert_eq!(back.records()[0].op, "alpha");
        assert_eq!(report, TailReport { valid: 1, lost: 1 });
    }

    #[test]
    fn flipped_bits_fail_the_checksum() {
        let mut j: Journal<String> = Journal::new();
        let _ = j.append("alpha".into());
        let _ = j.append("beta".into());
        let corrupt = j.to_jsonl().replace("beta", "betA");
        let (back, report) = Journal::<String>::from_jsonl(&corrupt);
        assert_eq!(back.len(), 1);
        assert_eq!(report.lost, 1);
    }

    #[test]
    fn compaction_bounds_the_journal_and_keeps_sequencing() {
        let mut j: Journal<u64> = Journal::new();
        for n in 0..100 {
            let _ = j.append(n);
        }
        j.compact(999);
        assert_eq!(j.len(), 1);
        assert_eq!(j.records()[0].seq, 100);
        assert_eq!(j.append(7), 101);
        let (back, report) = Journal::<u64>::from_jsonl(&j.to_jsonl());
        assert_eq!(report.valid, 2);
        assert_eq!(back.next_seq(), 102);
    }

    #[test]
    fn future_schema_versions_are_not_replayed() {
        let mut j: Journal<u64> = Journal::new();
        let _ = j.append(1);
        let text = j.to_jsonl().replace("\"version\":1", "\"version\":999");
        let (back, report) = Journal::<u64>::from_jsonl(&text);
        assert!(back.is_empty());
        assert_eq!(report.lost, 1);
    }
}
