//! # Crash-consistent admission state for the CMP QoS framework
//!
//! The paper's admission controllers (Section 5) are user-level programs:
//! a crash of the GAC/LAC process loses the reservation tables, the FCFS
//! order, and the node-health map — and with them every QoS promise the
//! server has made. This crate makes that state crash-consistent with a
//! classic write-ahead journal:
//!
//! * [`Journal`] — an append-only log of schema-versioned, checksummed
//!   records ([`JournalRecord`]), serialized as JSONL. Loading tolerates a
//!   torn or bit-flipped tail by truncating at the last valid checksum
//!   ([`TailReport`]) instead of failing.
//! * [`JournaledLac`] / [`JournaledGac`] — drop-in wrappers that append
//!   every state-changing operation to the journal *before* mutating the
//!   in-core controller, and periodically compact the journal down to a
//!   single snapshot record ([`cmpqos_core::LacState`] /
//!   [`cmpqos_core::GacState`]).
//! * Deterministic recovery — [`JournaledLac::recover`] /
//!   [`JournaledGac::recover`] rebuild a controller as *snapshot + op
//!   replay*. Because every admission decision is a pure function of
//!   controller state, the recovered controller's subsequent decisions are
//!   byte-identical to the uncrashed original's (the chaos harness asserts
//!   exactly this under `--crash-at`).
//!
//! ```
//! use cmpqos_core::{AdmissionRequest, Lac, LacConfig, ResourceRequest};
//! use cmpqos_recovery::JournaledLac;
//! use cmpqos_types::{Cycles, JobId};
//!
//! let mut lac = JournaledLac::new(Lac::new(LacConfig::default()), 64);
//! let req = AdmissionRequest::builder(
//!     JobId::new(0),
//!     ResourceRequest::paper_job(),
//!     Cycles::new(100),
//! )
//! .deadline(Cycles::new(1_000))
//! .build();
//! assert!(lac.admit(&req).is_accepted());
//!
//! // Crash: only the serialized journal survives.
//! let surviving = lac.to_jsonl();
//! let (recovered, report) = JournaledLac::recover(&surviving, 64);
//! assert_eq!(recovered.lac(), lac.lac());
//! assert_eq!(report.lost, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gac_journal;
pub mod journal;
pub mod lac_journal;

pub use gac_journal::{GacOp, JournaledGac};
pub use journal::{fnv1a64, Journal, JournalRecord, TailReport, JOURNAL_VERSION};
pub use lac_journal::{JournaledLac, LacOp};

/// What a [`JournaledLac::recover`] / [`JournaledGac::recover`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use = "a recovery report says how much journaled state was lost; dropping it hides data loss"]
pub struct RecoveryReport {
    /// Operations replayed on top of the restored snapshot.
    pub replayed: u64,
    /// Journal lines dropped as torn or corrupted (from [`TailReport`]).
    pub lost: u64,
}

impl RecoveryReport {
    /// Whether recovery reconstructed every journaled operation.
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.lost == 0
    }
}
