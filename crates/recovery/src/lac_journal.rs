//! Write-ahead journaling for the Local Admission Controller.

use crate::journal::Journal;
use crate::RecoveryReport;
use cmpqos_core::{
    AdmissionRequest, Decision, ExecutionMode, Lac, LacConfig, LacState, Placement, Reservation,
    ResourceRequest, Revocation,
};
use cmpqos_types::{Cycles, JobId};
use serde::{Deserialize, Serialize};

/// One journaled LAC operation. The set is exhaustive over everything that
/// mutates a [`Lac`], so *snapshot + replay* reconstructs the exact state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LacOp {
    /// A compaction snapshot: the complete controller state at this point.
    Snapshot(LacState),
    /// [`Lac::admit`] with earliest-feasible placement.
    Admit {
        /// The submitted job.
        id: JobId,
        /// Its execution mode.
        mode: ExecutionMode,
        /// Its resource-request vector.
        request: ResourceRequest,
        /// Its time window.
        tw: Cycles,
        /// Its deadline, when given.
        deadline: Option<Cycles>,
    },
    /// [`Lac::admit`] with latest-feasible placement.
    AdmitLatest {
        /// The downgraded job.
        id: JobId,
        /// Its resource-request vector.
        request: ResourceRequest,
        /// Its time window.
        tw: Cycles,
        /// Its deadline.
        deadline: Cycles,
    },
    /// [`Lac::readmit`] of a migrated reservation.
    Readmit(Reservation),
    /// [`Lac::advance`].
    Advance {
        /// The new clock value.
        now: Cycles,
    },
    /// [`Lac::release`].
    Release {
        /// The completing job.
        id: JobId,
        /// When it completed.
        at: Cycles,
    },
    /// [`Lac::cancel`].
    Cancel {
        /// The cancelled job.
        id: JobId,
    },
    /// [`Lac::revoke_capacity`].
    RevokeCapacity {
        /// The shrunken capacity.
        new_capacity: ResourceRequest,
        /// When the fault hit.
        now: Cycles,
    },
}

/// A [`Lac`] whose every state-changing operation is appended to a
/// write-ahead [`Journal`] *before* the in-core tables mutate.
///
/// The journal starts with a snapshot record and is compacted back down to
/// one snapshot every `compact_every` operations, so its length is bounded
/// by `compact_every + 1` records regardless of run length.
#[derive(Debug, Clone, PartialEq)]
pub struct JournaledLac {
    lac: Lac,
    journal: Journal<LacOp>,
    compact_every: u64,
    ops_since_snapshot: u64,
}

impl JournaledLac {
    /// Wraps `lac`, seeding the journal with a snapshot of its current
    /// state. `compact_every` (clamped to ≥ 1) is the number of operations
    /// between compactions.
    #[must_use]
    pub fn new(lac: Lac, compact_every: u64) -> Self {
        let mut journal = Journal::new();
        let _ = journal.append(LacOp::Snapshot(lac.snapshot()));
        Self {
            lac,
            journal,
            compact_every: compact_every.max(1),
            ops_since_snapshot: 0,
        }
    }

    /// The wrapped controller.
    #[must_use]
    pub fn lac(&self) -> &Lac {
        &self.lac
    }

    /// The write-ahead journal.
    #[must_use]
    pub fn journal(&self) -> &Journal<LacOp> {
        &self.journal
    }

    /// Serializes the journal as JSONL — the only thing that needs to
    /// survive a crash.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        self.journal.to_jsonl()
    }

    /// Rebuilds a controller from a serialized journal: restore the latest
    /// valid snapshot, then deterministically replay every operation after
    /// it. A torn or corrupted tail is truncated (never a panic); the
    /// dropped-line count is reported. When no valid snapshot survives at
    /// all, recovery falls back to an empty default-configured controller.
    #[must_use = "dropping the report hides how much journaled state was lost"]
    pub fn recover(jsonl: &str, compact_every: u64) -> (Self, RecoveryReport) {
        let (journal, tail) = Journal::<LacOp>::from_jsonl(jsonl);
        let snapshot_at = journal
            .records()
            .iter()
            .rposition(|r| matches!(r.op, LacOp::Snapshot(_)));
        let mut lac = match snapshot_at {
            Some(i) => match &journal.records()[i].op {
                LacOp::Snapshot(state) => Lac::restore(state.clone()),
                _ => unreachable!("rposition matched a snapshot"),
            },
            None => Lac::new(LacConfig::default()),
        };
        let replay_from = snapshot_at.map_or(0, |i| i + 1);
        let mut replayed = 0u64;
        for record in &journal.records()[replay_from..] {
            Self::apply(&mut lac, &record.op);
            replayed += 1;
        }
        (
            Self {
                lac,
                journal,
                compact_every: compact_every.max(1),
                ops_since_snapshot: replayed,
            },
            RecoveryReport {
                replayed,
                lost: tail.lost,
            },
        )
    }

    /// Replays one operation. Decisions and revocation lists are discarded:
    /// they were already acted on before the crash, and the replay's only
    /// job is to drive the controller into the identical state.
    fn apply(lac: &mut Lac, op: &LacOp) {
        match op {
            LacOp::Snapshot(state) => *lac = Lac::restore(state.clone()),
            LacOp::Admit {
                id,
                mode,
                request,
                tw,
                deadline,
            } => {
                let mut b = AdmissionRequest::builder(*id, *request, *tw).mode(*mode);
                if let Some(td) = deadline {
                    b = b.deadline(*td);
                }
                let _ = lac.admit(&b.build());
            }
            LacOp::AdmitLatest {
                id,
                request,
                tw,
                deadline,
            } => {
                let req = AdmissionRequest::builder(*id, *request, *tw)
                    .deadline(*deadline)
                    .latest_feasible()
                    .build();
                let _ = lac.admit(&req);
            }
            LacOp::Readmit(r) => {
                let _ = lac.readmit(r);
            }
            LacOp::Advance { now } => lac.advance(*now),
            LacOp::Release { id, at } => lac.release(*id, *at),
            LacOp::Cancel { id } => lac.cancel(*id),
            LacOp::RevokeCapacity { new_capacity, now } => {
                let _ = lac.revoke_capacity(*new_capacity, *now);
            }
        }
    }

    /// Appends `op` (write-ahead: the journal sees it before the tables).
    fn log(&mut self, op: LacOp) {
        let _ = self.journal.append(op);
        self.ops_since_snapshot += 1;
    }

    /// Compacts after a mutation once enough operations accumulated, so
    /// the snapshot reflects the post-op state.
    fn maybe_compact(&mut self) {
        if self.ops_since_snapshot >= self.compact_every {
            self.journal.compact(LacOp::Snapshot(self.lac.snapshot()));
            self.ops_since_snapshot = 0;
        }
    }

    /// The journal record for one typed request: latest-feasible requests
    /// with a deadline map to [`LacOp::AdmitLatest`], everything else to
    /// [`LacOp::Admit`] — the wire format predates the typed API and is
    /// frozen.
    fn op_for(req: &AdmissionRequest) -> LacOp {
        match (req.placement, req.deadline) {
            (Placement::LatestFeasible, Some(td)) => LacOp::AdmitLatest {
                id: req.id,
                request: req.request,
                tw: req.tw,
                deadline: td,
            },
            _ => LacOp::Admit {
                id: req.id,
                mode: req.mode,
                request: req.request,
                tw: req.tw,
                deadline: req.deadline,
            },
        }
    }

    /// Journaled [`Lac::admit`].
    pub fn admit(&mut self, req: &AdmissionRequest) -> Decision {
        self.log(Self::op_for(req));
        let decision = self.lac.admit(req);
        self.maybe_compact();
        decision
    }

    /// Journaled [`Lac::admit_with`]. The recorder only emits events — it
    /// never influences state — so the journaled op is the same as for the
    /// unrecorded call and replay uses the silent path.
    pub fn admit_with(
        &mut self,
        req: &AdmissionRequest,
        recorder: &mut dyn cmpqos_obs::Recorder,
    ) -> Decision {
        self.log(Self::op_for(req));
        let decision = self.lac.admit_with(req, recorder);
        self.maybe_compact();
        decision
    }

    /// Journaled [`Lac::admit_batch`]: every op of the run is appended
    /// write-ahead before the first admission mutates the tables, then the
    /// whole run admits as one batch with a single compaction check at the
    /// end. Decisions are bit-identical to journaling one request at a
    /// time; replay reconstructs the same state either way.
    #[must_use = "each decision carries a job's fate; dropping them loses the batch"]
    pub fn admit_batch(
        &mut self,
        reqs: &[AdmissionRequest],
        recorder: &mut dyn cmpqos_obs::Recorder,
    ) -> Vec<Decision> {
        for req in reqs {
            self.log(Self::op_for(req));
        }
        let decisions = self.lac.admit_batch(reqs, recorder);
        self.maybe_compact();
        decisions
    }

    /// Journaled [`Lac::readmit`].
    pub fn readmit(&mut self, r: &Reservation) -> Decision {
        self.log(LacOp::Readmit(*r));
        let decision = self.lac.readmit(r);
        self.maybe_compact();
        decision
    }

    /// Journaled [`Lac::advance`].
    pub fn advance(&mut self, now: Cycles) {
        self.log(LacOp::Advance { now });
        self.lac.advance(now);
        self.maybe_compact();
    }

    /// Journaled [`Lac::release`].
    pub fn release(&mut self, id: JobId, at: Cycles) {
        self.log(LacOp::Release { id, at });
        self.lac.release(id, at);
        self.maybe_compact();
    }

    /// Journaled [`Lac::cancel`].
    pub fn cancel(&mut self, id: JobId) {
        self.log(LacOp::Cancel { id });
        self.lac.cancel(id);
        self.maybe_compact();
    }

    /// Journaled [`Lac::revoke_capacity`].
    pub fn revoke_capacity(
        &mut self,
        new_capacity: ResourceRequest,
        now: Cycles,
    ) -> Vec<Revocation> {
        self.log(LacOp::RevokeCapacity { new_capacity, now });
        let revocations = self.lac.revoke_capacity(new_capacity, now);
        self.maybe_compact();
        revocations
    }
}

/// A journaled LAC can sit behind a `cmpqos_core::protocol::LacEndpoint`,
/// so the message-layer control plane drives a crash-consistent node: a
/// post-heal reconciliation then diffs the GAC's placement table against a
/// reservation table that survives crash-restarts via the journal.
impl cmpqos_core::LacBackend for JournaledLac {
    fn now(&self) -> Cycles {
        self.lac.now()
    }

    fn advance(&mut self, now: Cycles) {
        JournaledLac::advance(self, now);
    }

    fn admit(&mut self, req: &AdmissionRequest) -> Decision {
        JournaledLac::admit(self, req)
    }

    fn readmit(&mut self, r: &Reservation) -> Decision {
        JournaledLac::readmit(self, r)
    }

    fn cancel(&mut self, id: JobId) {
        JournaledLac::cancel(self, id);
    }

    fn reservations(&self) -> Vec<Reservation> {
        self.lac.reservations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_core::protocol::{LacEndpoint, NetRequest, ReplyBody, RequestBody};

    #[test]
    fn endpoint_over_a_journaled_lac_reconciles_against_the_recovered_table() {
        // A message-layer endpoint drives the journaled LAC: an orphan is
        // admitted (its accept reply never reached the GAC)...
        let mut ep = LacEndpoint::new(JournaledLac::new(Lac::new(LacConfig::default()), 64));
        let replies = ep.handle(NetRequest {
            seq: 0,
            epoch: 0,
            at: Cycles::new(10),
            body: RequestBody::Probe(
                AdmissionRequest::builder(
                    JobId::new(7),
                    ResourceRequest::paper_job(),
                    Cycles::new(100_000),
                )
                .build(),
            ),
        });
        assert_eq!(replies.len(), 1);
        // ... then the node crashes; only the journal survives.
        let jsonl = ep.backend().to_jsonl();
        let (recovered, report) = JournaledLac::recover(&jsonl, 64);
        assert!(report.is_lossless());
        // A reconciliation against the *recovered* table still sees the
        // orphan and revokes it.
        let mut ep = LacEndpoint::new(recovered);
        let replies = ep.handle(NetRequest {
            seq: 0,
            epoch: 0,
            at: Cycles::new(20),
            body: RequestBody::Reconcile { placed: Vec::new() },
        });
        assert_eq!(replies.len(), 1);
        let ReplyBody::Reconcile {
            ref orphans_revoked,
            ref held,
            ..
        } = replies[0].body
        else {
            panic!("expected a reconcile reply, got {:?}", replies[0].body);
        };
        assert_eq!(orphans_revoked, &[JobId::new(7)]);
        assert!(held.is_empty());
        assert!(ep.backend().lac().reservations().is_empty());
    }

    fn paper_admit(lac: &mut JournaledLac, id: u32, tw: u64, td: u64) -> Decision {
        lac.admit(
            &AdmissionRequest::builder(
                JobId::new(id),
                ResourceRequest::paper_job(),
                Cycles::new(tw),
            )
            .deadline(Cycles::new(td))
            .build(),
        )
    }

    fn busy_lac() -> JournaledLac {
        let mut lac = JournaledLac::new(Lac::new(LacConfig::default()), 64);
        for i in 0..10u32 {
            let _ = paper_admit(&mut lac, i, 100, 2_000);
        }
        lac.advance(Cycles::new(50));
        lac.release(JobId::new(0), Cycles::new(50));
        lac.cancel(JobId::new(1));
        let _ = lac.revoke_capacity(
            ResourceRequest::new(4, cmpqos_types::Ways::new(15)).with_bandwidth(100),
            Cycles::new(60),
        );
        lac
    }

    #[test]
    fn recovery_rebuilds_the_exact_controller() {
        let original = busy_lac();
        let (recovered, report) = JournaledLac::recover(&original.to_jsonl(), 64);
        assert_eq!(recovered.lac(), original.lac());
        assert_eq!(report.lost, 0);
        assert!(report.is_lossless());
    }

    #[test]
    fn recovered_controller_makes_identical_subsequent_decisions() {
        let mut original = busy_lac();
        let (mut recovered, _) = JournaledLac::recover(&original.to_jsonl(), 64);
        for i in 100..110u32 {
            assert_eq!(
                paper_admit(&mut recovered, i, 80, 3_000),
                paper_admit(&mut original, i, 80, 3_000),
                "decision diverged at job {i}"
            );
        }
        assert_eq!(recovered.lac(), original.lac());
    }

    #[test]
    fn a_torn_tail_loses_only_the_tail() {
        let original = busy_lac();
        let jsonl = original.to_jsonl();
        let torn: String = jsonl[..jsonl.len() - 25].to_string();
        let (recovered, report) = JournaledLac::recover(&torn, 64);
        assert_eq!(report.lost, 1);
        // Everything before the torn record is intact.
        assert!(recovered.lac().admission_tests() >= 10);
    }

    #[test]
    fn compaction_bounds_the_journal() {
        let mut lac = JournaledLac::new(Lac::new(LacConfig::default()), 8);
        for i in 0..1_000u32 {
            lac.advance(Cycles::new(u64::from(i)));
        }
        assert!(
            lac.journal().len() <= 9,
            "journal grew to {} records",
            lac.journal().len()
        );
        let (recovered, report) = JournaledLac::recover(&lac.to_jsonl(), 8);
        assert_eq!(recovered.lac(), lac.lac());
        assert!(report.replayed <= 8);
    }

    #[test]
    fn recovering_an_empty_journal_yields_a_default_controller() {
        let (recovered, report) = JournaledLac::recover("", 64);
        assert_eq!(recovered.lac(), &Lac::new(LacConfig::default()));
        assert_eq!(report, RecoveryReport::default());
    }
}
