//! Write-ahead journaling for the Global Admission Controller.

use crate::journal::Journal;
use crate::RecoveryReport;
use cmpqos_core::gac::FaultReport;
use cmpqos_core::{
    Decision, ExecutionMode, GacState, GlobalAdmissionController, LacConfig, ProbePolicy,
    ResourceRequest,
};
use cmpqos_faults::{FaultSchedule, Injection};
use cmpqos_obs::{NullRecorder, Recorder};
use cmpqos_types::{Cycles, JobId, NodeId};
use serde::{Deserialize, Serialize};

/// One journaled GAC operation. Exhaustive over everything that mutates a
/// [`GlobalAdmissionController`], so *snapshot + replay* reconstructs the
/// per-node reservation tables, FCFS order, placement table, and health
/// map exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GacOp {
    /// A compaction snapshot: the complete controller state at this point.
    Snapshot(GacState),
    /// [`GlobalAdmissionController::submit`].
    Submit {
        /// The submitted job.
        id: JobId,
        /// Its execution mode.
        mode: ExecutionMode,
        /// Its resource-request vector.
        request: ResourceRequest,
        /// Its time window.
        tw: Cycles,
        /// Its deadline, when given.
        deadline: Option<Cycles>,
    },
    /// [`GlobalAdmissionController::advance`].
    Advance {
        /// The new clock value.
        now: Cycles,
    },
    /// [`GlobalAdmissionController::complete`].
    Complete {
        /// The completing job.
        id: JobId,
        /// When it completed.
        at: Cycles,
    },
    /// [`GlobalAdmissionController::inject`].
    Inject(Injection),
    /// [`GlobalAdmissionController::heartbeat_all`]. Journaled so replay
    /// renews leases on exactly the cycles the original did — otherwise a
    /// recovered controller would spuriously expire every lease.
    Heartbeat {
        /// The heartbeat timestamp.
        at: Cycles,
    },
}

/// A [`GlobalAdmissionController`] whose every state-changing operation is
/// appended to a write-ahead [`Journal`] *before* the in-core tables
/// mutate — the crash-consistent controller the chaos harness rebuilds
/// under `--crash-at`.
///
/// Replay is silent (a [`NullRecorder`]): the controllers' behavior never
/// depends on the recorder, so a recovered controller's subsequent
/// decisions are byte-identical to the uncrashed original's without
/// re-emitting the pre-crash event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct JournaledGac {
    gac: GlobalAdmissionController,
    journal: Journal<GacOp>,
    compact_every: u64,
    ops_since_snapshot: u64,
}

impl JournaledGac {
    /// Wraps `gac`, seeding the journal with a snapshot of its current
    /// state. `compact_every` (clamped to ≥ 1) is the number of operations
    /// between compactions.
    #[must_use]
    pub fn new(gac: GlobalAdmissionController, compact_every: u64) -> Self {
        let mut journal = Journal::new();
        let _ = journal.append(GacOp::Snapshot(gac.snapshot()));
        Self {
            gac,
            journal,
            compact_every: compact_every.max(1),
            ops_since_snapshot: 0,
        }
    }

    /// The wrapped controller.
    #[must_use]
    pub fn gac(&self) -> &GlobalAdmissionController {
        &self.gac
    }

    /// The write-ahead journal.
    #[must_use]
    pub fn journal(&self) -> &Journal<GacOp> {
        &self.journal
    }

    /// Serializes the journal as JSONL — the only thing that needs to
    /// survive a crash.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        self.journal.to_jsonl()
    }

    /// Rebuilds a controller from a serialized journal: restore the latest
    /// valid snapshot, then deterministically replay every operation after
    /// it with a silent recorder. A torn or corrupted tail is truncated
    /// (never a panic); the dropped-line count is reported. When no valid
    /// snapshot survives at all, recovery falls back to a one-node
    /// default-configured server.
    #[must_use = "dropping the report hides how much journaled state was lost"]
    pub fn recover(jsonl: &str, compact_every: u64) -> (Self, RecoveryReport) {
        let (journal, tail) = Journal::<GacOp>::from_jsonl(jsonl);
        let snapshot_at = journal
            .records()
            .iter()
            .rposition(|r| matches!(r.op, GacOp::Snapshot(_)));
        let mut gac = match snapshot_at {
            Some(i) => match &journal.records()[i].op {
                GacOp::Snapshot(state) => GlobalAdmissionController::restore(state.clone()),
                _ => unreachable!("rposition matched a snapshot"),
            },
            None => GlobalAdmissionController::new(1, LacConfig::default(), ProbePolicy::FirstFit),
        };
        let replay_from = snapshot_at.map_or(0, |i| i + 1);
        let mut replayed = 0u64;
        for record in &journal.records()[replay_from..] {
            Self::apply(&mut gac, &record.op);
            replayed += 1;
        }
        (
            Self {
                gac,
                journal,
                compact_every: compact_every.max(1),
                ops_since_snapshot: replayed,
            },
            RecoveryReport {
                replayed,
                lost: tail.lost,
            },
        )
    }

    /// Replays one operation silently. Decisions, completion lists, and
    /// fault reports are discarded: they were already acted on before the
    /// crash, and the replay's only job is to drive the controller into
    /// the identical state.
    fn apply(gac: &mut GlobalAdmissionController, op: &GacOp) {
        match op {
            GacOp::Snapshot(state) => *gac = GlobalAdmissionController::restore(state.clone()),
            GacOp::Submit {
                id,
                mode,
                request,
                tw,
                deadline,
            } => {
                let _ = gac.submit(*id, *mode, *request, *tw, *deadline);
            }
            GacOp::Advance { now } => {
                let _ = gac.advance(*now);
            }
            GacOp::Complete { id, at } => gac.complete(*id, *at),
            GacOp::Inject(injection) => {
                let _ = gac.inject(*injection, &mut NullRecorder);
            }
            GacOp::Heartbeat { at } => gac.heartbeat_all(*at, &mut NullRecorder),
        }
    }

    /// Appends `op` (write-ahead: the journal sees it before the tables).
    fn log(&mut self, op: GacOp) {
        let _ = self.journal.append(op);
        self.ops_since_snapshot += 1;
    }

    /// Compacts after a mutation once enough operations accumulated, so
    /// the snapshot reflects the post-op state.
    fn maybe_compact(&mut self) {
        if self.ops_since_snapshot >= self.compact_every {
            self.journal.compact(GacOp::Snapshot(self.gac.snapshot()));
            self.ops_since_snapshot = 0;
        }
    }

    /// Journaled [`GlobalAdmissionController::submit`].
    #[must_use = "dropping the decision loses whether (and where) the job was placed"]
    pub fn submit(
        &mut self,
        id: JobId,
        mode: ExecutionMode,
        request: ResourceRequest,
        tw: Cycles,
        deadline: Option<Cycles>,
    ) -> (Option<NodeId>, Decision) {
        self.submit_recorded(id, mode, request, tw, deadline, &mut NullRecorder)
    }

    /// Journaled [`GlobalAdmissionController::submit_recorded`]. The
    /// recorder only emits events — it never influences the decision — so
    /// the journaled op is the same as for the unrecorded call and replay
    /// uses the silent path.
    #[must_use = "dropping the decision loses whether (and where) the job was placed"]
    pub fn submit_recorded(
        &mut self,
        id: JobId,
        mode: ExecutionMode,
        request: ResourceRequest,
        tw: Cycles,
        deadline: Option<Cycles>,
        recorder: &mut dyn Recorder,
    ) -> (Option<NodeId>, Decision) {
        self.log(GacOp::Submit {
            id,
            mode,
            request,
            tw,
            deadline,
        });
        let outcome = self
            .gac
            .submit_recorded(id, mode, request, tw, deadline, recorder);
        self.maybe_compact();
        outcome
    }

    /// Journaled [`GlobalAdmissionController::advance`].
    pub fn advance(&mut self, now: Cycles) -> Vec<(JobId, NodeId)> {
        self.log(GacOp::Advance { now });
        let completed = self.gac.advance(now);
        self.maybe_compact();
        completed
    }

    /// Journaled [`GlobalAdmissionController::complete`].
    pub fn complete(&mut self, id: JobId, at: Cycles) {
        self.log(GacOp::Complete { id, at });
        self.gac.complete(id, at);
        self.maybe_compact();
    }

    /// Journaled [`GlobalAdmissionController::heartbeat_all`].
    pub fn heartbeat_all(&mut self, at: Cycles, recorder: &mut dyn Recorder) {
        self.log(GacOp::Heartbeat { at });
        self.gac.heartbeat_all(at, recorder);
        self.maybe_compact();
    }

    /// Journaled [`GlobalAdmissionController::inject`].
    pub fn inject(&mut self, injection: Injection, recorder: &mut dyn Recorder) -> FaultReport {
        self.log(GacOp::Inject(injection));
        let report = self.gac.inject(injection, recorder);
        self.maybe_compact();
        report
    }

    /// Journaled [`GlobalAdmissionController::inject_due`]: each due
    /// injection is journaled individually before it is applied, so a
    /// crash between two injections of the same cycle loses at most the
    /// not-yet-journaled ones.
    pub fn inject_due(
        &mut self,
        schedule: &mut FaultSchedule,
        now: Cycles,
        recorder: &mut dyn Recorder,
    ) -> FaultReport {
        let mut report = FaultReport::default();
        for injection in schedule.due(now) {
            report.merge(self.inject(injection, recorder));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_faults::FaultPlan;

    fn busy_gac() -> JournaledGac {
        let gac = GlobalAdmissionController::new(3, LacConfig::default(), ProbePolicy::FirstFit);
        let mut j = JournaledGac::new(gac, 64);
        for i in 0..12u32 {
            let _ = j.submit(
                JobId::new(i),
                ExecutionMode::Strict,
                ResourceRequest::paper_job(),
                Cycles::new(100),
                Some(Cycles::new(2_000)),
            );
        }
        let mut schedule = FaultPlan::new()
            .way_fault(Cycles::new(10), NodeId::new(0), 1)
            .node_fault(Cycles::new(20), NodeId::new(1))
            .probe_loss(Cycles::new(30), NodeId::new(2), 1)
            .build();
        let _ = j.inject_due(&mut schedule, Cycles::new(40), &mut NullRecorder);
        j.complete(JobId::new(0), Cycles::new(50));
        let _ = j.advance(Cycles::new(60));
        j
    }

    #[test]
    fn recovery_rebuilds_the_exact_controller() {
        let original = busy_gac();
        let (recovered, report) = JournaledGac::recover(&original.to_jsonl(), 64);
        assert_eq!(recovered.gac(), original.gac());
        assert_eq!(report.lost, 0);
        assert!(report.replayed > 0);
    }

    #[test]
    fn recovered_controller_makes_identical_subsequent_decisions() {
        let mut original = busy_gac();
        let (mut recovered, _) = JournaledGac::recover(&original.to_jsonl(), 64);
        for i in 100..110u32 {
            assert_eq!(
                recovered.submit(
                    JobId::new(i),
                    ExecutionMode::Strict,
                    ResourceRequest::paper_job(),
                    Cycles::new(80),
                    Some(Cycles::new(5_000)),
                ),
                original.submit(
                    JobId::new(i),
                    ExecutionMode::Strict,
                    ResourceRequest::paper_job(),
                    Cycles::new(80),
                    Some(Cycles::new(5_000)),
                ),
                "decision diverged at job {i}"
            );
        }
        assert_eq!(recovered.gac(), original.gac());
    }

    #[test]
    fn a_corrupted_tail_is_truncated_not_fatal() {
        let original = busy_gac();
        let mut bytes = original.to_jsonl().into_bytes();
        let n = bytes.len();
        bytes[n - 20] ^= 0x55;
        let corrupt = String::from_utf8_lossy(&bytes).into_owned();
        let (recovered, report) = JournaledGac::recover(&corrupt, 64);
        assert!(report.lost >= 1);
        assert!(recovered.gac().submissions() <= original.gac().submissions());
    }

    #[test]
    fn recovery_carries_membership_and_leases_through_churn() {
        use cmpqos_core::{GacConfig, MemberState};
        let gac = GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit)
            .with_gac_config(
                GacConfig::builder()
                    .lease_ttl(Cycles::new(5_000))
                    .dead_timeout(Cycles::new(10_000))
                    .build(),
            );
        let mut j = JournaledGac::new(gac, 64);
        for i in 0..4u32 {
            let _ = j.submit(
                JobId::new(i),
                ExecutionMode::Strict,
                ResourceRequest::paper_job(),
                Cycles::new(100_000),
                None,
            );
        }
        // A full churn cycle, every op journaled: join, heartbeat, drain,
        // restart, freeze.
        let mut schedule = FaultPlan::new()
            .node_join(Cycles::new(100), NodeId::new(2))
            .node_drain(Cycles::new(200), NodeId::new(0))
            .node_restart(Cycles::new(300), NodeId::new(1))
            .lease_freeze(Cycles::new(400), NodeId::new(2))
            .build();
        let _ = j.inject_due(&mut schedule, Cycles::new(500), &mut NullRecorder);
        j.heartbeat_all(Cycles::new(600), &mut NullRecorder);
        let _ = j.advance(Cycles::new(700));
        assert_eq!(j.gac().member_state(NodeId::new(0)), MemberState::Left);
        assert!(!j.gac().leases().is_empty());
        let (recovered, report) = JournaledGac::recover(&j.to_jsonl(), 64);
        assert_eq!(report.lost, 0);
        assert_eq!(recovered.gac(), j.gac());
        assert_eq!(
            recovered.gac().member_state(NodeId::new(0)),
            MemberState::Left
        );
        assert_eq!(recovered.gac().leases(), j.gac().leases());
    }

    #[test]
    fn compaction_bounds_the_journal() {
        let gac = GlobalAdmissionController::new(2, LacConfig::default(), ProbePolicy::FirstFit);
        let mut j = JournaledGac::new(gac, 8);
        for i in 0..500u64 {
            let _ = j.advance(Cycles::new(i));
        }
        assert!(
            j.journal().len() <= 9,
            "journal grew to {} records",
            j.journal().len()
        );
        let (recovered, _) = JournaledGac::recover(&j.to_jsonl(), 8);
        assert_eq!(recovered.gac(), j.gac());
    }
}
