//! Memory accesses as seen by the cache hierarchy.

use std::fmt;

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (marks the cached block dirty; dirty evictions cost a
    /// write-back transfer on the memory channel).
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// One memory access: a byte address plus read/write kind.
///
/// Addresses are virtual per job; the simulator keeps each job's address
/// space disjoint (the paper likewise assumes contiguous physical memory per
/// job, ignoring page-mapping effects).
///
/// # Examples
///
/// ```
/// use cmpqos_trace::{Access, AccessKind};
/// let a = Access::new(0x1000, AccessKind::Read);
/// assert_eq!(a.block_addr(64), 0x1000 / 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    addr: u64,
    kind: AccessKind,
}

impl Access {
    /// Creates an access at byte address `addr`.
    #[must_use]
    pub const fn new(addr: u64, kind: AccessKind) -> Self {
        Self { addr, kind }
    }

    /// The byte address.
    #[must_use]
    pub const fn addr(self) -> u64 {
        self.addr
    }

    /// The access kind.
    #[must_use]
    pub const fn kind(self) -> AccessKind {
        self.kind
    }

    /// Returns `true` for stores.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self.kind, AccessKind::Write)
    }

    /// The cache-block address (byte address divided by the block size).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block_size` is not a power of two.
    #[must_use]
    pub fn block_addr(self, block_size: u64) -> u64 {
        debug_assert!(block_size.is_power_of_two());
        self.addr / block_size
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {:#x}", self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_strips_offset() {
        let a = Access::new(0x1234, AccessKind::Write);
        assert_eq!(a.block_addr(64), 0x1234 / 64);
        assert!(a.is_write());
    }

    #[test]
    fn reads_are_not_writes() {
        assert!(!Access::new(0, AccessKind::Read).is_write());
    }

    #[test]
    fn display_is_informative() {
        let a = Access::new(0x40, AccessKind::Read);
        assert_eq!(a.to_string(), "read @ 0x40");
    }
}
