//! The seeded synthetic trace generator.

use crate::access::Access;
use crate::mixture::AccessMixture;
use crate::source::{InstrEvent, TraceSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, seeded instruction/access stream generated from an
/// [`AccessMixture`]. Produced by
/// [`BenchmarkProfile::instantiate`](crate::BenchmarkProfile::instantiate).
///
/// Each instruction performs a memory access with probability `mem_ratio`;
/// the access address is drawn from the mixture, offset by the job's address
/// base.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    name: String,
    mem_ratio: f64,
    base_cpi: f64,
    mixture: AccessMixture,
    rng: StdRng,
    base: u64,
    generated: u64,
}

impl SyntheticTrace {
    pub(crate) fn new(
        name: String,
        mem_ratio: f64,
        base_cpi: f64,
        mixture: AccessMixture,
        seed: u64,
        base: u64,
    ) -> Self {
        Self {
            name,
            mem_ratio,
            base_cpi,
            mixture,
            rng: StdRng::seed_from_u64(seed),
            base,
            generated: 0,
        }
    }

    /// Number of instruction events generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The job's address-space base offset.
    #[must_use]
    pub fn base_addr(&self) -> u64 {
        self.base
    }

    /// Convenience: draws only the next memory access, skipping non-memory
    /// instructions (useful for cache-only studies and calibration).
    pub fn next_access(&mut self) -> Access {
        loop {
            if let Some(access) = self.next_instruction().access {
                return access;
            }
        }
    }
}

impl TraceSource for SyntheticTrace {
    fn next_instruction(&mut self) -> InstrEvent {
        self.generated += 1;
        if self.rng.gen::<f64>() < self.mem_ratio {
            InstrEvent::memory(self.mixture.sample(&mut self.rng, self.base))
        } else {
            InstrEvent::compute()
        }
    }

    fn base_cpi(&self) -> f64 {
        self.base_cpi
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixture::Component;
    use crate::profile::BenchmarkProfile;
    use cmpqos_types::ByteSize;

    fn profile(mem_ratio: f64) -> BenchmarkProfile {
        BenchmarkProfile::builder("t")
            .mem_ratio(mem_ratio)
            .component(Component::WorkingSet {
                size: ByteSize::from_kib(8),
                weight: 1.0,
                write_fraction: 0.0,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn mem_ratio_controls_access_frequency() {
        let mut t = profile(0.25).instantiate(3, 0);
        let n = 40_000;
        let mem = (0..n)
            .filter(|_| t.next_instruction().access.is_some())
            .count();
        let frac = mem as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
        assert_eq!(t.generated(), n as u64);
    }

    #[test]
    fn next_access_skips_compute_instructions() {
        let mut t = profile(0.1).instantiate(4, 1 << 30);
        let a = t.next_access();
        assert!(a.addr() >= 1 << 30);
        assert_eq!(t.base_addr(), 1 << 30);
    }

    #[test]
    fn zero_mem_ratio_never_accesses() {
        let mut t = profile(0.0).instantiate(5, 0);
        assert!((0..1000).all(|_| t.next_instruction().access.is_none()));
    }
}
