//! Synthetic workload generation for the `cmpqos` CMP simulator.
//!
//! The paper evaluates its QoS framework with SPEC CPU2006 benchmarks running
//! under Simics. This crate replaces those proprietary binaries with
//! *synthetic address-stream generators*: each benchmark is modelled as a
//! mixture of memory-access components (uniform working sets and sequential
//! streams) plus an instruction mix, calibrated so that its
//! L2-miss-ratio-versus-capacity curve reproduces the published operating
//! points (Table 1) and sensitivity classes (Figure 4).
//!
//! The experiments in the paper observe benchmarks *only* through
//! (a) L2 accesses per instruction and (b) the L2 miss curve versus allocated
//! cache capacity, so this substitution exercises the same framework code
//! paths (admission, partitioning, stealing, downgrade).
//!
//! # Examples
//!
//! ```
//! use cmpqos_trace::{spec, TraceSource};
//!
//! let profile = spec::benchmark("bzip2").expect("bzip2 is built in");
//! let mut source = profile.instantiate(/* seed */ 42, /* base addr */ 0);
//! let event = source.next_instruction();
//! // Roughly one in three instructions touches memory.
//! let _ = event.access;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod estimate;
pub mod mixture;
pub mod phased;
pub mod profile;
pub mod source;
pub mod spec;
pub mod synthetic;

pub use access::{Access, AccessKind};
pub use mixture::{AccessMixture, Component};
pub use phased::PhasedTrace;
pub use profile::BenchmarkProfile;
pub use source::{InstrEvent, TraceSource};
pub use spec::SensitivityClass;
pub use synthetic::SyntheticTrace;
