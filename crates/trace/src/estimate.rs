//! Analytic miss-curve estimation for access mixtures.
//!
//! Gives a closed-form approximation of a mixture's hit behaviour under an
//! LRU(-like) cache of a given capacity, used to sanity-check profile
//! calibration against simulation and to document each built-in benchmark's
//! expected sensitivity curve.
//!
//! Model: under LRU, blocks with higher per-block touch rates survive, so
//! capacity is granted to components in descending order of
//! `weight / footprint` ("priority fill"). A working set of `S` bytes granted
//! `a ≤ S` bytes hits with probability `a / S`; a stream never hits.
//! This ignores set-conflict effects and LRU's soft boundary, but is accurate
//! to a few percent for the mixtures used here (see the calibration tests in
//! `spec.rs`).

use crate::mixture::Component;
use cmpqos_types::ByteSize;

/// Per-component outcome of a [`fill`] evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentFill {
    /// Index into the original component slice.
    pub index: usize,
    /// Normalized access weight of this component.
    pub weight: f64,
    /// Estimated hit fraction of accesses to this component.
    pub hit_fraction: f64,
}

/// Estimates per-component hit fractions for `components` under an LRU cache
/// of `capacity`, by priority fill (hotter components first).
///
/// Weights are normalized internally. Streams receive no capacity.
#[must_use]
pub fn fill(components: &[Component], capacity: ByteSize) -> Vec<ComponentFill> {
    let total_weight: f64 = components
        .iter()
        .map(|c| match c {
            Component::WorkingSet { weight, .. } | Component::Stream { weight, .. } => *weight,
        })
        .sum();
    if total_weight <= 0.0 {
        return Vec::new();
    }

    // Sort working sets by per-byte touch rate, descending.
    let mut order: Vec<usize> = (0..components.len()).collect();
    let rate = |c: &Component| -> f64 {
        match c {
            Component::WorkingSet { size, weight, .. } => weight / size.bytes().max(1) as f64,
            Component::Stream { .. } => 0.0,
        }
    };
    order.sort_by(|&a, &b| {
        rate(&components[b])
            .partial_cmp(&rate(&components[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut remaining = capacity.bytes();
    let mut fills = vec![0u64; components.len()];
    for &i in &order {
        if let Component::WorkingSet { size, .. } = &components[i] {
            let take = remaining.min(size.bytes());
            fills[i] = take;
            remaining -= take;
        }
    }

    components
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let (weight, hit) = match c {
                Component::WorkingSet { size, weight, .. } => {
                    (*weight, fills[i] as f64 / size.bytes().max(1) as f64)
                }
                Component::Stream { weight, .. } => (*weight, 0.0),
            };
            ComponentFill {
                index: i,
                weight: weight / total_weight,
                hit_fraction: hit,
            }
        })
        .collect()
}

/// Summary of a two-level estimate for a mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyEstimate {
    /// Fraction of memory accesses that miss the L1 (reach the L2).
    pub l1_miss_fraction: f64,
    /// Fraction of *L2 accesses* that miss the L2 (the paper's "L2 miss
    /// rate" metric in Table 1).
    pub l2_miss_ratio: f64,
}

/// Estimates L1-filtered L2 behaviour: `l1` is the private L1 capacity and
/// `l2_alloc` the job's allocated share of the shared L2.
///
/// L1 hits come from the hottest `l1` bytes (priority fill); accesses that
/// miss L1 hit L2 if their block falls within the job's L2 allocation but
/// outside the L1-resident share.
#[must_use]
pub fn hierarchy(components: &[Component], l1: ByteSize, l2_alloc: ByteSize) -> HierarchyEstimate {
    let l1_fill = fill(components, l1);
    let l2_fill = fill(components, l2_alloc);

    let mut l1_miss = 0.0;
    let mut l2_miss = 0.0;
    for (f1, f2) in l1_fill.iter().zip(&l2_fill) {
        let miss1 = f1.weight * (1.0 - f1.hit_fraction);
        l1_miss += miss1;
        // Of the accesses missing L1, those outside the L2 allocation miss.
        let beyond_l2 = (1.0 - f2.hit_fraction).min(1.0 - f1.hit_fraction);
        l2_miss += f1.weight * beyond_l2;
    }
    let l2_miss_ratio = if l1_miss > 0.0 {
        l2_miss / l1_miss
    } else {
        0.0
    };
    HierarchyEstimate {
        l1_miss_fraction: l1_miss,
        l2_miss_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(kib: u64, weight: f64) -> Component {
        Component::WorkingSet {
            size: ByteSize::from_kib(kib),
            weight,
            write_fraction: 0.0,
        }
    }

    fn stream(weight: f64) -> Component {
        Component::Stream {
            region: ByteSize::from_mib(64),
            weight,
            write_fraction: 0.0,
        }
    }

    #[test]
    fn hot_component_fills_first() {
        let comps = [ws(16, 0.9), ws(1024, 0.1)];
        let f = fill(&comps, ByteSize::from_kib(16));
        assert_eq!(f[0].hit_fraction, 1.0);
        assert_eq!(f[1].hit_fraction, 0.0);
    }

    #[test]
    fn capacity_splits_across_components() {
        let comps = [ws(16, 0.9), ws(1024, 0.1)];
        let f = fill(&comps, ByteSize::from_kib(16 + 512));
        assert_eq!(f[0].hit_fraction, 1.0);
        assert!((f[1].hit_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn streams_never_hit() {
        let comps = [stream(1.0)];
        let f = fill(&comps, ByteSize::from_mib(1));
        assert_eq!(f[0].hit_fraction, 0.0);
    }

    #[test]
    fn weights_are_normalized() {
        let comps = [ws(16, 3.0), ws(16, 1.0)];
        let f = fill(&comps, ByteSize::from_bytes(0));
        let total: f64 = f.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_filters_hot_set_through_l1() {
        // Hot 16 KiB absorbed by 32 KiB L1; 1 MiB set half-covered by 512 KiB
        // of L2 allocation.
        let comps = [ws(16, 0.9), ws(1024, 0.1)];
        let e = hierarchy(&comps, ByteSize::from_kib(32), ByteSize::from_kib(16 + 512));
        // L1 misses: 16 KiB of the big set live in L1 too.
        let expected_l1_miss = 0.1 * (1.0 - 16.0 / 1024.0);
        assert!((e.l1_miss_fraction - expected_l1_miss).abs() < 1e-9);
        // Of those misses, the share beyond the 512 KiB L2 slice misses L2.
        assert!(e.l2_miss_ratio > 0.4 && e.l2_miss_ratio < 0.6);
    }

    #[test]
    fn full_allocation_eliminates_capacity_misses() {
        let comps = [ws(16, 0.5), ws(512, 0.5)];
        let e = hierarchy(&comps, ByteSize::from_kib(32), ByteSize::from_mib(2));
        assert!(e.l2_miss_ratio < 1e-9);
    }
}
