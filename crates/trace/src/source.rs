//! The [`TraceSource`] abstraction consumed by the core model.
//!
//! A trace source produces, per retired instruction, an optional memory
//! access. Sources are infinite streams; a job's finite length is imposed by
//! the scheduler (which stops a job after its instruction budget retires).

use crate::access::Access;

/// What one instruction does, as far as the memory hierarchy is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrEvent {
    /// The data-memory access performed by this instruction, if any.
    /// Instruction fetches are modelled as always hitting the L1-I cache
    /// (the paper's SPEC samples have negligible I-cache miss rates).
    pub access: Option<Access>,
}

impl InstrEvent {
    /// An instruction with no memory access.
    #[must_use]
    pub const fn compute() -> Self {
        Self { access: None }
    }

    /// An instruction performing `access`.
    #[must_use]
    pub const fn memory(access: Access) -> Self {
        Self {
            access: Some(access),
        }
    }
}

/// A per-job stream of instruction events.
///
/// Implementors must be deterministic given their construction inputs (the
/// simulator relies on seeded reproducibility for run-to-run variance
/// studies, Section 4.1 of the paper).
pub trait TraceSource {
    /// Produces the next instruction's event. Infinite: never exhausts.
    fn next_instruction(&mut self) -> InstrEvent;

    /// The base cycles-per-instruction of the modelled program assuming an
    /// infinite L1 (the `CPI_L1∞` term of Luo's additive model used in
    /// Section 4.2 of the paper).
    fn base_cpi(&self) -> f64;

    /// A short human-readable name (e.g. the benchmark name).
    fn name(&self) -> &str;
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_instruction(&mut self) -> InstrEvent {
        (**self).next_instruction()
    }

    fn base_cpi(&self) -> f64 {
        (**self).base_cpi()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, AccessKind};

    struct Fixed;

    impl TraceSource for Fixed {
        fn next_instruction(&mut self) -> InstrEvent {
            InstrEvent::memory(Access::new(64, AccessKind::Read))
        }
        fn base_cpi(&self) -> f64 {
            1.0
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    #[test]
    fn boxed_source_delegates() {
        let mut b: Box<dyn TraceSource> = Box::new(Fixed);
        assert_eq!(b.base_cpi(), 1.0);
        assert_eq!(b.name(), "fixed");
        assert!(b.next_instruction().access.is_some());
    }

    #[test]
    fn constructors() {
        assert!(InstrEvent::compute().access.is_none());
        let e = InstrEvent::memory(Access::new(0, AccessKind::Write));
        assert!(e.access.unwrap().is_write());
    }
}
