//! Phased traces: programs whose working sets change over time.
//!
//! SPEC-class programs are not stationary — the paper notes that server
//! jobs have "dynamic and input-dependent behavior" (Section 3.2). A
//! [`PhasedTrace`] cycles through a list of phases, each an independent
//! trace source run for a fixed instruction budget. Phase changes are the
//! realistic trigger for the resource-stealing *cancellation* path: a job
//! that looked like an ideal donor grows a working set mid-run and the
//! duplicate-tag guard must return its ways.

use crate::source::{InstrEvent, TraceSource};

/// One phase: a source plus how many instructions it lasts.
pub struct Phase {
    /// The phase's instruction stream.
    pub source: Box<dyn TraceSource>,
    /// Instructions before moving to the next phase.
    pub length: u64,
}

impl std::fmt::Debug for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Phase")
            .field("source", &self.source.name())
            .field("length", &self.length)
            .finish()
    }
}

/// A trace source cycling through phases.
///
/// # Examples
///
/// ```
/// use cmpqos_trace::phased::{Phase, PhasedTrace};
/// use cmpqos_trace::{spec, TraceSource};
///
/// let quiet = spec::benchmark("namd").unwrap().instantiate(1, 0);
/// let hungry = spec::benchmark("mcf").unwrap().instantiate(2, 1 << 40);
/// let mut t = PhasedTrace::new(vec![
///     Phase { source: Box::new(quiet), length: 1_000 },
///     Phase { source: Box::new(hungry), length: 1_000 },
/// ])
/// .unwrap();
/// assert_eq!(t.current_phase(), 0);
/// for _ in 0..=1_000 {
///     t.next_instruction();
/// }
/// // The phase switches lazily on the first instruction past the budget.
/// assert_eq!(t.current_phase(), 1);
/// ```
#[derive(Debug)]
pub struct PhasedTrace {
    phases: Vec<Phase>,
    current: usize,
    in_phase: u64,
    name: String,
}

/// Error building a [`PhasedTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhasedError {
    /// At least one phase is required.
    Empty,
    /// Every phase needs a positive length.
    ZeroLength(usize),
}

impl std::fmt::Display for PhasedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhasedError::Empty => f.write_str("phased trace needs at least one phase"),
            PhasedError::ZeroLength(i) => write!(f, "phase {i} has zero length"),
        }
    }
}

impl std::error::Error for PhasedError {}

impl PhasedTrace {
    /// Builds a phased trace cycling through `phases` forever.
    ///
    /// # Errors
    ///
    /// Returns [`PhasedError`] if `phases` is empty or a phase has zero
    /// length.
    pub fn new(phases: Vec<Phase>) -> Result<Self, PhasedError> {
        if phases.is_empty() {
            return Err(PhasedError::Empty);
        }
        if let Some(i) = phases.iter().position(|p| p.length == 0) {
            return Err(PhasedError::ZeroLength(i));
        }
        let name = format!(
            "phased[{}]",
            phases
                .iter()
                .map(|p| p.source.name())
                .collect::<Vec<_>>()
                .join("->")
        );
        Ok(Self {
            phases,
            current: 0,
            in_phase: 0,
            name,
        })
    }

    /// Index of the phase currently executing.
    #[must_use]
    pub fn current_phase(&self) -> usize {
        self.current
    }

    /// Number of phases.
    #[must_use]
    pub fn phases(&self) -> usize {
        self.phases.len()
    }
}

impl TraceSource for PhasedTrace {
    fn next_instruction(&mut self) -> InstrEvent {
        if self.in_phase >= self.phases[self.current].length {
            self.current = (self.current + 1) % self.phases.len();
            self.in_phase = 0;
        }
        self.in_phase += 1;
        self.phases[self.current].source.next_instruction()
    }

    fn base_cpi(&self) -> f64 {
        self.phases[self.current].source.base_cpi()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn phase(bench: &str, length: u64, seed: u64) -> Phase {
        Phase {
            source: Box::new(
                spec::benchmark(bench)
                    .unwrap()
                    .instantiate(seed, seed << 40),
            ),
            length,
        }
    }

    #[test]
    fn cycles_through_phases_and_wraps() {
        let mut t = PhasedTrace::new(vec![phase("namd", 10, 1), phase("mcf", 5, 2)]).unwrap();
        assert_eq!(t.phases(), 2);
        for _ in 0..10 {
            t.next_instruction();
        }
        assert_eq!(t.current_phase(), 0); // switch happens lazily
        t.next_instruction();
        assert_eq!(t.current_phase(), 1);
        for _ in 0..5 {
            t.next_instruction();
        }
        assert_eq!(t.current_phase(), 0); // wrapped
    }

    #[test]
    fn base_cpi_follows_the_active_phase() {
        let namd_cpi = spec::benchmark("namd").unwrap().base_cpi();
        let mcf_cpi = spec::benchmark("mcf").unwrap().base_cpi();
        let mut t = PhasedTrace::new(vec![phase("namd", 3, 1), phase("mcf", 3, 2)]).unwrap();
        assert_eq!(t.base_cpi(), namd_cpi);
        for _ in 0..4 {
            t.next_instruction();
        }
        assert_eq!(t.base_cpi(), mcf_cpi);
    }

    #[test]
    fn name_describes_the_cycle() {
        let t = PhasedTrace::new(vec![phase("namd", 1, 1), phase("mcf", 1, 2)]).unwrap();
        assert_eq!(t.name(), "phased[namd->mcf]");
    }

    #[test]
    fn validation_errors() {
        assert_eq!(PhasedTrace::new(vec![]).unwrap_err(), PhasedError::Empty);
        let err = PhasedTrace::new(vec![phase("namd", 0, 1)]).unwrap_err();
        assert_eq!(err, PhasedError::ZeroLength(0));
        assert!(err.to_string().contains("phase 0"));
    }
}
