//! The fifteen SPEC CPU2006-calibrated benchmark profiles (Section 6 of the
//! paper) and their cache-sensitivity classification (Figure 4).
//!
//! Each profile is a synthetic stand-in whose L2 behaviour is calibrated
//! against the paper's published characteristics:
//!
//! * **Table 1** operating points for the three representative benchmarks —
//!   at a 7-way (896 KiB) allocation of the 2 MiB L2, `bzip2` shows a ~20%
//!   L2 miss rate and ~0.0055 misses/instruction, `hmmer` ~17% / ~0.001 and
//!   `gobmk` ~24% / ~0.004.
//! * **Figure 4** sensitivity classes — CPI increase when shrinking from 7
//!   ways to 4 and to 1: Group 1 (highly sensitive), Group 2 (moderately
//!   sensitive: hurt at 1 way but not much at 4), Group 3 (insensitive).
//!
//! The exact component constants below were fitted empirically against the
//! `cmpqos-cache` simulator (see the `calibration` tests and the `table1`
//! experiment binary).

use crate::mixture::Component;
use crate::profile::BenchmarkProfile;
use cmpqos_types::ByteSize;
use std::fmt;
use std::sync::OnceLock;

/// How strongly a benchmark's CPI reacts to its L2 allocation (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensitivityClass {
    /// Group 1: large CPI increase already at 4 ways — ideal *recipients* of
    /// resource stealing.
    HighlySensitive,
    /// Group 2: hurt at 1 way, mildly at 4 ways.
    ModeratelySensitive,
    /// Group 3: nearly flat CPI — ideal *donors* for resource stealing.
    Insensitive,
}

impl fmt::Display for SensitivityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensitivityClass::HighlySensitive => f.write_str("highly sensitive (Group 1)"),
            SensitivityClass::ModeratelySensitive => f.write_str("moderately sensitive (Group 2)"),
            SensitivityClass::Insensitive => f.write_str("insensitive (Group 3)"),
        }
    }
}

/// A named, classified benchmark entry.
#[derive(Debug, Clone)]
pub struct SpecBenchmark {
    profile: BenchmarkProfile,
    class: SensitivityClass,
}

impl SpecBenchmark {
    /// The benchmark's synthetic profile.
    #[must_use]
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// The benchmark's sensitivity class.
    #[must_use]
    pub fn class(&self) -> SensitivityClass {
        self.class
    }

    /// The benchmark name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.profile.name()
    }
}

fn hot(kib: u64, weight: f64) -> Component {
    Component::WorkingSet {
        size: ByteSize::from_kib(kib),
        weight,
        write_fraction: 0.3,
    }
}

fn ws(kib: u64, weight: f64) -> Component {
    Component::WorkingSet {
        size: ByteSize::from_kib(kib),
        weight,
        write_fraction: 0.25,
    }
}

fn stream(weight: f64) -> Component {
    Component::Stream {
        region: ByteSize::from_mib(64),
        weight,
        write_fraction: 0.1,
    }
}

fn make(
    name: &str,
    mem_ratio: f64,
    base_cpi: f64,
    components: Vec<Component>,
    class: SensitivityClass,
) -> SpecBenchmark {
    let mut b = BenchmarkProfile::builder(name)
        .mem_ratio(mem_ratio)
        .base_cpi(base_cpi);
    for c in components {
        b = b.component(c);
    }
    SpecBenchmark {
        profile: b.build().expect("built-in profile must be valid"),
        class,
    }
}

fn table() -> &'static Vec<SpecBenchmark> {
    static TABLE: OnceLock<Vec<SpecBenchmark>> = OnceLock::new();
    TABLE.get_or_init(|| {
        use SensitivityClass::*;
        vec![
            // --- Group 1: highly cache-sensitive -------------------------
            // bzip2: Table 1 anchor — ~20% L2 miss rate, ~0.0055 MPI @7 ways;
            // Figure 1 anchor — meets 2/3-of-solo IPC at >=8 ways, fails at
            // <=5 ways under equal partitioning.
            make(
                "bzip2",
                0.30,
                1.5,
                vec![
                    hot(20, 0.895),
                    ws(300, 0.030),
                    ws(900, 0.028),
                    stream(0.008),
                ],
                HighlySensitive,
            ),
            make(
                "mcf",
                0.38,
                1.4,
                vec![hot(16, 0.70), ws(700, 0.12), ws(1800, 0.15), stream(0.03)],
                HighlySensitive,
            ),
            make(
                "soplex",
                0.35,
                1.3,
                vec![hot(20, 0.85), ws(400, 0.06), ws(1400, 0.07), stream(0.02)],
                HighlySensitive,
            ),
            make(
                "sphinx",
                0.33,
                1.2,
                vec![hot(20, 0.90), ws(600, 0.05), ws(1000, 0.04), stream(0.012)],
                HighlySensitive,
            ),
            make(
                "astar",
                0.35,
                1.3,
                vec![hot(20, 0.88), ws(500, 0.05), ws(1200, 0.05), stream(0.01)],
                HighlySensitive,
            ),
            // --- Group 2: moderately sensitive ---------------------------
            // hmmer: Table 1 anchor — ~17% miss rate, ~0.001 MPI @7 ways.
            make(
                "hmmer",
                0.40,
                1.1,
                vec![hot(24, 0.985), ws(600, 0.012), stream(0.0012)],
                ModeratelySensitive,
            ),
            make(
                "gcc",
                0.35,
                1.2,
                vec![hot(24, 0.93), ws(420, 0.05), stream(0.012)],
                ModeratelySensitive,
            ),
            make(
                "perl",
                0.32,
                1.3,
                vec![hot(28, 0.95), ws(400, 0.04), stream(0.008)],
                ModeratelySensitive,
            ),
            make(
                "h264ref",
                0.35,
                1.3,
                vec![hot(24, 0.93), ws(440, 0.05), stream(0.015)],
                ModeratelySensitive,
            ),
            // --- Group 3: insensitive -------------------------------------
            // gobmk: Table 1 anchor — ~24% miss rate, ~0.004 MPI @7 ways,
            // nearly flat CPI curve (ideal stealing donor).
            make(
                "gobmk",
                0.35,
                1.3,
                vec![hot(26, 0.94), ws(56, 0.026), stream(0.0115)],
                Insensitive,
            ),
            make(
                "sjeng",
                0.30,
                1.2,
                vec![
                    hot(24, 0.97),
                    Component::WorkingSet {
                        size: ByteSize::from_mib(32),
                        weight: 0.018,
                        write_fraction: 0.2,
                    },
                ],
                Insensitive,
            ),
            make(
                "libquantum",
                0.25,
                1.1,
                vec![hot(8, 0.60), stream(0.40)],
                Insensitive,
            ),
            make(
                "milc",
                0.35,
                1.2,
                vec![hot(16, 0.72), stream(0.27)],
                Insensitive,
            ),
            make(
                "namd",
                0.28,
                1.1,
                vec![hot(28, 0.985), stream(0.005)],
                Insensitive,
            ),
            make(
                "povray",
                0.30,
                1.2,
                vec![hot(30, 0.995), stream(0.003)],
                Insensitive,
            ),
        ]
    })
}

/// All fifteen built-in benchmarks, in Figure 4 grouping order.
#[must_use]
pub fn all() -> &'static [SpecBenchmark] {
    table()
}

/// Looks up a benchmark profile by name.
///
/// # Examples
///
/// ```
/// use cmpqos_trace::spec;
/// assert!(spec::benchmark("gobmk").is_some());
/// assert!(spec::benchmark("nonexistent").is_none());
/// ```
#[must_use]
pub fn benchmark(name: &str) -> Option<&'static BenchmarkProfile> {
    table()
        .iter()
        .find(|b| b.name() == name)
        .map(SpecBenchmark::profile)
}

/// Looks up a benchmark's sensitivity class by name.
#[must_use]
pub fn class_of(name: &str) -> Option<SensitivityClass> {
    table().iter().find(|b| b.name() == name).map(|b| b.class)
}

/// Looks up a benchmark and returns it scaled by `k` (see
/// [`BenchmarkProfile::scaled`]): working sets shrink by `k` to pair with a
/// hierarchy whose cache sizes also shrink by `k`.
///
/// # Examples
///
/// ```
/// use cmpqos_trace::spec;
/// let small = spec::scaled("bzip2", 16).unwrap();
/// assert_eq!(small.name(), "bzip2");
/// ```
#[must_use]
pub fn scaled(name: &str, k: u64) -> Option<BenchmarkProfile> {
    benchmark(name).map(|p| p.scaled(k))
}

/// The names of all built-in benchmarks.
#[must_use]
pub fn names() -> Vec<&'static str> {
    table().iter().map(|b| b.profile.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate;

    const L1: ByteSize = ByteSize::from_kib(32);
    const WAY: ByteSize = ByteSize::from_kib(128);

    fn est(name: &str, ways: u64) -> estimate::HierarchyEstimate {
        let p = benchmark(name).unwrap();
        estimate::hierarchy(p.components(), L1, WAY * ways)
    }

    #[test]
    fn fifteen_benchmarks_exist() {
        assert_eq!(all().len(), 15);
        assert_eq!(names().len(), 15);
        for expected in [
            "gcc",
            "bzip2",
            "perl",
            "gobmk",
            "mcf",
            "hmmer",
            "sjeng",
            "libquantum",
            "h264ref",
            "milc",
            "astar",
            "namd",
            "soplex",
            "povray",
            "sphinx",
        ] {
            assert!(
                benchmark(expected).is_some(),
                "missing paper benchmark {expected}"
            );
        }
    }

    #[test]
    fn table1_anchor_bzip2() {
        // Paper Table 1 @ 7 ways: miss rate ~20%, ~0.0055 MPI.
        let e = est("bzip2", 7);
        let p = benchmark("bzip2").unwrap();
        let mpi = p.mem_ratio() * e.l1_miss_fraction * e.l2_miss_ratio;
        assert!(
            e.l2_miss_ratio > 0.10 && e.l2_miss_ratio < 0.35,
            "bzip2 L2 miss ratio estimate {}",
            e.l2_miss_ratio
        );
        assert!(mpi > 0.003 && mpi < 0.010, "bzip2 MPI estimate {mpi}");
    }

    #[test]
    fn table1_anchor_gobmk() {
        let e = est("gobmk", 7);
        let p = benchmark("gobmk").unwrap();
        let mpi = p.mem_ratio() * e.l1_miss_fraction * e.l2_miss_ratio;
        assert!(
            e.l2_miss_ratio > 0.15 && e.l2_miss_ratio < 0.40,
            "gobmk L2 miss ratio estimate {}",
            e.l2_miss_ratio
        );
        assert!(mpi > 0.002 && mpi < 0.007, "gobmk MPI estimate {mpi}");
    }

    #[test]
    fn table1_anchor_hmmer() {
        let e = est("hmmer", 7);
        let p = benchmark("hmmer").unwrap();
        let mpi = p.mem_ratio() * e.l1_miss_fraction * e.l2_miss_ratio;
        assert!(mpi > 0.0003 && mpi < 0.003, "hmmer MPI estimate {mpi}");
    }

    /// Estimated CPI via Luo's model with the simulated latencies
    /// (t2 = 10, tm = 300).
    fn cpi(name: &str, ways: u64) -> f64 {
        let p = benchmark(name).unwrap();
        let e = est(name, ways);
        let h2 = p.mem_ratio() * e.l1_miss_fraction;
        let hm = h2 * e.l2_miss_ratio;
        p.base_cpi() + h2 * 10.0 + hm * 300.0
    }

    #[test]
    fn sensitivity_classes_separate_as_in_figure4() {
        for b in all() {
            let c7 = cpi(b.name(), 7);
            let inc1 = cpi(b.name(), 1) / c7 - 1.0;
            let inc4 = cpi(b.name(), 4) / c7 - 1.0;
            match b.class() {
                SensitivityClass::HighlySensitive => {
                    assert!(
                        inc4 > 0.15,
                        "{}: 7->4 ways CPI increase {inc4:.3} too small for Group 1",
                        b.name()
                    );
                }
                SensitivityClass::ModeratelySensitive => {
                    assert!(
                        inc1 > 0.10,
                        "{}: 7->1 ways CPI increase {inc1:.3} too small for Group 2",
                        b.name()
                    );
                    // The priority-fill estimate is conservative (it ignores
                    // partial residency); the authoritative 7->4 separation
                    // is the simulated check in cmpqos-experiments::fig4.
                    assert!(
                        inc4 < 0.25,
                        "{}: 7->4 ways CPI increase {inc4:.3} too large for Group 2",
                        b.name()
                    );
                }
                SensitivityClass::Insensitive => {
                    assert!(
                        inc1 < 0.12,
                        "{}: 7->1 ways CPI increase {inc1:.3} too large for Group 3",
                        b.name()
                    );
                }
            }
        }
    }

    #[test]
    fn class_lookup() {
        assert_eq!(class_of("bzip2"), Some(SensitivityClass::HighlySensitive));
        assert_eq!(class_of("gobmk"), Some(SensitivityClass::Insensitive));
        assert_eq!(class_of("zzz"), None);
    }

    #[test]
    fn display_of_classes() {
        assert!(SensitivityClass::HighlySensitive
            .to_string()
            .contains("Group 1"));
    }
}
