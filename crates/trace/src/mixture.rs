//! Access mixtures: the building blocks of synthetic benchmarks.
//!
//! A benchmark's data-reference behaviour is modelled as a weighted mixture
//! of [`Component`]s laid out in disjoint address regions:
//!
//! * [`Component::WorkingSet`] — uniform random references over a region of a
//!   given size. Under (partitioned) LRU caching, a working set of `S` bytes
//!   granted `A ≤ S` bytes of capacity hits with probability ≈ `A / S`,
//!   which is what makes the aggregate miss-ratio-versus-ways curve
//!   piecewise-smooth and *calibratable* against the paper's Table 1 and
//!   Figure 4.
//! * [`Component::Stream`] — a sequential scan over a large region: always
//!   misses in any realistically sized cache (models streaming benchmarks
//!   like `libquantum`/`milc`, which the paper classifies as insensitive).

use crate::access::{Access, AccessKind};
use cmpqos_types::ByteSize;
use rand::Rng;
use std::fmt;

/// Cache-block size assumed when laying out regions (matches the simulated
/// hierarchy: 64-byte blocks everywhere).
pub const BLOCK_BYTES: u64 = 64;

/// One component of an access mixture.
#[derive(Debug, Clone, PartialEq)]
pub enum Component {
    /// Uniform random references over `size` bytes.
    WorkingSet {
        /// Footprint of the component.
        size: ByteSize,
        /// Fraction of the benchmark's memory accesses that reference this
        /// component (weights need not be normalized; the mixture normalizes).
        weight: f64,
        /// Fraction of the references that are stores.
        write_fraction: f64,
    },
    /// A sequential block-strided scan over `region` bytes, wrapping around.
    Stream {
        /// Length of the scanned region (should exceed any cache of
        /// interest so the scan never fits).
        region: ByteSize,
        /// Fraction of the benchmark's memory accesses from this stream.
        weight: f64,
        /// Fraction of the references that are stores.
        write_fraction: f64,
    },
}

impl Component {
    fn weight(&self) -> f64 {
        match self {
            Component::WorkingSet { weight, .. } | Component::Stream { weight, .. } => *weight,
        }
    }

    fn footprint(&self) -> ByteSize {
        match self {
            Component::WorkingSet { size, .. } => *size,
            Component::Stream { region, .. } => *region,
        }
    }

    fn write_fraction(&self) -> f64 {
        match self {
            Component::WorkingSet { write_fraction, .. }
            | Component::Stream { write_fraction, .. } => *write_fraction,
        }
    }
}

/// A validated, region-laid-out mixture of components ready for sampling.
///
/// # Examples
///
/// ```
/// use cmpqos_trace::{AccessMixture, Component};
/// use cmpqos_types::ByteSize;
///
/// let mix = AccessMixture::new(vec![
///     Component::WorkingSet {
///         size: ByteSize::from_kib(16),
///         weight: 0.9,
///         write_fraction: 0.3,
///     },
///     Component::Stream {
///         region: ByteSize::from_mib(64),
///         weight: 0.1,
///         write_fraction: 0.0,
///     },
/// ])
/// .unwrap();
/// assert_eq!(mix.components().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccessMixture {
    components: Vec<Component>,
    /// Cumulative normalized weights, same length as `components`.
    cumulative: Vec<f64>,
    /// Per-component region base offsets (bytes, relative to the mixture).
    bases: Vec<u64>,
    /// Per-stream cursors (block index within the region), indexed like
    /// `components`; unused entries stay zero.
    cursors: Vec<u64>,
    total_footprint: ByteSize,
}

/// Error building an [`AccessMixture`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixtureError {
    /// The component list was empty.
    Empty,
    /// A weight or write fraction was negative, non-finite, or (for write
    /// fractions) greater than one; or all weights were zero.
    InvalidParameter(&'static str),
    /// A component footprint was smaller than one cache block.
    FootprintTooSmall,
}

impl fmt::Display for MixtureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixtureError::Empty => f.write_str("mixture has no components"),
            MixtureError::InvalidParameter(what) => {
                write!(f, "invalid mixture parameter: {what}")
            }
            MixtureError::FootprintTooSmall => {
                f.write_str("component footprint is smaller than one cache block")
            }
        }
    }
}

impl std::error::Error for MixtureError {}

impl AccessMixture {
    /// Builds a mixture, validating parameters and laying out each
    /// component's region back-to-back (block aligned) in a private address
    /// space starting at offset zero.
    ///
    /// # Errors
    ///
    /// Returns [`MixtureError`] if the list is empty, weights are invalid, or
    /// a footprint is smaller than a cache block.
    pub fn new(components: Vec<Component>) -> Result<Self, MixtureError> {
        if components.is_empty() {
            return Err(MixtureError::Empty);
        }
        let mut total_weight = 0.0;
        for c in &components {
            let w = c.weight();
            if !w.is_finite() || w < 0.0 {
                return Err(MixtureError::InvalidParameter("weight"));
            }
            let wf = c.write_fraction();
            if !wf.is_finite() || !(0.0..=1.0).contains(&wf) {
                return Err(MixtureError::InvalidParameter("write_fraction"));
            }
            if c.footprint().bytes() < BLOCK_BYTES {
                return Err(MixtureError::FootprintTooSmall);
            }
            total_weight += w;
        }
        if total_weight <= 0.0 {
            return Err(MixtureError::InvalidParameter("all weights zero"));
        }

        let mut cumulative = Vec::with_capacity(components.len());
        let mut acc = 0.0;
        for c in &components {
            acc += c.weight() / total_weight;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall on the last bucket.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }

        let mut bases = Vec::with_capacity(components.len());
        let mut offset = 0u64;
        for c in &components {
            bases.push(offset);
            // Round footprints up to whole blocks and pad with one spacer
            // block so regions never share a block.
            let blocks = c.footprint().bytes().div_ceil(BLOCK_BYTES) + 1;
            offset += blocks * BLOCK_BYTES;
        }

        let cursors = vec![0u64; components.len()];
        Ok(Self {
            components,
            cumulative,
            bases,
            cursors,
            total_footprint: ByteSize::from_bytes(offset),
        })
    }

    /// The validated components.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Total laid-out footprint (sum of component regions plus padding).
    #[must_use]
    pub fn total_footprint(&self) -> ByteSize {
        self.total_footprint
    }

    /// Samples one access. `base` is the job's address-space base, added to
    /// the mixture-relative address so concurrently running jobs never alias.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, base: u64) -> Access {
        let u: f64 = rng.gen();
        let idx = match self.cumulative.iter().position(|&c| u <= c) {
            Some(i) => i,
            None => self.components.len() - 1,
        };
        let region_base = base + self.bases[idx];
        let (addr, write_fraction) = match &self.components[idx] {
            Component::WorkingSet {
                size,
                write_fraction,
                ..
            } => {
                let blocks = size.bytes() / BLOCK_BYTES;
                let blk = rng.gen_range(0..blocks.max(1));
                (region_base + blk * BLOCK_BYTES, *write_fraction)
            }
            Component::Stream {
                region,
                write_fraction,
                ..
            } => {
                let blocks = region.bytes() / BLOCK_BYTES;
                let cursor = &mut self.cursors[idx];
                let blk = *cursor;
                *cursor = (*cursor + 1) % blocks.max(1);
                (region_base + blk * BLOCK_BYTES, *write_fraction)
            }
        };
        let kind = if write_fraction > 0.0 && rng.gen::<f64>() < write_fraction {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        Access::new(addr, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ws(kib: u64, weight: f64) -> Component {
        Component::WorkingSet {
            size: ByteSize::from_kib(kib),
            weight,
            write_fraction: 0.25,
        }
    }

    #[test]
    fn rejects_empty_and_bad_params() {
        assert_eq!(AccessMixture::new(vec![]), Err(MixtureError::Empty));
        assert!(matches!(
            AccessMixture::new(vec![ws(16, -1.0)]),
            Err(MixtureError::InvalidParameter("weight"))
        ));
        assert!(matches!(
            AccessMixture::new(vec![Component::WorkingSet {
                size: ByteSize::from_kib(16),
                weight: 1.0,
                write_fraction: 2.0,
            }]),
            Err(MixtureError::InvalidParameter("write_fraction"))
        ));
        assert!(matches!(
            AccessMixture::new(vec![ws(16, 0.0)]),
            Err(MixtureError::InvalidParameter("all weights zero"))
        ));
        assert!(matches!(
            AccessMixture::new(vec![Component::WorkingSet {
                size: ByteSize::from_bytes(8),
                weight: 1.0,
                write_fraction: 0.0,
            }]),
            Err(MixtureError::FootprintTooSmall)
        ));
    }

    #[test]
    fn regions_are_disjoint() {
        let mut mix = AccessMixture::new(vec![ws(1, 0.5), ws(1, 0.5)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let first_region = 0..1024u64;
        let mut seen_second = false;
        for _ in 0..1000 {
            let a = mix.sample(&mut rng, 0);
            if !first_region.contains(&a.addr()) {
                // Second region starts after the first's padded footprint.
                assert!(a.addr() >= 1024 + 64);
                seen_second = true;
            }
        }
        assert!(seen_second);
    }

    #[test]
    fn weights_control_sampling_ratio() {
        let mut mix = AccessMixture::new(vec![ws(1, 0.9), ws(1, 0.1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut first = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if mix.sample(&mut rng, 0).addr() < 1024 {
                first += 1;
            }
        }
        let frac = first as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn stream_is_sequential_and_wraps() {
        let mut mix = AccessMixture::new(vec![Component::Stream {
            region: ByteSize::from_bytes(3 * BLOCK_BYTES),
            weight: 1.0,
            write_fraction: 0.0,
        }])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let addrs: Vec<u64> = (0..4).map(|_| mix.sample(&mut rng, 0).addr()).collect();
        assert_eq!(addrs, vec![0, 64, 128, 0]);
    }

    #[test]
    fn base_offsets_all_addresses() {
        let mut mix = AccessMixture::new(vec![ws(1, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let a = mix.sample(&mut rng, 1 << 40);
        assert!(a.addr() >= 1 << 40);
    }

    #[test]
    fn write_fraction_statistics() {
        let mut mix = AccessMixture::new(vec![ws(4, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let writes = (0..n)
            .filter(|_| mix.sample(&mut rng, 0).is_write())
            .count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn footprint_accounts_for_padding() {
        let mix = AccessMixture::new(vec![ws(1, 1.0), ws(1, 1.0)]).unwrap();
        // Two 1-KiB regions plus one spacer block each.
        assert_eq!(mix.total_footprint().bytes(), 2 * (1024 + 64));
    }
}
