//! Benchmark profiles: reusable templates describing a synthetic program.

use crate::mixture::{AccessMixture, Component, MixtureError};
use crate::synthetic::SyntheticTrace;
use std::fmt;

/// A reusable description of a synthetic benchmark: its instruction mix
/// (memory accesses per instruction and base CPI) and its memory-access
/// mixture. Profiles are templates — [`BenchmarkProfile::instantiate`]
/// produces an independent, seeded [`SyntheticTrace`] per job.
///
/// # Examples
///
/// ```
/// use cmpqos_trace::{BenchmarkProfile, Component, TraceSource};
/// use cmpqos_types::ByteSize;
///
/// let profile = BenchmarkProfile::builder("toy")
///     .mem_ratio(0.5)
///     .base_cpi(1.2)
///     .component(Component::WorkingSet {
///         size: ByteSize::from_kib(64),
///         weight: 1.0,
///         write_fraction: 0.3,
///     })
///     .build()?;
/// let mut trace = profile.instantiate(1, 0);
/// assert_eq!(trace.name(), "toy");
/// # Ok::<(), cmpqos_trace::profile::ProfileError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    name: String,
    mem_ratio: f64,
    base_cpi: f64,
    components: Vec<Component>,
}

/// Error building a [`BenchmarkProfile`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// `mem_ratio` must lie in `[0, 1]` (at most one access per instruction
    /// in this model).
    InvalidMemRatio(f64),
    /// `base_cpi` must be at least 1 for an in-order core.
    InvalidBaseCpi(f64),
    /// The access mixture failed validation.
    Mixture(MixtureError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::InvalidMemRatio(v) => {
                write!(f, "mem_ratio must be within [0, 1], got {v}")
            }
            ProfileError::InvalidBaseCpi(v) => {
                write!(f, "base_cpi must be at least 1, got {v}")
            }
            ProfileError::Mixture(e) => write!(f, "invalid access mixture: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Mixture(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MixtureError> for ProfileError {
    fn from(e: MixtureError) -> Self {
        ProfileError::Mixture(e)
    }
}

impl BenchmarkProfile {
    /// Starts building a profile named `name`.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> BenchmarkProfileBuilder {
        BenchmarkProfileBuilder {
            name: name.into(),
            mem_ratio: 0.3,
            base_cpi: 1.0,
            components: Vec::new(),
        }
    }

    /// The benchmark name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Memory accesses per instruction.
    #[must_use]
    pub fn mem_ratio(&self) -> f64 {
        self.mem_ratio
    }

    /// Cycles per instruction assuming an infinite L1 (`CPI_L1∞`).
    #[must_use]
    pub fn base_cpi(&self) -> f64 {
        self.base_cpi
    }

    /// The mixture components.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Returns a copy with every working-set footprint divided by `k`
    /// (streams keep their regions — they never fit anyway).
    ///
    /// Used together with a cache hierarchy scaled by the same factor: the
    /// miss-ratio-versus-*ways* curve is invariant under joint scaling, so
    /// experiments can run at a fraction of the warm-up cost while
    /// preserving every way-granular result. Footprints floor at one cache
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn scaled(&self, k: u64) -> BenchmarkProfile {
        assert!(k > 0, "scale factor must be positive");
        let components = self
            .components
            .iter()
            .map(|c| match c {
                Component::WorkingSet {
                    size,
                    weight,
                    write_fraction,
                } => Component::WorkingSet {
                    size: cmpqos_types::ByteSize::from_bytes(
                        (size.bytes() / k).max(crate::mixture::BLOCK_BYTES),
                    ),
                    weight: *weight,
                    write_fraction: *write_fraction,
                },
                stream @ Component::Stream { .. } => stream.clone(),
            })
            .collect();
        BenchmarkProfile {
            name: self.name.clone(),
            mem_ratio: self.mem_ratio,
            base_cpi: self.base_cpi,
            components,
        }
    }

    /// Creates an independent trace source for one job.
    ///
    /// `seed` drives all stochastic choices; `base` offsets the job's
    /// address space (keep bases of concurrent jobs disjoint).
    ///
    /// # Panics
    ///
    /// Never panics: the components were validated at build time.
    #[must_use]
    pub fn instantiate(&self, seed: u64, base: u64) -> SyntheticTrace {
        let mixture = AccessMixture::new(self.components.clone())
            .expect("profile components were validated at build time");
        SyntheticTrace::new(
            self.name.clone(),
            self.mem_ratio,
            self.base_cpi,
            mixture,
            seed,
            base,
        )
    }
}

/// Builder for [`BenchmarkProfile`] (see [`BenchmarkProfile::builder`]).
#[derive(Debug, Clone)]
pub struct BenchmarkProfileBuilder {
    name: String,
    mem_ratio: f64,
    base_cpi: f64,
    components: Vec<Component>,
}

impl BenchmarkProfileBuilder {
    /// Sets the memory accesses per instruction (default `0.3`).
    #[must_use]
    pub fn mem_ratio(mut self, ratio: f64) -> Self {
        self.mem_ratio = ratio;
        self
    }

    /// Sets `CPI_L1∞` (default `1.0`).
    #[must_use]
    pub fn base_cpi(mut self, cpi: f64) -> Self {
        self.base_cpi = cpi;
        self
    }

    /// Adds one mixture component.
    #[must_use]
    pub fn component(mut self, component: Component) -> Self {
        self.components.push(component);
        self
    }

    /// Validates and builds the profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] for out-of-range parameters or an invalid
    /// mixture.
    pub fn build(self) -> Result<BenchmarkProfile, ProfileError> {
        if !self.mem_ratio.is_finite() || !(0.0..=1.0).contains(&self.mem_ratio) {
            return Err(ProfileError::InvalidMemRatio(self.mem_ratio));
        }
        if !self.base_cpi.is_finite() || self.base_cpi < 1.0 {
            return Err(ProfileError::InvalidBaseCpi(self.base_cpi));
        }
        // Validate the mixture once now so `instantiate` cannot fail later.
        AccessMixture::new(self.components.clone())?;
        Ok(BenchmarkProfile {
            name: self.name,
            mem_ratio: self.mem_ratio,
            base_cpi: self.base_cpi,
            components: self.components,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSource;
    use cmpqos_types::ByteSize;

    fn toy_component() -> Component {
        Component::WorkingSet {
            size: ByteSize::from_kib(8),
            weight: 1.0,
            write_fraction: 0.0,
        }
    }

    #[test]
    fn builder_validates_ranges() {
        let err = BenchmarkProfile::builder("x")
            .mem_ratio(1.5)
            .component(toy_component())
            .build()
            .unwrap_err();
        assert!(matches!(err, ProfileError::InvalidMemRatio(_)));

        let err = BenchmarkProfile::builder("x")
            .base_cpi(0.5)
            .component(toy_component())
            .build()
            .unwrap_err();
        assert!(matches!(err, ProfileError::InvalidBaseCpi(_)));

        let err = BenchmarkProfile::builder("x").build().unwrap_err();
        assert!(matches!(err, ProfileError::Mixture(_)));
    }

    #[test]
    fn instantiation_is_deterministic_per_seed() {
        let p = BenchmarkProfile::builder("d")
            .mem_ratio(0.7)
            .component(toy_component())
            .build()
            .unwrap();
        let mut a = p.instantiate(11, 0);
        let mut b = p.instantiate(11, 0);
        for _ in 0..100 {
            assert_eq!(a.next_instruction(), b.next_instruction());
        }
        let mut c = p.instantiate(12, 0);
        let same = (0..100).all(|_| a.next_instruction() == c.next_instruction());
        assert!(!same, "different seeds should give different streams");
    }

    #[test]
    fn error_display_mentions_cause() {
        let err = BenchmarkProfile::builder("x").build().unwrap_err();
        assert!(err.to_string().contains("mixture"));
    }
}
