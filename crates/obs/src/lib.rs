//! Observability for the CMP QoS framework: a typed event model, pluggable
//! recorder sinks, and timeline reconstruction.
//!
//! The paper's argument (Sections 3–5) rests on *observable* per-job
//! behavior — admission decisions, mode downgrades and switch-backs,
//! per-interval stealing actions, shadow-tag guard trips, partition
//! retargets. This crate makes those moments first-class:
//!
//! * [`Event`] — one variant per observable moment, each stamped with the
//!   cycle it happened at ([`Record`]).
//! * [`Recorder`] — the sink trait threaded through the scheduler, LAC,
//!   stealing controller and shared L2. [`NullRecorder`] (the default) is a
//!   no-op whose `enabled()` lets hot paths skip payload construction
//!   entirely; [`RingBufferRecorder`] keeps a bounded in-memory log for
//!   tests and timeline queries; [`JsonlRecorder`] streams records as JSON
//!   Lines for the experiment binaries; [`ShardRecorder`] buffers one
//!   parallel experiment cell's stream so `cmpqos-engine` sweeps can merge
//!   per-cell shards deterministically ([`merge_shards`]).
//! * [`Timeline`] — reconstructs Figure-7-style job-lifetime bands (which
//!   mode a job ran in, from when to when) out of a recorded stream.
//!
//! Events deliberately use only `cmpqos-types` vocabulary plus the local
//! [`Mode`]/[`RejectCause`] mirrors, so every layer of the stack (cache,
//! system, core) can emit them without dependency cycles.

mod event;
mod recorder;
mod timeline;

pub use event::{Event, EventKind, FaultKind, Health, Knob, Mode, Record, RejectCause};
pub use recorder::{
    merge_shards, Counters, JsonlRecorder, NullRecorder, Recorder, RingBufferRecorder,
    ShardRecorder,
};
pub use timeline::{Band, JobTimeline, Timeline};
