//! Timeline reconstruction: Figure-7-style job-lifetime bands out of a
//! recorded event stream.

use std::collections::BTreeMap;

use cmpqos_types::{Cycles, JobId, NodeId, Ways};

use crate::event::{Event, FaultKind, Health, Knob, Mode, Record, RejectCause};

/// A span of a job's lifetime spent in one execution mode.
#[derive(Debug, Clone, PartialEq)]
pub struct Band {
    /// The mode during this span.
    pub mode: Mode,
    /// Span start (cycle the job started or switched into this mode).
    pub from: Cycles,
    /// Span end; `None` while the job is still running at end of stream.
    pub to: Option<Cycles>,
}

/// Everything the event stream says about one job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobTimeline {
    /// When the job was submitted, and the mode it asked for.
    pub submitted: Option<(Cycles, Mode)>,
    /// When the LAC admitted it, and the reserved start cycle.
    pub admitted: Option<(Cycles, Cycles)>,
    /// When and why the LAC rejected it.
    pub rejected: Option<(Cycles, RejectCause)>,
    /// When it was auto-downgraded, and from/to which modes.
    pub downgraded: Option<(Cycles, Mode, Mode)>,
    /// When it began executing.
    pub started: Option<Cycles>,
    /// When it finished, and whether the deadline was met.
    pub completed: Option<(Cycles, bool)>,
    /// `(deadline, finished)` when the deadline was missed.
    pub deadline_missed: Option<(Cycles, Cycles)>,
    /// Mode bands from start to completion — the Figure-7 view.
    pub bands: Vec<Band>,
    /// Ways stolen from this job over its lifetime (events, one way each).
    pub steals_taken: u64,
    /// Ways handed back on steal cancellation.
    pub ways_returned: u64,
    /// Shadow-tag guard trips attributed to this job.
    pub guard_trips: u64,
    /// The node the global admission controller last placed this job on.
    pub placed: Option<(Cycles, NodeId)>,
    /// When and why the job's reservation was revoked by a capacity loss.
    pub revoked: Option<(Cycles, NodeId, RejectCause)>,
    /// Migrations off a failed node, in stream order: `(at, from, to)`.
    pub migrations: Vec<(Cycles, NodeId, NodeId)>,
    /// Admission probes to this job that were lost in transit.
    pub probe_losses: u64,
    /// Probe retries scheduled with backoff for this job.
    pub probe_backoffs: u64,
    /// Elastic downgrades that absorbed a capacity loss: `(at, node, ways_cut)`.
    pub fault_downgrades: Vec<(Cycles, NodeId, Ways)>,
    /// Epoch samples that found this job above its SLO target.
    pub slo_violations: u64,
    /// Lease expirations on this job's placement: `(at, node)`.
    pub lease_expirations: Vec<(Cycles, NodeId)>,
}

impl JobTimeline {
    /// The mode the job was running in at cycle `at`, if any.
    #[must_use]
    pub fn mode_at(&self, at: Cycles) -> Option<Mode> {
        self.bands
            .iter()
            .find(|b| b.from <= at && b.to.is_none_or(|end| at < end))
            .map(|b| b.mode)
    }

    /// Wall-clock from start to completion, when both happened.
    #[must_use]
    pub fn wall_clock(&self) -> Option<Cycles> {
        let (done, _) = self.completed?;
        Some(done.saturating_sub(self.started?))
    }

    fn close_band(&mut self, at: Cycles) {
        if let Some(open) = self.bands.iter_mut().rev().find(|b| b.to.is_none()) {
            open.to = Some(at);
        }
    }
}

/// A reconstructed view over one recorded run: per-job lifetimes plus the
/// partition-retarget history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    label: Option<String>,
    jobs: BTreeMap<JobId, JobTimeline>,
    partition_changes: Vec<(Cycles, Vec<Ways>)>,
    faults: Vec<(Cycles, NodeId, FaultKind)>,
    health_changes: Vec<(Cycles, NodeId, Health, Health)>,
    circuit_trips: Vec<(Cycles, NodeId, u64, u64)>,
    circuit_restores: Vec<(Cycles, NodeId)>,
    recoveries: Vec<(Cycles, NodeId, u64, u64)>,
    link_changes: Vec<(Cycles, NodeId, bool)>,
    reconciles: Vec<(Cycles, NodeId, u64, u64)>,
    membership_changes: Vec<(Cycles, NodeId, bool)>,
    lease_renewals: Vec<(Cycles, NodeId, u64)>,
    messages_dropped: u64,
    knob_changes: Vec<(Cycles, Knob, i64, i64)>,
}

impl Timeline {
    /// Builds a timeline from records (single run; a second
    /// `Event::RunStarted` resets nothing — use [`Timeline::per_run`] for
    /// multi-run streams).
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a Record>) -> Self {
        let mut t = Timeline::default();
        for r in records {
            t.apply(r);
        }
        t
    }

    /// Parses a JSONL event stream (as written by
    /// [`crate::JsonlRecorder`]) into one timeline.
    ///
    /// # Errors
    ///
    /// Returns the parse error of the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<Self, serde_json::Error> {
        Ok(Self::from_records(&Self::parse_jsonl(text)?))
    }

    /// Parses a JSONL stream and splits it into one timeline per
    /// `Event::RunStarted` marker (records before the first marker form an
    /// unlabeled leading timeline).
    ///
    /// # Errors
    ///
    /// Returns the parse error of the first malformed line.
    pub fn per_run(text: &str) -> Result<Vec<Timeline>, serde_json::Error> {
        let records = Self::parse_jsonl(text)?;
        let mut runs: Vec<Timeline> = Vec::new();
        for r in &records {
            let starts_run = matches!(r.event, Event::RunStarted { .. });
            if starts_run || runs.is_empty() {
                runs.push(Timeline::default());
            }
            runs.last_mut().expect("just pushed").apply(r);
        }
        Ok(runs)
    }

    fn parse_jsonl(text: &str) -> Result<Vec<Record>, serde_json::Error> {
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(serde_json::from_str)
            .collect()
    }

    /// The `RunStarted` label, when the stream carried one.
    #[must_use]
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The timeline of one job.
    #[must_use]
    pub fn job(&self, id: JobId) -> Option<&JobTimeline> {
        self.jobs.get(&id)
    }

    /// All jobs seen, in id order.
    pub fn jobs(&self) -> impl Iterator<Item = (JobId, &JobTimeline)> {
        self.jobs.iter().map(|(&id, t)| (id, t))
    }

    /// Number of jobs seen.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Partition retargets, in stream order.
    #[must_use]
    pub fn partition_changes(&self) -> &[(Cycles, Vec<Ways>)] {
        &self.partition_changes
    }

    /// Injected faults, in stream order.
    #[must_use]
    pub fn faults(&self) -> &[(Cycles, NodeId, FaultKind)] {
        &self.faults
    }

    /// Node health transitions, in stream order: `(at, node, from, to)`.
    #[must_use]
    pub fn health_changes(&self) -> &[(Cycles, NodeId, Health, Health)] {
        &self.health_changes
    }

    /// Circuit-breaker trips, in stream order: `(at, node, rejected, window)`.
    #[must_use]
    pub fn circuit_trips(&self) -> &[(Cycles, NodeId, u64, u64)] {
        &self.circuit_trips
    }

    /// Circuit-breaker restores, in stream order.
    #[must_use]
    pub fn circuit_restores(&self) -> &[(Cycles, NodeId)] {
        &self.circuit_restores
    }

    /// Journal recoveries, in stream order: `(at, node, replayed, lost)`.
    #[must_use]
    pub fn recoveries(&self) -> &[(Cycles, NodeId, u64, u64)] {
        &self.recoveries
    }

    /// Control-plane link changes, in stream order: `(at, node,
    /// partitioned)` — `true` when the link was severed, `false` when it
    /// was healed.
    #[must_use]
    pub fn link_changes(&self) -> &[(Cycles, NodeId, bool)] {
        &self.link_changes
    }

    /// Rejoin reconciliations, in stream order: `(at, node,
    /// orphans_revoked, placements_repaired)`.
    #[must_use]
    pub fn reconciles(&self) -> &[(Cycles, NodeId, u64, u64)] {
        &self.reconciles
    }

    /// Membership transitions, in stream order: `(at, node, joined)` —
    /// `true` when the node entered `Live`, `false` when it drained to
    /// `Left`.
    #[must_use]
    pub fn membership_changes(&self) -> &[(Cycles, NodeId, bool)] {
        &self.membership_changes
    }

    /// Heartbeat-driven lease renewals, in stream order: `(at, node,
    /// leases_renewed)`.
    #[must_use]
    pub fn lease_renewals(&self) -> &[(Cycles, NodeId, u64)] {
        &self.lease_renewals
    }

    /// Control-plane messages lost in transit over the whole run.
    #[must_use]
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Adaptive-control actuator moves, in stream order: `(at, knob, old,
    /// new)`.
    #[must_use]
    pub fn knob_changes(&self) -> &[(Cycles, Knob, i64, i64)] {
        &self.knob_changes
    }

    fn apply(&mut self, r: &Record) {
        let at = r.at;
        match &r.event {
            Event::RunStarted { label } => {
                if self.label.is_none() {
                    self.label = Some(label.clone());
                }
            }
            Event::PartitionChanged { targets } => {
                self.partition_changes.push((at, targets.clone()));
            }
            Event::FaultInjected { node, fault } => {
                self.faults.push((at, *node, *fault));
            }
            Event::NodeHealthChanged { node, from, to } => {
                self.health_changes.push((at, *node, *from, *to));
            }
            Event::CircuitTripped {
                node,
                rejected,
                window,
            } => {
                self.circuit_trips.push((at, *node, *rejected, *window));
            }
            Event::CircuitRestored { node } => {
                self.circuit_restores.push((at, *node));
            }
            Event::ControllerRecovered {
                node,
                replayed,
                lost,
            } => {
                self.recoveries.push((at, *node, *replayed, *lost));
            }
            Event::LinkPartitioned { node } => {
                self.link_changes.push((at, *node, true));
            }
            Event::LinkHealed { node } => {
                self.link_changes.push((at, *node, false));
            }
            Event::MessageDropped { .. } => {
                self.messages_dropped += 1;
            }
            Event::Reconciled {
                node,
                orphans_revoked,
                placements_repaired,
            } => {
                self.reconciles
                    .push((at, *node, *orphans_revoked, *placements_repaired));
            }
            Event::NodeJoined { node } => {
                self.membership_changes.push((at, *node, true));
            }
            Event::NodeDrained { node } => {
                self.membership_changes.push((at, *node, false));
            }
            Event::LeaseRenewed { node, leases } => {
                self.lease_renewals.push((at, *node, *leases));
            }
            Event::KnobChanged { knob, old, new } => {
                self.knob_changes.push((at, *knob, *old, *new));
            }
            event => {
                let Some(id) = event.job() else { return };
                let job = self.jobs.entry(id).or_default();
                match event {
                    Event::Submitted { mode, .. } => job.submitted = Some((at, *mode)),
                    Event::Admitted { start, .. } => job.admitted = Some((at, *start)),
                    Event::Rejected { cause, .. } => job.rejected = Some((at, *cause)),
                    Event::Downgraded { from, to, .. } => {
                        job.downgraded = Some((at, *from, *to));
                    }
                    Event::Started { mode, .. } => {
                        job.started = Some(at);
                        job.bands.push(Band {
                            mode: *mode,
                            from: at,
                            to: None,
                        });
                    }
                    Event::SwitchedBack { to, .. } => {
                        job.close_band(at);
                        job.bands.push(Band {
                            mode: *to,
                            from: at,
                            to: None,
                        });
                    }
                    Event::StealTaken { .. } => job.steals_taken += 1,
                    Event::StealReturned { returned, .. } => {
                        job.ways_returned += u64::from(returned.get());
                    }
                    Event::GuardTripped { .. } => job.guard_trips += 1,
                    Event::Completed { met_deadline, .. } => {
                        job.close_band(at);
                        job.completed = Some((at, *met_deadline));
                    }
                    Event::DeadlineMissed {
                        deadline, finished, ..
                    } => job.deadline_missed = Some((*deadline, *finished)),
                    Event::ProbeLost { .. } => job.probe_losses += 1,
                    Event::ProbeBackoff { .. } => job.probe_backoffs += 1,
                    Event::Placed { node, .. } => job.placed = Some((at, *node)),
                    Event::Migrated { from, to, .. } => {
                        job.migrations.push((at, *from, *to));
                        job.placed = Some((at, *to));
                    }
                    Event::ReservationRevoked { node, cause, .. } => {
                        job.revoked = Some((at, *node, *cause));
                    }
                    Event::DowngradedUnderFault { node, ways_cut, .. } => {
                        job.fault_downgrades.push((at, *node, *ways_cut));
                    }
                    Event::LeaseExpired { node, .. } => {
                        job.lease_expirations.push((at, *node));
                    }
                    Event::SloViolated { .. } => job.slo_violations += 1,
                    Event::RunStarted { .. }
                    | Event::KnobChanged { .. }
                    | Event::PartitionChanged { .. }
                    | Event::FaultInjected { .. }
                    | Event::NodeHealthChanged { .. }
                    | Event::CircuitTripped { .. }
                    | Event::CircuitRestored { .. }
                    | Event::ControllerRecovered { .. }
                    | Event::LinkPartitioned { .. }
                    | Event::LinkHealed { .. }
                    | Event::MessageDropped { .. }
                    | Event::Reconciled { .. }
                    | Event::NodeJoined { .. }
                    | Event::NodeDrained { .. }
                    | Event::LeaseRenewed { .. } => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_types::CoreId;

    fn rec(at: u64, event: Event) -> Record {
        Record {
            at: Cycles::new(at),
            event,
        }
    }

    fn downgraded_job_stream() -> Vec<Record> {
        let j = JobId::new(1);
        vec![
            rec(
                0,
                Event::RunStarted {
                    label: "test/cell".into(),
                },
            ),
            rec(
                5,
                Event::Submitted {
                    job: j,
                    mode: Mode::Strict,
                },
            ),
            rec(
                5,
                Event::Admitted {
                    job: j,
                    start: Cycles::new(5),
                },
            ),
            rec(
                5,
                Event::Downgraded {
                    job: j,
                    from: Mode::Strict,
                    to: Mode::Opportunistic,
                },
            ),
            rec(
                6,
                Event::Started {
                    job: j,
                    core: Some(CoreId::new(0)),
                    mode: Mode::Opportunistic,
                },
            ),
            rec(
                100,
                Event::SwitchedBack {
                    job: j,
                    to: Mode::Strict,
                },
            ),
            rec(
                250,
                Event::Completed {
                    job: j,
                    met_deadline: true,
                },
            ),
        ]
    }

    #[test]
    fn reconstructs_figure7_bands() {
        let records = downgraded_job_stream();
        let t = Timeline::from_records(&records);
        assert_eq!(t.label(), Some("test/cell"));
        assert_eq!(t.job_count(), 1);
        let job = t.job(JobId::new(1)).unwrap();
        assert_eq!(job.submitted, Some((Cycles::new(5), Mode::Strict)));
        assert_eq!(
            job.bands,
            vec![
                Band {
                    mode: Mode::Opportunistic,
                    from: Cycles::new(6),
                    to: Some(Cycles::new(100)),
                },
                Band {
                    mode: Mode::Strict,
                    from: Cycles::new(100),
                    to: Some(Cycles::new(250)),
                },
            ]
        );
        assert_eq!(job.mode_at(Cycles::new(50)), Some(Mode::Opportunistic));
        assert_eq!(job.mode_at(Cycles::new(100)), Some(Mode::Strict));
        assert_eq!(job.mode_at(Cycles::new(300)), None);
        assert_eq!(job.wall_clock(), Some(Cycles::new(244)));
    }

    #[test]
    fn jsonl_round_trip_and_run_segmentation() {
        let mut text = String::new();
        for run in ["a", "b"] {
            for r in {
                let mut v = downgraded_job_stream();
                v[0] = rec(0, Event::RunStarted { label: run.into() });
                v
            } {
                text.push_str(&serde_json::to_string(&r).unwrap());
                text.push('\n');
            }
        }
        let single = Timeline::from_jsonl(&text).unwrap();
        assert_eq!(single.label(), Some("a"));
        let runs = Timeline::per_run(&text).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].label(), Some("b"));
        assert_eq!(runs[1].job_count(), 1);
        assert!(runs[1].job(JobId::new(1)).unwrap().completed.is_some());
    }

    #[test]
    fn membership_and_lease_events_land_in_the_timeline() {
        let j = JobId::new(9);
        let records = vec![
            rec(
                10,
                Event::NodeJoined {
                    node: NodeId::new(4),
                },
            ),
            rec(
                20,
                Event::LeaseRenewed {
                    node: NodeId::new(4),
                    leases: 3,
                },
            ),
            rec(
                30,
                Event::LeaseExpired {
                    job: j,
                    node: NodeId::new(4),
                },
            ),
            rec(
                40,
                Event::NodeDrained {
                    node: NodeId::new(4),
                },
            ),
        ];
        let t = Timeline::from_records(&records);
        assert_eq!(
            t.membership_changes(),
            &[
                (Cycles::new(10), NodeId::new(4), true),
                (Cycles::new(40), NodeId::new(4), false),
            ]
        );
        assert_eq!(t.lease_renewals(), &[(Cycles::new(20), NodeId::new(4), 3)]);
        let job = t.job(j).unwrap();
        assert_eq!(
            job.lease_expirations,
            vec![(Cycles::new(30), NodeId::new(4))]
        );
    }

    #[test]
    fn partition_changes_are_ordered() {
        let records = vec![
            rec(
                10,
                Event::PartitionChanged {
                    targets: vec![Ways::new(8), Ways::new(8)],
                },
            ),
            rec(
                20,
                Event::PartitionChanged {
                    targets: vec![Ways::new(12), Ways::new(4)],
                },
            ),
        ];
        let t = Timeline::from_records(&records);
        assert_eq!(t.partition_changes().len(), 2);
        assert_eq!(t.partition_changes()[1].0, Cycles::new(20));
        assert_eq!(t.partition_changes()[1].1[0], Ways::new(12));
    }
}
