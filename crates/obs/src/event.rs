//! The typed event model: everything the QoS stack can tell an observer.

use cmpqos_types::{CoreId, Cycles, JobId, NodeId, Percent, Ways};

/// Execution mode as seen by the observability layer.
///
/// Mirrors the scheduler's `ExecutionMode` (the conversion lives in
/// `cmpqos-core`, which depends on this crate — not the other way around,
/// so lower layers like the cache can also emit events).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Mode {
    /// Hard QoS: reserved resources, guaranteed deadline.
    Strict,
    /// Bounded degradation: may donate resources within the slack.
    Elastic(Percent),
    /// Best effort: runs on whatever is left over.
    Opportunistic,
}

/// Why admission control turned a job away.
///
/// Mirrors the LAC's `RejectReason` one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RejectCause {
    /// No reservation window fits before the job's deadline.
    NoCapacityBeforeDeadline,
    /// No spare resources right now (opportunistic admission).
    NoSpareResources,
    /// The request can never fit this node, regardless of schedule.
    ExceedsNodeCapacity,
    /// A fault shrank the supply out from under an already-admitted job,
    /// and no surviving capacity could absorb it.
    CapacityRevoked,
    /// Every node is dead (or unreachable): no LAC could even be probed.
    NoHealthyNodes,
    /// The overload-protection layer shed the request before admission
    /// (intake queue full, rate limit exceeded, or circuit breaker open).
    ShedOverload,
    /// The request's deadline slack could no longer fit any feasible
    /// timeslot, so it was shed without consuming an FCFS admission test.
    ShedInfeasible,
}

/// The kind of an injected fault, as seen by the observability layer.
///
/// Mirrors `cmpqos-faults`' `Fault` (the node is carried by the
/// [`Event::FaultInjected`] event itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// One L2 way died.
    WayFault {
        /// The dead way index.
        way: u16,
    },
    /// One core died.
    CoreFault {
        /// The dead core.
        core: CoreId,
    },
    /// The whole node died.
    NodeFault,
    /// Admission probes go unanswered.
    ProbeLoss {
        /// How many consecutive probes are lost.
        count: u32,
    },
    /// The node's admission controller crashed, losing its in-core
    /// reservation tables (recovered from the write-ahead journal).
    ControllerCrash,
    /// The GAC ↔ node link was severed in both directions: the node is
    /// unreachable but alive (its LAC keeps honoring reservations).
    LinkPartition,
    /// The GAC ↔ node link was restored.
    LinkHeal,
    /// The next `count` control-plane messages on the GAC → node link are
    /// silently lost in transit.
    MessageDrop {
        /// How many consecutive messages are lost.
        count: u32,
    },
    /// A fresh node joined the cluster (membership `Joining → Live` after
    /// the join-announce handshake).
    NodeJoin,
    /// The node restarted: its protocol state (epochs, sequence numbers)
    /// is gone, but its journal-recovered reservation table survives. It
    /// rejoins as `Joining` and must reconcile before re-entering `Live`.
    NodeRestart,
    /// The node was asked to drain gracefully: no new placements, live
    /// reservations migrate off, then membership transitions to `Left`.
    NodeDrain,
    /// Lease renewals to the node are frozen: heartbeats still answer
    /// (the node looks alive) but placed reservations stop being renewed,
    /// so their leases eventually expire.
    LeaseFreeze,
}

/// A node's health as tracked by the global admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Health {
    /// Probes are being answered.
    Healthy,
    /// Recent probes were lost; the node is probed after healthy ones.
    Suspect,
    /// Declared dead: no longer probed, its jobs migrated away.
    Dead,
}

/// A tunable actuator of the adaptive control plane (`cmpqos-adapt`), as
/// identified in [`Event::KnobChanged`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Knob {
    /// An Elastic donor's effective stealing slack, in milli-percent.
    StealSlack {
        /// The donor job.
        job: JobId,
    },
    /// An Elastic donor's repartitioning interval, in instructions.
    StealInterval {
        /// The donor job.
        job: JobId,
    },
    /// A core's DVFS-style speed, in percent of full frequency.
    CoreSpeed {
        /// The throttled core.
        core: CoreId,
    },
}

/// One observable moment in the life of the QoS framework.
///
/// Serialized (externally tagged) this is the JSONL schema the experiment
/// binaries emit; see `docs/observability.md`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum Event {
    /// Marks the start of an experiment cell, so one JSONL file can hold
    /// several runs (job ids restart per run).
    RunStarted {
        /// Human-readable cell label, e.g. `"fig7/hybrid2"`.
        label: String,
    },
    /// A job arrived at the scheduler.
    Submitted {
        /// The job.
        job: JobId,
        /// The mode it asked for.
        mode: Mode,
    },
    /// The LAC accepted the job.
    Admitted {
        /// The job.
        job: JobId,
        /// Reserved start cycle (equals the admission cycle for
        /// opportunistic jobs).
        start: Cycles,
    },
    /// The LAC turned the job away.
    Rejected {
        /// The job.
        job: JobId,
        /// Why.
        cause: RejectCause,
    },
    /// The job began executing on a core.
    Started {
        /// The job.
        job: JobId,
        /// The core it was pinned to; `None` for floating (opportunistic)
        /// placement, where the engine picks any idle core each slice.
        core: Option<CoreId>,
        /// The mode it is actually running in (may differ from the
        /// submitted mode after an auto-downgrade).
        mode: Mode,
    },
    /// The scheduler downgraded the job's mode (e.g. Strict →
    /// Opportunistic when the reserved start would miss the deadline).
    Downgraded {
        /// The job.
        job: JobId,
        /// Mode it asked for.
        from: Mode,
        /// Mode it will run in.
        to: Mode,
    },
    /// A downgraded job was promoted back to its original mode.
    SwitchedBack {
        /// The job.
        job: JobId,
        /// The mode it returned to.
        to: Mode,
    },
    /// The stealing controller took one way from the job's allocation.
    StealTaken {
        /// The donor job.
        job: JobId,
        /// Total ways stolen from it so far.
        stolen_total: Ways,
    },
    /// Stealing was cancelled and the stolen ways handed back.
    StealReturned {
        /// The donor job.
        job: JobId,
        /// Ways returned.
        returned: Ways,
    },
    /// The shadow-tag guard found the degradation bound exceeded.
    GuardTripped {
        /// The protected job.
        job: JobId,
        /// Observed miss increase at the time of the trip, as a fraction
        /// of the shadow (original-allocation) misses.
        miss_increase: f64,
    },
    /// The shared L2 was repartitioned.
    PartitionChanged {
        /// New per-core way targets, indexed by core.
        targets: Vec<Ways>,
    },
    /// The job finished.
    Completed {
        /// The job.
        job: JobId,
        /// Whether it finished by its deadline (true when it had none).
        met_deadline: bool,
    },
    /// The job finished after its deadline.
    DeadlineMissed {
        /// The job.
        job: JobId,
        /// The deadline it had.
        deadline: Cycles,
        /// When it actually finished.
        finished: Cycles,
    },
    /// A fault from the injection schedule struck a node.
    FaultInjected {
        /// The struck node.
        node: NodeId,
        /// What failed.
        fault: FaultKind,
    },
    /// An admission probe to a node went unanswered.
    ProbeLost {
        /// The job whose probe was lost.
        job: JobId,
        /// The unresponsive node.
        node: NodeId,
    },
    /// The GAC backed off before retrying a lost probe. Stamped at the
    /// cycle the retry fires.
    ProbeBackoff {
        /// The job being retried.
        job: JobId,
        /// The node being re-probed.
        node: NodeId,
        /// The backoff delay that was waited.
        delay: Cycles,
    },
    /// The GAC's health tracking moved a node between states.
    NodeHealthChanged {
        /// The node.
        node: NodeId,
        /// Previous health.
        from: Health,
        /// New health.
        to: Health,
    },
    /// The GAC placed an accepted job on a node.
    Placed {
        /// The job.
        job: JobId,
        /// The accepting node.
        node: NodeId,
    },
    /// A job's reservation moved from a failed (or shrunken) node to a
    /// survivor.
    Migrated {
        /// The job.
        job: JobId,
        /// The node it was stranded on.
        from: NodeId,
        /// The node that re-admitted it.
        to: NodeId,
    },
    /// A fault shrank supply and the job's reservation could not be kept,
    /// downgraded, or migrated: the admission guarantee is withdrawn.
    ReservationRevoked {
        /// The job.
        job: JobId,
        /// The node that held its reservation.
        node: NodeId,
        /// Why (always a revocation cause).
        cause: RejectCause,
    },
    /// An Elastic(X) job's reservation was shrunk in place: its slack
    /// absorbed part of a capacity loss.
    DowngradedUnderFault {
        /// The job.
        job: JobId,
        /// The node holding its (now smaller) reservation.
        node: NodeId,
        /// Ways removed from its reservation.
        ways_cut: Ways,
    },
    /// The admission circuit breaker tripped: the reject ratio over the
    /// sliding decision window crossed the threshold, so intake sheds
    /// everything until the cooldown elapses.
    CircuitTripped {
        /// The node whose intake tripped.
        node: NodeId,
        /// Rejections observed in the window that tripped it.
        rejected: u64,
        /// The window length the ratio was measured over.
        window: u64,
    },
    /// The admission circuit breaker's cooldown elapsed: intake accepts
    /// requests again.
    CircuitRestored {
        /// The node whose intake recovered.
        node: NodeId,
    },
    /// A crashed admission controller was rebuilt from its write-ahead
    /// journal (snapshot + replay).
    ControllerRecovered {
        /// The node whose controller was recovered.
        node: NodeId,
        /// Journal operations replayed on top of the snapshot.
        replayed: u64,
        /// Journal records lost to a torn or corrupted tail.
        lost: u64,
    },
    /// The control-plane link between the GAC and a node was severed: the
    /// node is unreachable (but alive — partition is not death).
    LinkPartitioned {
        /// The unreachable node.
        node: NodeId,
    },
    /// The control-plane link between the GAC and a node was restored.
    LinkHealed {
        /// The reachable-again node.
        node: NodeId,
    },
    /// A control-plane message was lost in transit (dropped, or eaten by
    /// an active partition).
    MessageDropped {
        /// The node end of the lossy link.
        node: NodeId,
    },
    /// A rejoin reconciliation completed: the GAC diffed its placement
    /// table against the node's journal-backed reservation table and
    /// repaired both sides.
    Reconciled {
        /// The reconciled node.
        node: NodeId,
        /// Orphaned reservations revoked on the node (the LAC admitted
        /// them but the accept reply never reached the GAC).
        orphans_revoked: u64,
        /// Placements the GAC repaired (reservations it thought live that
        /// the node no longer held).
        placements_repaired: u64,
    },
    /// A node finished its membership handshake and entered `Live`:
    /// either a brand-new join or a restart whose reconciliation
    /// completed.
    NodeJoined {
        /// The node now accepting placements.
        node: NodeId,
    },
    /// A draining node moved its last live reservation off and
    /// transitioned to `Left`: it holds nothing and is never probed again.
    NodeDrained {
        /// The node that left the cluster.
        node: NodeId,
    },
    /// A placed reservation's lease ran out (no renewal within the TTL
    /// plus the dead-timeout grace): the placement is revoked and re-placed
    /// exactly like an evacuation.
    LeaseExpired {
        /// The job whose lease lapsed.
        job: JobId,
        /// The node that held (and may still hold) the reservation.
        node: NodeId,
    },
    /// A heartbeat ack renewed every lease held on a node.
    LeaseRenewed {
        /// The node whose placements were renewed.
        node: NodeId,
        /// How many leases were extended.
        leases: u64,
    },
    /// An epoch sample found a job's delivered CPI above its SLO target.
    SloViolated {
        /// The violating job.
        job: JobId,
        /// Delivered CPI over the sampled epoch, in milli-CPI.
        cpi_milli: u64,
        /// The job's SLO target, in milli-CPI.
        target_milli: u64,
    },
    /// The adaptive control plane moved an actuator to a new value.
    /// Emitted only when the value actually changes — a controller holding
    /// every knob at baseline is invisible in the event stream.
    KnobChanged {
        /// Which actuator moved.
        knob: Knob,
        /// Its previous value.
        old: i64,
        /// Its new value.
        new: i64,
    },
}

impl Event {
    /// The job this event concerns, when it concerns exactly one.
    #[must_use]
    pub fn job(&self) -> Option<JobId> {
        match *self {
            Event::Submitted { job, .. }
            | Event::Admitted { job, .. }
            | Event::Rejected { job, .. }
            | Event::Started { job, .. }
            | Event::Downgraded { job, .. }
            | Event::SwitchedBack { job, .. }
            | Event::StealTaken { job, .. }
            | Event::StealReturned { job, .. }
            | Event::GuardTripped { job, .. }
            | Event::Completed { job, .. }
            | Event::DeadlineMissed { job, .. }
            | Event::ProbeLost { job, .. }
            | Event::ProbeBackoff { job, .. }
            | Event::Placed { job, .. }
            | Event::Migrated { job, .. }
            | Event::ReservationRevoked { job, .. }
            | Event::DowngradedUnderFault { job, .. }
            | Event::LeaseExpired { job, .. }
            | Event::SloViolated { job, .. } => Some(job),
            Event::RunStarted { .. }
            | Event::KnobChanged { .. }
            | Event::PartitionChanged { .. }
            | Event::FaultInjected { .. }
            | Event::NodeHealthChanged { .. }
            | Event::CircuitTripped { .. }
            | Event::CircuitRestored { .. }
            | Event::ControllerRecovered { .. }
            | Event::LinkPartitioned { .. }
            | Event::LinkHealed { .. }
            | Event::MessageDropped { .. }
            | Event::Reconciled { .. }
            | Event::NodeJoined { .. }
            | Event::NodeDrained { .. }
            | Event::LeaseRenewed { .. } => None,
        }
    }

    /// The event's kind, for counting.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            Event::RunStarted { .. } => EventKind::RunStarted,
            Event::Submitted { .. } => EventKind::Submitted,
            Event::Admitted { .. } => EventKind::Admitted,
            Event::Rejected { .. } => EventKind::Rejected,
            Event::Started { .. } => EventKind::Started,
            Event::Downgraded { .. } => EventKind::Downgraded,
            Event::SwitchedBack { .. } => EventKind::SwitchedBack,
            Event::StealTaken { .. } => EventKind::StealTaken,
            Event::StealReturned { .. } => EventKind::StealReturned,
            Event::GuardTripped { .. } => EventKind::GuardTripped,
            Event::PartitionChanged { .. } => EventKind::PartitionChanged,
            Event::Completed { .. } => EventKind::Completed,
            Event::DeadlineMissed { .. } => EventKind::DeadlineMissed,
            Event::FaultInjected { .. } => EventKind::FaultInjected,
            Event::ProbeLost { .. } => EventKind::ProbeLost,
            Event::ProbeBackoff { .. } => EventKind::ProbeBackoff,
            Event::NodeHealthChanged { .. } => EventKind::NodeHealthChanged,
            Event::Placed { .. } => EventKind::Placed,
            Event::Migrated { .. } => EventKind::Migrated,
            Event::ReservationRevoked { .. } => EventKind::ReservationRevoked,
            Event::DowngradedUnderFault { .. } => EventKind::DowngradedUnderFault,
            Event::CircuitTripped { .. } => EventKind::CircuitTripped,
            Event::CircuitRestored { .. } => EventKind::CircuitRestored,
            Event::ControllerRecovered { .. } => EventKind::ControllerRecovered,
            Event::LinkPartitioned { .. } => EventKind::LinkPartitioned,
            Event::LinkHealed { .. } => EventKind::LinkHealed,
            Event::MessageDropped { .. } => EventKind::MessageDropped,
            Event::Reconciled { .. } => EventKind::Reconciled,
            Event::NodeJoined { .. } => EventKind::NodeJoined,
            Event::NodeDrained { .. } => EventKind::NodeDrained,
            Event::LeaseExpired { .. } => EventKind::LeaseExpired,
            Event::LeaseRenewed { .. } => EventKind::LeaseRenewed,
            Event::SloViolated { .. } => EventKind::SloViolated,
            Event::KnobChanged { .. } => EventKind::KnobChanged,
        }
    }
}

/// Discriminant-only view of [`Event`], the key of [`crate::Counters`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum EventKind {
    /// See [`Event::RunStarted`].
    RunStarted,
    /// See [`Event::Submitted`].
    Submitted,
    /// See [`Event::Admitted`].
    Admitted,
    /// See [`Event::Rejected`].
    Rejected,
    /// See [`Event::Started`].
    Started,
    /// See [`Event::Downgraded`].
    Downgraded,
    /// See [`Event::SwitchedBack`].
    SwitchedBack,
    /// See [`Event::StealTaken`].
    StealTaken,
    /// See [`Event::StealReturned`].
    StealReturned,
    /// See [`Event::GuardTripped`].
    GuardTripped,
    /// See [`Event::PartitionChanged`].
    PartitionChanged,
    /// See [`Event::Completed`].
    Completed,
    /// See [`Event::DeadlineMissed`].
    DeadlineMissed,
    /// See [`Event::FaultInjected`].
    FaultInjected,
    /// See [`Event::ProbeLost`].
    ProbeLost,
    /// See [`Event::ProbeBackoff`].
    ProbeBackoff,
    /// See [`Event::NodeHealthChanged`].
    NodeHealthChanged,
    /// See [`Event::Placed`].
    Placed,
    /// See [`Event::Migrated`].
    Migrated,
    /// See [`Event::ReservationRevoked`].
    ReservationRevoked,
    /// See [`Event::DowngradedUnderFault`].
    DowngradedUnderFault,
    /// See [`Event::CircuitTripped`].
    CircuitTripped,
    /// See [`Event::CircuitRestored`].
    CircuitRestored,
    /// See [`Event::ControllerRecovered`].
    ControllerRecovered,
    /// See [`Event::LinkPartitioned`].
    LinkPartitioned,
    /// See [`Event::LinkHealed`].
    LinkHealed,
    /// See [`Event::MessageDropped`].
    MessageDropped,
    /// See [`Event::Reconciled`].
    Reconciled,
    /// See [`Event::NodeJoined`].
    NodeJoined,
    /// See [`Event::NodeDrained`].
    NodeDrained,
    /// See [`Event::LeaseExpired`].
    LeaseExpired,
    /// See [`Event::LeaseRenewed`].
    LeaseRenewed,
    /// See [`Event::SloViolated`].
    SloViolated,
    /// See [`Event::KnobChanged`].
    KnobChanged,
}

impl EventKind {
    /// Every kind, in declaration order.
    pub const ALL: [EventKind; 34] = [
        EventKind::RunStarted,
        EventKind::Submitted,
        EventKind::Admitted,
        EventKind::Rejected,
        EventKind::Started,
        EventKind::Downgraded,
        EventKind::SwitchedBack,
        EventKind::StealTaken,
        EventKind::StealReturned,
        EventKind::GuardTripped,
        EventKind::PartitionChanged,
        EventKind::Completed,
        EventKind::DeadlineMissed,
        EventKind::FaultInjected,
        EventKind::ProbeLost,
        EventKind::ProbeBackoff,
        EventKind::NodeHealthChanged,
        EventKind::Placed,
        EventKind::Migrated,
        EventKind::ReservationRevoked,
        EventKind::DowngradedUnderFault,
        EventKind::CircuitTripped,
        EventKind::CircuitRestored,
        EventKind::ControllerRecovered,
        EventKind::LinkPartitioned,
        EventKind::LinkHealed,
        EventKind::MessageDropped,
        EventKind::Reconciled,
        EventKind::NodeJoined,
        EventKind::NodeDrained,
        EventKind::LeaseExpired,
        EventKind::LeaseRenewed,
        EventKind::SloViolated,
        EventKind::KnobChanged,
    ];
}

/// An [`Event`] stamped with the cycle it happened at.
///
/// One JSONL line is one serialized `Record`:
/// `{"at": 1234, "event": {"Started": {...}}}`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Record {
    /// Simulated cycle timestamp.
    pub at: Cycles,
    /// What happened.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![
            Record {
                at: Cycles::new(0),
                event: Event::RunStarted {
                    label: "fig7/hybrid2".into(),
                },
            },
            Record {
                at: Cycles::new(10),
                event: Event::Submitted {
                    job: JobId::new(1),
                    mode: Mode::Elastic(Percent::new(10.0)),
                },
            },
            Record {
                at: Cycles::new(11),
                event: Event::Rejected {
                    job: JobId::new(2),
                    cause: RejectCause::ExceedsNodeCapacity,
                },
            },
            Record {
                at: Cycles::new(90),
                event: Event::PartitionChanged {
                    targets: vec![Ways::new(4), Ways::new(12)],
                },
            },
            Record {
                at: Cycles::new(99),
                event: Event::DeadlineMissed {
                    job: JobId::new(1),
                    deadline: Cycles::new(50),
                    finished: Cycles::new(99),
                },
            },
        ];
        for r in records {
            let line = serde_json::to_string(&r).unwrap();
            let back: Record = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn job_extraction_and_kinds() {
        let e = Event::Started {
            job: JobId::new(7),
            core: Some(CoreId::new(1)),
            mode: Mode::Strict,
        };
        assert_eq!(e.job(), Some(JobId::new(7)));
        assert_eq!(e.kind(), EventKind::Started);
        let p = Event::PartitionChanged { targets: vec![] };
        assert_eq!(p.job(), None);
        assert_eq!(EventKind::ALL.len(), 34);
    }

    #[test]
    fn adapt_events_round_trip_and_extract_jobs() {
        let records = vec![
            Record {
                at: Cycles::new(50_000),
                event: Event::SloViolated {
                    job: JobId::new(3),
                    cpi_milli: 2_710,
                    target_milli: 2_600,
                },
            },
            Record {
                at: Cycles::new(50_000),
                event: Event::KnobChanged {
                    knob: Knob::StealSlack { job: JobId::new(3) },
                    old: 20_000,
                    new: 10_000,
                },
            },
            Record {
                at: Cycles::new(50_000),
                event: Event::KnobChanged {
                    knob: Knob::CoreSpeed {
                        core: CoreId::new(2),
                    },
                    old: 100,
                    new: 75,
                },
            },
        ];
        for r in &records {
            let line = serde_json::to_string(r).unwrap();
            let back: Record = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, r);
        }
        assert_eq!(records[0].event.job(), Some(JobId::new(3)));
        assert_eq!(records[0].event.kind(), EventKind::SloViolated);
        assert_eq!(records[1].event.job(), None);
        assert_eq!(records[2].event.kind(), EventKind::KnobChanged);
    }

    #[test]
    fn fault_events_round_trip_and_extract_jobs() {
        let records = vec![
            Record {
                at: Cycles::new(10),
                event: Event::FaultInjected {
                    node: NodeId::new(1),
                    fault: FaultKind::WayFault { way: 3 },
                },
            },
            Record {
                at: Cycles::new(11),
                event: Event::NodeHealthChanged {
                    node: NodeId::new(1),
                    from: Health::Healthy,
                    to: Health::Suspect,
                },
            },
            Record {
                at: Cycles::new(12),
                event: Event::ProbeLost {
                    job: JobId::new(4),
                    node: NodeId::new(1),
                },
            },
            Record {
                at: Cycles::new(13),
                event: Event::ProbeBackoff {
                    job: JobId::new(4),
                    node: NodeId::new(1),
                    delay: Cycles::new(1000),
                },
            },
            Record {
                at: Cycles::new(14),
                event: Event::Placed {
                    job: JobId::new(4),
                    node: NodeId::new(2),
                },
            },
            Record {
                at: Cycles::new(15),
                event: Event::Migrated {
                    job: JobId::new(4),
                    from: NodeId::new(2),
                    to: NodeId::new(0),
                },
            },
            Record {
                at: Cycles::new(16),
                event: Event::ReservationRevoked {
                    job: JobId::new(5),
                    node: NodeId::new(1),
                    cause: RejectCause::CapacityRevoked,
                },
            },
            Record {
                at: Cycles::new(17),
                event: Event::DowngradedUnderFault {
                    job: JobId::new(6),
                    node: NodeId::new(1),
                    ways_cut: Ways::new(2),
                },
            },
        ];
        for r in &records {
            let line = serde_json::to_string(r).unwrap();
            let back: Record = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, r);
        }
        assert_eq!(records[0].event.job(), None);
        assert_eq!(records[1].event.job(), None);
        assert_eq!(records[2].event.job(), Some(JobId::new(4)));
        assert_eq!(records[6].event.job(), Some(JobId::new(5)));
        assert_eq!(records[7].event.kind(), EventKind::DowngradedUnderFault);
    }

    #[test]
    fn net_events_round_trip_and_carry_no_job() {
        let records = vec![
            Record {
                at: Cycles::new(20),
                event: Event::FaultInjected {
                    node: NodeId::new(3),
                    fault: FaultKind::LinkPartition,
                },
            },
            Record {
                at: Cycles::new(20),
                event: Event::LinkPartitioned {
                    node: NodeId::new(3),
                },
            },
            Record {
                at: Cycles::new(25),
                event: Event::MessageDropped {
                    node: NodeId::new(3),
                },
            },
            Record {
                at: Cycles::new(30),
                event: Event::FaultInjected {
                    node: NodeId::new(3),
                    fault: FaultKind::MessageDrop { count: 2 },
                },
            },
            Record {
                at: Cycles::new(40),
                event: Event::LinkHealed {
                    node: NodeId::new(3),
                },
            },
            Record {
                at: Cycles::new(41),
                event: Event::Reconciled {
                    node: NodeId::new(3),
                    orphans_revoked: 1,
                    placements_repaired: 0,
                },
            },
        ];
        for r in &records {
            let line = serde_json::to_string(r).unwrap();
            let back: Record = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, r);
            assert_eq!(r.event.job(), None);
        }
        assert_eq!(records[1].event.kind(), EventKind::LinkPartitioned);
        assert_eq!(records[5].event.kind(), EventKind::Reconciled);
    }

    #[test]
    fn churn_events_round_trip_and_only_lease_expiry_is_job_scoped() {
        let records = vec![
            Record {
                at: Cycles::new(10),
                event: Event::FaultInjected {
                    node: NodeId::new(4),
                    fault: FaultKind::NodeJoin,
                },
            },
            Record {
                at: Cycles::new(12),
                event: Event::NodeJoined {
                    node: NodeId::new(4),
                },
            },
            Record {
                at: Cycles::new(20),
                event: Event::FaultInjected {
                    node: NodeId::new(2),
                    fault: FaultKind::NodeDrain,
                },
            },
            Record {
                at: Cycles::new(25),
                event: Event::NodeDrained {
                    node: NodeId::new(2),
                },
            },
            Record {
                at: Cycles::new(30),
                event: Event::FaultInjected {
                    node: NodeId::new(1),
                    fault: FaultKind::LeaseFreeze,
                },
            },
            Record {
                at: Cycles::new(31),
                event: Event::LeaseRenewed {
                    node: NodeId::new(3),
                    leases: 5,
                },
            },
            Record {
                at: Cycles::new(99),
                event: Event::LeaseExpired {
                    job: JobId::new(8),
                    node: NodeId::new(1),
                },
            },
            Record {
                at: Cycles::new(100),
                event: Event::FaultInjected {
                    node: NodeId::new(0),
                    fault: FaultKind::NodeRestart,
                },
            },
        ];
        for r in &records {
            let line = serde_json::to_string(r).unwrap();
            let back: Record = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, r);
        }
        assert_eq!(records[1].event.kind(), EventKind::NodeJoined);
        assert_eq!(records[3].event.kind(), EventKind::NodeDrained);
        assert_eq!(records[5].event.job(), None);
        assert_eq!(records[6].event.job(), Some(JobId::new(8)));
        assert_eq!(records[6].event.kind(), EventKind::LeaseExpired);
    }
}
