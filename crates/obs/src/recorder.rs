//! Recorder sinks: where events go.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;

use cmpqos_types::Cycles;

use crate::event::{Event, EventKind, Record};
use crate::timeline::Timeline;

/// A sink for [`Event`]s.
///
/// Emitting code holds a `&mut dyn Recorder` (or a generic `R: Recorder`)
/// and calls [`Recorder::record`] at each observable moment. Call sites
/// whose payloads are costly to build (e.g. cloning a partition target
/// vector) should check [`Recorder::enabled`] first: the default
/// [`NullRecorder`] reports `false`, so the disabled path stays free of
/// allocation and formatting.
///
/// Recorders are [`Send`] so a cell (one seeded simulation plus its
/// recorder) can execute on a `cmpqos-engine` worker thread; sinks are
/// still single-owner — parallel cells each record into their own
/// [`ShardRecorder`] and the shards are merged afterwards (see
/// [`merge_shards`]).
pub trait Recorder: Send {
    /// Records that `event` happened at cycle `at`.
    fn record(&mut self, at: Cycles, event: Event);

    /// Whether records are being kept. `false` means [`Recorder::record`]
    /// is a no-op and callers may skip building payloads.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}

    /// The concrete sink as [`Any`](std::any::Any), for recovering it from
    /// a `Box<dyn Recorder>` (e.g. `QosScheduler::take_recorder`). Sinks
    /// that don't opt in return `None` (the default).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    fn record(&mut self, at: Cycles, event: Event) {
        (**self).record(at, event);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn flush(&mut self) {
        (**self).flush();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
}

impl<R: Recorder + ?Sized> Recorder for Box<R> {
    fn record(&mut self, at: Cycles, event: Event) {
        (**self).record(at, event);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn flush(&mut self) {
        (**self).flush();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn record(&mut self, _at: Cycles, _event: Event) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// Monotonic per-kind event counts, maintained by every keeping sink.
#[derive(Debug, Default, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Counters {
    /// Experiment cells started.
    pub runs_started: u64,
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs admitted.
    pub admitted: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Jobs started on a core.
    pub started: u64,
    /// Auto-downgrades.
    pub downgraded: u64,
    /// Switch-backs to the original mode.
    pub switched_back: u64,
    /// Ways stolen (events, i.e. one way each).
    pub steals_taken: u64,
    /// Steal cancellations returning ways.
    pub steals_returned: u64,
    /// Shadow-tag guard trips.
    pub guard_trips: u64,
    /// L2 repartitions.
    pub partition_changes: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Deadlines missed.
    pub deadlines_missed: u64,
    /// Faults injected.
    pub faults_injected: u64,
    /// Admission probes lost in transit.
    pub probes_lost: u64,
    /// Probe retries scheduled with backoff.
    pub probe_backoffs: u64,
    /// Node health transitions.
    pub node_health_changes: u64,
    /// Jobs placed on a node by the global admission controller.
    pub placed: u64,
    /// Jobs migrated off a dead node.
    pub migrated: u64,
    /// Reservations revoked by capacity loss.
    pub reservations_revoked: u64,
    /// Elastic downgrades absorbing a capacity loss.
    pub downgraded_under_fault: u64,
    /// Admission circuit-breaker trips.
    pub circuits_tripped: u64,
    /// Admission circuit-breaker cooldowns elapsed.
    pub circuits_restored: u64,
    /// Controllers rebuilt from their write-ahead journals.
    pub controllers_recovered: u64,
    /// GAC ↔ node links severed.
    pub links_partitioned: u64,
    /// GAC ↔ node links restored.
    pub links_healed: u64,
    /// Control-plane messages lost in transit.
    pub messages_dropped: u64,
    /// Rejoin reconciliations completed.
    pub reconciled: u64,
    /// Nodes that entered `Live` (joins and completed restarts).
    pub nodes_joined: u64,
    /// Nodes that finished draining and left the cluster.
    pub nodes_drained: u64,
    /// Placed-reservation leases that expired unrenewed.
    pub leases_expired: u64,
    /// Heartbeat acks that renewed a node's leases.
    pub leases_renewed: u64,
    /// Epoch samples above an SLO target.
    pub slo_violations: u64,
    /// Adaptive-control actuator moves.
    pub knob_changes: u64,
}

impl Counters {
    /// Bumps the counter for `kind`.
    pub fn bump(&mut self, kind: EventKind) {
        *self.slot(kind) += 1;
    }

    /// The count for `kind`.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        match kind {
            EventKind::RunStarted => self.runs_started,
            EventKind::Submitted => self.submitted,
            EventKind::Admitted => self.admitted,
            EventKind::Rejected => self.rejected,
            EventKind::Started => self.started,
            EventKind::Downgraded => self.downgraded,
            EventKind::SwitchedBack => self.switched_back,
            EventKind::StealTaken => self.steals_taken,
            EventKind::StealReturned => self.steals_returned,
            EventKind::GuardTripped => self.guard_trips,
            EventKind::PartitionChanged => self.partition_changes,
            EventKind::Completed => self.completed,
            EventKind::DeadlineMissed => self.deadlines_missed,
            EventKind::FaultInjected => self.faults_injected,
            EventKind::ProbeLost => self.probes_lost,
            EventKind::ProbeBackoff => self.probe_backoffs,
            EventKind::NodeHealthChanged => self.node_health_changes,
            EventKind::Placed => self.placed,
            EventKind::Migrated => self.migrated,
            EventKind::ReservationRevoked => self.reservations_revoked,
            EventKind::DowngradedUnderFault => self.downgraded_under_fault,
            EventKind::CircuitTripped => self.circuits_tripped,
            EventKind::CircuitRestored => self.circuits_restored,
            EventKind::ControllerRecovered => self.controllers_recovered,
            EventKind::LinkPartitioned => self.links_partitioned,
            EventKind::LinkHealed => self.links_healed,
            EventKind::MessageDropped => self.messages_dropped,
            EventKind::Reconciled => self.reconciled,
            EventKind::NodeJoined => self.nodes_joined,
            EventKind::NodeDrained => self.nodes_drained,
            EventKind::LeaseExpired => self.leases_expired,
            EventKind::LeaseRenewed => self.leases_renewed,
            EventKind::SloViolated => self.slo_violations,
            EventKind::KnobChanged => self.knob_changes,
        }
    }

    /// Total events counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        EventKind::ALL.iter().map(|&k| self.count(k)).sum()
    }

    fn slot(&mut self, kind: EventKind) -> &mut u64 {
        match kind {
            EventKind::RunStarted => &mut self.runs_started,
            EventKind::Submitted => &mut self.submitted,
            EventKind::Admitted => &mut self.admitted,
            EventKind::Rejected => &mut self.rejected,
            EventKind::Started => &mut self.started,
            EventKind::Downgraded => &mut self.downgraded,
            EventKind::SwitchedBack => &mut self.switched_back,
            EventKind::StealTaken => &mut self.steals_taken,
            EventKind::StealReturned => &mut self.steals_returned,
            EventKind::GuardTripped => &mut self.guard_trips,
            EventKind::PartitionChanged => &mut self.partition_changes,
            EventKind::Completed => &mut self.completed,
            EventKind::DeadlineMissed => &mut self.deadlines_missed,
            EventKind::FaultInjected => &mut self.faults_injected,
            EventKind::ProbeLost => &mut self.probes_lost,
            EventKind::ProbeBackoff => &mut self.probe_backoffs,
            EventKind::NodeHealthChanged => &mut self.node_health_changes,
            EventKind::Placed => &mut self.placed,
            EventKind::Migrated => &mut self.migrated,
            EventKind::ReservationRevoked => &mut self.reservations_revoked,
            EventKind::DowngradedUnderFault => &mut self.downgraded_under_fault,
            EventKind::CircuitTripped => &mut self.circuits_tripped,
            EventKind::CircuitRestored => &mut self.circuits_restored,
            EventKind::ControllerRecovered => &mut self.controllers_recovered,
            EventKind::LinkPartitioned => &mut self.links_partitioned,
            EventKind::LinkHealed => &mut self.links_healed,
            EventKind::MessageDropped => &mut self.messages_dropped,
            EventKind::Reconciled => &mut self.reconciled,
            EventKind::NodeJoined => &mut self.nodes_joined,
            EventKind::NodeDrained => &mut self.nodes_drained,
            EventKind::LeaseExpired => &mut self.leases_expired,
            EventKind::LeaseRenewed => &mut self.leases_renewed,
            EventKind::SloViolated => &mut self.slo_violations,
            EventKind::KnobChanged => &mut self.knob_changes,
        }
    }
}

/// Bounded in-memory sink for tests and timeline reconstruction.
///
/// Keeps the **newest** `capacity` records (oldest are dropped and counted
/// in [`RingBufferRecorder::dropped`]); counters keep counting regardless.
#[derive(Debug, Clone)]
pub struct RingBufferRecorder {
    records: VecDeque<Record>,
    capacity: usize,
    dropped: u64,
    counters: Counters,
}

impl RingBufferRecorder {
    /// A ring keeping at most `capacity` records (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            counters: Counters::default(),
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// The retained records as an owned vector, oldest first.
    #[must_use]
    pub fn to_vec(&self) -> Vec<Record> {
        self.records.iter().cloned().collect()
    }

    /// How many old records were evicted to respect the capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The monotonic counters (unaffected by eviction).
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Reconstructs the [`Timeline`] of the retained records.
    #[must_use]
    pub fn timeline(&self) -> Timeline {
        Timeline::from_records(self.records.iter())
    }

    /// Drops all retained records (counters keep their totals).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl Recorder for RingBufferRecorder {
    fn record(&mut self, at: Cycles, event: Event) {
        self.counters.bump(event.kind());
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(Record { at, event });
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Unbounded in-memory sink for one parallel experiment cell.
///
/// Each cell running on a `cmpqos-engine` worker records into its own
/// shard; after the pool drains, the shards are concatenated **in cell
/// order** (never completion order) with [`merge_shards`], reproducing the
/// exact stream a serial run would have written. Within a shard records
/// are already cycle-ordered because the simulation emits them in cycle
/// order.
#[derive(Debug, Default, Clone)]
pub struct ShardRecorder {
    records: Vec<Record>,
    counters: Counters,
}

impl ShardRecorder {
    /// An empty shard.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in emission order.
    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The monotonic counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Consumes the shard, yielding its records.
    #[must_use]
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }

    /// Reconstructs the [`Timeline`] of this shard's records.
    #[must_use]
    pub fn timeline(&self) -> Timeline {
        Timeline::from_records(self.records.iter())
    }
}

impl Recorder for ShardRecorder {
    fn record(&mut self, at: Cycles, event: Event) {
        self.counters.bump(event.kind());
        self.records.push(Record { at, event });
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Replays `shards` into `sink` **in shard order**, flushing at the end.
///
/// This is the deterministic merge step of a parallel sweep: shard `i`
/// holds cell `i`'s full event stream (each beginning with its
/// [`Event::RunStarted`] marker), so the merged stream is byte-identical
/// to what a serial run appending cell after cell would have produced,
/// regardless of the order in which the cells actually completed.
pub fn merge_shards<R: Recorder + ?Sized>(shards: Vec<ShardRecorder>, sink: &mut R) {
    for shard in shards {
        for record in shard.into_records() {
            sink.record(record.at, record.event);
        }
    }
    sink.flush();
}

/// Streaming sink: one JSON object per line (JSON Lines).
///
/// Write errors don't panic mid-simulation; they are counted and the sink
/// goes quiet. Check [`JsonlRecorder::write_errors`] when it matters.
#[derive(Debug)]
pub struct JsonlRecorder {
    out: BufWriter<File>,
    counters: Counters,
    write_errors: u64,
}

impl JsonlRecorder {
    /// Creates (truncating) `path` and streams records to it.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file can't be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::from_file(File::create(path)?))
    }

    /// Opens `path` for appending, so several experiment cells can share
    /// one event file (each cell starts with an `Event::RunStarted`).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file can't be opened.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::from_file(
            OpenOptions::new().create(true).append(true).open(path)?,
        ))
    }

    fn from_file(file: File) -> Self {
        Self {
            out: BufWriter::new(file),
            counters: Counters::default(),
            write_errors: 0,
        }
    }

    /// The monotonic counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// How many records failed to serialize or write.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }
}

impl Recorder for JsonlRecorder {
    fn record(&mut self, at: Cycles, event: Event) {
        self.counters.bump(event.kind());
        let record = Record { at, event };
        match serde_json::to_string(&record) {
            Ok(line) => {
                if writeln!(self.out, "{line}").is_err() {
                    self.write_errors += 1;
                }
            }
            Err(_) => self.write_errors += 1,
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_types::JobId;

    fn ev(job: u32) -> Event {
        Event::Completed {
            job: JobId::new(job),
            met_deadline: true,
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(Cycles::new(1), ev(1)); // no-op, no panic
    }

    #[test]
    fn ring_buffer_keeps_newest_and_counts_everything() {
        let mut r = RingBufferRecorder::new(2);
        assert!(r.enabled());
        for i in 0..5 {
            r.record(Cycles::new(i), ev(i as u32));
        }
        assert_eq!(r.dropped(), 3);
        let kept: Vec<u64> = r.records().map(|rec| rec.at.get()).collect();
        assert_eq!(kept, vec![3, 4]);
        assert_eq!(r.counters().completed, 5);
        assert_eq!(r.counters().total(), 5);
    }

    #[test]
    fn shard_merge_reproduces_serial_order() {
        // Three "cells" record interleaved in time; the merge must honor
        // shard order, not timestamps across shards (each cell restarts
        // its clock, exactly like the experiment runs do).
        let mut shards = vec![
            ShardRecorder::new(),
            ShardRecorder::new(),
            ShardRecorder::new(),
        ];
        for (i, shard) in shards.iter_mut().enumerate() {
            shard.record(
                Cycles::ZERO,
                Event::RunStarted {
                    label: format!("cell{i}"),
                },
            );
            shard.record(Cycles::new(10 + i as u64), ev(i as u32));
        }
        assert_eq!(shards[1].counters().completed, 1);
        assert_eq!(shards[1].timeline().label(), Some("cell1"));
        let mut sink = RingBufferRecorder::new(64);
        merge_shards(shards, &mut sink);
        let labels: Vec<String> = sink
            .records()
            .filter_map(|r| match &r.event {
                Event::RunStarted { label } => Some(label.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec!["cell0", "cell1", "cell2"]);
        assert_eq!(sink.counters().total(), 6);
    }

    #[test]
    fn recorders_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ShardRecorder>();
        assert_send::<RingBufferRecorder>();
        assert_send::<JsonlRecorder>();
        assert_send::<Box<dyn Recorder>>();
    }

    #[test]
    fn jsonl_recorder_streams_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("cmpqos-obs-test-{}.jsonl", std::process::id()));
        {
            let mut r = JsonlRecorder::create(&path).unwrap();
            r.record(Cycles::new(5), Event::RunStarted { label: "t".into() });
            r.record(Cycles::new(9), ev(3));
            assert_eq!(r.write_errors(), 0);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let records: Vec<Record> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].at, Cycles::new(9));
        // Appending adds to the same file.
        {
            let mut r = JsonlRecorder::append(&path).unwrap();
            r.record(Cycles::new(11), ev(4));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
