//! **Figure 7** — the execution trace of the ten accepted bzip2 jobs under
//! `All-Strict` versus `All-Strict+AutoDown`: start/finish boxes, deadline
//! slack (dashed in the paper), downgraded execution and switch-back
//! arrows.

use crate::output::banner;
use crate::params::ExperimentParams;
use cmpqos_core::JobEvent;
use cmpqos_types::Cycles;
use cmpqos_workloads::runner::{run_batch, RunConfig, RunOutcome};
use cmpqos_workloads::{Configuration, WorkloadSpec};

/// One job's timeline entry.
#[derive(Debug, Clone)]
pub struct TraceJob {
    /// Acceptance slot (0..10).
    pub slot: usize,
    /// Execution start.
    pub start: Cycles,
    /// Completion.
    pub finish: Cycles,
    /// Deadline (if any).
    pub deadline: Option<Cycles>,
    /// Whether the job ran auto-downgraded, and when it switched back (if
    /// it did).
    pub downgraded: bool,
    /// Switch-back instant, if the job reverted to Strict.
    pub switch_back: Option<Cycles>,
}

/// Both traces.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// The All-Strict run.
    pub strict: RunOutcome,
    /// The All-Strict+AutoDown run.
    pub autodown: RunOutcome,
}

/// Runs both configurations on the ten-job bzip2 workload.
#[must_use]
pub fn run(params: &ExperimentParams) -> Fig7Result {
    run_bench(params, "bzip2", 10)
}

/// Runs a chosen benchmark/size (tests shrink both). Both cells run on
/// the `cmpqos-engine` pool.
#[must_use]
pub fn run_bench(params: &ExperimentParams, bench: &str, n: usize) -> Fig7Result {
    let cells: Vec<RunConfig> = [Configuration::AllStrict, Configuration::AllStrictAutoDown]
        .into_iter()
        .map(|configuration| RunConfig {
            workload: WorkloadSpec::single(bench, n),
            configuration,
            scale: params.scale,
            work: params.work,
            seed: params.seed,
            stealing_enabled: true,
            steal_interval: None,
            events: params.events.clone(),
        })
        .collect();
    let mut outcomes = run_batch(cells, params.jobs).into_iter();
    Fig7Result {
        strict: outcomes.next().expect("two cells ran"),
        autodown: outcomes.next().expect("two cells ran"),
    }
}

/// Extracts the timeline rows of one outcome.
#[must_use]
pub fn timeline(outcome: &RunOutcome) -> Vec<TraceJob> {
    outcome
        .accepted
        .iter()
        .map(|j| {
            let downgraded = j
                .report
                .events
                .iter()
                .any(|(_, e)| *e == JobEvent::AutoDowngraded);
            let switch_back = j
                .report
                .events
                .iter()
                .find(|(_, e)| *e == JobEvent::SwitchedBack)
                .map(|(t, _)| *t);
            TraceJob {
                slot: j.slot,
                start: j.report.started.unwrap_or(Cycles::ZERO),
                finish: j.report.finished.unwrap_or(Cycles::ZERO),
                deadline: j.report.job.deadline,
                downgraded,
                switch_back,
            }
        })
        .collect()
}

/// Renders one trace as ASCII art: `#` execution, `.` slack to deadline,
/// `v` the switch-back instant, `d` marks auto-downgraded rows.
#[must_use]
pub fn render(outcome: &RunOutcome, width: usize) -> String {
    let jobs = timeline(outcome);
    let horizon = jobs
        .iter()
        .map(|j| j.deadline.unwrap_or(j.finish).max(j.finish))
        .max()
        .unwrap_or(Cycles::new(1))
        .get()
        .max(1);
    let col = |t: Cycles| ((t.get() as u128 * width as u128) / horizon as u128) as usize;
    let mut out = String::new();
    for j in &jobs {
        let mut line = vec![b' '; width + 1];
        let s = col(j.start).min(width);
        let f = col(j.finish).min(width);
        for c in line.iter_mut().take(f + 1).skip(s) {
            *c = b'#';
        }
        if let Some(td) = j.deadline {
            let d = col(td).min(width);
            for c in line.iter_mut().take(d + 1).skip(f + 1) {
                *c = b'.';
            }
        }
        if let Some(sb) = j.switch_back {
            let v = col(sb).min(width);
            line[v] = b'v';
        }
        out.push_str(&format!(
            "job{:<2} {}|{}|\n",
            j.slot,
            if j.downgraded { "d" } else { " " },
            String::from_utf8_lossy(&line)
        ));
    }
    out.push_str(&format!(
        "makespan: {:.1} Mcycles\n",
        outcome.makespan.as_f64() / 1e6
    ));
    out
}

/// QoS-relevant structure counts of one trace — what the conformance
/// suite and tests assert on.
#[derive(Debug, Clone, Copy)]
pub struct TraceSummary {
    /// Jobs that ran downgraded at some point.
    pub downgrades: usize,
    /// Jobs that switched back to their original mode mid-run.
    pub switch_backs: usize,
}

/// Summarizes [`timeline`]`(outcome)`.
#[must_use]
pub fn summarize(outcome: &RunOutcome) -> TraceSummary {
    let jobs = timeline(outcome);
    TraceSummary {
        downgrades: jobs.iter().filter(|j| j.downgraded).count(),
        switch_backs: jobs.iter().filter(|j| j.switch_back.is_some()).count(),
    }
}

/// Prints both traces side by side (stacked).
pub fn print(result: &Fig7Result, params: &ExperimentParams) {
    banner("Figure 7: execution traces (bzip2 x10)", params);
    println!("--- All-Strict ---");
    println!("{}", render(&result.strict, 72));
    println!("--- All-Strict+AutoDown ('d' rows ran downgraded, 'v' = switch-back) ---");
    println!("{}", render(&result.autodown, 72));
    println!(
        "paper shape: All-Strict runs jobs two at a time (3883M cycles);\n\
         AutoDown admits/downgrades jobs earlier and finishes sooner (3451M)."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autodown_trace_contains_downgraded_jobs_and_finishes_no_later() {
        let p = ExperimentParams::quick();
        let r = run_bench(&p, "gobmk", 8);
        assert!(
            summarize(&r.autodown).downgrades > 0,
            "some jobs should auto-downgrade"
        );
        assert!(r.autodown.makespan <= r.strict.makespan);
        // Every All-Strict job pairs: at most 2 running at any instant
        // (concurrency only changes at start events, so checking each
        // start instant suffices).
        let strict = timeline(&r.strict);
        for a in &strict {
            let simultaneous = strict
                .iter()
                .filter(|b| b.start <= a.start && b.finish > a.start)
                .count();
            assert!(
                simultaneous <= 2,
                "more than two strict jobs at {}",
                a.start
            );
        }
        let art = render(&r.strict, 60);
        assert!(art.contains('#'));
    }

    #[test]
    fn events_file_reconstructs_the_figure7_timeline() {
        // The acceptance path of the observability layer: run both cells
        // with an event log, then rebuild the per-run timelines from the
        // JSONL alone and cross-check them against the reports.
        let path =
            std::env::temp_dir().join(format!("cmpqos-fig7-events-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut p = ExperimentParams::quick();
        p.events = Some(path.clone());
        let r = run_bench(&p, "gobmk", 6);

        let text = std::fs::read_to_string(&path).expect("event log written");
        let runs = cmpqos_obs::Timeline::per_run(&text).expect("parseable JSONL");
        assert_eq!(runs.len(), 2, "one timeline per cell");
        assert_eq!(runs[0].label(), Some("gobmk x6 / All-Strict"));
        assert_eq!(runs[1].label(), Some("gobmk x6 / All-Strict+AutoDown"));

        for (outcome, timeline) in [(&r.strict, &runs[0]), (&r.autodown, &runs[1])] {
            for j in &outcome.accepted {
                let id = j.report.job.id;
                let jt = timeline.job(id).expect("accepted job in the timeline");
                // Started is recorded at dispatch; the engine's started_at
                // additionally includes context-switch latency.
                let dispatched = jt.started.expect("job started");
                assert!(
                    dispatched <= j.report.started.expect("job ran"),
                    "job {id} dispatch precedes execution"
                );
                assert_eq!(
                    jt.completed.map(|(t, _)| t),
                    j.report.finished,
                    "job {id} finish"
                );
            }
            assert!(!timeline.partition_changes().is_empty());
        }
        // The AutoDown cell downgrades at least one job, and the timeline
        // sees the same switch-backs the reports recorded.
        assert!(runs[1].jobs().any(|(_, jt)| jt.downgraded.is_some()));
        let _ = std::fs::remove_file(&path);
    }
}
