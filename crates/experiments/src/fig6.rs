//! **Figure 6** — average (and min/max candle) wall-clock time of jobs per
//! execution mode, per configuration, for the `bzip2` workload.
//!
//! Paper shape: Strict jobs have short, almost-constant wall-clock in every
//! QoS configuration; Elastic jobs run slightly longer (stealing);
//! Opportunistic jobs longer and more variable (Hybrid-2's opportunistic
//! jobs faster than Hybrid-1's thanks to stolen capacity); AutoDown's jobs
//! longer and variable but all within deadlines; EqualPart highest mean and
//! variance.

use crate::output::{banner, Table};
use crate::params::ExperimentParams;
use cmpqos_workloads::metrics::wall_clock_by_mode;
use cmpqos_workloads::runner::{run_batch, RunConfig, RunOutcome};
use cmpqos_workloads::{Configuration, WorkloadSpec};

/// Outcomes per configuration for the bzip2 workload.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// One outcome per configuration in [`Configuration::all`] order.
    pub outcomes: Vec<RunOutcome>,
}

/// Runs the bzip2 workload under every configuration.
#[must_use]
pub fn run(params: &ExperimentParams) -> Fig6Result {
    run_bench(params, "bzip2")
}

/// Runs a chosen benchmark (tests use gobmk for speed). The per-config
/// cells run on the `cmpqos-engine` pool.
#[must_use]
pub fn run_bench(params: &ExperimentParams, bench: &str) -> Fig6Result {
    let cells: Vec<RunConfig> = Configuration::all()
        .into_iter()
        .map(|configuration| RunConfig {
            workload: WorkloadSpec::single(bench, 10),
            configuration,
            scale: params.scale,
            work: params.work,
            seed: params.seed,
            stealing_enabled: true,
            steal_interval: None,
            events: params.events.clone(),
        })
        .collect();
    Fig6Result {
        outcomes: run_batch(cells, params.jobs),
    }
}

/// Prints mean/min/max wall-clock (in Mcycles) per mode per configuration.
pub fn print(result: &Fig6Result, params: &ExperimentParams) {
    banner(
        "Figure 6: wall-clock time per execution mode (bzip2 workload)",
        params,
    );
    let mut t = Table::new(&["configuration", "mode", "jobs", "avg Mcyc", "min", "max"]);
    for o in &result.outcomes {
        for (mode, stats) in wall_clock_by_mode(o) {
            let m = 1.0e6;
            t.row_owned(vec![
                o.configuration.label().to_string(),
                mode.to_string(),
                stats.count().to_string(),
                format!("{:.2}", stats.mean() / m),
                format!("{:.2}", stats.min().unwrap_or(0.0) / m),
                format!("{:.2}", stats.max().unwrap_or(0.0) / m),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "paper shape: Strict short/constant; Opportunistic longer & variable\n\
         (Hybrid-2 < Hybrid-1 thanks to stealing); EqualPart highest mean and range."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_jobs_have_low_variance_and_equalpart_is_stretched() {
        let p = ExperimentParams::quick();
        let r = run_bench(&p, "gobmk");
        // All-Strict (index 0): only Strict jobs, tight spread.
        let strict = wall_clock_by_mode(&r.outcomes[0]);
        let s = strict.get("Strict").expect("strict jobs ran");
        assert!(s.count() == 10);
        let spread = (s.max().unwrap() - s.min().unwrap()) / s.mean();
        assert!(spread < 0.5, "strict spread {spread}");
        // EqualPart (last): mean wall-clock larger than All-Strict's
        // (timesharing stretches every job).
        let equal = wall_clock_by_mode(r.outcomes.last().unwrap());
        let e = equal.get("Strict").expect("equalpart jobs recorded");
        assert!(
            e.mean() > s.mean(),
            "EqualPart stretch: {} vs {}",
            e.mean(),
            s.mean()
        );
    }
}
