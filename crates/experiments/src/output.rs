//! Plain-text table/series rendering for experiment binaries.

use std::fmt::Write as _;

/// A simple aligned-column text table.
///
/// # Examples
///
/// ```
/// use cmpqos_experiments::output::Table;
///
/// let mut t = Table::new(&["benchmark", "IPC"]);
/// t.row(&["bzip2", "0.34"]);
/// let s = t.render();
/// assert!(s.contains("bzip2"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row/header mismatch");
        self.rows
            .push(cells.iter().map(|s| (*s).to_string()).collect());
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i];
                if i + 1 == cols {
                    let _ = write!(out, "{cell:<pad$}");
                } else {
                    let _ = write!(out, "{cell:<pad$}  ");
                }
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

impl Table {
    /// Renders the table as CSV (RFC 4180-style quoting) so experiment
    /// output can be piped into plotting tools.
    ///
    /// # Examples
    ///
    /// ```
    /// use cmpqos_experiments::output::Table;
    /// let mut t = Table::new(&["a", "b"]);
    /// t.row(&["1", "x,y"]);
    /// assert_eq!(t.to_csv(), "a,b\n1,\"x,y\"\n");
    /// ```
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.header, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Formats a fraction as a percentage string (`0.47` → `"47.0%"`).
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a throughput ratio as the paper does (`1.47` → `"+47%"`).
#[must_use]
pub fn gain(ratio: f64) -> String {
    format!("{:+.0}%", (ratio - 1.0) * 100.0)
}

/// Prints a standard experiment banner.
pub fn banner(title: &str, params: &crate::ExperimentParams) {
    println!("== {title} ==");
    println!(
        "   (scale 1/{}, {} instructions/job, seed {})\n",
        params.scale,
        params.work.get(),
        params.seed
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["a", "benchmark"]);
        t.row(&["x", "y"]);
        t.row_owned(vec!["longer".into(), "z".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have the same width for the first column block.
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("x     "));
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn row_length_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn csv_escapes_delimiters_and_quotes() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["plain", "1"]);
        t.row(&["com,ma", "qu\"ote"]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,value\nplain,1\n\"com,ma\",\"qu\"\"ote\"\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(gain(1.47), "+47%");
        assert_eq!(gain(0.9), "-10%");
    }
}
