//! **Table 1** — characteristics of the three representative benchmarks at
//! their requested 7-way allocation: L2 miss rate and L2 misses per
//! instruction.

use crate::output::{banner, pct, Table};
use crate::params::ExperimentParams;
use cmpqos_engine::Engine;
use cmpqos_types::Ways;
use cmpqos_workloads::calibrate::solo_run;

/// Paper reference values: (benchmark, L2 miss rate, misses/instruction).
pub const PAPER_TABLE1: [(&str, f64, f64); 3] = [
    ("bzip2", 0.20, 0.0055),
    ("hmmer", 0.17, 0.001),
    ("gobmk", 0.24, 0.004),
];

/// One measured row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub bench: String,
    /// Measured L2 miss rate at 7 ways.
    pub miss_rate: f64,
    /// Measured L2 misses per instruction at 7 ways.
    pub mpi: f64,
    /// Measured IPC at 7 ways.
    pub ipc: f64,
}

/// Measures the three Table 1 benchmarks (one engine cell per benchmark).
#[must_use]
pub fn run(params: &ExperimentParams) -> Vec<Table1Row> {
    let benches: Vec<&str> = PAPER_TABLE1.iter().map(|(bench, _, _)| *bench).collect();
    Engine::new(params.jobs).run(benches, |_, bench| {
        let s = solo_run(bench, Ways::new(7), params.work, params.scale, params.seed);
        Table1Row {
            bench: bench.to_string(),
            miss_rate: s.perf.l2_miss_ratio(),
            mpi: s.perf.mpi(),
            ipc: s.ipc(),
        }
    })
}

/// Prints measured-versus-paper rows.
pub fn print(rows: &[Table1Row], params: &ExperimentParams) {
    banner("Table 1: benchmark characteristics at 7 ways", params);
    let mut t = Table::new(&[
        "benchmark",
        "L2 miss rate",
        "paper",
        "misses/instr",
        "paper",
        "IPC",
    ]);
    for (row, (_, p_rate, p_mpi)) in rows.iter().zip(PAPER_TABLE1.iter()) {
        t.row_owned(vec![
            row.bench.clone(),
            pct(row.miss_rate),
            pct(*p_rate),
            format!("{:.4}", row.mpi),
            format!("{p_mpi:.4}"),
            format!("{:.3}", row.ipc),
        ]);
    }
    println!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpqos_types::Instructions;

    #[test]
    fn measured_rows_track_paper_ordering() {
        let mut p = ExperimentParams::quick();
        p.work = Instructions::new(400_000);
        let rows = run(&p);
        assert_eq!(rows.len(), 3);
        let by_name = |n: &str| rows.iter().find(|r| r.bench == n).unwrap();
        // MPI ordering: bzip2 > gobmk > hmmer (paper: 0.0055 > 0.004 > 0.001).
        assert!(by_name("bzip2").mpi > by_name("gobmk").mpi);
        assert!(by_name("gobmk").mpi > by_name("hmmer").mpi);
        // Miss rates land in the paper's broad band (10%-45%).
        for r in &rows {
            assert!(
                r.miss_rate > 0.05 && r.miss_rate < 0.50,
                "{}: {:.3}",
                r.bench,
                r.miss_rate
            );
        }
    }
}
