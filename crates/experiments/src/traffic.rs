//! **Traffic** — production-shaped load through the admission stack:
//! the `cmpqos-scenario` DSL's seeded multi-tenant scenarios (steady
//! tiers, diurnal curves, flash crowds, heavy-tailed sizes) driven
//! through per-tier [`cmpqos_core::AdmissionIntake`]s into a shared
//! LAC, reporting *exact* per-tier p50/p95/p99/p999 admission latency,
//! deadline-hit rate, shed breakdown, and goodput.
//!
//! This answers the "millions of users" question the paper-figure
//! workloads cannot: what does the tail look like per priority tier
//! when the arrival process is not a polite Poisson trickle? Each
//! scenario is one independent cell on the `cmpqos-engine` pool;
//! everything inside a cell is integer-clocked and seeded, so the
//! printed tables are byte-identical across machines and `--jobs`
//! widths.
//!
//! The shape to expect: the premium tier's faster drain cadence buys it
//! the lowest tail latency and the highest deadline-hit rate in every
//! scenario; flash crowds and heavy tails widen the lower tiers'
//! p99/p999 spread without disturbing premium's ordering.

use crate::output::{banner, pct, Table};
use crate::params::ExperimentParams;
use cmpqos_scenario::{
    run as run_spec, ArrivalShape, ModeMix, ScenarioSpec, SizeDist, TierSpec, TrafficReport,
};

/// The standard three-tier topology every tiered scenario shares:
/// premium (hot drain cadence, strict-heavy, small jobs), standard
/// (middling everything), batch (slow cadence, opportunistic-heavy,
/// heavy-tailed appetite). Also the topology the `traffic` conformance
/// check and the `starve-tier` injection run.
#[must_use]
pub fn tiered_spec(seed: u64, horizon: u64) -> ScenarioSpec {
    ScenarioSpec::new("steady-tiers", seed)
        .horizon(horizon)
        .ways(2, 5)
        .tier(
            TierSpec::new("premium")
                .sources(2)
                .mean_inter_arrival(2_400)
                .mix(ModeMix {
                    strict_pct: 70,
                    elastic_pct: 20,
                    elastic_slack_pct: 25,
                })
                .size(SizeDist {
                    base: 1_500,
                    tail_pct: 10,
                    tail_cap: 2,
                })
                .deadline_slack_pct(350)
                .drain_every(200),
        )
        .tier(
            TierSpec::new("standard")
                .sources(3)
                .mean_inter_arrival(2_200)
                .mix(ModeMix {
                    strict_pct: 40,
                    elastic_pct: 30,
                    elastic_slack_pct: 25,
                })
                .size(SizeDist {
                    base: 1_500,
                    tail_pct: 20,
                    tail_cap: 3,
                })
                .deadline_slack_pct(350)
                .drain_every(1_000),
        )
        .tier(
            TierSpec::new("batch")
                .sources(3)
                .mean_inter_arrival(2_000)
                .mix(ModeMix {
                    strict_pct: 10,
                    elastic_pct: 30,
                    elastic_slack_pct: 50,
                })
                .size(SizeDist {
                    base: 2_000,
                    tail_pct: 30,
                    tail_cap: 4,
                })
                .deadline_slack_pct(350)
                .drain_every(4_000),
        )
}

/// The swept scenario grid: the shared tiered topology under four
/// traffic shapes.
#[must_use]
pub fn specs(params: &ExperimentParams) -> Vec<ScenarioSpec> {
    let horizon = 200_000;
    let base = tiered_spec(params.seed, horizon);

    let mut diurnal = base.clone();
    diurnal.name = "diurnal".to_string();
    for tier in &mut diurnal.tiers {
        tier.shape = ArrivalShape::Diurnal {
            period: 50_000,
            swing_pct: 60,
        };
    }

    let mut flash = base.clone();
    flash.name = "flash-crowd".to_string();
    flash.tiers[2].shape = ArrivalShape::Bursty {
        period: 40_000,
        on_pct: 15,
        burst_div: 10,
    };

    let mut heavy = base.clone();
    heavy.name = "heavy-tail".to_string();
    for tier in &mut heavy.tiers {
        tier.size.tail_pct = 35;
        tier.size.tail_cap = 5;
    }

    vec![base, diurnal, flash, heavy]
}

/// Runs the grid on the engine pool (one cell per scenario).
#[must_use]
pub fn run(params: &ExperimentParams) -> Vec<TrafficReport> {
    cmpqos_engine::Engine::new(params.jobs).run(specs(params), |_, spec| run_spec(&spec))
}

fn cycles_or_dash(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| v.to_string())
}

/// Renders one scenario's per-tier table.
#[must_use]
pub fn render_report(report: &TrafficReport) -> String {
    let total_goodput: u64 = report.tiers.iter().map(|t| t.goodput).sum();
    let mut t = Table::new(&[
        "tier",
        "offered",
        "shed",
        "admitted",
        "rejected",
        "p50",
        "p95",
        "p99",
        "p999",
        "deadline hit",
        "goodput",
    ]);
    for tier in &report.tiers {
        t.row_owned(vec![
            tier.name.clone(),
            tier.offered.to_string(),
            tier.shed().to_string(),
            tier.admitted.to_string(),
            tier.rejected.to_string(),
            cycles_or_dash(tier.latency.p50),
            cycles_or_dash(tier.latency.p95),
            cycles_or_dash(tier.latency.p99),
            cycles_or_dash(tier.latency.p999),
            tier.deadline_hit_permille()
                .map_or_else(|| "-".to_string(), |p| pct(p as f64 / 1000.0)),
            if total_goodput == 0 {
                "-".to_string()
            } else {
                pct(tier.goodput as f64 / total_goodput as f64)
            },
        ]);
    }
    format!("-- {} --\n{}", report.name, t.render())
}

/// Prints every scenario's table plus the shape note.
pub fn print(reports: &[TrafficReport], params: &ExperimentParams) {
    banner(
        "Traffic: production scenarios through the admission stack",
        params,
    );
    for report in reports {
        println!("{}", render_report(report));
    }
    println!(
        "shape: the premium tier's hot drain cadence holds the lowest p99 and the \
         highest deadline-hit rate in every scenario; flash crowds and heavy tails \
         widen the lower tiers' tails (latency in cycles, exact nearest-rank \
         percentiles over every drained request)."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grid_reports_ordered_tier_tails() {
        let reports = run(&ExperimentParams::quick());
        assert_eq!(reports.len(), 4);
        for report in &reports {
            let p99: Vec<u64> = report
                .tiers
                .iter()
                .map(|t| t.latency.p99.expect("every tier drains jobs"))
                .collect();
            assert!(
                p99[0] <= p99[1] && p99[1] <= p99[2],
                "{}: tier p99s out of order: {p99:?}",
                report.name
            );
            for tier in &report.tiers {
                assert_eq!(
                    tier.offered,
                    tier.shed() + tier.admitted + tier.rejected,
                    "{}/{}: accounting must close",
                    report.name,
                    tier.name
                );
            }
        }
    }

    #[test]
    fn the_grid_is_deterministic_at_any_pool_width() {
        let mut serial = ExperimentParams::quick();
        serial.jobs = 1;
        let mut wide = serial.clone();
        wide.jobs = 4;
        let a = run(&serial);
        let b = run(&wide);
        assert_eq!(a, b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(render_report(x), render_report(y));
        }
    }

    #[test]
    fn starving_the_premium_tier_breaks_its_ordering() {
        let params = ExperimentParams::quick();
        let spec = tiered_spec(params.seed, 200_000);
        let healthy = run_spec(&spec);
        let starved = run_spec(&spec.starved(64));
        let h = healthy.tiers[0].latency.p99.expect("samples");
        let s = starved.tiers[0].latency.p99.expect("samples");
        assert!(s > h, "starved premium p99 {s} not above healthy {h}");
    }
}
