//! **Figure 5** — the headline result. For each single-benchmark 10-job
//! workload (`gobmk`, `hmmer`, `bzip2`) and each Table 2 configuration:
//!
//! * **(a)** deadline hit rate — 100% for every QoS configuration, low for
//!   `EqualPart`;
//! * **(b)** job throughput normalized to `All-Strict` — `EqualPart`
//!   highest (the cost of strict QoS), `Hybrid-1`/`Hybrid-2` recovering
//!   ~25%, `All-Strict+AutoDown` recovering 13–39%.

use crate::output::{banner, gain, pct, Table};
use crate::params::ExperimentParams;
use cmpqos_workloads::metrics::{normalized_throughput, paper_hit_rate};
use cmpqos_workloads::runner::{run_batch, RunConfig, RunOutcome};
use cmpqos_workloads::{Configuration, WorkloadSpec};

/// All cells of one workload row.
#[derive(Debug, Clone)]
pub struct Fig5Workload {
    /// Workload name (benchmark).
    pub bench: String,
    /// Outcomes per configuration, in [`Configuration::all`] order.
    pub outcomes: Vec<RunOutcome>,
}

impl Fig5Workload {
    /// The `All-Strict` baseline outcome.
    ///
    /// # Panics
    ///
    /// Panics if the row is empty (never produced by [`run`]).
    #[must_use]
    pub fn baseline(&self) -> &RunOutcome {
        &self.outcomes[0]
    }
}

/// The benchmarks of the single-benchmark workloads.
pub const BENCHMARKS: [&str; 3] = ["gobmk", "hmmer", "bzip2"];

/// Runs every (workload, configuration) cell.
#[must_use]
pub fn run(params: &ExperimentParams) -> Vec<Fig5Workload> {
    run_for(params, &BENCHMARKS)
}

/// Runs a chosen subset of benchmarks (tests use one). All
/// (workload, configuration) cells go through the `cmpqos-engine` pool
/// (`params.jobs` wide) and come back in cell order.
#[must_use]
pub fn run_for(params: &ExperimentParams, benches: &[&str]) -> Vec<Fig5Workload> {
    let configs = Configuration::all();
    let cells: Vec<RunConfig> = benches
        .iter()
        .flat_map(|bench| {
            configs.iter().map(|&configuration| RunConfig {
                workload: WorkloadSpec::single(bench, 10),
                configuration,
                scale: params.scale,
                work: params.work,
                seed: params.seed,
                stealing_enabled: true,
                steal_interval: None,
                events: params.events.clone(),
            })
        })
        .collect();
    let mut outcomes = run_batch(cells, params.jobs).into_iter();
    benches
        .iter()
        .map(|bench| Fig5Workload {
            bench: (*bench).to_string(),
            outcomes: outcomes.by_ref().take(configs.len()).collect(),
        })
        .collect()
}

/// Prints both panels.
pub fn print(rows: &[Fig5Workload], params: &ExperimentParams) {
    banner("Figure 5a: deadline hit rate", params);
    let configs = Configuration::all();
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(configs.iter().map(|c| c.label()))
        .collect();
    let mut a = Table::new(&headers);
    for row in rows {
        let mut cells = vec![format!("{} x10", row.bench)];
        for o in &row.outcomes {
            cells.push(pct(paper_hit_rate(o)));
        }
        a.row_owned(cells);
    }
    println!("{}", a.render());

    banner("Figure 5b: throughput normalized to All-Strict", params);
    let mut b = Table::new(&headers);
    for row in rows {
        let base = row.baseline();
        let mut cells = vec![format!("{} x10", row.bench)];
        for o in &row.outcomes {
            cells.push(format!(
                "{:.2} ({})",
                normalized_throughput(base, o),
                gain(normalized_throughput(base, o))
            ));
        }
        b.row_owned(cells);
    }
    println!("{}", b.render());
    println!(
        "paper shape: QoS configs 100% hit rate, EqualPart 10-50%; EqualPart throughput\n\
         +25..64% over All-Strict; Hybrid-1/2 ~ +25%; AutoDown +13..39%."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gobmk_row_has_paper_shape() {
        let p = ExperimentParams::quick();
        let rows = run_for(&p, &["gobmk"]);
        let row = &rows[0];
        let configs = Configuration::all();
        for (c, o) in configs.iter().zip(&row.outcomes) {
            if c.uses_admission_control() {
                assert_eq!(
                    paper_hit_rate(o),
                    1.0,
                    "{c} must hit all reserved deadlines"
                );
            }
        }
        let base = row.baseline();
        // EqualPart beats All-Strict on throughput.
        let equal = row.outcomes.last().unwrap();
        assert!(
            normalized_throughput(base, equal) > 1.05,
            "EqualPart gain: {}",
            normalized_throughput(base, equal)
        );
        // Hybrid-1 also improves on All-Strict.
        let h1 = &row.outcomes[1];
        assert!(
            normalized_throughput(base, h1) > 1.0,
            "Hybrid-1 gain: {}",
            normalized_throughput(base, h1)
        );
    }
}
